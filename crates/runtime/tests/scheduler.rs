//! Integration tests for the fair-share pool scheduler: nested-scope
//! behavior, cross-tenant interleaving, and class inheritance through
//! real worker threads.
//!
//! Timing-sensitive assertions use wide margins (order-of-magnitude
//! gaps, completion-order checks) so they hold on a loaded 1-core CI
//! host.

use fedval_runtime::{with_job_class, JobClass, Pool, SchedPolicy};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Burns roughly `iters` iterations of un-optimizable work.
fn spin(iters: u64) -> u64 {
    let mut acc = 0x9e3779b97f4a7c15u64;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        std::hint::black_box(acc);
    }
    acc
}

#[test]
fn nested_scopes_complete_without_deadlock() {
    // Jobs that themselves open scopes on the same pool: every layer's
    // waiter helps drain, so even a 1-worker pool can't deadlock, and
    // per-scope queues must not change that.
    for policy in [SchedPolicy::FairShare, SchedPolicy::Fifo] {
        for threads in [1, 2, 4] {
            let pool = Pool::with_policy(threads, policy);
            let counter = AtomicU64::new(0);
            pool.scope(|outer| {
                for _ in 0..4 {
                    let counter = &counter;
                    let pool = &pool;
                    outer.spawn(move || {
                        pool.scope(|inner| {
                            for _ in 0..8 {
                                inner.spawn(move || {
                                    counter.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    });
                }
            });
            assert_eq!(
                counter.load(Ordering::Relaxed),
                32,
                "threads={threads} policy={policy}"
            );
        }
    }
}

#[test]
fn nested_scope_waiters_drain_their_own_scope_first() {
    // An inner scope's waiter must finish its own jobs even while an
    // unrelated tenant keeps the shared queue full: under fair share
    // the helper prefers its own scope instead of being conscripted
    // into the backlog (cross-drain), bounding the inner scope's
    // latency by its own work.
    let pool = Arc::new(Pool::with_policy(2, SchedPolicy::FairShare));
    let stop = Arc::new(AtomicBool::new(false));
    let flood = {
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                pool.scope(|scope| {
                    for _ in 0..64 {
                        scope.spawn(|| {
                            spin(20_000);
                        });
                    }
                });
            }
        })
    };
    // Give the flood a head start so its jobs are queued.
    std::thread::sleep(Duration::from_millis(20));
    let started = Instant::now();
    let done = AtomicU64::new(0);
    pool.scope(|scope| {
        for _ in 0..4 {
            let done = &done;
            scope.spawn(move || {
                spin(1_000);
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    flood.join().unwrap();
    assert_eq!(done.load(Ordering::Relaxed), 4);
    // 4 × 1k-iteration jobs are microseconds of work; even run entirely
    // by the helping waiter on a busy host this stays far under a
    // second. (Under strict FIFO the waiter would first chew through
    // the flood's queued 20k-iteration jobs.)
    assert!(
        elapsed < Duration::from_secs(2),
        "small scope took {elapsed:?} under a flood"
    );
}

#[test]
fn interactive_job_is_not_starved_by_a_batch_flood() {
    // The tentpole's latency story at pool scale: a large batch-class
    // for_each_init is in flight; a small interactive-class batch
    // submitted afterwards must complete long before the batch does.
    let pool = Arc::new(Pool::with_policy(2, SchedPolicy::FairShare));
    let barrier = Arc::new(Barrier::new(2));
    let batch_done_at = {
        let pool = Arc::clone(&pool);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            let started = Instant::now();
            with_job_class(JobClass::Batch, || {
                pool.for_each_init(
                    vec![(); 2_000],
                    pool.threads(),
                    || (),
                    |_, _| {
                        spin(30_000);
                    },
                    None,
                )
                .unwrap();
            });
            started.elapsed()
        })
    };
    barrier.wait();
    // Let the batch enqueue its chunks first.
    std::thread::sleep(Duration::from_millis(30));
    let started = Instant::now();
    with_job_class(JobClass::Interactive, || {
        pool.for_each_init(
            vec![(); 8],
            pool.threads(),
            || (),
            |_, _| {
                spin(1_000);
            },
            None,
        )
        .unwrap();
    });
    let interactive = started.elapsed();
    let batch = batch_done_at.join().unwrap();
    // The batch runs 2000 × 30k iterations; the interactive job 8 × 1k.
    // Fair share bounds the interactive job's wait to roughly one chunk
    // of batch work, so it must finish well before the batch and far
    // faster than it.
    assert!(
        interactive < batch / 2,
        "interactive {interactive:?} not clearly faster than batch {batch:?}"
    );
    assert!(
        interactive < Duration::from_secs(2),
        "interactive job took {interactive:?} under a batch flood"
    );
}

#[test]
fn class_inheritance_reaches_nested_scopes_on_workers() {
    // A nested scope opened *inside* a pool job must carry the class of
    // the tenant that submitted the outer work, not the worker thread's
    // default.
    let pool = Pool::new(2);
    let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
    with_job_class(JobClass::Interactive, || {
        pool.scope(|outer| {
            for _ in 0..4 {
                let seen = Arc::clone(&seen);
                let pool = &pool;
                outer.spawn(move || {
                    pool.scope(|inner| {
                        seen.lock().unwrap().push(inner.class());
                    });
                });
            }
        });
    });
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 4);
    assert!(
        seen.iter().all(|&c| c == JobClass::Interactive),
        "nested scopes saw {seen:?}"
    );
}

#[test]
fn results_are_bit_identical_across_policies_and_widths() {
    // The determinism contract survives the scheduler change: same
    // inputs, any policy × width, byte-for-byte equal outputs.
    let items: Vec<usize> = (0..500).collect();
    let reference: Vec<u64> = items.iter().map(|&i| spin(i as u64 % 97 + 3)).collect();
    for policy in [SchedPolicy::FairShare, SchedPolicy::Fifo] {
        for threads in [1, 2, 4] {
            let pool = Pool::with_policy(threads, policy);
            let out: Vec<std::sync::OnceLock<u64>> = (0..items.len())
                .map(|_| std::sync::OnceLock::new())
                .collect();
            pool.for_each_init(
                items.clone(),
                threads,
                || (),
                |_, i| {
                    out[i].set(spin(i as u64 % 97 + 3)).unwrap();
                },
                None,
            )
            .unwrap();
            let got: Vec<u64> = out.iter().map(|c| *c.get().unwrap()).collect();
            assert_eq!(got, reference, "threads={threads} policy={policy}");
        }
    }
}
