//! Cooperative cancellation for batch work.
//!
//! A [`CancelToken`] is a cheaply cloneable flag shared between the
//! party driving a long computation (a valuation session, a CLI handler)
//! and the layers doing the work (the worker pool, the utility oracle,
//! the completion solvers). Cancellation is *cooperative*: setting the
//! flag never interrupts an item mid-flight; workers observe it at item
//! boundaries and abandon the rest of their batch, so a cancelled run
//! stops within at most one work item per worker.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, clonable cancellation flag.
///
/// All clones observe the same flag; once [`cancel`](CancelToken::cancel)
/// has been called the token stays cancelled forever (make a new token
/// for a new run).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once [`cancel`](CancelToken::cancel) has been called on any
    /// clone of this token.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// `Err(Cancelled)` once cancelled — the form batch loops use
    /// (`token.check()?`).
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

/// The unit error a cancelled batch reports. Higher layers convert it
/// into their own error vocabulary (e.g.
/// `ValuationError::Cancelled` in `fedval_shapley`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "the run was cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.check(), Ok(()));
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(Cancelled));
        // Idempotent.
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn cancellation_crosses_threads() {
        let t = CancelToken::new();
        let c = t.clone();
        std::thread::spawn(move || c.cancel()).join().unwrap();
        assert!(t.is_cancelled());
    }
}
