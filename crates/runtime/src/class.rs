//! Job classes and scheduling policies for the worker pool.
//!
//! Multi-tenant callers (the `fedval_service` job manager) tag the work
//! they submit with a [`JobClass`] so the pool can keep small
//! interactive jobs responsive while a large batch job is in flight.
//! The tag is carried in a thread-local: [`with_job_class`] sets it for
//! the duration of a closure, every [`Pool::scope`](crate::Pool::scope)
//! (and therefore every
//! [`Pool::for_each_init`](crate::Pool::for_each_init) batch) started
//! inside inherits it, and workers re-establish the tag of the job they
//! are running — so *nested* submissions made from inside pool jobs
//! keep their tenant's class without any explicit plumbing through the
//! oracle/solver layers.
//!
//! How tagged jobs are drained is the pool's [`SchedPolicy`]:
//!
//! * [`SchedPolicy::FairShare`] (the default) keeps one FIFO queue per
//!   *(class, scope)* and serves classes by weighted round-robin
//!   ([`JobClass::weight`]), rotating between scopes of equal class so
//!   concurrent tenants interleave at job granularity. Threads that
//!   help drain the queue while waiting for their own batch prefer
//!   their own scope's jobs before taking anyone else's.
//! * [`SchedPolicy::Fifo`] is the single strict-FIFO queue the pool
//!   shipped with — kept as the measurable baseline (`service_load`
//!   benchmarks one against the other) and selectable for the global
//!   pool via `FEDVAL_SCHED=fifo`.
//!
//! Neither policy changes *what* is computed: work items write to
//! disjoint or write-once slots (the crate-wide determinism contract),
//! so per-batch results are bit-identical under either policy — only
//! inter-batch interleaving and therefore latency differs.

use std::cell::Cell;

/// Priority class of submitted pool work.
///
/// The class is a *scheduling* hint only; it never affects results.
/// Untagged work (everything outside [`with_job_class`]) is
/// [`JobClass::Batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JobClass {
    /// Latency-sensitive work: small jobs a caller is actively waiting
    /// on. Served preferentially (but not exclusively — see
    /// [`JobClass::weight`]) under [`SchedPolicy::FairShare`].
    Interactive,
    /// Throughput work: large sweeps whose completion time is measured
    /// in seconds or minutes. The default class.
    #[default]
    Batch,
}

/// All classes, in drain-priority order (index = [`JobClass::index`]).
pub(crate) const CLASSES: [JobClass; JobClass::COUNT] = [JobClass::Interactive, JobClass::Batch];

impl JobClass {
    /// Number of distinct classes.
    pub const COUNT: usize = 2;

    /// Dense index used by the scheduler's per-class tables.
    pub(crate) fn index(self) -> usize {
        match self {
            JobClass::Interactive => 0,
            JobClass::Batch => 1,
        }
    }

    /// Weighted-round-robin share: how many jobs of this class a worker
    /// drains per refill cycle while other classes also have work.
    /// Interactive outweighs batch 4:1, so an interactive tenant gets
    /// ~80% of the pool while it has queued work but a batch tenant is
    /// never starved outright.
    pub fn weight(self) -> u32 {
        match self {
            JobClass::Interactive => 4,
            JobClass::Batch => 1,
        }
    }

    /// Stable lowercase name ("interactive" / "batch").
    pub fn name(self) -> &'static str {
        match self {
            JobClass::Interactive => "interactive",
            JobClass::Batch => "batch",
        }
    }

    /// Parses [`JobClass::name`] back (case-sensitive, lowercase).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "interactive" => Some(JobClass::Interactive),
            "batch" => Some(JobClass::Batch),
            _ => None,
        }
    }
}

impl std::fmt::Display for JobClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a [`Pool`](crate::Pool) orders queued jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Per-(class, scope) queues, weighted round-robin across classes,
    /// round-robin across scopes, scope-preferring helpers. The
    /// default.
    #[default]
    FairShare,
    /// One strict-FIFO queue, ignoring class and scope — the
    /// pre-fair-share behavior, kept as the measurable baseline.
    Fifo,
}

impl SchedPolicy {
    /// Stable lowercase name ("fair" / "fifo").
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::FairShare => "fair",
            SchedPolicy::Fifo => "fifo",
        }
    }

    /// Parses [`SchedPolicy::name`] back ("fair"/"fair_share"/"fifo").
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fair" | "fair_share" | "fair-share" => Some(SchedPolicy::FairShare),
            "fifo" => Some(SchedPolicy::Fifo),
            _ => None,
        }
    }

    /// The policy requested by the `FEDVAL_SCHED` environment variable,
    /// when set and valid; used by
    /// [`Pool::global`](crate::Pool::global). A set but unrecognized
    /// value logs one warning and reads as unset.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("FEDVAL_SCHED").ok()?;
        let policy = Self::parse(raw.trim());
        if policy.is_none() {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "fedval_runtime: FEDVAL_SCHED={raw:?} is not a policy name \
                     (expected \"fair\" or \"fifo\"); using the default"
                );
            });
        }
        policy
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

thread_local! {
    /// The class newly created scopes on this thread are tagged with.
    static CURRENT_CLASS: Cell<JobClass> = const { Cell::new(JobClass::Batch) };
}

/// The class work submitted from this thread is currently tagged with
/// ([`JobClass::Batch`] unless inside [`with_job_class`] or a pool job
/// carrying another class).
pub fn current_job_class() -> JobClass {
    CURRENT_CLASS.with(Cell::get)
}

/// Runs `f` with this thread's submission class set to `class`,
/// restoring the previous class afterwards (also on unwind). Every
/// [`Pool::scope`](crate::Pool::scope) started inside `f` — directly or
/// transitively on workers running `f`'s jobs — is tagged `class`.
pub fn with_job_class<R>(class: JobClass, f: impl FnOnce() -> R) -> R {
    let _restore = ClassGuard(set_current_class(class));
    f()
}

/// Replaces the thread's current class, returning the previous one.
/// Workers use this to adopt the class of the job they run.
pub(crate) fn set_current_class(class: JobClass) -> JobClass {
    CURRENT_CLASS.with(|c| c.replace(class))
}

/// Restores a saved class on drop (unwind-safe restoration for
/// [`with_job_class`] and job execution sites).
pub(crate) struct ClassGuard(pub(crate) JobClass);

impl Drop for ClassGuard {
    fn drop(&mut self) {
        CURRENT_CLASS.with(|c| c.set(self.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_class_is_batch() {
        assert_eq!(current_job_class(), JobClass::Batch);
        assert_eq!(JobClass::default(), JobClass::Batch);
    }

    #[test]
    fn with_job_class_scopes_and_restores() {
        assert_eq!(current_job_class(), JobClass::Batch);
        let seen = with_job_class(JobClass::Interactive, || {
            let inner = current_job_class();
            // Nesting restores to the *enclosing* class, not the default.
            with_job_class(JobClass::Batch, || {
                assert_eq!(current_job_class(), JobClass::Batch);
            });
            assert_eq!(current_job_class(), JobClass::Interactive);
            inner
        });
        assert_eq!(seen, JobClass::Interactive);
        assert_eq!(current_job_class(), JobClass::Batch);
    }

    #[test]
    fn with_job_class_restores_on_unwind() {
        let result = std::panic::catch_unwind(|| {
            with_job_class(JobClass::Interactive, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(current_job_class(), JobClass::Batch);
    }

    #[test]
    fn names_round_trip() {
        for class in [JobClass::Interactive, JobClass::Batch] {
            assert_eq!(JobClass::parse(class.name()), Some(class));
            assert_eq!(format!("{class}"), class.name());
        }
        assert_eq!(JobClass::parse("nope"), None);
        for policy in [SchedPolicy::FairShare, SchedPolicy::Fifo] {
            assert_eq!(SchedPolicy::parse(policy.name()), Some(policy));
            assert_eq!(format!("{policy}"), policy.name());
        }
        assert_eq!(
            SchedPolicy::parse("fair_share"),
            Some(SchedPolicy::FairShare)
        );
        assert_eq!(SchedPolicy::parse("nope"), None);
    }

    #[test]
    fn weights_prefer_interactive() {
        assert!(JobClass::Interactive.weight() > JobClass::Batch.weight());
        assert!(JobClass::Batch.weight() >= 1, "no class is starved");
    }
}
