//! Shared execution layer for the valuation stack.
//!
//! Every hot path in this workspace — the utility oracle's batch
//! evaluation in `fedval_fl`, the ALS/CCD row and column sub-solves in
//! `fedval_mc`, and the permutation walks driven by `fedval_shapley` —
//! has the same shape: many small, independent work items whose results
//! land in pre-determined slots. Before this crate each of those sites
//! paid a fresh `std::thread::scope` spawn per batch; with batches of a
//! few dozen microsecond-scale items (the TMC pattern), spawn and join
//! overhead rivaled the work itself.
//!
//! # The plan → submit → join discipline
//!
//! 1. **Plan.** The caller collects its work items up front (an
//!    `EvalPlan` of utility cells, the rows of a factor half-step, …).
//!    Each item carries — or indexes — its own output slot, so result
//!    placement is deterministic no matter which worker runs it or in
//!    what order.
//! 2. **Submit.** The batch is split into contiguous chunks and pushed
//!    onto a persistent [`Pool`] — either the process-wide
//!    [`Pool::global`] (sized by the `FEDVAL_THREADS` environment
//!    variable, falling back to the hardware parallelism) or an owned
//!    [`Pool::new`] for tests that need a specific size. Workers park
//!    between batches instead of being respawned; each chunk may
//!    initialize per-worker scratch state (e.g. a cloned model) once.
//! 3. **Join.** The submitting thread waits for its batch — helping to
//!    drain the queue while it waits, so a one-worker pool still makes
//!    progress when the caller blocks — and only then reads the results.
//!    A [`CancelToken`] is checked at item boundaries: cancellation
//!    abandons the not-yet-started remainder of the batch and surfaces
//!    as [`Cancelled`].
//!
//! Determinism contract: the pool never changes *what* is computed, only
//! *where*. Work items must write to disjoint (or write-once) slots and
//! must not depend on execution order; under that contract, results are
//! bit-identical across pool sizes, which the consuming crates assert in
//! their tests.
//!
//! # Multi-tenant scheduling
//!
//! When several tenants share one pool (the `fedval_service` job
//! manager), submissions are tagged with a [`JobClass`] — set for a
//! region of code with [`with_job_class`] and inherited by everything
//! spawned inside it, including nested scopes started from within pool
//! jobs. Under the default [`SchedPolicy::FairShare`] policy the queue
//! keeps one FIFO per *(class, scope)* and drains classes by weighted
//! round-robin (interactive : batch = 4 : 1), rotating between tenants
//! of equal class, while helping threads prefer their own scope's jobs.
//! `FEDVAL_SCHED=fifo` restores the original single strict-FIFO queue
//! as a measurable baseline. Because of the determinism contract the
//! policy affects latency only, never results.

pub mod cancel;
pub mod class;
pub mod pool;

pub use cancel::{CancelToken, Cancelled};
pub use class::{current_job_class, with_job_class, JobClass, SchedPolicy};
pub use pool::{Pool, PoolHandle, Scope};
