//! The persistent worker pool.
//!
//! Workers are spawned once — when the pool is created — and park on a
//! condition variable between batches, so submitting a batch costs a
//! queue push and a wakeup instead of a `std::thread::spawn` per chunk.
//! Two entry points cover the workspace's needs:
//!
//! * [`Pool::scope`] — structured borrowing like `std::thread::scope`:
//!   spawned closures may borrow the caller's stack, and the scope joins
//!   every spawn (propagating panics) before returning.
//! * [`Pool::for_each_init`] — the chunked batch API the utility oracle
//!   and the solvers use: items are split into contiguous chunks, each
//!   chunk initializes per-chunk scratch state once, and an optional
//!   [`CancelToken`] is observed at item boundaries.
//!
//! While a submitting thread waits for its batch it *helps*: it pops and
//! runs queued jobs instead of blocking, so a pool is never a deadlock
//! risk for its own callers and a 1-worker pool on a 1-core host behaves
//! like the old inline loop.
//!
//! ## Scheduling
//!
//! Queued jobs carry the submitting scope's identity and [`JobClass`]
//! (inherited from the submitting thread — see
//! [`with_job_class`](crate::with_job_class)). How they are drained is
//! the pool's [`SchedPolicy`]:
//!
//! * [`SchedPolicy::FairShare`] (default) — one FIFO queue per
//!   *(class, scope)*; workers drain classes by weighted round-robin
//!   ([`JobClass::weight`], interactive:batch = 4:1) and rotate between
//!   scopes of the same class per job, so concurrent tenants interleave
//!   instead of running in submission order. A thread helping while it
//!   waits for its own scope runs its *own* scope's jobs first, and only
//!   helps other tenants when its scope's queue is empty.
//! * [`SchedPolicy::Fifo`] — the original single strict-FIFO queue,
//!   kept as the measurable baseline (`FEDVAL_SCHED=fifo`): one tenant's
//!   large batch makes every later submitter wait, and a helping thread
//!   is conscripted into whatever sits at the queue head.
//!
//! The policy never changes *what* a batch computes — work items write
//! into disjoint or write-once slots, so results are bit-identical under
//! either policy and any pool width; only cross-batch interleaving (and
//! therefore latency) differs.

use crate::cancel::{CancelToken, Cancelled};
use crate::class::{
    current_job_class, set_current_class, ClassGuard, JobClass, SchedPolicy, CLASSES,
};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A type-erased unit of queued work.
///
/// Jobs are `'static` from the queue's point of view; [`Scope::spawn`]
/// is the only producer and guarantees (by joining before its borrows
/// end) that the erasure is sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Upper bound on items per [`Pool::for_each_init`] chunk. Large batches
/// therefore become *many* queued jobs rather than one job per worker,
/// giving the scheduler preemption points at chunk granularity: an
/// interactive job queued behind a million-cell batch starts within one
/// chunk's worth of work instead of after the whole batch.
const MAX_CHUNK_ITEMS: usize = 64;

/// The process-wide pool backing [`Pool::global`].
static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// Monotonic scope-identity source (process-wide, never reused).
static NEXT_SCOPE_ID: AtomicU64 = AtomicU64::new(1);

/// State shared between the pool handle and its workers.
struct Shared {
    queue: Mutex<QueueState>,
    /// Signalled when a job is pushed or shutdown begins.
    work_available: Condvar,
    /// Jobs currently executing (on workers or helping threads).
    /// Incremented under the queue lock at pop time so there is no
    /// window where a job is neither queued nor counted as running —
    /// [`Pool::wait_idle`] depends on that invariant.
    running: AtomicUsize,
}

/// The FIFO of one scope's queued jobs within a class ring.
struct ScopeQueue {
    scope: u64,
    jobs: VecDeque<Job>,
}

/// All queued work of one class: scope queues in rotation order.
#[derive(Default)]
struct ClassRing {
    scopes: VecDeque<ScopeQueue>,
}

impl ClassRing {
    fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    fn push(&mut self, scope: u64, job: Job) {
        if let Some(queue) = self.scopes.iter_mut().find(|q| q.scope == scope) {
            queue.jobs.push_back(job);
        } else {
            let mut jobs = VecDeque::new();
            jobs.push_back(job);
            self.scopes.push_back(ScopeQueue { scope, jobs });
        }
    }

    /// Pops the next job in rotation order: front scope's oldest job,
    /// then that scope moves to the back so same-class tenants
    /// interleave at job granularity.
    fn pop_rotating(&mut self) -> Option<Job> {
        let mut queue = self.scopes.pop_front()?;
        let job = queue.jobs.pop_front();
        debug_assert!(job.is_some(), "empty scope queues are removed eagerly");
        if !queue.jobs.is_empty() {
            self.scopes.push_back(queue);
        }
        job
    }

    /// Pops the oldest job of `scope`, if that scope has queued work.
    fn pop_scope(&mut self, scope: u64) -> Option<Job> {
        let idx = self.scopes.iter().position(|q| q.scope == scope)?;
        let job = self.scopes[idx].jobs.pop_front();
        if self.scopes[idx].jobs.is_empty() {
            self.scopes.remove(idx);
        }
        job
    }
}

struct QueueState {
    policy: SchedPolicy,
    /// The single queue used under [`SchedPolicy::Fifo`].
    fifo: VecDeque<Job>,
    /// Per-class scope rings used under [`SchedPolicy::FairShare`].
    rings: [ClassRing; JobClass::COUNT],
    /// Remaining weighted-round-robin credits per class; refilled from
    /// [`JobClass::weight`] when every class that has work is exhausted.
    credits: [u32; JobClass::COUNT],
    shutdown: bool,
}

impl QueueState {
    fn new(policy: SchedPolicy) -> Self {
        QueueState {
            policy,
            fifo: VecDeque::new(),
            rings: Default::default(),
            credits: CLASSES.map(JobClass::weight),
            shutdown: false,
        }
    }

    fn push(&mut self, class: JobClass, scope: u64, job: Job) {
        match self.policy {
            SchedPolicy::Fifo => self.fifo.push_back(job),
            SchedPolicy::FairShare => self.rings[class.index()].push(scope, job),
        }
    }

    /// The next job under the pool's policy; `None` when idle.
    ///
    /// Fair share: classes are served by weighted round-robin — a class
    /// with work and remaining credits is drained (highest-priority
    /// first); when every class with work has spent its credits, all
    /// credits refill from the weights. A class without queued work
    /// neither spends nor blocks credits, so a lone class drains at
    /// full speed.
    fn next_job(&mut self) -> Option<Job> {
        match self.policy {
            SchedPolicy::Fifo => self.fifo.pop_front(),
            SchedPolicy::FairShare => loop {
                let mut any_work = false;
                for class in CLASSES {
                    let i = class.index();
                    if self.rings[i].is_empty() {
                        continue;
                    }
                    any_work = true;
                    if self.credits[i] > 0 {
                        self.credits[i] -= 1;
                        return self.rings[i].pop_rotating();
                    }
                }
                if !any_work {
                    return None;
                }
                self.credits = CLASSES.map(JobClass::weight);
            },
        }
    }

    /// Jobs currently queued (all classes and scopes; excludes jobs
    /// already running on workers).
    fn len(&self) -> usize {
        self.fifo.len()
            + self
                .rings
                .iter()
                .flat_map(|ring| ring.scopes.iter())
                .map(|queue| queue.jobs.len())
                .sum::<usize>()
    }

    /// Like [`QueueState::next_job`] but serves `scope`'s own queued
    /// jobs first (fair share only; a FIFO pool keeps strict order, so
    /// a helping thread there takes whatever is at the head — that
    /// conscription is exactly the baseline behavior the fairness
    /// benchmark measures). Own-scope pops don't spend class credits:
    /// the helper burns its own blocked thread, not shared capacity.
    fn next_job_preferring(&mut self, scope: u64) -> Option<Job> {
        if self.policy == SchedPolicy::FairShare {
            for ring in &mut self.rings {
                if let Some(job) = ring.pop_scope(scope) {
                    return Some(job);
                }
            }
        }
        self.next_job()
    }
}

impl Shared {
    fn push(&self, class: JobClass, scope: u64, job: Job) {
        let mut state = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        state.push(class, scope, job);
        drop(state);
        self.work_available.notify_one();
    }

    fn try_pop_preferring(&self, scope: u64) -> Option<Job> {
        let mut state = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let job = state.next_job_preferring(scope);
        if job.is_some() {
            self.running.fetch_add(1, Ordering::Release);
        }
        job
    }

    /// Marks one popped job finished (pops count it as running).
    fn job_done(&self) {
        self.running.fetch_sub(1, Ordering::Release);
    }

    /// Blocking pop for workers; `None` means shutdown.
    fn pop(&self) -> Option<Job> {
        let mut state = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.next_job() {
                self.running.fetch_add(1, Ordering::Release);
                return Some(job);
            }
            if state.shutdown {
                return None;
            }
            state = self
                .work_available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A persistent pool of worker threads.
///
/// Construct a sized pool with [`Pool::new`] / [`Pool::with_policy`]
/// (tests, benchmarks) or use the lazily initialized process-wide
/// [`Pool::global`]. Owned pools shut their workers down on drop; the
/// global pool lives for the whole process.
pub struct Pool {
    shared: Arc<Shared>,
    threads: usize,
    policy: SchedPolicy,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool with exactly `threads` workers (clamped to ≥ 1)
    /// and the default [`SchedPolicy::FairShare`] scheduler.
    pub fn new(threads: usize) -> Self {
        Pool::with_policy(threads, SchedPolicy::default())
    }

    /// Spawns a pool with exactly `threads` workers (clamped to ≥ 1)
    /// draining its queue under `policy`.
    pub fn with_policy(threads: usize, policy: SchedPolicy) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState::new(policy)),
            work_available: Condvar::new(),
            running: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fedval-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = shared.pop() {
                            // Jobs are panic-wrapped (and class-tagged)
                            // by `Scope::spawn`; nothing to do here.
                            job();
                            shared.job_done();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            threads,
            policy,
            workers,
        }
    }

    /// The process-wide pool, created on first use.
    ///
    /// Its size is the `FEDVAL_THREADS` environment variable when that
    /// parses as a single positive integer (comma-separated lists — the
    /// `oracle_throughput` benchmark's sweep syntax — are ignored here),
    /// otherwise the hardware parallelism. Its policy is `FEDVAL_SCHED`
    /// (`fair` / `fifo`) when set and valid, otherwise fair share.
    pub fn global() -> &'static Pool {
        GLOBAL.get_or_init(|| {
            Pool::with_policy(
                global_threads(),
                SchedPolicy::from_env().unwrap_or_default(),
            )
        })
    }

    /// The width [`Pool::global`] has — or will have when first used —
    /// *without* forcing its construction, so purely-serial workloads
    /// that only consult the width never spawn the worker threads.
    pub fn global_width() -> usize {
        match GLOBAL.get() {
            Some(pool) => pool.threads(),
            None => global_threads(),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of jobs currently waiting in the queue (excluding jobs
    /// already running on workers) — a load signal for benchmarks and
    /// service back-pressure, racy by nature.
    pub fn queued_jobs(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// The scheduling policy this pool drains its queue under.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Whether the pool has neither queued nor executing jobs right
    /// now. Racy by nature (new work may arrive immediately after), so
    /// only meaningful once submission has stopped — the graceful
    /// shutdown path.
    pub fn is_idle(&self) -> bool {
        // A job moves queue → running under the queue lock (the pop
        // increments `running` before releasing it), so with submission
        // stopped a job in flight is visible to one of the two reads.
        self.queued_jobs() == 0 && self.shared.running.load(Ordering::Acquire) == 0
    }

    /// Blocks until the pool is idle (see [`Pool::is_idle`]) or
    /// `timeout` elapses; returns whether it drained. A polling wait —
    /// it costs nothing during normal operation and the shutdown path
    /// is the only caller.
    pub fn wait_idle(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.is_idle() {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    /// Runs `f` with a [`Scope`] on which borrowed closures can be
    /// spawned; joins every spawn (running queued jobs on this thread
    /// while waiting) before returning. Panics from spawned jobs are
    /// propagated here, after all sibling jobs have finished.
    ///
    /// The scope is tagged with the calling thread's current
    /// [`JobClass`] and a fresh scope identity: under fair-share
    /// scheduling its jobs queue separately from other scopes', and
    /// while this thread waits it drains *this* scope's jobs before
    /// helping anyone else — so nested scopes spawned from inside pool
    /// jobs make progress on their own work instead of being conscripted
    /// into unrelated backlogs.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let scope = Scope {
            pool: self,
            tracker: Arc::new(Tracker::default()),
            id: NEXT_SCOPE_ID.fetch_add(1, Ordering::Relaxed),
            class: current_job_class(),
            _env: std::marker::PhantomData,
        };
        // Join even when `f` itself panics: spawned jobs still borrow
        // the caller's stack and must finish before we unwind past it.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait(&scope.tracker, scope.id);
        let job_panic = scope.tracker.take_panic();
        match (result, job_panic) {
            (Err(payload), _) => resume_unwind(payload),
            (_, Some(payload)) => resume_unwind(payload),
            (Ok(value), None) => value,
        }
    }

    /// The chunked batch primitive: splits `items` into contiguous
    /// chunks of at most `len / max_workers` (rounded up) and at most
    /// `MAX_CHUNK_ITEMS` (64) items, runs each chunk as one pool job that
    /// calls `init()` once (per-chunk scratch state) and then
    /// `work(&mut scratch, item)` per item, and joins the batch.
    ///
    /// `cancel` is observed before every item; once cancelled, the
    /// not-yet-started remainder of every chunk is abandoned and the
    /// call returns [`Cancelled`]. Items must write their results into
    /// slots they own or that are write-once — under that contract the
    /// outcome is bit-identical for every `max_workers` and either
    /// [`SchedPolicy`], including the inline `max_workers == 1` fast
    /// path.
    pub fn for_each_init<T, S>(
        &self,
        items: Vec<T>,
        max_workers: usize,
        init: impl Fn() -> S + Sync,
        work: impl Fn(&mut S, T) + Sync,
        cancel: Option<&CancelToken>,
    ) -> Result<(), Cancelled>
    where
        T: Send,
    {
        let check = |c: Option<&CancelToken>| c.map_or(Ok(()), CancelToken::check);
        check(cancel)?;
        if items.is_empty() {
            return Ok(());
        }
        let workers = max_workers.min(items.len()).max(1);
        if workers == 1 {
            let mut scratch = init();
            for item in items {
                check(cancel)?;
                work(&mut scratch, item);
            }
            // Trailing check, matching the parallel path below: a token
            // cancelled during the final item reports Cancelled for
            // every pool size.
            return check(cancel);
        }
        let chunk_len = items.len().div_ceil(workers).min(MAX_CHUNK_ITEMS);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(items.len().div_ceil(chunk_len));
        let mut items = items.into_iter();
        loop {
            let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        self.scope(|scope| {
            for chunk in chunks {
                let init = &init;
                let work = &work;
                scope.spawn(move || {
                    let mut scratch = init();
                    for item in chunk {
                        if cancel.is_some_and(CancelToken::is_cancelled) {
                            break;
                        }
                        work(&mut scratch, item);
                    }
                });
            }
        });
        check(cancel)
    }

    /// Waits for `tracker` to reach zero pending jobs, running queued
    /// jobs on the calling thread while any are available — preferring
    /// jobs of scope `scope_id` (its own batch) over other tenants'.
    fn wait(&self, tracker: &Tracker, scope_id: u64) {
        loop {
            if tracker.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if let Some(job) = self.shared.try_pop_preferring(scope_id) {
                job();
                self.shared.job_done();
                continue;
            }
            // Queue empty, jobs still in flight on workers: block until
            // the tracker signals completion. No new jobs for this
            // tracker can appear (only this thread spawns into it).
            let mut done = tracker.done.lock().unwrap_or_else(|e| e.into_inner());
            while tracker.pending.load(Ordering::Acquire) != 0 {
                done = tracker
                    .completed
                    .wait(done)
                    .unwrap_or_else(|e| e.into_inner());
            }
            return;
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.shutdown = true;
        }
        self.shared.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Per-batch bookkeeping: pending-job count, completion signal, and the
/// first panic payload (re-raised by [`Pool::scope`]).
#[derive(Default)]
struct Tracker {
    pending: AtomicUsize,
    done: Mutex<()>,
    completed: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Tracker {
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        if let Some(payload) = panic {
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(payload);
        }
        // Hold the completion lock across the decrement so a waiter
        // cannot observe pending != 0, miss this notify, and sleep.
        let guard = self.done.lock().unwrap_or_else(|e| e.into_inner());
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.completed.notify_all();
        }
        drop(guard);
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

/// A batch scope tied to a [`Pool`]; created by [`Pool::scope`].
///
/// The `'env` lifetime plays the same role as in `std::thread::scope`:
/// spawned closures may borrow anything that outlives the `scope` call.
pub struct Scope<'pool, 'env> {
    pool: &'pool Pool,
    tracker: Arc<Tracker>,
    /// Queue identity: jobs spawned here share one per-scope FIFO under
    /// fair-share scheduling, and the waiting thread prefers this id.
    id: u64,
    /// Priority class inherited from the submitting thread.
    class: JobClass,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Queues `job` on the pool, tagged with this scope's identity and
    /// [`JobClass`]. The closure may borrow from `'env`; the enclosing
    /// [`Pool::scope`] call joins it before those borrows end. A
    /// panicking job is recorded and re-raised by `scope` after the
    /// whole batch has drained. Whichever thread runs the job adopts
    /// this scope's class for its duration, so nested submissions made
    /// by the job inherit the tenant's class.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'env) {
        self.tracker.pending.fetch_add(1, Ordering::AcqRel);
        let tracker = Arc::clone(&self.tracker);
        let class = self.class;
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let _restore = ClassGuard(set_current_class(class));
            let outcome = catch_unwind(AssertUnwindSafe(job));
            tracker.complete(outcome.err());
        });
        // SAFETY: the job borrows at most `'env` data. `Pool::scope`
        // always waits for the tracker to drain — on success *and* on
        // unwind — before returning, so the closure finishes (on a
        // worker or on the waiting thread itself) strictly before any
        // `'env` borrow can expire. Erasing the lifetime only changes
        // what the queue's type says, not when the job actually runs.
        let erased: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                wrapped,
            )
        };
        self.pool.shared.push(class, self.id, erased);
    }

    /// Number of worker threads in the owning pool (chunking hint).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The [`JobClass`] this scope's jobs are queued under.
    pub fn class(&self) -> JobClass {
        self.class
    }
}

/// Which pool a component submits to: the process-wide singleton or an
/// owned instance (tests pin sizes with owned pools without perturbing
/// the global one).
#[derive(Clone, Default)]
pub enum PoolHandle {
    /// Use [`Pool::global`].
    #[default]
    Global,
    /// Use a shared owned pool.
    Owned(Arc<Pool>),
}

impl PoolHandle {
    /// Wraps an owned pool.
    pub fn owned(pool: Pool) -> Self {
        PoolHandle::Owned(Arc::new(pool))
    }

    /// The pool this handle designates.
    pub fn get(&self) -> &Pool {
        match self {
            PoolHandle::Global => Pool::global(),
            PoolHandle::Owned(pool) => pool,
        }
    }

    /// Worker-thread count of the designated pool. For
    /// [`PoolHandle::Global`] this does not force pool construction
    /// (see [`Pool::global_width`]).
    pub fn threads(&self) -> usize {
        match self {
            PoolHandle::Global => Pool::global_width(),
            PoolHandle::Owned(pool) => pool.threads(),
        }
    }
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolHandle::Global => write!(f, "PoolHandle::Global({} threads)", self.threads()),
            PoolHandle::Owned(p) => write!(f, "PoolHandle::Owned({} threads)", p.threads()),
        }
    }
}

/// Size of [`Pool::global`]: `FEDVAL_THREADS` when it is a single
/// positive integer, else the hardware parallelism. A set-but-invalid
/// value logs one warning and degrades to the hardware default — a bad
/// env var must never take the process down.
fn global_threads() -> usize {
    if let Ok(spec) = std::env::var("FEDVAL_THREADS") {
        match spec.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "fedval_runtime: FEDVAL_THREADS={spec:?} is not a positive thread \
                         count; using the hardware parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::with_job_class;
    use std::collections::HashSet;
    use std::thread::ThreadId;

    #[test]
    fn scope_runs_every_spawn_and_joins() {
        let pool = Pool::new(3);
        let counter = AtomicU64::new(0);
        pool.scope(|scope| {
            for _ in 0..100 {
                let counter = &counter;
                scope.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_spawns_may_borrow_locals() {
        let pool = Pool::new(2);
        let input = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut output = vec![0u64; input.len()];
        pool.scope(|scope| {
            for (out, chunk) in output.chunks_mut(2).zip(input.chunks(2)) {
                scope.spawn(move || {
                    for (o, i) in out.iter_mut().zip(chunk) {
                        *o = i * 10;
                    }
                });
            }
        });
        assert_eq!(output, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn wait_idle_observes_drain() {
        let pool = Pool::new(2);
        assert!(pool.is_idle(), "fresh pool is idle");
        let gate = Arc::new(AtomicU64::new(0));
        pool.scope(|scope| {
            for _ in 0..8 {
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    while gate.load(Ordering::Acquire) == 0 {
                        std::thread::yield_now();
                    }
                });
            }
            assert!(
                !pool.wait_idle(std::time::Duration::from_millis(20)),
                "gated jobs keep the pool busy"
            );
            gate.store(1, Ordering::Release);
        });
        assert!(pool.wait_idle(std::time::Duration::from_secs(10)));
    }

    #[test]
    fn workers_are_reused_across_batches() {
        let pool = Pool::new(2);
        let ids = Mutex::new(HashSet::<ThreadId>::new());
        let caller = std::thread::current().id();
        for _ in 0..50 {
            pool.scope(|scope| {
                for _ in 0..4 {
                    let ids = &ids;
                    scope.spawn(move || {
                        ids.lock().unwrap().insert(std::thread::current().id());
                    });
                }
            });
        }
        // 200 jobs ran on at most the 2 workers plus the helping caller:
        // the pool persists; nothing was respawned per batch.
        let ids = ids.into_inner().unwrap();
        let worker_ids: Vec<_> = ids.iter().filter(|&&id| id != caller).collect();
        assert!(
            worker_ids.len() <= 2,
            "expected at most 2 distinct worker threads, saw {}",
            worker_ids.len()
        );
    }

    #[test]
    fn panics_propagate_after_the_batch_drains() {
        let pool = Pool::new(2);
        let finished = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("boom"));
                for _ in 0..10 {
                    let finished = &finished;
                    scope.spawn(move || {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "job panic must surface from scope()");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            10,
            "sibling jobs still ran to completion"
        );
        // The pool survives a panicked batch.
        let ok = AtomicU64::new(0);
        pool.scope(|scope| {
            let ok = &ok;
            scope.spawn(move || {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn for_each_init_places_results_deterministically() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&i| (i as u64) * 3 + 1).collect();
        for workers in [1, 2, 4, 7] {
            for policy in [SchedPolicy::FairShare, SchedPolicy::Fifo] {
                let pool = Pool::with_policy(workers, policy);
                let out: Vec<OnceLock<u64>> = (0..items.len()).map(|_| OnceLock::new()).collect();
                let inits = AtomicU64::new(0);
                pool.for_each_init(
                    items.clone(),
                    workers,
                    || inits.fetch_add(1, Ordering::Relaxed),
                    |_, i| {
                        out[i].set((i as u64) * 3 + 1).unwrap();
                    },
                    None,
                )
                .unwrap();
                let got: Vec<u64> = out.iter().map(|c| *c.get().unwrap()).collect();
                assert_eq!(got, expect, "workers={workers} policy={policy}");
                // Scratch is initialized once per chunk: chunks are
                // sized len/workers rounded up, capped at
                // MAX_CHUNK_ITEMS.
                let chunk_len = items.len().div_ceil(workers).min(MAX_CHUNK_ITEMS);
                let max_chunks = items.len().div_ceil(chunk_len) as u64;
                assert!(
                    inits.load(Ordering::Relaxed) <= max_chunks,
                    "scratch initialized once per chunk at most (workers={workers})"
                );
            }
        }
    }

    #[test]
    fn large_batches_are_split_into_bounded_chunks() {
        // 1000 items on 2 workers must become many small jobs (the
        // scheduler's preemption points), not 2 jobs of 500.
        let pool = Pool::new(2);
        let inits = AtomicU64::new(0);
        pool.for_each_init(
            vec![(); 1000],
            2,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, _| {},
            None,
        )
        .unwrap();
        let chunks = inits.load(Ordering::Relaxed);
        assert!(
            chunks >= (1000 / MAX_CHUNK_ITEMS) as u64,
            "expected >= {} chunks, saw {chunks}",
            1000 / MAX_CHUNK_ITEMS
        );
    }

    #[test]
    fn for_each_init_observes_cancellation() {
        let pool = Pool::new(2);
        // Pre-cancelled: nothing runs at all.
        let token = CancelToken::new();
        token.cancel();
        let ran = AtomicU64::new(0);
        let err = pool.for_each_init(
            vec![(); 64],
            2,
            || (),
            |_, _| {
                ran.fetch_add(1, Ordering::Relaxed);
            },
            Some(&token),
        );
        assert_eq!(err, Err(Cancelled));
        assert_eq!(ran.load(Ordering::Relaxed), 0);

        // Cancelled mid-batch: the remainder is abandoned.
        let token = CancelToken::new();
        let ran = AtomicU64::new(0);
        let cancel_after = 5u64;
        let err = pool.for_each_init(
            vec![(); 10_000],
            1, // inline path: deterministic item order
            || (),
            |_, _| {
                if ran.fetch_add(1, Ordering::Relaxed) + 1 == cancel_after {
                    token.cancel();
                }
            },
            Some(&token),
        );
        assert_eq!(err, Err(Cancelled));
        assert_eq!(ran.load(Ordering::Relaxed), cancel_after);
    }

    #[test]
    fn single_worker_pool_does_not_deadlock_when_caller_waits() {
        // The caller helps drain the queue, so even a 1-worker pool
        // processes a batch wider than itself.
        let pool = Pool::new(1);
        let counter = AtomicU64::new(0);
        pool.scope(|scope| {
            for _ in 0..32 {
                let counter = &counter;
                scope.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        // Width is observable before construction and consistent after.
        let width = Pool::global_width();
        assert!(width >= 1);
        let a = Pool::global() as *const Pool;
        let b = Pool::global() as *const Pool;
        assert_eq!(a, b);
        assert_eq!(Pool::global().threads(), width);
        assert_eq!(Pool::global_width(), width);
        assert_eq!(PoolHandle::Global.get() as *const Pool, a);
        assert_eq!(PoolHandle::Global.threads(), width);
    }

    #[test]
    fn concurrent_scopes_share_one_pool() {
        let pool = Arc::new(Pool::new(2));
        let total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        pool.scope(|scope| {
                            for _ in 0..8 {
                                let total = &total;
                                scope.spawn(move || {
                                    total.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 20 * 8);
    }

    #[test]
    fn scope_inherits_thread_job_class() {
        let pool = Pool::new(1);
        pool.scope(|scope| {
            assert_eq!(scope.class(), JobClass::Batch);
        });
        with_job_class(JobClass::Interactive, || {
            pool.scope(|scope| {
                assert_eq!(scope.class(), JobClass::Interactive);
            });
        });
    }

    #[test]
    fn jobs_run_under_their_scope_class() {
        // A job spawned from an interactive scope must see Interactive
        // as the current class on whatever thread runs it — that is the
        // inheritance path for nested submissions.
        let pool = Pool::new(2);
        let seen = Mutex::new(Vec::new());
        with_job_class(JobClass::Interactive, || {
            pool.scope(|scope| {
                for _ in 0..8 {
                    let seen = &seen;
                    scope.spawn(move || {
                        seen.lock().unwrap().push(current_job_class());
                    });
                }
            });
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 8);
        assert!(seen.iter().all(|&c| c == JobClass::Interactive));
    }

    // --- direct QueueState scheduler tests (deterministic, no threads) ---

    /// Queues a job that records `tag` into `log` when run.
    fn tag_job(log: &Arc<Mutex<Vec<&'static str>>>, tag: &'static str) -> Job {
        let log = Arc::clone(log);
        Box::new(move || log.lock().unwrap().push(tag))
    }

    fn drain(state: &mut QueueState) {
        while let Some(job) = state.next_job() {
            job();
        }
    }

    #[test]
    fn fifo_policy_preserves_submission_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut q = QueueState::new(SchedPolicy::Fifo);
        q.push(JobClass::Batch, 1, tag_job(&log, "b1"));
        q.push(JobClass::Interactive, 2, tag_job(&log, "i1"));
        q.push(JobClass::Batch, 1, tag_job(&log, "b2"));
        q.push(JobClass::Interactive, 2, tag_job(&log, "i2"));
        drain(&mut q);
        // Strict submission order: class and scope are ignored.
        assert_eq!(*log.lock().unwrap(), vec!["b1", "i1", "b2", "i2"]);
    }

    #[test]
    fn fair_share_drains_classes_by_weight() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut q = QueueState::new(SchedPolicy::FairShare);
        for _ in 0..6 {
            q.push(JobClass::Batch, 1, tag_job(&log, "b"));
        }
        for _ in 0..6 {
            q.push(JobClass::Interactive, 2, tag_job(&log, "i"));
        }
        drain(&mut q);
        // Weighted round-robin at 4:1, then the survivor drains solo.
        assert_eq!(
            *log.lock().unwrap(),
            vec!["i", "i", "i", "i", "b", "i", "i", "b", "b", "b", "b", "b"]
        );
    }

    #[test]
    fn fair_share_rotates_between_scopes_of_one_class() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut q = QueueState::new(SchedPolicy::FairShare);
        for tag in ["a1", "a2", "a3"] {
            q.push(JobClass::Batch, 1, tag_job(&log, tag));
        }
        for tag in ["b1", "b2", "b3"] {
            q.push(JobClass::Batch, 2, tag_job(&log, tag));
        }
        drain(&mut q);
        // Tenants of equal class interleave per job, each FIFO within
        // its own scope.
        assert_eq!(
            *log.lock().unwrap(),
            vec!["a1", "b1", "a2", "b2", "a3", "b3"]
        );
    }

    #[test]
    fn fair_share_helpers_prefer_their_own_scope() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut q = QueueState::new(SchedPolicy::FairShare);
        // An interactive tenant's jobs would win weighted round-robin…
        q.push(JobClass::Interactive, 9, tag_job(&log, "other"));
        q.push(JobClass::Batch, 1, tag_job(&log, "mine1"));
        q.push(JobClass::Batch, 1, tag_job(&log, "mine2"));
        // …but a thread waiting on scope 1 drains scope 1 first.
        for _ in 0..2 {
            q.next_job_preferring(1).expect("own-scope job")();
        }
        assert_eq!(*log.lock().unwrap(), vec!["mine1", "mine2"]);
        // With its own scope empty, it helps the remaining tenant.
        q.next_job_preferring(1).expect("fallback to other scopes")();
        assert_eq!(*log.lock().unwrap(), vec!["mine1", "mine2", "other"]);
        assert!(q.next_job().is_none());
    }

    #[test]
    fn fair_share_lone_class_drains_at_full_speed() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut q = QueueState::new(SchedPolicy::FairShare);
        // More jobs than the batch weight (1): credits must refill
        // without interactive work blocking the loop.
        for _ in 0..5 {
            q.push(JobClass::Batch, 1, tag_job(&log, "b"));
        }
        drain(&mut q);
        assert_eq!(log.lock().unwrap().len(), 5);
    }
}
