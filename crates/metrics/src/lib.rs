//! Evaluation metrics used by the ComFedSV experiments.
//!
//! * [`spearman`] — Spearman's rank correlation (paper Fig. 6, noisy-data
//!   detection against the ground-truth noise ranking).
//! * [`jaccard`] — Jaccard coefficient between client sets (paper Fig. 7,
//!   noisy-label detection).
//! * [`ecdf`] — empirical cumulative distribution functions (paper Fig. 5,
//!   fairness of `d_{0,9}`).
//! * [`detection`] — bad-client detection scores (rank-based ROC-AUC and
//!   precision@k) for the robustness harness.
//! * [`ranking`] — ranking helpers (bottom-k selection, rank assignment with
//!   tie handling).
//! * [`stats`] — summary statistics used across the harnesses.
//! * [`relative_difference`] — the paper's fairness statistic
//!   `d_{i,j} = |s_i − s_j| / max(s_i, s_j)` (equation (7)).

pub mod detection;
pub mod ecdf;
pub mod gini;
pub mod jaccard;
pub mod kendall;
pub mod ranking;
pub mod spearman;
pub mod stats;

pub use detection::{detection_auc, precision_at_k, DetectionError};
pub use ecdf::Ecdf;
pub use gini::gini_coefficient;
pub use jaccard::jaccard_index;
pub use kendall::kendall_tau;
pub use ranking::{bottom_k_indices, ranks_average_ties, top_k_indices};
pub use spearman::spearman_rho;
pub use stats::{mean, median, std_dev};

/// Relative difference between two valuations (paper equation (7)):
/// `d_{i,j} = |s_i − s_j| / max{s_i, s_j}`.
///
/// The paper applies this to the (positive) valuations of two clients with
/// identical data. When the plain max is not positive the paper's formula is
/// undefined; we fall back to dividing by `max(|s_i|, |s_j|)`, and define
/// `d = 0` when both values are exactly zero.
pub fn relative_difference(si: f64, sj: f64) -> f64 {
    let num = (si - sj).abs();
    if num == 0.0 {
        return 0.0;
    }
    let denom = si.max(sj);
    let denom = if denom > 0.0 {
        denom
    } else {
        si.abs().max(sj.abs())
    };
    (num / denom).clamp(0.0, f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_difference_of_equal_values_is_zero() {
        assert_eq!(relative_difference(2.0, 2.0), 0.0);
        assert_eq!(relative_difference(0.0, 0.0), 0.0);
    }

    #[test]
    fn relative_difference_matches_paper_formula() {
        // |3 - 1| / max(3, 1) = 2/3.
        assert!((relative_difference(3.0, 1.0) - 2.0 / 3.0).abs() < 1e-15);
        assert!((relative_difference(1.0, 3.0) - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn relative_difference_one_when_one_value_is_zero() {
        assert!((relative_difference(5.0, 0.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn relative_difference_handles_negative_values() {
        let d = relative_difference(-1.0, -3.0);
        assert!(d.is_finite());
        assert!(d > 0.0);
    }
}
