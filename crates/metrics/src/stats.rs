//! Summary statistics shared by the experiment harnesses.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n − 1 denominator); 0 for fewer than 2 points.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Median (average of middle two for even length); 0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Fraction of the sample for which `pred` holds — e.g. the paper's
/// "relative difference greater than 0.5 with probability 65%".
pub fn fraction_where(xs: &[f64], pred: impl Fn(f64) -> bool) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| pred(x)).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_hand_computed() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_hand_computed() {
        // Sample sd of [2, 4, 4, 4, 5, 5, 7, 9] is ~2.138.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.13809).abs() < 1e-4);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn fraction_where_counts_matches() {
        let xs = [0.1, 0.6, 0.7, 0.4];
        assert_eq!(fraction_where(&xs, |x| x > 0.5), 0.5);
        assert_eq!(fraction_where(&[], |_| true), 0.0);
    }
}
