//! Spearman's rank correlation coefficient.
//!
//! Used by the noisy-data detection experiment (paper Fig. 6): the true
//! noise ordering of the clients is compared to the ordering induced by
//! each valuation metric.

use crate::ranking::ranks_average_ties;

/// Spearman's ρ between two paired samples (tie-aware: computed as the
/// Pearson correlation of average-tie ranks).
///
/// Returns `None` when the inputs have different lengths, fewer than two
/// points, or zero rank variance (e.g. constant input).
///
/// ```
/// use fedval_metrics::spearman_rho;
/// let quality = [3.0, 2.0, 1.0];
/// let valuation = [30.0, 7.0, 0.5]; // same ordering, different scale
/// assert!((spearman_rho(&quality, &valuation).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn spearman_rho(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let ra = ranks_average_ties(a);
    let rb = ranks_average_ties(b);
    pearson(&ra, &rb)
}

fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn identical_orderings_give_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!(approx(spearman_rho(&a, &b).unwrap(), 1.0));
    }

    #[test]
    fn reversed_orderings_give_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!(approx(spearman_rho(&a, &b).unwrap(), -1.0));
    }

    #[test]
    fn monotone_transform_does_not_change_rho() {
        let a = [0.1_f64, 0.5, 0.9, 2.0, 7.0];
        let b: Vec<f64> = a.iter().map(|&x| x.exp()).collect();
        assert!(approx(spearman_rho(&a, &b).unwrap(), 1.0));
    }

    #[test]
    fn known_value_with_one_swap() {
        // Permutation [1,2,4,3] of [1,2,3,4]: rho = 1 - 6*2/(4*15) = 0.8.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 2.0, 4.0, 3.0];
        assert!(approx(spearman_rho(&a, &b).unwrap(), 0.8));
    }

    #[test]
    fn constant_input_gives_none() {
        assert!(spearman_rho(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn mismatched_lengths_give_none() {
        assert!(spearman_rho(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn too_short_gives_none() {
        assert!(spearman_rho(&[1.0], &[1.0]).is_none());
    }

    #[test]
    fn rho_is_symmetric() {
        let a = [3.0, 1.0, 4.0, 1.5, 9.0];
        let b = [2.0, 7.0, 1.0, 8.0, 2.5];
        assert!(approx(
            spearman_rho(&a, &b).unwrap(),
            spearman_rho(&b, &a).unwrap()
        ));
    }

    #[test]
    fn rho_in_minus_one_one_range() {
        let a = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0];
        let b = [2.0, 1.0, 9.0, 4.0, 6.0, 5.0];
        let r = spearman_rho(&a, &b).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }
}
