//! Kendall's τ rank correlation (τ-b, tie-corrected).
//!
//! A second rank-agreement statistic alongside Spearman's ρ; the ablation
//! harnesses report both, since τ is less sensitive to single large rank
//! displacements.

/// Kendall's τ-b between two paired samples.
///
/// Returns `None` for mismatched lengths, fewer than two points, or when
/// either sample is constant (the denominator vanishes).
pub fn kendall_tau(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let ta = da == 0.0;
            let tb = db == 0.0;
            match (ta, tb) {
                (true, true) => {}
                (true, false) => ties_a += 1,
                (false, true) => ties_b += 1,
                (false, false) => {
                    if (da > 0.0) == (db > 0.0) {
                        concordant += 1;
                    } else {
                        discordant += 1;
                    }
                }
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom_a = n0 - count_tied_pairs(a);
    let denom_b = n0 - count_tied_pairs(b);
    if denom_a == 0 || denom_b == 0 {
        return None;
    }
    let _ = (ties_a, ties_b);
    Some((concordant - discordant) as f64 / ((denom_a as f64) * (denom_b as f64)).sqrt())
}

fn count_tied_pairs(xs: &[f64]) -> i64 {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let mut pairs = 0i64;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let run = (j - i + 1) as i64;
        pairs += run * (run - 1) / 2;
        i = j + 1;
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn identical_orderings_give_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!(approx(kendall_tau(&a, &b).unwrap(), 1.0));
    }

    #[test]
    fn reversed_orderings_give_minus_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!(approx(kendall_tau(&a, &b).unwrap(), -1.0));
    }

    #[test]
    fn one_swap_known_value() {
        // [1,2,3,4] vs [1,2,4,3]: 5 concordant, 1 discordant, tau = 4/6.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 2.0, 4.0, 3.0];
        assert!(approx(kendall_tau(&a, &b).unwrap(), 4.0 / 6.0));
    }

    #[test]
    fn ties_are_corrected() {
        // b has a tie; tau-b uses the tie-corrected denominator.
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0];
        // concordant pairs: (0,2), (1,2) = 2; tied-in-b: (0,1).
        // n0 = 3, denom_a = 3, denom_b = 3 - 1 = 2: tau = 2/sqrt(6).
        assert!(approx(kendall_tau(&a, &b).unwrap(), 2.0 / 6.0_f64.sqrt()));
    }

    #[test]
    fn constant_sample_gives_none() {
        assert!(kendall_tau(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn mismatched_or_short_gives_none() {
        assert!(kendall_tau(&[1.0], &[1.0]).is_none());
        assert!(kendall_tau(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn symmetric() {
        let a = [3.0, 1.0, 2.0, 5.0];
        let b = [2.0, 4.0, 1.0, 3.0];
        assert!(approx(
            kendall_tau(&a, &b).unwrap(),
            kendall_tau(&b, &a).unwrap()
        ));
    }

    #[test]
    fn bounded() {
        let a = [1.0, 5.0, 3.0, 2.0, 4.0];
        let b = [5.0, 1.0, 4.0, 2.0, 3.0];
        let t = kendall_tau(&a, &b).unwrap();
        assert!((-1.0..=1.0).contains(&t));
    }
}
