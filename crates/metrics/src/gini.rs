//! Gini coefficient of a payout vector.
//!
//! Used by the reward-allocation ablation: how concentrated are the
//! rewards implied by a valuation? 0 = perfectly equal, → 1 = one client
//! takes everything.

/// Gini coefficient of non-negative values. Negative inputs are clamped to
/// zero (valuations can be negative; payouts are not). Returns `None` for
/// an empty slice or an all-zero total.
pub fn gini_coefficient(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.iter().map(|&x| x.max(0.0)).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len() as f64;
    let total: f64 = v.iter().sum();
    if total <= 0.0 {
        return None;
    }
    // G = (2 Σ_i i·x_(i) / (n Σ x)) − (n+1)/n with 1-based i over the
    // ascending sort.
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    Some((2.0 * weighted / (n * total) - (n + 1.0) / n).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn equal_values_give_zero() {
        assert!(approx(
            gini_coefficient(&[2.0, 2.0, 2.0, 2.0]).unwrap(),
            0.0
        ));
    }

    #[test]
    fn single_winner_approaches_one() {
        let g = gini_coefficient(&[0.0, 0.0, 0.0, 10.0]).unwrap();
        // For n = 4, max Gini = (n-1)/n = 0.75.
        assert!(approx(g, 0.75));
    }

    #[test]
    fn known_two_value_case() {
        // [1, 3]: G = (2*(1*1 + 2*3)/(2*4)) - 3/2 = 14/8 - 12/8 = 0.25.
        assert!(approx(gini_coefficient(&[1.0, 3.0]).unwrap(), 0.25));
    }

    #[test]
    fn negative_values_clamped() {
        let g = gini_coefficient(&[-5.0, 1.0, 1.0]).unwrap();
        // Equivalent to [0, 1, 1]: G = (2*(2+3)/(3*2)) - 4/3 = 1/3.
        assert!(approx(g, 1.0 / 3.0));
    }

    #[test]
    fn empty_or_zero_gives_none() {
        assert!(gini_coefficient(&[]).is_none());
        assert!(gini_coefficient(&[0.0, 0.0]).is_none());
        assert!(gini_coefficient(&[-1.0, -2.0]).is_none());
    }

    #[test]
    fn order_invariant() {
        let a = gini_coefficient(&[1.0, 2.0, 3.0]).unwrap();
        let b = gini_coefficient(&[3.0, 1.0, 2.0]).unwrap();
        assert!(approx(a, b));
    }

    #[test]
    fn bounded_in_unit_interval() {
        let g = gini_coefficient(&[0.1, 0.9, 2.5, 7.0, 0.0]).unwrap();
        assert!((0.0..=1.0).contains(&g));
    }
}
