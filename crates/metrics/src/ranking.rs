//! Ranking helpers: rank assignment with average-tie handling and
//! top-/bottom-k selection used by the detection experiments.

/// Assigns fractional ranks (1-based) to `values`, averaging tied groups.
///
/// The smallest value receives rank 1. This is the standard convention for
/// Spearman correlation with ties.
pub fn ranks_average_ties(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j hold equal values: average rank (1-based).
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Indices of the `k` smallest values (ties broken by index for
/// determinism). Used for "the 10 clients with the lowest evaluations".
pub fn bottom_k_indices(values: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.truncate(k.min(values.len()));
    order
}

/// Indices of the `k` largest values (ties broken by index).
pub fn top_k_indices(values: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.truncate(k.min(values.len()));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_simple_ascending() {
        assert_eq!(ranks_average_ties(&[10.0, 20.0, 30.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ranks_with_ties_are_averaged() {
        // values: [1, 2, 2, 3] -> ranks [1, 2.5, 2.5, 4]
        assert_eq!(
            ranks_average_ties(&[1.0, 2.0, 2.0, 3.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
    }

    #[test]
    fn ranks_all_equal() {
        let r = ranks_average_ties(&[5.0; 4]);
        assert!(r.iter().all(|&x| (x - 2.5).abs() < 1e-15));
    }

    #[test]
    fn ranks_empty_input() {
        assert!(ranks_average_ties(&[]).is_empty());
    }

    #[test]
    fn bottom_k_picks_smallest() {
        assert_eq!(bottom_k_indices(&[3.0, 1.0, 2.0, 0.5], 2), vec![3, 1]);
    }

    #[test]
    fn bottom_k_tie_breaks_by_index() {
        assert_eq!(bottom_k_indices(&[1.0, 1.0, 1.0], 2), vec![0, 1]);
    }

    #[test]
    fn bottom_k_clamps_to_length() {
        assert_eq!(bottom_k_indices(&[2.0, 1.0], 10), vec![1, 0]);
    }

    #[test]
    fn top_k_picks_largest() {
        assert_eq!(top_k_indices(&[3.0, 1.0, 2.0], 2), vec![0, 2]);
    }

    #[test]
    fn top_and_bottom_are_disjoint_when_possible() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let top: std::collections::HashSet<_> = top_k_indices(&v, 3).into_iter().collect();
        let bot: std::collections::HashSet<_> = bottom_k_indices(&v, 3).into_iter().collect();
        assert!(top.is_disjoint(&bot));
    }
}
