//! Bad-client detection metrics: rank-based ROC-AUC and precision@k.
//!
//! The robustness harness scores a valuation by how well it *separates*
//! injected bad clients (free riders, noisy-label clients, stragglers,
//! churners) from honest ones: a good valuation puts every bad client
//! below every honest client. [`detection_auc`] is the Mann–Whitney
//! formulation of the ROC-AUC for that ranking task (1.0 = perfect
//! separation, 0.5 = chance, 0.0 = perfectly inverted);
//! [`precision_at_k`] is the fraction of the `k` lowest-valued clients
//! that are truly bad.
//!
//! Both reject malformed inputs with a typed [`DetectionError`] instead
//! of degrading to a misleading number: non-finite valuations (a NaN
//! would silently compare as a tie), mismatched lengths, and — for the
//! AUC — degenerate label sets with no positives or no negatives, where
//! the statistic is undefined.

use crate::ranking::{bottom_k_indices, ranks_average_ties};
use std::fmt;

/// Why a detection metric could not be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionError {
    /// `values` and `bad` disagree in length.
    LengthMismatch {
        /// Number of valuations supplied.
        values: usize,
        /// Number of ground-truth labels supplied.
        labels: usize,
    },
    /// A valuation is NaN or infinite; ranking it would be meaningless.
    NotFinite {
        /// Index of the first offending value.
        index: usize,
    },
    /// All clients share one label, so separation is undefined.
    Degenerate {
        /// Number of bad clients.
        bad: usize,
        /// Number of good clients.
        good: usize,
    },
    /// `k` is zero or exceeds the client count.
    InvalidK {
        /// Requested cut-off.
        k: usize,
        /// Number of clients.
        clients: usize,
    },
}

impl fmt::Display for DetectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DetectionError::LengthMismatch { values, labels } => {
                write!(f, "{values} valuations but {labels} ground-truth labels")
            }
            DetectionError::NotFinite { index } => {
                write!(f, "valuation at index {index} is not finite")
            }
            DetectionError::Degenerate { bad, good } => write!(
                f,
                "detection is undefined with {bad} bad and {good} good clients"
            ),
            DetectionError::InvalidK { k, clients } => {
                write!(f, "k = {k} is not in 1..={clients}")
            }
        }
    }
}

impl std::error::Error for DetectionError {}

fn validate(values: &[f64], bad: &[bool]) -> Result<(), DetectionError> {
    if values.len() != bad.len() {
        return Err(DetectionError::LengthMismatch {
            values: values.len(),
            labels: bad.len(),
        });
    }
    if let Some(index) = values.iter().position(|v| !v.is_finite()) {
        return Err(DetectionError::NotFinite { index });
    }
    Ok(())
}

/// Rank-based ROC-AUC for "bad clients should be valued *lower*":
/// the probability that a uniformly drawn (bad, good) pair is ordered
/// `value[bad] < value[good]`, with ties counting one half
/// (the Mann–Whitney U statistic over average ranks).
///
/// Errors on length mismatch, non-finite valuations, and degenerate
/// label sets (no bad clients, or no good ones) — never a silent 0.5.
pub fn detection_auc(values: &[f64], bad: &[bool]) -> Result<f64, DetectionError> {
    validate(values, bad)?;
    let n_bad = bad.iter().filter(|&&b| b).count();
    let n_good = bad.len() - n_bad;
    if n_bad == 0 || n_good == 0 {
        return Err(DetectionError::Degenerate {
            bad: n_bad,
            good: n_good,
        });
    }
    let ranks = ranks_average_ties(values);
    let rank_sum_bad: f64 = ranks
        .iter()
        .zip(bad)
        .filter(|&(_, &b)| b)
        .map(|(r, _)| r)
        .sum();
    // U counts (bad > good) pairs, ties as one half; the detection AUC
    // is its complement.
    let u = rank_sum_bad - (n_bad * (n_bad + 1)) as f64 / 2.0;
    Ok(1.0 - u / (n_bad * n_good) as f64)
}

/// Fraction of the `k` lowest-valued clients that are truly bad (ties
/// broken by client index, matching [`bottom_k_indices`]). The natural
/// `k` is the number of injected bad clients, making this the paper's
/// Fig.-7-style "flag the bottom k" detection rate.
///
/// Errors on length mismatch, non-finite valuations, `k == 0`, and
/// `k > values.len()`. Degenerate label sets are allowed — all-good
/// yields 0.0 and all-bad yields 1.0, which are exactly right here.
pub fn precision_at_k(values: &[f64], bad: &[bool], k: usize) -> Result<f64, DetectionError> {
    validate(values, bad)?;
    if k == 0 || k > values.len() {
        return Err(DetectionError::InvalidK {
            k,
            clients: values.len(),
        });
    }
    let flagged = bottom_k_indices(values, k);
    let hits = flagged.iter().filter(|&&i| bad[i]).count();
    Ok(hits as f64 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_HIGH: [f64; 6] = [-2.0, 5.0, 6.0, -1.0, 7.0, 8.0];
    const BAD2: [bool; 6] = [true, false, false, true, false, false];

    #[test]
    fn perfect_separation_is_auc_one() {
        assert_eq!(detection_auc(&GOOD_HIGH, &BAD2), Ok(1.0));
    }

    #[test]
    fn inverted_separation_is_auc_zero() {
        let inverted: Vec<f64> = GOOD_HIGH.iter().map(|v| -v).collect();
        assert_eq!(detection_auc(&inverted, &BAD2), Ok(0.0));
    }

    #[test]
    fn interleaved_values_give_intermediate_auc() {
        // bad at values 1.0 and 3.0, good at 2.0 and 4.0: of the 4
        // (bad, good) pairs, 3 are correctly ordered → AUC 0.75.
        let values = [1.0, 2.0, 3.0, 4.0];
        let bad = [true, false, true, false];
        let auc = detection_auc(&values, &bad).unwrap();
        assert!((auc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_tied_values_give_auc_half() {
        let auc = detection_auc(&[3.0; 5], &[true, true, false, false, false]).unwrap();
        assert!((auc - 0.5).abs() < 1e-12, "ties count one half, got {auc}");
    }

    #[test]
    fn partial_ties_average() {
        // bad: {1.0}, good: {1.0, 2.0}; pair vs the tied good counts
        // 0.5, vs 2.0 counts 1 → AUC 0.75.
        let auc = detection_auc(&[1.0, 1.0, 2.0], &[true, false, false]).unwrap();
        assert!((auc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_label_sets_are_errors_not_half() {
        assert_eq!(
            detection_auc(&[1.0, 2.0], &[false, false]),
            Err(DetectionError::Degenerate { bad: 0, good: 2 })
        );
        assert_eq!(
            detection_auc(&[1.0, 2.0], &[true, true]),
            Err(DetectionError::Degenerate { bad: 2, good: 0 })
        );
    }

    #[test]
    fn nan_and_infinite_valuations_are_errors() {
        assert_eq!(
            detection_auc(&[1.0, f64::NAN, 2.0], &[true, false, false]),
            Err(DetectionError::NotFinite { index: 1 })
        );
        assert_eq!(
            detection_auc(&[f64::INFINITY, 1.0], &[true, false]),
            Err(DetectionError::NotFinite { index: 0 })
        );
        assert_eq!(
            precision_at_k(&[1.0, f64::NAN], &[true, false], 1),
            Err(DetectionError::NotFinite { index: 1 })
        );
    }

    #[test]
    fn length_mismatch_is_an_error() {
        assert_eq!(
            detection_auc(&[1.0, 2.0], &[true]),
            Err(DetectionError::LengthMismatch {
                values: 2,
                labels: 1
            })
        );
        assert_eq!(
            precision_at_k(&[1.0], &[true, false], 1),
            Err(DetectionError::LengthMismatch {
                values: 1,
                labels: 2
            })
        );
    }

    #[test]
    fn precision_at_k_counts_bottom_k_hits() {
        assert_eq!(precision_at_k(&GOOD_HIGH, &BAD2, 2), Ok(1.0));
        // k = 3 pulls in one honest client.
        let p = precision_at_k(&GOOD_HIGH, &BAD2, 3).unwrap();
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        let inverted: Vec<f64> = GOOD_HIGH.iter().map(|v| -v).collect();
        assert_eq!(precision_at_k(&inverted, &BAD2, 2), Ok(0.0));
    }

    #[test]
    fn precision_at_k_allows_degenerate_labels() {
        assert_eq!(precision_at_k(&[1.0, 2.0], &[false, false], 1), Ok(0.0));
        assert_eq!(precision_at_k(&[1.0, 2.0], &[true, true], 2), Ok(1.0));
    }

    #[test]
    fn precision_at_k_rejects_bad_k() {
        assert_eq!(
            precision_at_k(&[1.0, 2.0], &[true, false], 0),
            Err(DetectionError::InvalidK { k: 0, clients: 2 })
        );
        assert_eq!(
            precision_at_k(&[1.0, 2.0], &[true, false], 3),
            Err(DetectionError::InvalidK { k: 3, clients: 2 })
        );
    }

    #[test]
    fn precision_ties_break_by_index_deterministically() {
        // All values tied: bottom-2 is clients {0, 1} by index.
        let p = precision_at_k(&[1.0; 4], &[true, false, true, false], 2).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }
}
