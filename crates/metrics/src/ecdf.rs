//! Empirical cumulative distribution functions.
//!
//! The fairness experiment (paper Fig. 5) plots the ECDF of the relative
//! difference `d_{0,9}` over repeated trials for FedSV and ComFedSV; the
//! conclusion "ComFedSV is fairer" is exactly first-order stochastic
//! dominance of its ECDF.

/// Empirical CDF over a finite sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample. Non-finite values are rejected.
    pub fn new(mut sample: Vec<f64>) -> Option<Self> {
        if sample.is_empty() || sample.iter().any(|v| !v.is_finite()) {
            return None;
        }
        sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(Ecdf { sorted: sample })
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when the sample is empty (cannot happen for a constructed
    /// value, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(t) = P(X ≤ t)`.
    pub fn eval(&self, t: f64) -> f64 {
        // partition_point returns the count of elements <= t.
        let count = self.sorted.partition_point(|&x| x <= t);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile (inverse CDF) for `p ∈ [0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return self.sorted[0];
        }
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Evaluates the ECDF on an evenly spaced grid over `[lo, hi]`,
    /// returning `(t, F(t))` pairs — the series plotted in Fig. 5.
    pub fn curve(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        if points == 0 {
            return Vec::new();
        }
        if points == 1 {
            return vec![(lo, self.eval(lo))];
        }
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let t = lo + step * i as f64;
                (t, self.eval(t))
            })
            .collect()
    }

    /// `true` when `self` first-order stochastically dominates `other` on
    /// the given grid, i.e. `F_self(t) ≥ F_other(t) − slack` everywhere.
    ///
    /// A small `slack` absorbs sampling noise when comparing 50-trial runs.
    pub fn dominates(&self, other: &Ecdf, grid: &[f64], slack: f64) -> bool {
        grid.iter().all(|&t| self.eval(t) + slack >= other.eval(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_hand_computation() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn handles_duplicates() {
        let e = Ecdf::new(vec![1.0, 1.0, 2.0]).unwrap();
        assert!((e.eval(1.0) - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Ecdf::new(vec![]).is_none());
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_none());
    }

    #[test]
    fn quantiles_match() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.25), 1.0);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
    }

    #[test]
    fn curve_is_monotone_nondecreasing() {
        let e = Ecdf::new(vec![0.3, 0.1, 0.9, 0.5, 0.2]).unwrap();
        let c = e.curve(0.0, 1.0, 21);
        assert_eq!(c.len(), 21);
        for w in c.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(c.last().unwrap().1, 1.0);
    }

    #[test]
    fn dominance_of_shifted_samples() {
        // Sample concentrated near 0 dominates (its CDF is above) a sample
        // concentrated near 1.
        let low = Ecdf::new(vec![0.0, 0.1, 0.2]).unwrap();
        let high = Ecdf::new(vec![0.7, 0.8, 0.9]).unwrap();
        let grid: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        assert!(low.dominates(&high, &grid, 0.0));
        assert!(!high.dominates(&low, &grid, 0.0));
    }

    #[test]
    fn ecdf_dominates_itself() {
        let e = Ecdf::new(vec![0.5, 0.6]).unwrap();
        let grid = [0.0, 0.5, 1.0];
        assert!(e.dominates(&e, &grid, 0.0));
    }

    #[test]
    fn single_point_sample() {
        let e = Ecdf::new(vec![2.0]).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e.eval(1.9), 0.0);
        assert_eq!(e.eval(2.0), 1.0);
    }
}
