//! Jaccard coefficient between index sets.
//!
//! The noisy-label detection experiment (paper Fig. 7) compares the set of
//! clients that actually received noisy labels with the set of clients a
//! valuation metric ranks lowest.

use std::collections::HashSet;

/// Jaccard index `|A ∩ B| / |A ∪ B|` between two sets of client indices.
///
/// Duplicates in the inputs are ignored (set semantics). The index of two
/// empty sets is defined as 1 (they are identical).
pub fn jaccard_index(a: &[usize], b: &[usize]) -> f64 {
    let sa: HashSet<usize> = a.iter().copied().collect();
    let sb: HashSet<usize> = b.iter().copied().collect();
    let union = sa.union(&sb).count();
    if union == 0 {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_give_one() {
        assert_eq!(jaccard_index(&[1, 2, 3], &[3, 2, 1]), 1.0);
    }

    #[test]
    fn disjoint_sets_give_zero() {
        assert_eq!(jaccard_index(&[1, 2], &[3, 4]), 0.0);
    }

    #[test]
    fn half_overlap() {
        // {1,2} vs {2,3}: intersection 1, union 3.
        assert!((jaccard_index(&[1, 2], &[2, 3]) - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn duplicates_ignored() {
        assert_eq!(jaccard_index(&[1, 1, 2, 2], &[1, 2]), 1.0);
    }

    #[test]
    fn empty_sets_are_identical() {
        assert_eq!(jaccard_index(&[], &[]), 1.0);
    }

    #[test]
    fn one_empty_set_gives_zero() {
        assert_eq!(jaccard_index(&[], &[1]), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = [1, 5, 9];
        let b = [5, 7];
        assert_eq!(jaccard_index(&a, &b), jaccard_index(&b, &a));
    }

    #[test]
    fn bounded_between_zero_and_one() {
        let a = [0, 1, 2, 3, 4];
        let b = [3, 4, 5, 6];
        let j = jaccard_index(&a, &b);
        assert!((0.0..=1.0).contains(&j));
    }
}
