//! The FedAvg training loop with full trace recording.

use crate::behavior::ClientBehavior;
use crate::config::FlConfig;
use crate::subset::Subset;
use fedval_data::Dataset;
use fedval_models::{optim, DeterminismTier, Model};
use fedval_runtime::{CancelToken, Cancelled};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

/// Everything recorded about one training round `t`.
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// Global model `w_t` broadcast at the start of the round.
    pub global_params: Vec<f64>,
    /// Every client's locally updated model `w^{t+1}_i` (the valuation
    /// pipeline needs all of them, not just the selected ones — this is
    /// how the paper computes ground-truth utilities).
    pub local_params: Vec<Vec<f64>>,
    /// The subset `I_t` whose models were aggregated.
    pub selected: Subset,
    /// Learning rate `η_t` used this round.
    pub eta: f64,
}

/// A complete FedAvg run: per-round records plus the final global model.
#[derive(Debug, Clone)]
pub struct TrainingTrace {
    /// One record per round, `t = 0..T`.
    pub rounds: Vec<RoundRecord>,
    /// Final aggregated global parameters `w_T`.
    pub final_params: Vec<f64>,
    /// Number of participating clients `N`.
    pub num_clients: usize,
}

impl TrainingTrace {
    /// Number of rounds `T`.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Convenience accessor for round `t`'s selected subset.
    pub fn selected(&self, t: usize) -> Subset {
        self.rounds[t].selected
    }

    /// FedAvg aggregate of the round-`t` local models over subset `s`
    /// (`w̄_S = mean_{k∈S} w^{t+1}_k`). `None` for the empty subset.
    pub fn aggregate(&self, t: usize, s: Subset) -> Option<Vec<f64>> {
        let mut out = Vec::new();
        self.aggregate_into(t, s, &mut out).then_some(out)
    }

    /// [`aggregate`](TrainingTrace::aggregate) into a caller-provided
    /// buffer (the oracle's per-cell allocation-free path); returns
    /// `false` without touching `out` for the empty subset.
    pub fn aggregate_into(&self, t: usize, s: Subset, out: &mut Vec<f64>) -> bool {
        let record = &self.rounds[t];
        let vectors = s
            .members()
            .into_iter()
            .map(|k| record.local_params[k].as_slice());
        fedval_linalg::vector::mean_into(vectors, out)
    }
}

/// Runs FedAvg over `clients` starting from `prototype`'s parameters,
/// following the protocol of the paper's Section III, and records the full
/// trace. Client local updates within a round run in parallel.
pub fn train_federated(
    prototype: &dyn Model,
    clients: &[Dataset],
    config: &FlConfig,
) -> TrainingTrace {
    try_train_federated(prototype, clients, config, &CancelToken::new())
        .expect("fresh token is never cancelled")
}

/// [`train_federated`] with cooperative cancellation: `cancel` is
/// observed at round boundaries, and once set the remaining rounds are
/// abandoned with `Err(Cancelled)` — this is what lets a service
/// `DELETE` stop a job during its training stage instead of waiting the
/// whole run out. A run with a never-fired token is bit-identical to
/// [`train_federated`] (same RNG draws, same aggregation order).
pub fn try_train_federated(
    prototype: &dyn Model,
    clients: &[Dataset],
    config: &FlConfig,
    cancel: &CancelToken,
) -> Result<TrainingTrace, Cancelled> {
    let n = clients.len();
    assert!(n > 0, "need at least one client");
    assert!(
        n <= Subset::MAX_CLIENTS,
        "too many clients for subset masks"
    );
    let k = config.clients_per_round.clamp(1, n);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut global = prototype.params().to_vec();
    let mut rounds = Vec::with_capacity(config.rounds);

    for t in 0..config.rounds {
        cancel.check()?;
        let eta = config.learning_rate.at(t);

        // Every client computes its local update in parallel. Behavior
        // injection happens here: clients whose behavior skips this
        // round submit the broadcast model unchanged (see
        // `crate::behavior`).
        let local_params = parallel_local_updates(
            prototype,
            clients,
            &global,
            eta,
            config.local_steps,
            config.batch_size,
            config.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            config.tier,
            &config.behaviors,
            config.seed,
            t,
        );

        // Client selection: round 0 selects everyone (Assumption 1).
        let selected = if t == 0 && config.everyone_heard_round {
            Subset::full(n)
        } else {
            let picks = sample(&mut rng, n, k);
            Subset::from_indices(&picks.into_vec())
        };

        // Aggregate the selected local models into the next global model.
        let next_global = {
            let vectors = selected
                .members()
                .into_iter()
                .map(|i| local_params[i].as_slice());
            fedval_linalg::vector::mean_of(vectors).expect("selected set is non-empty")
        };

        rounds.push(RoundRecord {
            global_params: std::mem::replace(&mut global, next_global),
            local_params,
            selected,
            eta,
        });
    }

    Ok(TrainingTrace {
        rounds,
        final_params: global,
        num_clients: n,
    })
}

/// Computes `w^{t+1}_i` for every client, chunked across the persistent
/// `fedval_runtime` pool with one scratch model per chunk. Each client's
/// update depends only on its own data and the (fixed) global model, so
/// results are bit-identical for any pool size (at any fixed `tier` —
/// the tier is pinned on every worker's workspace, so concurrent runs at
/// different tiers share the global pool safely).
///
/// `behaviors` (indexed by client, honest beyond its length) decides per
/// client whether round `round` trains at all: non-training clients
/// (free riders, skipped stragglers, churned-out clients) submit
/// `global` unchanged. The decision is a pure function of
/// `(behavior_seed, client, round)`, so behavior injection is
/// deterministic for any pool width — and with no behaviors configured
/// this is the exact legacy code path.
#[allow(clippy::too_many_arguments)]
fn parallel_local_updates(
    prototype: &dyn Model,
    clients: &[Dataset],
    global: &[f64],
    eta: f64,
    local_steps: usize,
    batch_size: Option<usize>,
    round_seed: u64,
    tier: DeterminismTier,
    behaviors: &[ClientBehavior],
    behavior_seed: u64,
    round: usize,
) -> Vec<Vec<f64>> {
    let n = clients.len();
    let pool = fedval_runtime::Pool::global();
    let workers = pool.threads().min(n).max(1);
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); n];

    pool.scope(|scope| {
        for (chunk_idx, out_chunk) in out.chunks_mut(chunk).enumerate() {
            let start = chunk_idx * chunk;
            scope.spawn(move || {
                // One scratch model + one set of minibatch buffers per
                // worker chunk, reused across every client it handles.
                let mut model = prototype.clone_model();
                let mut scratch = optim::SgdScratch::new();
                scratch.ws.set_tier(tier);
                for (offset, slot) in out_chunk.iter_mut().enumerate() {
                    let i = start + offset;
                    let behavior = behaviors.get(i).copied().unwrap_or_default();
                    if !behavior.trains(behavior_seed, i, round) {
                        // Zero update: the client submits the broadcast
                        // model unchanged (free rider / skipped round).
                        *slot = global.to_vec();
                        continue;
                    }
                    model.set_params(global);
                    match batch_size {
                        None => {
                            optim::local_updates_with(
                                model.as_mut(),
                                &clients[i],
                                eta,
                                local_steps,
                                &mut scratch,
                            );
                        }
                        Some(batch) => {
                            optim::minibatch_updates(
                                model.as_mut(),
                                &clients[i],
                                eta,
                                local_steps,
                                batch,
                                round_seed ^ (i as u64).wrapping_mul(0xD134_2543_DE82_EF95),
                                &mut scratch,
                            );
                        }
                    }
                    *slot = model.params().to_vec();
                }
            });
        }
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_linalg::Matrix;
    use fedval_models::LogisticRegression;

    fn clients(n: usize) -> Vec<Dataset> {
        (0..n)
            .map(|i| {
                let f = Matrix::from_fn(8, 2, |r, c| {
                    ((r * 2 + c + i) % 5) as f64 - 2.0 + i as f64 * 0.1
                });
                let labels: Vec<usize> = (0..8).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect()
    }

    fn proto() -> LogisticRegression {
        LogisticRegression::new(2, 2, 0.01, 42)
    }

    #[test]
    fn try_train_with_fresh_token_matches_uncancellable_path() {
        let cl = clients(4);
        let config = FlConfig::new(3, 2, 0.1, 9);
        let a = train_federated(&proto(), &cl, &config);
        let b = try_train_federated(&proto(), &cl, &config, &CancelToken::new()).unwrap();
        assert_eq!(a.final_params, b.final_params);
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(ra.global_params, rb.global_params);
            assert_eq!(ra.selected, rb.selected);
        }
    }

    #[test]
    fn try_train_observes_cancellation_between_rounds() {
        let cl = clients(4);
        let token = CancelToken::new();
        token.cancel();
        // Pre-fired token: not a single round runs.
        assert!(try_train_federated(&proto(), &cl, &FlConfig::new(50, 2, 0.1, 9), &token).is_err());
    }

    #[test]
    fn trace_has_expected_shape() {
        let cl = clients(5);
        let trace = train_federated(&proto(), &cl, &FlConfig::new(4, 2, 0.1, 1));
        assert_eq!(trace.num_rounds(), 4);
        assert_eq!(trace.num_clients, 5);
        for r in &trace.rounds {
            assert_eq!(r.local_params.len(), 5);
            assert_eq!(r.global_params.len(), proto().num_params());
        }
        assert_eq!(trace.final_params.len(), proto().num_params());
    }

    #[test]
    fn round_zero_selects_everyone() {
        let cl = clients(6);
        let trace = train_federated(&proto(), &cl, &FlConfig::new(3, 2, 0.1, 1));
        assert_eq!(trace.selected(0), Subset::full(6));
        for t in 1..3 {
            assert_eq!(trace.selected(t).len(), 2);
        }
    }

    #[test]
    fn everyone_heard_can_be_disabled() {
        let cl = clients(6);
        let cfg = FlConfig::new(3, 2, 0.1, 1).with_everyone_heard(false);
        let trace = train_federated(&proto(), &cl, &cfg);
        assert_eq!(trace.selected(0).len(), 2);
    }

    #[test]
    fn local_update_is_one_gradient_step() {
        // With a single client and full selection, the trace must match a
        // hand-rolled gradient descent.
        let cl = clients(1);
        let cfg = FlConfig::new(2, 1, 0.2, 3);
        let trace = train_federated(&proto(), &cl, &cfg);

        let mut manual = proto();
        let mut g = vec![0.0; manual.num_params()];
        for t in 0..2 {
            assert_eq!(trace.rounds[t].global_params, manual.params());
            manual.grad(&cl[0], &mut g);
            fedval_linalg::vector::axpy(-0.2, &g, manual.params_mut());
            assert_eq!(trace.rounds[t].local_params[0], manual.params());
        }
        assert_eq!(trace.final_params, manual.params());
    }

    #[test]
    fn aggregation_is_mean_of_selected() {
        let cl = clients(4);
        let trace = train_federated(&proto(), &cl, &FlConfig::new(2, 2, 0.1, 5));
        let sel = trace.selected(1);
        let agg = trace.aggregate(1, sel).unwrap();
        // Round 2's global (= final here) must equal the round-1 aggregate.
        assert_eq!(trace.final_params, agg);
    }

    #[test]
    fn aggregate_of_empty_subset_is_none() {
        let cl = clients(3);
        let trace = train_federated(&proto(), &cl, &FlConfig::new(1, 1, 0.1, 1));
        assert!(trace.aggregate(0, Subset::EMPTY).is_none());
    }

    #[test]
    fn identical_clients_produce_identical_local_models() {
        // The premise of the paper's fairness analysis: same data + same
        // broadcast model ⇒ same local model.
        let mut cl = clients(4);
        cl[3] = cl[0].clone();
        let trace = train_federated(&proto(), &cl, &FlConfig::new(3, 2, 0.1, 2));
        for r in &trace.rounds {
            assert_eq!(r.local_params[0], r.local_params[3]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cl = clients(5);
        let a = train_federated(&proto(), &cl, &FlConfig::new(3, 2, 0.1, 9));
        let b = train_federated(&proto(), &cl, &FlConfig::new(3, 2, 0.1, 9));
        assert_eq!(a.final_params, b.final_params);
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(ra.selected, rb.selected);
        }
    }

    #[test]
    fn different_selection_seeds_differ() {
        let cl = clients(8);
        let a = train_federated(&proto(), &cl, &FlConfig::new(5, 2, 0.1, 1));
        let b = train_federated(&proto(), &cl, &FlConfig::new(5, 2, 0.1, 2));
        let same = a
            .rounds
            .iter()
            .zip(&b.rounds)
            .all(|(x, y)| x.selected == y.selected);
        assert!(!same, "selection should depend on the seed");
    }

    #[test]
    fn selection_is_approximately_uniform() {
        // Over many rounds, each client should be selected about T·K/N
        // times (uniform sampling without replacement).
        let cl = clients(6);
        let rounds = 600;
        let cfg = FlConfig::new(rounds, 2, 0.0, 17).with_everyone_heard(false);
        let trace = train_federated(&proto(), &cl, &cfg);
        let mut counts = [0usize; 6];
        for t in 0..rounds {
            for i in trace.selected(t).members() {
                counts[i] += 1;
            }
        }
        let expected = rounds as f64 * 2.0 / 6.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(
                dev < 0.2,
                "client {i} selected {c} times (expected ~{expected})"
            );
        }
    }

    #[test]
    fn minibatch_training_is_deterministic_and_differs_from_full_batch() {
        let cl = clients(4);
        let cfg = FlConfig::new(3, 2, 0.1, 5).with_batch_size(4);
        let a = train_federated(&proto(), &cl, &cfg);
        let b = train_federated(&proto(), &cl, &cfg);
        assert_eq!(
            a.final_params, b.final_params,
            "seeded minibatches are reproducible"
        );
        let full = train_federated(&proto(), &cl, &FlConfig::new(3, 2, 0.1, 5));
        assert_ne!(
            a.final_params, full.final_params,
            "stochastic and deterministic updates should differ"
        );
    }

    #[test]
    fn minibatch_larger_than_dataset_clamps() {
        let cl = clients(2);
        let cfg = FlConfig::new(2, 2, 0.1, 3).with_batch_size(10_000);
        let trace = train_federated(&proto(), &cl, &cfg);
        // Clamped batch = full dataset: must equal the full-batch run.
        let full = train_federated(&proto(), &cl, &FlConfig::new(2, 2, 0.1, 3));
        assert_eq!(trace.final_params, full.final_params);
    }

    #[test]
    fn fast_tier_training_is_deterministic_and_close_to_bit_exact() {
        let cl = clients(4);
        let fast_cfg = FlConfig::new(3, 2, 0.1, 5).with_tier(DeterminismTier::Fast);
        let a = train_federated(&proto(), &cl, &fast_cfg);
        let b = train_federated(&proto(), &cl, &fast_cfg);
        assert_eq!(
            a.final_params, b.final_params,
            "fast tier is deterministic run-to-run"
        );
        let exact_cfg = FlConfig::new(3, 2, 0.1, 5).with_tier(DeterminismTier::BitExact);
        let exact = train_federated(&proto(), &cl, &exact_cfg);
        for (x, y) in a.final_params.iter().zip(&exact.final_params) {
            // Composite model-level bound; the per-op GEMM ε is far
            // tighter (see fedval_linalg::gemm::fast_epsilon).
            assert!((x - y).abs() <= 1e-9 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn empty_behaviors_are_bit_identical_to_explicit_all_honest() {
        let cl = clients(5);
        let legacy = train_federated(&proto(), &cl, &FlConfig::new(4, 2, 0.1, 9));
        let cfg =
            FlConfig::new(4, 2, 0.1, 9).with_behaviors(vec![ClientBehavior::Honest; cl.len()]);
        let honest = train_federated(&proto(), &cl, &cfg);
        assert_eq!(legacy.final_params, honest.final_params);
        for (a, b) in legacy.rounds.iter().zip(&honest.rounds) {
            assert_eq!(a.local_params, b.local_params);
            assert_eq!(a.selected, b.selected);
        }
    }

    #[test]
    fn free_rider_submits_the_broadcast_model_unchanged() {
        let cl = clients(4);
        let mut behaviors = vec![ClientBehavior::Honest; 4];
        behaviors[2] = ClientBehavior::FreeRider;
        let cfg = FlConfig::new(3, 2, 0.1, 7).with_behaviors(behaviors);
        let trace = train_federated(&proto(), &cl, &cfg);
        for r in &trace.rounds {
            assert_eq!(
                r.local_params[2], r.global_params,
                "free rider = zero update"
            );
            // Honest clients actually moved.
            assert_ne!(r.local_params[0], r.global_params);
        }
        // And the honest clients' updates are bit-identical to the
        // all-honest run: behavior injection never perturbs other
        // clients or the selection stream.
        let legacy = train_federated(&proto(), &cl, &FlConfig::new(3, 2, 0.1, 7));
        assert_eq!(
            trace.rounds[0].local_params[0],
            legacy.rounds[0].local_params[0]
        );
        assert_eq!(trace.rounds[0].selected, legacy.rounds[0].selected);
    }

    #[test]
    fn straggler_skips_rounds_deterministically() {
        let cl = clients(4);
        let mut behaviors = vec![ClientBehavior::Honest; 4];
        behaviors[1] = ClientBehavior::Straggler(0.5);
        let cfg = FlConfig::new(12, 2, 0.1, 3).with_behaviors(behaviors);
        let a = train_federated(&proto(), &cl, &cfg);
        let b = train_federated(&proto(), &cl, &cfg);
        assert_eq!(a.final_params, b.final_params, "seeded coins reproduce");
        let skipped = a
            .rounds
            .iter()
            .filter(|r| r.local_params[1] == r.global_params)
            .count();
        assert!(
            (1..12).contains(&skipped),
            "Straggler(0.5) should skip some but not all of 12 rounds (skipped {skipped})"
        );
    }

    #[test]
    fn churned_client_is_inactive_outside_its_window() {
        let cl = clients(3);
        let mut behaviors = vec![ClientBehavior::Honest; 3];
        behaviors[0] = ClientBehavior::Churn {
            join_round: 1,
            leave_round: 3,
        };
        let cfg = FlConfig::new(4, 3, 0.1, 5).with_behaviors(behaviors);
        let trace = train_federated(&proto(), &cl, &cfg);
        let active: Vec<bool> = trace
            .rounds
            .iter()
            .map(|r| r.local_params[0] != r.global_params)
            .collect();
        assert_eq!(active, [false, true, true, false]);
    }

    #[test]
    fn training_reduces_global_loss() {
        let cl = clients(3);
        let all = Dataset::concat(&cl.iter().collect::<Vec<_>>()).unwrap();
        let model = proto();
        let before = model.loss(&all);
        let trace = train_federated(&model, &cl, &FlConfig::new(30, 3, 0.3, 1));
        let mut after_model = proto();
        after_model.set_params(&trace.final_params);
        assert!(after_model.loss(&all) < before);
    }
}
