//! Materializing the utility matrix.
//!
//! The paper's matrix `U ∈ R^{T × 2^N}` holds `U_t(S)` for every round and
//! every coalition. Two views are needed:
//!
//! * [`full_utility_matrix`] — the complete matrix (only feasible for small
//!   `N`; used for the ground-truth metric, the Fig.-2 singular-value study
//!   and the Fig.-3 rank sweep);
//! * [`observed_entries`] — the entries a real deployment observes,
//!   `{(t, S) : S ⊆ I_t}`, which feed the matrix-completion problem (9).

use crate::error::OracleError;
use crate::subset::Subset;
use crate::utility::{EvalPlan, UtilityOracle};
use crate::MAX_EXACT_CLIENTS;
use fedval_linalg::Matrix;

/// One observed utility-matrix entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedEntry {
    /// Round index `t` (row).
    pub round: usize,
    /// Coalition `S` (column key).
    pub subset: Subset,
    /// `U_t(S)`.
    pub value: f64,
}

/// Builds the full `T × 2^N` utility matrix. Column `j` corresponds to the
/// subset with bitmask `j` (column 0, the empty coalition, is all zeros).
///
/// Gated to `N ≤` [`MAX_EXACT_CLIENTS`] — beyond that the matrix itself
/// (let alone the loss evaluations) is impractical, which is exactly the
/// paper's motivation for the Monte-Carlo estimator. Panics on violation;
/// [`try_full_utility_matrix`] is the fallible variant.
pub fn full_utility_matrix(oracle: &UtilityOracle<'_>) -> Matrix {
    match try_full_utility_matrix(oracle) {
        Ok(m) => m,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`full_utility_matrix`]: rejects `N >` [`MAX_EXACT_CLIENTS`]
/// with a typed error instead of panicking.
pub fn try_full_utility_matrix(oracle: &UtilityOracle<'_>) -> Result<Matrix, OracleError> {
    let n = oracle.num_clients();
    if n > MAX_EXACT_CLIENTS {
        return Err(OracleError::TooManyClients {
            clients: n,
            max: MAX_EXACT_CLIENTS,
        });
    }
    if oracle.num_rounds() == 0 {
        // A 0 × 2^N matrix has no utilities to study; reject it the same
        // way the valuation layer rejects empty traces.
        return Err(OracleError::EmptyTrace);
    }
    let t = oracle.num_rounds();
    let cols = 1usize << n;
    // Evaluate the whole grid as one parallel batch, then read it out.
    let mut plan = EvalPlan::new();
    for round in 0..t {
        plan.add_subsets_of(round, Subset::full(n));
    }
    oracle.evaluate_plan(&plan);
    let mut m = Matrix::zeros(t, cols);
    for round in 0..t {
        let row = 0..cols;
        for j in row {
            if j == 0 {
                continue;
            }
            let s = Subset::from_bits(j as u64);
            m.set(round, j, oracle.utility(round, s));
        }
    }
    Ok(m)
}

/// Collects every observed entry `{(t, S) : S ⊆ I_t, S ≠ ∅}` — the
/// training process evaluates utilities only for coalitions inside the
/// selected set of the round.
pub fn observed_entries(oracle: &UtilityOracle<'_>) -> Vec<ObservedEntry> {
    let t = oracle.num_rounds();
    let mut plan = EvalPlan::new();
    for round in 0..t {
        plan.add_subsets_of(round, oracle.trace().selected(round));
    }
    oracle.evaluate_plan(&plan);
    plan.cells()
        .iter()
        .map(|&(round, subset)| ObservedEntry {
            round,
            subset,
            value: oracle.utility(round, subset),
        })
        .collect()
}

/// The observation mask as `(row, column-bitmask)` pairs for a given trace —
/// useful to tests and to the completion diagnostics.
pub fn observed_mask(oracle: &UtilityOracle<'_>) -> Vec<(usize, u64)> {
    let t = oracle.num_rounds();
    let mut out = Vec::new();
    for round in 0..t {
        let selected = oracle.trace().selected(round);
        for s in selected.subsets() {
            if !s.is_empty() {
                out.push((round, s.bits()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::trainer::train_federated;
    use fedval_data::Dataset;
    use fedval_linalg::Matrix as M;
    use fedval_models::LogisticRegression;

    fn setup(
        n: usize,
        rounds: usize,
        k: usize,
    ) -> (crate::TrainingTrace, LogisticRegression, Dataset) {
        let clients: Vec<Dataset> = (0..n)
            .map(|i| {
                let f = M::from_fn(6, 2, |r, c| ((r + c + i) % 3) as f64 - 1.0);
                let labels: Vec<usize> = (0..6).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        let test = {
            let f = M::from_fn(6, 2, |r, c| ((r * 2 + c) % 3) as f64 - 1.0);
            let labels: Vec<usize> = (0..6).map(|r| r % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        };
        let proto = LogisticRegression::new(2, 2, 0.01, 5);
        let trace = train_federated(&proto, &clients, &FlConfig::new(rounds, k, 0.2, 1));
        (trace, proto, test)
    }

    #[test]
    fn full_matrix_shape_and_empty_column() {
        let (trace, proto, test) = setup(3, 4, 2);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let m = full_utility_matrix(&oracle);
        assert_eq!(m.shape(), (4, 8));
        for t in 0..4 {
            assert_eq!(m.get(t, 0), 0.0);
        }
    }

    #[test]
    fn full_matrix_entries_match_oracle() {
        let (trace, proto, test) = setup(3, 2, 2);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let m = full_utility_matrix(&oracle);
        for t in 0..2 {
            for bits in 1u64..8 {
                assert_eq!(
                    m.get(t, bits as usize),
                    oracle.utility(t, Subset::from_bits(bits))
                );
            }
        }
    }

    #[test]
    fn observed_entries_are_subsets_of_selected() {
        let (trace, proto, test) = setup(5, 6, 2);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let obs = observed_entries(&oracle);
        assert!(!obs.is_empty());
        for e in &obs {
            assert!(e.subset.is_subset_of(trace.selected(e.round)));
            assert!(!e.subset.is_empty());
        }
    }

    #[test]
    fn observed_count_matches_formula() {
        // Round 0 selects all 5 clients (2^5 - 1 = 31 non-empty subsets);
        // later rounds select 2 (3 non-empty subsets each).
        let (trace, proto, test) = setup(5, 4, 2);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let obs = observed_entries(&oracle);
        assert_eq!(obs.len(), 31 + 3 * 3);
        assert_eq!(observed_mask(&oracle).len(), obs.len());
    }

    #[test]
    fn observed_values_agree_with_full_matrix() {
        let (trace, proto, test) = setup(4, 3, 2);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let full = full_utility_matrix(&oracle);
        for e in observed_entries(&oracle) {
            assert_eq!(e.value, full.get(e.round, e.subset.bits() as usize));
        }
    }

    #[test]
    fn full_matrix_rejects_empty_trace() {
        let (_, proto, test) = setup(3, 1, 1);
        let clients: Vec<Dataset> = (0..3)
            .map(|i| {
                let f = M::from_fn(4, 2, |r, c| ((r + c + i) % 3) as f64 - 1.0);
                let labels: Vec<usize> = (0..4).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        let trace = train_federated(&proto, &clients, &FlConfig::new(0, 2, 0.2, 1));
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        assert_eq!(
            try_full_utility_matrix(&oracle).unwrap_err(),
            OracleError::EmptyTrace
        );
    }

    #[test]
    fn full_matrix_rejects_large_n() {
        let (_, _, test) = setup(3, 1, 1);
        let clients: Vec<Dataset> = (0..17)
            .map(|i| {
                let f = M::from_fn(4, 2, |r, c| ((r + c + i) % 3) as f64 - 1.0);
                let labels: Vec<usize> = (0..4).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        let proto = LogisticRegression::new(2, 2, 0.01, 5);
        let trace = train_federated(&proto, &clients, &FlConfig::new(1, 2, 0.2, 1));
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        assert_eq!(
            try_full_utility_matrix(&oracle).unwrap_err(),
            OracleError::TooManyClients {
                clients: 17,
                max: MAX_EXACT_CLIENTS
            }
        );
    }
}
