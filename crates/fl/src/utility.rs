//! The round-utility oracle.
//!
//! Implements the paper's per-round utility (equations (6) and the
//! definition of `U_t`):
//!
//! ```text
//! u_t(w)  = ℓ(w_t; D_c) − ℓ(w; D_c)
//! U_t(S)  = u_t(w̄_S),   w̄_S = mean_{k∈S} w^{t+1}_k
//! ```
//!
//! The oracle caches evaluated entries (keyed by `(t, S)`) and counts
//! test-loss evaluations — the dominant cost in both FedSV and ComFedSV and
//! the unit in which the paper's Fig. 8 compares running times.

use crate::subset::Subset;
use crate::trainer::TrainingTrace;
use fedval_data::Dataset;
use fedval_models::Model;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Evaluates `U_t(S)` against a recorded [`TrainingTrace`].
pub struct UtilityOracle<'a> {
    trace: &'a TrainingTrace,
    test_data: &'a Dataset,
    /// Scratch model used for loss evaluation (parameters swapped per call).
    scratch: Mutex<Box<dyn Model>>,
    /// `ℓ(w_t; D_c)` per round, computed once.
    base_losses: Vec<f64>,
    cache: Mutex<HashMap<(usize, Subset), f64>>,
    calls: Mutex<u64>,
}

impl<'a> UtilityOracle<'a> {
    /// Builds an oracle. Evaluates the `T` per-round base losses eagerly
    /// (they are shared by every utility query in the round).
    pub fn new(trace: &'a TrainingTrace, prototype: &dyn Model, test_data: &'a Dataset) -> Self {
        let mut scratch = prototype.clone_model();
        let mut calls = 0u64;
        let base_losses: Vec<f64> = trace
            .rounds
            .iter()
            .map(|r| {
                scratch.set_params(&r.global_params);
                calls += 1;
                scratch.loss(test_data)
            })
            .collect();
        UtilityOracle {
            trace,
            test_data,
            scratch: Mutex::new(scratch),
            base_losses,
            cache: Mutex::new(HashMap::new()),
            calls: Mutex::new(calls),
        }
    }

    /// The trace this oracle reads.
    pub fn trace(&self) -> &TrainingTrace {
        self.trace
    }

    /// Number of rounds `T`.
    pub fn num_rounds(&self) -> usize {
        self.trace.num_rounds()
    }

    /// Number of clients `N`.
    pub fn num_clients(&self) -> usize {
        self.trace.num_clients
    }

    /// Server-side base loss `ℓ(w_t; D_c)`.
    pub fn base_loss(&self, t: usize) -> f64 {
        self.base_losses[t]
    }

    /// Total test-loss evaluations so far (the paper's cost unit).
    pub fn loss_evaluations(&self) -> u64 {
        *self.calls.lock()
    }

    /// Resets the call counter (used between timed phases in Fig. 8).
    pub fn reset_counter(&self) {
        *self.calls.lock() = 0;
    }

    /// The round utility `U_t(S)`. Empty coalitions produce no model, so
    /// `U_t(∅) = 0` by convention (no contribution, no utility).
    pub fn utility(&self, t: usize, s: Subset) -> f64 {
        assert!(t < self.trace.num_rounds(), "round out of range");
        if s.is_empty() {
            return 0.0;
        }
        if let Some(&v) = self.cache.lock().get(&(t, s)) {
            return v;
        }
        let aggregate = self
            .trace
            .aggregate(t, s)
            .expect("non-empty subset aggregates");
        let loss = {
            let mut scratch = self.scratch.lock();
            scratch.set_params(&aggregate);
            *self.calls.lock() += 1;
            scratch.loss(self.test_data)
        };
        let value = self.base_losses[t] - loss;
        self.cache.lock().insert((t, s), value);
        value
    }

    /// Marginal contribution `U_t(S ∪ {i}) − U_t(S)`.
    pub fn marginal(&self, t: usize, s: Subset, client: usize) -> f64 {
        debug_assert!(!s.contains(client));
        self.utility(t, s.with(client)) - self.utility(t, s)
    }

    /// Total utility over all rounds `U(S) = Σ_t U_t(S)` — the whole-run
    /// utility function of Theorem 1.
    pub fn total_utility(&self, s: Subset) -> f64 {
        (0..self.num_rounds()).map(|t| self.utility(t, s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::trainer::train_federated;
    use fedval_linalg::Matrix;
    use fedval_models::LogisticRegression;

    fn setup() -> (TrainingTrace, LogisticRegression, Dataset) {
        let clients: Vec<Dataset> = (0..4)
            .map(|i| {
                let f = Matrix::from_fn(10, 2, |r, c| ((r + c + i) % 4) as f64 - 1.5);
                let labels: Vec<usize> = (0..10).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        let test = {
            let f = Matrix::from_fn(12, 2, |r, c| ((r * 2 + c) % 4) as f64 - 1.5);
            let labels: Vec<usize> = (0..12).map(|r| r % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        };
        let proto = LogisticRegression::new(2, 2, 0.01, 7);
        let trace = train_federated(&proto, &clients, &FlConfig::new(3, 2, 0.2, 1));
        (trace, proto, test)
    }

    #[test]
    fn empty_subset_has_zero_utility() {
        let (trace, proto, test) = setup();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        for t in 0..trace.num_rounds() {
            assert_eq!(oracle.utility(t, Subset::EMPTY), 0.0);
        }
    }

    #[test]
    fn utility_matches_direct_computation() {
        let (trace, proto, test) = setup();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let s = Subset::from_indices(&[0, 2]);
        let expected = {
            let mut m = proto.clone();
            m.set_params(&trace.rounds[1].global_params);
            let base = m.loss(&test);
            let agg = trace.aggregate(1, s).unwrap();
            m.set_params(&agg);
            base - m.loss(&test)
        };
        assert!((oracle.utility(1, s) - expected).abs() < 1e-14);
    }

    #[test]
    fn cache_prevents_recomputation() {
        let (trace, proto, test) = setup();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let s = Subset::from_indices(&[1, 3]);
        let base = oracle.loss_evaluations();
        let v1 = oracle.utility(0, s);
        let after_first = oracle.loss_evaluations();
        let v2 = oracle.utility(0, s);
        let after_second = oracle.loss_evaluations();
        assert_eq!(v1, v2);
        assert_eq!(after_first, base + 1);
        assert_eq!(after_second, after_first, "second call must hit cache");
    }

    #[test]
    fn counter_reset_works() {
        let (trace, proto, test) = setup();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        oracle.utility(0, Subset::from_indices(&[0]));
        assert!(oracle.loss_evaluations() > 0);
        oracle.reset_counter();
        assert_eq!(oracle.loss_evaluations(), 0);
    }

    #[test]
    fn marginal_is_difference_of_utilities() {
        let (trace, proto, test) = setup();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let s = Subset::from_indices(&[1]);
        let m = oracle.marginal(2, s, 3);
        let direct = oracle.utility(2, s.with(3)) - oracle.utility(2, s);
        assert_eq!(m, direct);
    }

    #[test]
    fn total_utility_sums_rounds() {
        let (trace, proto, test) = setup();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let s = Subset::full(4);
        let total = oracle.total_utility(s);
        let manual: f64 = (0..trace.num_rounds()).map(|t| oracle.utility(t, s)).sum();
        assert_eq!(total, manual);
    }

    #[test]
    fn identical_clients_have_identical_singleton_utilities() {
        // Duplicate client data ⇒ identical local models ⇒ identical
        // utilities for the two singletons — Symmetry at the oracle level.
        let mut clients: Vec<Dataset> = (0..4)
            .map(|i| {
                let f = Matrix::from_fn(10, 2, |r, c| ((r + 2 * c + i) % 5) as f64 - 2.0);
                let labels: Vec<usize> = (0..10).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        clients[3] = clients[0].clone();
        let test = {
            let f = Matrix::from_fn(8, 2, |r, c| ((r + c) % 4) as f64 - 1.5);
            let labels: Vec<usize> = (0..8).map(|r| r % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        };
        let proto = LogisticRegression::new(2, 2, 0.01, 3);
        let trace = train_federated(&proto, &clients, &FlConfig::new(3, 2, 0.2, 1));
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        for t in 0..3 {
            let u0 = oracle.utility(t, Subset::from_indices(&[0]));
            let u3 = oracle.utility(t, Subset::from_indices(&[3]));
            assert!((u0 - u3).abs() < 1e-14);
            // And jointly with a third client.
            let u01 = oracle.utility(t, Subset::from_indices(&[0, 1]));
            let u31 = oracle.utility(t, Subset::from_indices(&[3, 1]));
            assert!((u01 - u31).abs() < 1e-14);
        }
    }
}
