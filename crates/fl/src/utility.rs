//! The round-utility oracle and its parallel batch evaluation engine.
//!
//! Implements the paper's per-round utility (equations (6) and the
//! definition of `U_t`):
//!
//! ```text
//! u_t(w)  = ℓ(w_t; D_c) − ℓ(w; D_c)
//! U_t(S)  = u_t(w̄_S),   w̄_S = mean_{k∈S} w^{t+1}_k
//! ```
//!
//! Test-loss evaluations of `U_t(S)` dominate the cost of every valuation
//! method — they are the unit in which the paper's Fig. 8 compares running
//! times — so this module is built around evaluating *batches* of them in
//! parallel rather than one call at a time.
//!
//! # Architecture: plan → parallel evaluate → read
//!
//! 1. **Plan.** A caller (the ComFedSV pipeline, FedSV, TMC, group
//!    testing, the utility-matrix builders) first collects the distinct
//!    `(round, subset)` cells it will need into an [`EvalPlan`]. The plan
//!    deduplicates cells and preserves first-insertion order, so callers
//!    can also replay it to build downstream structures (e.g. a
//!    completion problem) in a deterministic order.
//! 2. **Parallel evaluate.** [`UtilityOracle::evaluate_plan`] submits
//!    the not-yet-evaluated cells to a persistent
//!    [`fedval_runtime::Pool`] in contiguous chunks — by default the
//!    process-wide [`Pool::global`](fedval_runtime::Pool::global)
//!    (sized by `FEDVAL_THREADS`), overridable per oracle with
//!    [`UtilityOracle::with_pool`]. Each chunk clones the model
//!    prototype once ([`Model::clone_model`] is a plain deep copy of
//!    the flat parameter vector, so per-worker scratch models are
//!    cheap) and writes each result into that cell's compute-once slot.
//!    Slots are compute-once cells (initialized under the cell's write
//!    lock): a cell is computed exactly once no matter how many threads
//!    race on it, and reads after initialization take an uncontended
//!    read lock. [`UtilityOracle::try_evaluate_plan`] is the
//!    cancellable variant: a [`CancelToken`] is observed at cell
//!    boundaries *and between minibatch chunks inside a cell* (the
//!    batched model kernels check the workspace token every
//!    `fedval_models::workspace::CHUNK_ROWS` examples), so even a huge
//!    single evaluation stops promptly; a cell abandoned mid-evaluation
//!    is left unset — not stored, not counted — and a retry resumes it.
//! 3. **Read.** [`UtilityOracle::utility`] stays the single-cell API it
//!    always was — now a thin shim over the result table. A cache miss
//!    (a cell outside any evaluated plan) falls back to a serial
//!    evaluation on the shared scratch model, so incremental callers keep
//!    working unchanged.
//!
//! Determinism: `U_t(S)` depends only on the recorded trace, the model
//! architecture, and the test set — not on which worker computes it or in
//! what order — so valuations are bit-for-bit identical between serial
//! and parallel runs. The engine's tests and
//! `crates/fl/tests/oracle_concurrency.rs` assert both that and the
//! exactly-once evaluation guarantee.
//!
//! The oracle also counts test-loss evaluations
//! ([`UtilityOracle::loss_evaluations`]) — the paper's cost unit.
//!
//! # The shared cache tier
//!
//! By default each oracle owns a private, unbounded result table — the
//! historical behavior, bit-for-bit. Attaching a process-shared
//! [`fedval_cache::CellCache`] ([`UtilityOracle::with_shared_cache`])
//! moves the slots into a bounded store keyed by `(trace fingerprint,
//! tier, round, subset)`: concurrent oracles over the same trace share
//! completed cells, memory pressure evicts (and optionally spills to
//! disk) cold cells, and a disk-backed cache warm-starts repeat
//! valuations across processes. Because cells are pure functions of the
//! fingerprinted inputs, eviction and sharing can change *when* a cell
//! is computed — never its bits; the only relaxation is that an evicted
//! cell may be recomputed if asked for again. Hits are tallied in
//! [`UtilityOracle::cell_hits`], never in the loss-evaluation counter.

use crate::subset::Subset;
use crate::trainer::TrainingTrace;
use fedval_cache::{CellCache, CellKey, Fingerprint, FingerprintHasher};
use fedval_data::Dataset;
use fedval_models::{DeterminismTier, Model, Workspace};
use fedval_runtime::{CancelToken, Cancelled, PoolHandle};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An ordered, deduplicated batch of `(round, subset)` utility cells to
/// evaluate. Empty subsets are skipped on insertion (`U_t(∅) = 0` by
/// convention and needs no model evaluation).
#[derive(Debug, Clone, Default)]
pub struct EvalPlan {
    cells: Vec<(usize, Subset)>,
    seen: HashSet<(usize, Subset)>,
}

impl EvalPlan {
    /// An empty plan.
    pub fn new() -> Self {
        EvalPlan::default()
    }

    /// Adds one cell. Duplicates and empty subsets are ignored.
    pub fn add(&mut self, round: usize, subset: Subset) {
        if !subset.is_empty() && self.seen.insert((round, subset)) {
            self.cells.push((round, subset));
        }
    }

    /// Adds every subset of `universe` (the in-cohort coalitions of a
    /// round), in the subset-enumeration order of [`Subset::subsets`].
    pub fn add_subsets_of(&mut self, round: usize, universe: Subset) {
        for s in universe.subsets() {
            self.add(round, s);
        }
    }

    /// Adds the cell `(t, subset)` for every round `t < rounds` — the
    /// column of the utility matrix needed by `U(S) = Σ_t U_t(S)`.
    pub fn add_column(&mut self, rounds: usize, subset: Subset) {
        for t in 0..rounds {
            self.add(t, subset);
        }
    }

    /// Adds every non-empty prefix coalition of a permutation walk
    /// (the cells a per-round permutation estimator reads).
    pub fn add_prefixes(&mut self, round: usize, order: &[usize]) {
        let mut prefix = Subset::EMPTY;
        for &i in order {
            prefix = prefix.with(i);
            self.add(round, prefix);
        }
    }

    /// The planned cells in insertion order.
    pub fn cells(&self) -> &[(usize, Subset)] {
        &self.cells
    }

    /// Number of distinct planned cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when nothing is planned.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// One utility cell: `None` until evaluated. Initialization happens
/// under the cell's write lock, so racing evaluators serialize and each
/// cell is computed exactly once; reads after initialization take an
/// uncontended read lock. A cancelled evaluation simply drops the write
/// guard with the slot still `None`, so a retry recomputes it — no
/// poisoned state, no unwinding.
type Cell = Arc<RwLock<Option<f64>>>;

/// Per-worker evaluation state: a scratch model, its reusable minibatch
/// [`Workspace`] (the batched loss kernels run allocation-free through
/// it), and the FedAvg aggregate buffer. One per batch worker, one
/// behind the serial-path mutex.
struct CellScratch {
    model: Box<dyn Model>,
    ws: Workspace,
    aggregate: Vec<f64>,
}

impl CellScratch {
    fn new(model: Box<dyn Model>, tier: DeterminismTier) -> Self {
        CellScratch {
            model,
            ws: Workspace::new().with_tier(tier),
            aggregate: Vec::new(),
        }
    }
}

/// Fills `slot` exactly once with `compute`'s value, running `compute`
/// under the cell's write lock (racing evaluators block, then observe
/// the stored value — never recompute). Returns `Some(value)` when this
/// call did the computing (callers notify the shared cache on that
/// edge), `None` when the slot was already filled. When `compute`
/// reports [`Cancelled`] — the workspace token fired *inside* the
/// model's minibatch loops — the slot is left `None`: the cell is not
/// stored, not counted, and a retry recomputes it.
fn init_cell(
    slot: &Cell,
    compute: impl FnOnce() -> Result<f64, Cancelled>,
) -> Result<Option<f64>, Cancelled> {
    let mut guard = slot.write();
    if guard.is_none() {
        let v = compute()?;
        *guard = Some(v);
        return Ok(Some(v));
    }
    Ok(None)
}

/// An attachment to the process's shared cell-cache tier: the cache
/// handle plus this oracle's trace fingerprint (the cache-key prefix
/// every cell of this oracle shares).
struct SharedCells {
    cache: Arc<CellCache>,
    trace: Fingerprint,
}

/// Evaluates `U_t(S)` against a recorded [`TrainingTrace`].
pub struct UtilityOracle<'a> {
    trace: &'a TrainingTrace,
    test_data: &'a Dataset,
    /// Architecture + initial parameters; cloned once per batch worker.
    prototype: Box<dyn Model>,
    /// Scratch state for the serial single-cell fallback path.
    scratch: Mutex<CellScratch>,
    /// `ℓ(w_t; D_c)` per round, computed once.
    base_losses: Vec<f64>,
    /// The result table: one compute-once slot per evaluated cell.
    /// Unused (kept empty) when [`Self::shared`] routes slots to the
    /// process-shared cache instead.
    table: RwLock<HashMap<(usize, Subset), Cell>>,
    /// Attachment to the shared cell-cache tier; `None` keeps the
    /// historical private-table behavior bit-for-bit.
    shared: Option<SharedCells>,
    calls: AtomicU64,
    /// Cells served without a loss evaluation (see
    /// [`Self::cell_hits`]).
    hits: AtomicU64,
    /// Cells this oracle's trace found already persisted on disk when
    /// it attached to the shared cache.
    disk_warm: u64,
    /// Which pool [`Self::evaluate_plan`] submits batches to.
    pool: PoolHandle,
    /// Optional cap on workers per batch; `None` uses the pool width.
    parallelism: Option<usize>,
    /// Numeric tier every cell evaluation runs at (pinned on the serial
    /// scratch and on each per-batch worker workspace).
    tier: DeterminismTier,
}

impl<'a> UtilityOracle<'a> {
    /// Builds an oracle at the process-default tier
    /// ([`DeterminismTier::default_tier`]). Evaluates the `T` per-round
    /// base losses eagerly (they are shared by every utility query in
    /// the round).
    pub fn new(trace: &'a TrainingTrace, prototype: &dyn Model, test_data: &'a Dataset) -> Self {
        let tier = DeterminismTier::default_tier();
        let mut scratch = CellScratch::new(prototype.clone_model(), tier);
        let mut calls = 0u64;
        let base_losses: Vec<f64> = trace
            .rounds
            .iter()
            .map(|r| {
                scratch.model.set_params(&r.global_params);
                calls += 1;
                scratch.model.loss_with(test_data, &mut scratch.ws)
            })
            .collect();
        UtilityOracle {
            trace,
            test_data,
            prototype: prototype.clone_model(),
            scratch: Mutex::new(scratch),
            base_losses,
            table: RwLock::new(HashMap::new()),
            shared: None,
            calls: AtomicU64::new(calls),
            hits: AtomicU64::new(0),
            disk_warm: 0,
            pool: PoolHandle::Global,
            parallelism: None,
            tier,
        }
    }

    /// [`Self::new`] with the per-round base losses supplied instead of
    /// recomputed — the service's world memo evaluates them once per
    /// trained trace and every subsequent job's oracle reuses them, so
    /// repeat jobs start with a zero call counter (the memoized base
    /// losses were already paid for and reported by the first job).
    ///
    /// `base_losses` must come from an oracle over the *same* trace,
    /// model, and test set (the trace fingerprint hashes them, so a
    /// mismatch would also change the cache identity).
    pub fn with_base_losses(
        trace: &'a TrainingTrace,
        prototype: &dyn Model,
        test_data: &'a Dataset,
        base_losses: Vec<f64>,
    ) -> Self {
        assert_eq!(
            base_losses.len(),
            trace.num_rounds(),
            "one base loss per round"
        );
        let tier = DeterminismTier::default_tier();
        UtilityOracle {
            trace,
            test_data,
            prototype: prototype.clone_model(),
            scratch: Mutex::new(CellScratch::new(prototype.clone_model(), tier)),
            base_losses,
            table: RwLock::new(HashMap::new()),
            shared: None,
            calls: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            disk_warm: 0,
            pool: PoolHandle::Global,
            parallelism: None,
            tier,
        }
    }

    /// Overrides the number of workers a batch may fan out to
    /// (`1` forces the serial path; used by the throughput benchmarks).
    /// Chunks beyond the pool's width simply queue — the cap bounds
    /// concurrency, not correctness.
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.set_parallelism(threads);
        self
    }

    /// See [`Self::with_parallelism`].
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = Some(threads.max(1));
    }

    /// Worker cap for batch evaluation: the explicit override if one was
    /// set, otherwise the width of the configured pool.
    pub fn parallelism(&self) -> usize {
        self.parallelism.unwrap_or_else(|| self.pool.threads())
    }

    /// Sets the numeric tier cell evaluations run at (builder style).
    ///
    /// Call this before querying or batch-evaluating any cells: the
    /// result table caches values at whatever tier computed them, and
    /// the per-round base losses are evaluated at construction (at the
    /// process-default tier). The latter is harmless for cross-tier
    /// comparisons — every utility is a difference against the *same*
    /// base loss, so the base-loss tier cancels out of utility deltas —
    /// but mixed-tier cell caches are not meaningful; use
    /// [`Self::isolated_with_tier`] for a fresh-cache oracle instead.
    pub fn with_tier(mut self, tier: DeterminismTier) -> Self {
        self.set_tier(tier);
        self
    }

    /// See [`Self::with_tier`].
    pub fn set_tier(&mut self, tier: DeterminismTier) {
        self.tier = tier;
        self.scratch.lock().ws.set_tier(tier);
        // The shared cache keys on the tier, so a retiered oracle reads
        // and writes a disjoint cell namespace — but its disk segments
        // for the new tier may exist and deserve loading.
        if let Some(shared) = &self.shared {
            self.disk_warm += shared.cache.attach(shared.trace, tier.id());
        }
    }

    /// Attaches this oracle to the process-shared cell cache (builder
    /// style): its result slots move from the private table to `cache`,
    /// keyed by `(trace fingerprint, tier, round, subset)`, so
    /// concurrent and future oracles over the same trace share every
    /// completed cell — and, when the cache has a disk directory,
    /// persisted cells from previous processes are loaded now.
    ///
    /// Sharing never changes values: cells are pure functions of the
    /// fingerprinted inputs, and the compute-once slot discipline is
    /// identical in both modes. Call before evaluating any cells —
    /// cells already in the private table are not migrated.
    pub fn with_shared_cache(mut self, cache: Arc<CellCache>) -> Self {
        self.set_shared_cache(cache);
        self
    }

    /// See [`Self::with_shared_cache`].
    pub fn set_shared_cache(&mut self, cache: Arc<CellCache>) {
        let trace = self.fingerprint();
        self.disk_warm += cache.attach(trace, self.tier.id());
        self.shared = Some(SharedCells { cache, trace });
    }

    /// Whether this oracle serves cells from the shared cache tier.
    pub fn shared_cache_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The 128-bit identity of everything a cell value depends on:
    /// model architecture descriptor + initial parameters, the full
    /// training trace, the test set, and the base losses (which also
    /// pin the tier they were evaluated at). Deterministic across
    /// processes — this is the on-disk cache key prefix.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new("fedval-trace-v1");
        h.write_bytes(self.prototype.cache_descriptor().as_bytes());
        h.write_f64s(self.prototype.params());
        h.write_usize(self.trace.num_clients);
        h.write_len(self.trace.rounds.len());
        for r in &self.trace.rounds {
            h.write_f64s(&r.global_params);
            h.write_len(r.local_params.len());
            for lp in &r.local_params {
                h.write_f64s(lp);
            }
            h.write_u64(r.selected.bits());
            h.write_f64(r.eta);
        }
        h.write_f64s(&self.trace.final_params);
        h.write_usize(self.test_data.num_classes());
        h.write_f64s(self.test_data.features().as_slice());
        h.write_len(self.test_data.labels().len());
        for &label in self.test_data.labels() {
            h.write_usize(label);
        }
        h.write_f64s(&self.base_losses);
        h.finish()
    }

    /// The tier cell evaluations run at.
    pub fn tier(&self) -> DeterminismTier {
        self.tier
    }

    /// Submits batches to `pool` instead of the process-wide
    /// [`Pool::global`](fedval_runtime::Pool::global) — tests pin exact
    /// pool sizes this way without perturbing the global pool.
    pub fn with_pool(mut self, pool: PoolHandle) -> Self {
        self.set_pool(pool);
        self
    }

    /// See [`Self::with_pool`].
    pub fn set_pool(&mut self, pool: PoolHandle) {
        self.pool = pool;
    }

    /// A fresh-cache clone of this oracle over the same trace, model
    /// architecture, and test set: the per-round base losses are copied
    /// (not recounted), the result table starts empty, and the call
    /// counter starts at zero. Used by
    /// `ValuationSession`'s isolated-runs mode so every method pays —
    /// and reports — its full evaluation cost instead of drafting behind
    /// an earlier method's cache.
    pub fn isolated(&self) -> UtilityOracle<'a> {
        self.isolated_with_tier(self.tier)
    }

    /// [`Self::isolated`] with the clone's cell evaluations pinned to
    /// `tier` — the fresh result table never mixes tiers. The copied
    /// base losses keep their original values (see [`Self::with_tier`]
    /// for why that cancels out of utility comparisons). Isolation also
    /// drops any shared-cache attachment: an isolated oracle exists to
    /// measure a method's full standalone cost, which drafting behind
    /// the shared tier would hide.
    pub fn isolated_with_tier(&self, tier: DeterminismTier) -> UtilityOracle<'a> {
        UtilityOracle {
            trace: self.trace,
            test_data: self.test_data,
            prototype: self.prototype.clone_model(),
            scratch: Mutex::new(CellScratch::new(self.prototype.clone_model(), tier)),
            base_losses: self.base_losses.clone(),
            table: RwLock::new(HashMap::new()),
            shared: None,
            calls: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            disk_warm: 0,
            pool: self.pool.clone(),
            parallelism: self.parallelism,
            tier,
        }
    }

    /// The trace this oracle reads.
    pub fn trace(&self) -> &TrainingTrace {
        self.trace
    }

    /// Number of rounds `T`.
    pub fn num_rounds(&self) -> usize {
        self.trace.num_rounds()
    }

    /// Number of clients `N`.
    pub fn num_clients(&self) -> usize {
        self.trace.num_clients
    }

    /// Server-side base loss `ℓ(w_t; D_c)`.
    pub fn base_loss(&self, t: usize) -> f64 {
        self.base_losses[t]
    }

    /// All per-round base losses, in round order — the slice to hand to
    /// [`Self::with_base_losses`] when memoizing a trained trace.
    pub fn base_losses(&self) -> &[f64] {
        &self.base_losses
    }

    /// Total test-loss evaluations so far (the paper's cost unit).
    /// Cache hits — in-process or disk-warm — are *not* loss
    /// evaluations and never inflate this counter; they are tallied
    /// separately in [`Self::cell_hits`].
    pub fn loss_evaluations(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Planned cells served from an already-completed slot without a
    /// loss evaluation — the cache's contribution, counted when a batch
    /// plan filters out resident cells (both private-table and
    /// shared-cache modes). Repeat *reads* of a cell the same caller
    /// already paid for are not hits; this counts work avoided, not
    /// lookups made.
    pub fn cell_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cells found persisted on disk for this oracle's trace when it
    /// attached to the shared cache (0 without a disk-backed cache).
    pub fn disk_warm_cells(&self) -> u64 {
        self.disk_warm
    }

    /// Resets the call and hit counters (used between timed phases in
    /// Fig. 8).
    pub fn reset_counter(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
    }

    /// The shared-cache key for a cell of this oracle.
    fn cell_key(&self, shared: &SharedCells, cell: (usize, Subset)) -> CellKey {
        CellKey {
            trace: shared.trace,
            tier: self.tier.id(),
            round: cell.0 as u32,
            subset: cell.1.bits(),
        }
    }

    /// The compute-once slot for a cell, creating it if needed — in the
    /// shared cache when attached, in the private table otherwise.
    fn slot(&self, cell: (usize, Subset)) -> Cell {
        if let Some(shared) = &self.shared {
            let (slot, _) = shared.cache.slot(self.cell_key(shared, cell));
            return slot;
        }
        if let Some(slot) = self.table.read().get(&cell) {
            return Arc::clone(slot);
        }
        Arc::clone(self.table.write().entry(cell).or_default())
    }

    /// Tells the shared cache a cell now holds `value` (making it a
    /// spillable resident). No-op in private-table mode. Callers must
    /// not hold the cell's lock: the cache may evict (and read) other
    /// unpinned slots under its own mutex.
    fn note_complete(&self, cell: (usize, Subset), value: f64) {
        if let Some(shared) = &self.shared {
            shared.cache.complete(self.cell_key(shared, cell), value);
        }
    }

    /// Evaluates one cell on the given scratch state: FedAvg aggregate
    /// into the reusable buffer, batched loss through the reusable
    /// workspace. Counted on completion.
    fn compute_cell(&self, scratch: &mut CellScratch, t: usize, s: Subset) -> f64 {
        let found = self.trace.aggregate_into(t, s, &mut scratch.aggregate);
        assert!(found, "non-empty subset aggregates");
        scratch.model.set_params(&scratch.aggregate);
        let loss = scratch.model.loss_with(self.test_data, &mut scratch.ws);
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.base_losses[t] - loss
    }

    /// [`compute_cell`](Self::compute_cell) observing `cancel` *inside*
    /// the model's minibatch loss loops (between minibatch chunks). An
    /// abandoned evaluation is not counted — the cell is simply left
    /// uncomputed for a retry.
    fn try_compute_cell(
        &self,
        scratch: &mut CellScratch,
        t: usize,
        s: Subset,
        cancel: &CancelToken,
    ) -> Result<f64, Cancelled> {
        let found = self.trace.aggregate_into(t, s, &mut scratch.aggregate);
        assert!(found, "non-empty subset aggregates");
        scratch.model.set_params(&scratch.aggregate);
        scratch.ws.set_cancel(Some(cancel.clone()));
        let loss = scratch.model.try_loss_with(self.test_data, &mut scratch.ws);
        scratch.ws.set_cancel(None);
        let loss = loss?;
        self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(self.base_losses[t] - loss)
    }

    /// Evaluates every planned cell that is not yet in the result table,
    /// in parallel across at most [`Self::parallelism`] chunks submitted
    /// to the configured pool, with per-chunk scratch models. Each cell
    /// is evaluated exactly once even when plans overlap or other
    /// threads query concurrently.
    pub fn evaluate_plan(&self, plan: &EvalPlan) {
        // A fresh token is never cancelled, so the batch cannot fail.
        self.try_evaluate_plan(plan, &CancelToken::new())
            .expect("fresh token is never cancelled");
    }

    /// [`Self::evaluate_plan`] with cooperative cancellation: `cancel`
    /// is observed at cell boundaries, and once set the not-yet-started
    /// remainder of the batch is abandoned and `Err(Cancelled)` is
    /// returned. Cells evaluated before the cut stay in the table (they
    /// are correct and already stored), so a retry resumes where the
    /// cancelled batch stopped.
    pub fn try_evaluate_plan(
        &self,
        plan: &EvalPlan,
        cancel: &CancelToken,
    ) -> Result<(), Cancelled> {
        cancel.check()?;
        let mut hits = 0u64;
        let mut pending: Vec<((usize, Subset), Cell)> = Vec::new();
        for &cell in plan.cells() {
            assert!(cell.0 < self.trace.num_rounds(), "round out of range");
            let slot = self.slot(cell);
            if slot.read().is_none() {
                pending.push((cell, slot));
            } else {
                // Already resident (an earlier plan, a concurrent
                // oracle over the same trace, or a disk-warm cell):
                // work avoided, counted as a hit — never as a call.
                hits += 1;
            }
        }
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if pending.is_empty() {
            return Ok(());
        }
        // A batch submission costs a queue push + wakeup and one model
        // clone per chunk; on cheap models a loss evaluation is
        // single-digit µs. Only fan out when each chunk gets enough
        // cells to amortize that setup — small batches (e.g. TMC's
        // per-prefix T-cell columns) stay serial.
        const MIN_CELLS_PER_WORKER: usize = 16;
        let workers = self
            .parallelism()
            .min(pending.len() / MIN_CELLS_PER_WORKER)
            .max(1);
        if workers == 1 {
            // Lock order must match `utility()` — slot first, scratch
            // inside the init closure — or a concurrent single-cell call
            // holding a slot while waiting for the scratch mutex would
            // deadlock against us holding scratch while waiting on the slot.
            for ((t, s), slot) in &pending {
                cancel.check()?;
                let computed = init_cell(slot, || {
                    let mut scratch = self.scratch.lock();
                    self.try_compute_cell(&mut scratch, *t, *s, cancel)
                })?;
                if let Some(v) = computed {
                    self.note_complete((*t, *s), v);
                }
            }
            // Trailing check mirrors the pooled path: cancellation during
            // the final cell reports Cancelled regardless of pool size.
            return cancel.check();
        }
        self.pool.get().for_each_init(
            pending,
            workers,
            || CellScratch::new(self.prototype.clone_model(), self.tier),
            |scratch, ((t, s), slot)| {
                // A mid-cell cancellation leaves the slot unset; the
                // pool observes the shared token at the next item
                // boundary and reports Cancelled for the whole batch.
                if let Ok(Some(v)) =
                    init_cell(&slot, || self.try_compute_cell(scratch, t, s, cancel))
                {
                    self.note_complete((t, s), v);
                }
            },
            Some(cancel),
        )
    }

    /// The round utility `U_t(S)`. Empty coalitions produce no model, so
    /// `U_t(∅) = 0` by convention (no contribution, no utility).
    ///
    /// A thin shim over the result table: planned-and-evaluated cells
    /// cost one uncontended read lock; anything else is evaluated
    /// serially on the shared scratch model and stored.
    pub fn utility(&self, t: usize, s: Subset) -> f64 {
        assert!(t < self.trace.num_rounds(), "round out of range");
        if s.is_empty() {
            return 0.0;
        }
        let slot = self.slot((t, s));
        if let Some(v) = *slot.read() {
            return v;
        }
        // Lock order: cell write lock first, scratch mutex inside — the
        // same order the batch paths use, so they never deadlock.
        let mut guard = slot.write();
        if let Some(v) = *guard {
            return v;
        }
        let v = {
            let mut scratch = self.scratch.lock();
            self.compute_cell(&mut scratch, t, s)
        };
        *guard = Some(v);
        // The cache completion runs after the cell lock is released
        // (the cache must never see us holding a slot it manages).
        drop(guard);
        self.note_complete((t, s), v);
        v
    }

    /// Marginal contribution `U_t(S ∪ {i}) − U_t(S)`.
    pub fn marginal(&self, t: usize, s: Subset, client: usize) -> f64 {
        debug_assert!(!s.contains(client));
        self.utility(t, s.with(client)) - self.utility(t, s)
    }

    /// Total utility over all rounds `U(S) = Σ_t U_t(S)` — the whole-run
    /// utility function of Theorem 1. Reads cells serially; see
    /// [`Self::total_utility_parallel`] for the batched variant.
    pub fn total_utility(&self, s: Subset) -> f64 {
        (0..self.num_rounds()).map(|t| self.utility(t, s)).sum()
    }

    /// [`Self::total_utility`] with the column's missing cells evaluated
    /// as one parallel batch first. Bit-identical to the serial variant.
    pub fn total_utility_parallel(&self, s: Subset) -> f64 {
        let mut plan = EvalPlan::new();
        plan.add_column(self.num_rounds(), s);
        self.evaluate_plan(&plan);
        self.total_utility(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::trainer::train_federated;
    use fedval_linalg::Matrix;
    use fedval_models::LogisticRegression;

    fn setup() -> (TrainingTrace, LogisticRegression, Dataset) {
        let clients: Vec<Dataset> = (0..4)
            .map(|i| {
                let f = Matrix::from_fn(10, 2, |r, c| ((r + c + i) % 4) as f64 - 1.5);
                let labels: Vec<usize> = (0..10).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        let test = {
            let f = Matrix::from_fn(12, 2, |r, c| ((r * 2 + c) % 4) as f64 - 1.5);
            let labels: Vec<usize> = (0..12).map(|r| r % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        };
        let proto = LogisticRegression::new(2, 2, 0.01, 7);
        let trace = train_federated(&proto, &clients, &FlConfig::new(3, 2, 0.2, 1));
        (trace, proto, test)
    }

    #[test]
    fn empty_subset_has_zero_utility() {
        let (trace, proto, test) = setup();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        for t in 0..trace.num_rounds() {
            assert_eq!(oracle.utility(t, Subset::EMPTY), 0.0);
        }
    }

    #[test]
    fn utility_matches_direct_computation() {
        let (trace, proto, test) = setup();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let s = Subset::from_indices(&[0, 2]);
        let expected = {
            let mut m = proto.clone();
            m.set_params(&trace.rounds[1].global_params);
            let base = m.loss(&test);
            let agg = trace.aggregate(1, s).unwrap();
            m.set_params(&agg);
            base - m.loss(&test)
        };
        assert!((oracle.utility(1, s) - expected).abs() < 1e-14);
    }

    #[test]
    fn cache_prevents_recomputation() {
        let (trace, proto, test) = setup();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let s = Subset::from_indices(&[1, 3]);
        let base = oracle.loss_evaluations();
        let v1 = oracle.utility(0, s);
        let after_first = oracle.loss_evaluations();
        let v2 = oracle.utility(0, s);
        let after_second = oracle.loss_evaluations();
        assert_eq!(v1, v2);
        assert_eq!(after_first, base + 1);
        assert_eq!(after_second, after_first, "second call must hit cache");
    }

    #[test]
    fn counter_reset_works() {
        let (trace, proto, test) = setup();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        oracle.utility(0, Subset::from_indices(&[0]));
        assert!(oracle.loss_evaluations() > 0);
        oracle.reset_counter();
        assert_eq!(oracle.loss_evaluations(), 0);
    }

    #[test]
    fn marginal_is_difference_of_utilities() {
        let (trace, proto, test) = setup();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let s = Subset::from_indices(&[1]);
        let m = oracle.marginal(2, s, 3);
        let direct = oracle.utility(2, s.with(3)) - oracle.utility(2, s);
        assert_eq!(m, direct);
    }

    #[test]
    fn total_utility_sums_rounds() {
        let (trace, proto, test) = setup();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let s = Subset::full(4);
        let total = oracle.total_utility(s);
        let manual: f64 = (0..trace.num_rounds()).map(|t| oracle.utility(t, s)).sum();
        assert_eq!(total, manual);
    }

    #[test]
    fn identical_clients_have_identical_singleton_utilities() {
        // Duplicate client data ⇒ identical local models ⇒ identical
        // utilities for the two singletons — Symmetry at the oracle level.
        let mut clients: Vec<Dataset> = (0..4)
            .map(|i| {
                let f = Matrix::from_fn(10, 2, |r, c| ((r + 2 * c + i) % 5) as f64 - 2.0);
                let labels: Vec<usize> = (0..10).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        clients[3] = clients[0].clone();
        let test = {
            let f = Matrix::from_fn(8, 2, |r, c| ((r + c) % 4) as f64 - 1.5);
            let labels: Vec<usize> = (0..8).map(|r| r % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        };
        let proto = LogisticRegression::new(2, 2, 0.01, 3);
        let trace = train_federated(&proto, &clients, &FlConfig::new(3, 2, 0.2, 1));
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        for t in 0..3 {
            let u0 = oracle.utility(t, Subset::from_indices(&[0]));
            let u3 = oracle.utility(t, Subset::from_indices(&[3]));
            assert!((u0 - u3).abs() < 1e-14);
            // And jointly with a third client.
            let u01 = oracle.utility(t, Subset::from_indices(&[0, 1]));
            let u31 = oracle.utility(t, Subset::from_indices(&[3, 1]));
            assert!((u01 - u31).abs() < 1e-14);
        }
    }

    #[test]
    fn plan_dedups_and_skips_empty() {
        let mut plan = EvalPlan::new();
        plan.add(0, Subset::EMPTY);
        plan.add(0, Subset::from_indices(&[1]));
        plan.add(0, Subset::from_indices(&[1]));
        plan.add(1, Subset::from_indices(&[1]));
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.cells(),
            &[
                (0, Subset::from_indices(&[1])),
                (1, Subset::from_indices(&[1]))
            ]
        );
    }

    #[test]
    fn plan_subsets_matches_enumeration_order() {
        let mut plan = EvalPlan::new();
        let u = Subset::from_indices(&[0, 2]);
        plan.add_subsets_of(3, u);
        let expected: Vec<(usize, Subset)> = u
            .subsets()
            .filter(|s| !s.is_empty())
            .map(|s| (3, s))
            .collect();
        assert_eq!(plan.cells(), expected.as_slice());
    }

    #[test]
    fn plan_prefixes_adds_the_permutation_walk() {
        let mut plan = EvalPlan::new();
        plan.add_prefixes(0, &[2, 0, 1]);
        assert_eq!(
            plan.cells(),
            &[
                (0, Subset::from_indices(&[2])),
                (0, Subset::from_indices(&[0, 2])),
                (0, Subset::from_indices(&[0, 1, 2])),
            ]
        );
    }

    #[test]
    fn batch_evaluation_matches_serial_and_counts_once() {
        let (trace, proto, test) = setup();

        // Serial reference.
        let serial = UtilityOracle::new(&trace, &proto, &test).with_parallelism(1);
        // Parallel engine.
        let parallel = UtilityOracle::new(&trace, &proto, &test).with_parallelism(4);

        let mut plan = EvalPlan::new();
        for t in 0..trace.num_rounds() {
            plan.add_subsets_of(t, Subset::full(4));
        }
        serial.reset_counter();
        parallel.reset_counter();
        serial.evaluate_plan(&plan);
        parallel.evaluate_plan(&plan);

        assert_eq!(serial.loss_evaluations(), plan.len() as u64);
        assert_eq!(parallel.loss_evaluations(), plan.len() as u64);
        for &(t, s) in plan.cells() {
            let a = serial.utility(t, s);
            let b = parallel.utility(t, s);
            assert_eq!(a.to_bits(), b.to_bits(), "cell ({t}, {s:?}) diverged");
        }
        // Re-evaluating the same plan is free.
        parallel.evaluate_plan(&plan);
        assert_eq!(parallel.loss_evaluations(), plan.len() as u64);
    }

    #[test]
    fn batch_then_single_cell_reads_are_consistent() {
        let (trace, proto, test) = setup();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let s = Subset::from_indices(&[0, 1]);
        let mut plan = EvalPlan::new();
        plan.add_column(trace.num_rounds(), s);
        oracle.evaluate_plan(&plan);
        let before = oracle.loss_evaluations();
        let total = oracle.total_utility(s);
        assert_eq!(
            oracle.loss_evaluations(),
            before,
            "column reads must all hit the table"
        );
        assert_eq!(total, oracle.total_utility_parallel(s));
    }

    #[test]
    fn fast_tier_oracle_is_deterministic_and_close_to_bit_exact() {
        let (trace, proto, test) = setup();
        let exact = UtilityOracle::new(&trace, &proto, &test).with_tier(DeterminismTier::BitExact);
        let fast = exact.isolated_with_tier(DeterminismTier::Fast);
        let fast2 = exact.isolated_with_tier(DeterminismTier::Fast);
        assert_eq!(fast.tier(), DeterminismTier::Fast);
        assert_eq!(exact.tier(), DeterminismTier::BitExact);
        for t in 0..trace.num_rounds() {
            for bits in 1u64..16 {
                let s = Subset::from_bits(bits);
                let a = exact.utility(t, s);
                let b = fast.utility(t, s);
                // Composite model-level bound; per-op ε is far tighter.
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                    "({t}, {s:?}): {a} vs {b}"
                );
                assert_eq!(
                    b.to_bits(),
                    fast2.utility(t, s).to_bits(),
                    "fast tier is deterministic"
                );
            }
        }
    }

    fn full_plan(rounds: usize, clients: usize) -> EvalPlan {
        let mut plan = EvalPlan::new();
        for t in 0..rounds {
            plan.add_subsets_of(t, Subset::full(clients));
        }
        plan
    }

    #[test]
    fn shared_cache_serves_bit_identical_values_and_counts_hits() {
        let (trace, proto, test) = setup();
        let solo = UtilityOracle::new(&trace, &proto, &test);
        let cache = fedval_cache::CellCache::in_memory(fedval_cache::DEFAULT_MEM_BUDGET_BYTES);
        let first = UtilityOracle::new(&trace, &proto, &test).with_shared_cache(Arc::clone(&cache));
        let second =
            UtilityOracle::new(&trace, &proto, &test).with_shared_cache(Arc::clone(&cache));

        let plan = full_plan(trace.num_rounds(), 4);
        solo.evaluate_plan(&plan);
        first.reset_counter();
        first.evaluate_plan(&plan);
        assert_eq!(first.loss_evaluations(), plan.len() as u64);
        assert_eq!(first.cell_hits(), 0);

        // The second oracle drafts entirely behind the first.
        second.reset_counter();
        second.evaluate_plan(&plan);
        assert_eq!(second.loss_evaluations(), 0, "hits must not count as calls");
        assert_eq!(second.cell_hits(), plan.len() as u64);

        for &(t, s) in plan.cells() {
            let expect = solo.utility(t, s).to_bits();
            assert_eq!(first.utility(t, s).to_bits(), expect);
            assert_eq!(second.utility(t, s).to_bits(), expect);
        }
    }

    #[test]
    fn adversarially_small_budget_is_bit_identical_to_unbounded() {
        let (trace, proto, test) = setup();
        let solo = UtilityOracle::new(&trace, &proto, &test);
        // One-cell budget: effectively evict-everything.
        let cache = fedval_cache::CellCache::in_memory(1);
        let starved =
            UtilityOracle::new(&trace, &proto, &test).with_shared_cache(Arc::clone(&cache));
        let plan = full_plan(trace.num_rounds(), 4);
        starved.evaluate_plan(&plan);
        for &(t, s) in plan.cells() {
            assert_eq!(
                starved.utility(t, s).to_bits(),
                solo.utility(t, s).to_bits(),
                "cell ({t}, {s:?}) diverged under eviction pressure"
            );
        }
        assert!(
            cache.stats().evictions > 0,
            "a one-cell budget must actually evict"
        );
    }

    #[test]
    fn eviction_is_bit_identical_across_tiers_and_pool_widths() {
        use fedval_runtime::Pool;
        let (trace, proto, test) = setup();
        let plan = full_plan(trace.num_rounds(), 4);
        for tier in [DeterminismTier::BitExact, DeterminismTier::Fast] {
            let baseline = UtilityOracle::new(&trace, &proto, &test).with_tier(tier);
            baseline.evaluate_plan(&plan);
            for width in [1usize, 4] {
                // A fresh one-cell cache per leg so every width fights
                // full eviction pressure on its own.
                let cache = fedval_cache::CellCache::in_memory(1);
                let starved = UtilityOracle::new(&trace, &proto, &test)
                    .with_tier(tier)
                    .with_pool(PoolHandle::owned(Pool::new(width)))
                    .with_parallelism(width)
                    .with_shared_cache(Arc::clone(&cache));
                starved.evaluate_plan(&plan);
                for &(t, s) in plan.cells() {
                    assert_eq!(
                        starved.utility(t, s).to_bits(),
                        baseline.utility(t, s).to_bits(),
                        "cell ({t}, {s:?}) diverged at tier {tier:?}, width {width}"
                    );
                }
                assert!(
                    cache.stats().evictions > 0,
                    "{tier:?}/{width} never evicted"
                );
            }
        }
    }

    #[test]
    fn disk_warm_start_serves_cells_without_recompute() {
        let (trace, proto, test) = setup();
        let dir =
            std::env::temp_dir().join(format!("fedval-oracle-warm-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = full_plan(trace.num_rounds(), 4);
        let solo = UtilityOracle::new(&trace, &proto, &test);

        {
            let cache =
                fedval_cache::CellCache::with_dir(fedval_cache::DEFAULT_MEM_BUDGET_BYTES, &dir);
            let cold =
                UtilityOracle::new(&trace, &proto, &test).with_shared_cache(Arc::clone(&cache));
            assert_eq!(cold.disk_warm_cells(), 0);
            cold.evaluate_plan(&plan);
            assert!(cache.flush() >= plan.len() as u64);
        }

        // Fresh cache = simulated process restart.
        let cache = fedval_cache::CellCache::with_dir(fedval_cache::DEFAULT_MEM_BUDGET_BYTES, &dir);
        let warm = UtilityOracle::new(&trace, &proto, &test).with_shared_cache(Arc::clone(&cache));
        assert_eq!(warm.disk_warm_cells(), plan.len() as u64);
        warm.reset_counter();
        warm.evaluate_plan(&plan);
        assert_eq!(
            warm.loss_evaluations(),
            0,
            "disk-warm cells must not recompute"
        );
        assert_eq!(warm.cell_hits(), plan.len() as u64);
        for &(t, s) in plan.cells() {
            assert_eq!(warm.utility(t, s).to_bits(), solo.utility(t, s).to_bits());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_distinguishes_trace_tier_and_model() {
        let (trace, proto, test) = setup();
        let a = UtilityOracle::new(&trace, &proto, &test);
        let b = UtilityOracle::new(&trace, &proto, &test);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "same inputs, same identity"
        );
        // A different model (other regularization) must change identity.
        let proto2 = LogisticRegression::new(2, 2, 0.5, 7);
        let c = UtilityOracle::new(&trace, &proto2, &test);
        assert_ne!(a.fingerprint(), c.fingerprint());
        // A different trace must change identity.
        let clients: Vec<Dataset> = (0..4)
            .map(|i| {
                let f = Matrix::from_fn(10, 2, |r, c| ((r + c + i) % 3) as f64 - 1.0);
                let labels: Vec<usize> = (0..10).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        let trace2 = train_federated(&proto, &clients, &FlConfig::new(3, 2, 0.2, 1));
        let d = UtilityOracle::new(&trace2, &proto, &test);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn total_utility_parallel_matches_serial_bits() {
        let (trace, proto, test) = setup();
        let a = UtilityOracle::new(&trace, &proto, &test).with_parallelism(1);
        let b = UtilityOracle::new(&trace, &proto, &test).with_parallelism(8);
        for bits in 1u64..16 {
            let s = Subset::from_bits(bits);
            assert_eq!(
                a.total_utility(s).to_bits(),
                b.total_utility_parallel(s).to_bits()
            );
        }
    }
}
