//! FedAvg federated-learning simulator.
//!
//! Implements the training protocol of the paper's Section III:
//!
//! 1. the server broadcasts `w_t` to all clients;
//! 2. every client takes local gradient step(s) `w^{t+1}_i = w_t − η_t ∇F_i(w_t)`;
//! 3. a subset `I_t` is selected uniformly at random (round 0 selects
//!    everyone — the "Everyone Being Heard" Assumption 1);
//! 4. the server aggregates `w_{t+1} = mean_{i∈I_t} w^{t+1}_i`.
//!
//! Crucially for data valuation, the simulator records a full
//! [`TrainingTrace`]: every client's local model in every round, the
//! selected subsets, and the server-side test losses. The
//! [`utility::UtilityOracle`] then evaluates the paper's round utilities
//! `U_t(S) = ℓ(w_t; D_c) − ℓ(mean_{k∈S} w^{t+1}_k; D_c)` — either one
//! cell at a time, or (the fast path) as an [`EvalPlan`] batch submitted
//! to the persistent `fedval_runtime` worker pool with per-worker
//! scratch models and cooperative cancellation. Evaluations are cached
//! exactly-once and counted (the cost unit of the paper's Fig. 8).
//!
//! * [`subset`] — bitmask-encoded client coalitions.
//! * [`config`] — simulation configuration.
//! * [`behavior`] — per-client adversarial/robustness behavior injection.
//! * [`trainer`] — the FedAvg loop producing a [`TrainingTrace`].
//! * [`utility`] — the utility oracle and its batch evaluation engine.
//! * [`utility_matrix`] — full and observed utility-matrix builders.

pub mod behavior;
pub mod config;
pub mod error;
pub mod subset;
pub mod trainer;
pub mod utility;
pub mod utility_matrix;

/// Largest client count for which the exact (full coalition-space) paths
/// run: exact enumeration registers `2^N` coalitions, so everything from
/// [`full_utility_matrix`] up through the valuation crates' exact
/// estimators is gated to `N ≤ 16` (65 536 coalitions — about the
/// practical ceiling for the `O(N · 2^N)` sums). Beyond this, use a
/// sampling estimator. This constant lives here, at the bottom of the
/// valuation stack, so every layer (`fl`, `mc` consumers, `shapley`)
/// shares one gate; `fedval_shapley` re-exports it for compatibility.
pub const MAX_EXACT_CLIENTS: usize = 16;

pub use behavior::ClientBehavior;
pub use config::FlConfig;
pub use error::OracleError;
pub use fedval_models::DeterminismTier;
pub use subset::Subset;
pub use trainer::{train_federated, try_train_federated, TrainingTrace};
pub use utility::{EvalPlan, UtilityOracle};
pub use utility_matrix::{
    full_utility_matrix, observed_entries, try_full_utility_matrix, ObservedEntry,
};
