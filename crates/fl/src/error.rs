//! Typed errors for the recorded-run utility layer.
//!
//! Everything exponential in the client count is gated on
//! [`MAX_EXACT_CLIENTS`](crate::MAX_EXACT_CLIENTS), and the fallible
//! entry points report violations as [`OracleError`] values instead of
//! panicking — the valuation crates convert these into their own error
//! types, so an invalid configuration surfaces as a `Result` all the way
//! up the stack.

use std::fmt;

/// Why a utility-oracle request could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleError {
    /// An exact-enumeration path was asked to enumerate `2^clients`
    /// coalitions with `clients` above the supported maximum.
    TooManyClients {
        /// Requested client count `N`.
        clients: usize,
        /// The enforced ceiling ([`MAX_EXACT_CLIENTS`](crate::MAX_EXACT_CLIENTS)).
        max: usize,
    },
    /// The recorded training trace contains no rounds, so there are no
    /// utilities to evaluate.
    EmptyTrace,
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::TooManyClients { clients, max } => write!(
                f,
                "exact enumeration over {clients} clients is exponential (max {max}); \
                 use a sampling estimator"
            ),
            OracleError::EmptyTrace => {
                write!(f, "training trace has no rounds; nothing to value")
            }
        }
    }
}

impl std::error::Error for OracleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_limit() {
        let e = OracleError::TooManyClients {
            clients: 17,
            max: 16,
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("16"));
        assert!(OracleError::EmptyTrace.to_string().contains("no rounds"));
    }
}
