//! Per-client behavior injection for robustness scenarios.
//!
//! The paper's fairness claims are about *realistic* federations — ones
//! with low-quality and outright adversarial participants. This module
//! gives the simulator a per-client [`ClientBehavior`] knob (carried by
//! [`FlConfig::behaviors`](crate::FlConfig::behaviors)) that the trainer
//! applies deterministically inside the local-update step, so behavior-
//! injected traces are exactly as reproducible as honest ones:
//!
//! * the selection RNG stream is untouched — behaviors never draw from
//!   the trainer's `StdRng`, so an all-[`Honest`](ClientBehavior::Honest)
//!   configuration is the *bit-identical* legacy code path;
//! * the only randomness a behavior uses
//!   ([`Straggler`](ClientBehavior::Straggler) participation coins) is a
//!   stateless hash of `(seed, client, round)`, independent of pool
//!   width, evaluation order, and every other client's behavior.
//!
//! Behaviors that skip training ([`FreeRider`](ClientBehavior::FreeRider),
//! a non-participating [`Straggler`](ClientBehavior::Straggler), a churned
//! client outside its [`Churn`](ClientBehavior::Churn) window) submit the
//! broadcast global model unchanged — a zero update, equivalently a
//! replay of the freshest model the client has seen. Under FedAvg
//! aggregation this dilutes every coalition the client joins, which is
//! precisely the signal the detection experiments expect valuations to
//! pick up. [`NoisyLabels`](ClientBehavior::NoisyLabels) is a *data*
//! intervention: the corruption is applied to the client's dataset at
//! world-build time (`fedval_data::behavior::apply_label_corruption`);
//! inside the protocol the client is honest.

/// How one client behaves across a FedAvg run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ClientBehavior {
    /// Trains honestly every round — the legacy (and default) path.
    #[default]
    Honest,
    /// Never trains; every round it submits the broadcast global model
    /// unchanged (a zero/stale update).
    FreeRider,
    /// Honest protocol participant whose local dataset has the given
    /// fraction of its labels flipped at world-build time. Inside the
    /// trainer this is indistinguishable from [`Honest`](Self::Honest);
    /// the harm comes from the corrupted gradients.
    NoisyLabels(f64),
    /// Participates in each round independently with the given
    /// probability (a deterministic `(seed, client, round)` coin);
    /// skipped rounds submit the broadcast model unchanged.
    Straggler(f64),
    /// Present only for rounds `join_round ≤ t < leave_round`; outside
    /// the window the client submits the broadcast model unchanged.
    Churn {
        /// First round (0-based) the client participates in.
        join_round: usize,
        /// First round the client no longer participates in.
        leave_round: usize,
    },
}

impl ClientBehavior {
    /// Whether this client actually trains in round `round` of a run
    /// seeded with `seed`. Deterministic: depends only on the arguments,
    /// never on shared RNG state.
    pub fn trains(&self, seed: u64, client: usize, round: usize) -> bool {
        match *self {
            ClientBehavior::Honest | ClientBehavior::NoisyLabels(_) => true,
            ClientBehavior::FreeRider => false,
            ClientBehavior::Straggler(p) => participation_coin(seed, client, round) < p,
            ClientBehavior::Churn {
                join_round,
                leave_round,
            } => join_round <= round && round < leave_round,
        }
    }

    /// Ground-truth "bad client" label for the detection experiments:
    /// `true` for every behavior that degrades the client's contribution
    /// (free riding, label noise, partial participation, churn).
    ///
    /// Degenerate parameters that make a behavior honest in practice
    /// (`NoisyLabels(0.0)`, `Straggler(p ≥ 1)`) are labelled good; a
    /// `Churn` window is always labelled bad — the scenario catalog only
    /// constructs genuinely partial windows.
    pub fn is_bad(&self) -> bool {
        match *self {
            ClientBehavior::Honest => false,
            ClientBehavior::FreeRider => true,
            ClientBehavior::NoisyLabels(f) => f > 0.0,
            ClientBehavior::Straggler(p) => p < 1.0,
            ClientBehavior::Churn { .. } => true,
        }
    }

    /// The label-flip fraction this behavior asks the world generator to
    /// apply (0 for every non-[`NoisyLabels`](Self::NoisyLabels) variant).
    pub fn label_noise_fraction(&self) -> f64 {
        match *self {
            ClientBehavior::NoisyLabels(f) => f.max(0.0),
            _ => 0.0,
        }
    }
}

/// Stateless participation coin in `[0, 1)`: a splitmix64 finalizer over
/// `(seed, client, round)`. Every tuple gets an independent,
/// reproducible draw without touching any shared RNG stream.
fn participation_coin(seed: u64, client: usize, round: usize) -> f64 {
    let mut z = seed
        ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (round as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        assert_eq!(ClientBehavior::default(), ClientBehavior::Honest);
        assert!(!ClientBehavior::default().is_bad());
    }

    #[test]
    fn honest_and_noisy_always_train() {
        for t in 0..20 {
            assert!(ClientBehavior::Honest.trains(1, 0, t));
            assert!(ClientBehavior::NoisyLabels(0.5).trains(1, 0, t));
        }
    }

    #[test]
    fn free_rider_never_trains_and_is_bad() {
        for t in 0..20 {
            assert!(!ClientBehavior::FreeRider.trains(7, 3, t));
        }
        assert!(ClientBehavior::FreeRider.is_bad());
    }

    #[test]
    fn straggler_coin_is_deterministic_and_roughly_calibrated() {
        let b = ClientBehavior::Straggler(0.3);
        let first: Vec<bool> = (0..400).map(|t| b.trains(11, 2, t)).collect();
        let second: Vec<bool> = (0..400).map(|t| b.trains(11, 2, t)).collect();
        assert_eq!(first, second, "same (seed, client, round) → same coin");
        let rate = first.iter().filter(|&&x| x).count() as f64 / 400.0;
        assert!(
            (rate - 0.3).abs() < 0.08,
            "participation rate {rate} far from 0.3"
        );
        // Different clients and seeds get independent streams.
        let other: Vec<bool> = (0..400).map(|t| b.trains(11, 3, t)).collect();
        assert_ne!(first, other);
        let reseeded: Vec<bool> = (0..400).map(|t| b.trains(12, 2, t)).collect();
        assert_ne!(first, reseeded);
    }

    #[test]
    fn straggler_extremes() {
        assert!((0..50).all(|t| ClientBehavior::Straggler(1.0).trains(3, 0, t)));
        assert!((0..50).all(|t| !ClientBehavior::Straggler(0.0).trains(3, 0, t)));
        assert!(!ClientBehavior::Straggler(1.0).is_bad());
        assert!(ClientBehavior::Straggler(0.5).is_bad());
    }

    #[test]
    fn churn_window_is_half_open() {
        let b = ClientBehavior::Churn {
            join_round: 2,
            leave_round: 5,
        };
        let active: Vec<bool> = (0..7).map(|t| b.trains(1, 0, t)).collect();
        assert_eq!(active, [false, false, true, true, true, false, false]);
        assert!(b.is_bad());
    }

    #[test]
    fn noisy_labels_reports_fraction_and_badness() {
        assert_eq!(ClientBehavior::NoisyLabels(0.4).label_noise_fraction(), 0.4);
        assert_eq!(ClientBehavior::Honest.label_noise_fraction(), 0.0);
        assert!(ClientBehavior::NoisyLabels(0.4).is_bad());
        assert!(!ClientBehavior::NoisyLabels(0.0).is_bad());
    }
}
