//! Bitmask-encoded client coalitions.
//!
//! The utility matrix is indexed by subsets `S ⊆ I`; with `N ≤ 63` clients
//! a `u64` bitmask is a compact, hashable, order-free key. All Shapley
//! computations in the workspace speak this type.

/// A subset of clients encoded as a bitmask (`bit i` ⇔ client `i` ∈ S).
///
/// ```
/// use fedval_fl::Subset;
/// let s = Subset::from_indices(&[0, 2]);
/// assert!(s.contains(2) && !s.contains(1));
/// assert_eq!(s.with(1), Subset::full(3));
/// assert_eq!(s.subsets().count(), 4); // power set of a 2-element set
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Subset(u64);

impl Subset {
    /// Maximum supported number of clients.
    pub const MAX_CLIENTS: usize = 63;

    /// The empty coalition.
    pub const EMPTY: Subset = Subset(0);

    /// Builds a subset from a raw bitmask.
    pub fn from_bits(bits: u64) -> Self {
        Subset(bits)
    }

    /// Builds a subset from client indices.
    pub fn from_indices(indices: &[usize]) -> Self {
        let mut bits = 0u64;
        for &i in indices {
            assert!(i < Self::MAX_CLIENTS, "client index {i} out of range");
            bits |= 1 << i;
        }
        Subset(bits)
    }

    /// The full coalition over `n` clients.
    pub fn full(n: usize) -> Self {
        assert!(n <= Self::MAX_CLIENTS, "too many clients");
        if n == 0 {
            Subset(0)
        } else {
            Subset((1u64 << n) - 1)
        }
    }

    /// Raw bitmask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` for the empty coalition.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    pub fn contains(self, client: usize) -> bool {
        client < Self::MAX_CLIENTS && self.0 & (1 << client) != 0
    }

    /// `S ∪ {client}`.
    pub fn with(self, client: usize) -> Self {
        assert!(client < Self::MAX_CLIENTS);
        Subset(self.0 | (1 << client))
    }

    /// `S \ {client}`.
    pub fn without(self, client: usize) -> Self {
        assert!(client < Self::MAX_CLIENTS);
        Subset(self.0 & !(1 << client))
    }

    /// `true` when `self ⊆ other`.
    pub fn is_subset_of(self, other: Subset) -> bool {
        self.0 & !other.0 == 0
    }

    /// Union.
    pub fn union(self, other: Subset) -> Self {
        Subset(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersection(self, other: Subset) -> Self {
        Subset(self.0 & other.0)
    }

    /// Member indices in increasing order.
    pub fn members(self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        let mut bits = self.0;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            out.push(i);
            bits &= bits - 1;
        }
        out
    }

    /// Iterates over every subset of `self` (including the empty set and
    /// `self` itself), in increasing bitmask order of the enumeration.
    pub fn subsets(self) -> SubsetIter {
        SubsetIter {
            universe: self.0,
            current: 0,
            done: false,
        }
    }
}

/// Iterator over all subsets of a universe bitmask, using the standard
/// `(sub - universe) & universe` enumeration trick.
pub struct SubsetIter {
    universe: u64,
    current: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = Subset;

    fn next(&mut self) -> Option<Subset> {
        if self.done {
            return None;
        }
        let out = Subset(self.current);
        if self.current == self.universe {
            self.done = true;
        } else {
            self.current = (self.current.wrapping_sub(self.universe)) & self.universe;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_indices_roundtrip() {
        let s = Subset::from_indices(&[0, 3, 5]);
        assert_eq!(s.members(), vec![0, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(3));
        assert!(!s.contains(1));
    }

    #[test]
    fn full_contains_everyone() {
        let s = Subset::full(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.bits(), 0b11111);
        assert_eq!(Subset::full(0), Subset::EMPTY);
    }

    #[test]
    fn with_and_without() {
        let s = Subset::EMPTY.with(2).with(4);
        assert_eq!(s.members(), vec![2, 4]);
        assert_eq!(s.without(2).members(), vec![4]);
        assert_eq!(s.without(3), s, "removing a non-member is a no-op");
    }

    #[test]
    fn subset_relation() {
        let small = Subset::from_indices(&[1, 2]);
        let big = Subset::from_indices(&[0, 1, 2, 3]);
        assert!(small.is_subset_of(big));
        assert!(!big.is_subset_of(small));
        assert!(Subset::EMPTY.is_subset_of(small));
        assert!(small.is_subset_of(small));
    }

    #[test]
    fn union_intersection() {
        let a = Subset::from_indices(&[0, 1]);
        let b = Subset::from_indices(&[1, 2]);
        assert_eq!(a.union(b).members(), vec![0, 1, 2]);
        assert_eq!(a.intersection(b).members(), vec![1]);
    }

    #[test]
    fn subsets_enumerates_power_set() {
        let s = Subset::from_indices(&[0, 2]);
        let all: Vec<u64> = s.subsets().map(|x| x.bits()).collect();
        assert_eq!(all.len(), 4);
        assert!(all.contains(&0));
        assert!(all.contains(&0b001));
        assert!(all.contains(&0b100));
        assert!(all.contains(&0b101));
    }

    #[test]
    fn subsets_of_empty_is_just_empty() {
        let all: Vec<Subset> = Subset::EMPTY.subsets().collect();
        assert_eq!(all, vec![Subset::EMPTY]);
    }

    #[test]
    fn subsets_count_is_power_of_two() {
        let s = Subset::full(6);
        assert_eq!(s.subsets().count(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_large_index() {
        let _ = Subset::from_indices(&[63]);
    }
}
