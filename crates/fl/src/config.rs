//! Federated-learning simulation configuration.

use crate::behavior::ClientBehavior;
use fedval_models::{DeterminismTier, LearningRate};

/// Configuration of one FedAvg run.
#[derive(Debug, Clone)]
pub struct FlConfig {
    /// Number of training rounds `T`.
    pub rounds: usize,
    /// Number of clients selected per round (`|I_t| = K`); clamped to the
    /// client count. Round 0 always selects everyone (Assumption 1).
    pub clients_per_round: usize,
    /// Local gradient steps per round (the paper's theory uses 1).
    pub local_steps: usize,
    /// Learning-rate schedule `η_t`.
    pub learning_rate: LearningRate,
    /// RNG seed for client selection (and minibatch sampling when
    /// `batch_size` is set).
    pub seed: u64,
    /// When `false`, round 0 samples like every other round instead of
    /// selecting everyone — used to ablate Assumption 1.
    pub everyone_heard_round: bool,
    /// Minibatch size for local steps. `None` (the default) runs the
    /// paper's deterministic full-batch update (equation (3)), which the
    /// theory sections assume; `Some(b)` runs standard FedAvg stochastic
    /// local steps on random size-`b` minibatches.
    ///
    /// Note: minibatch draws are seeded per client, so two clients with
    /// identical data produce (slightly) different local models in this
    /// mode — use full batch for the identical-client fairness
    /// constructions, as the paper's theory does.
    pub batch_size: Option<usize>,
    /// Numeric tier of the local-update kernels. The default is the
    /// process default ([`DeterminismTier::default_tier`], i.e.
    /// `FEDVAL_TIER` or `BitExact`). `Fast` trades the bit-exact
    /// reduction order for FMA-fused GEMM kernels — trajectories remain
    /// deterministic run-to-run at a fixed tier, but differ across tiers
    /// within the documented ε per operation.
    pub tier: DeterminismTier,
    /// Per-client protocol behavior (index = client id); clients beyond
    /// the list's length are [`ClientBehavior::Honest`]. Empty (the
    /// default) is the exact legacy all-honest code path — behaviors
    /// never touch the selection RNG stream, so honest traces are
    /// bit-identical with or without this field. See
    /// [`crate::behavior`].
    pub behaviors: Vec<ClientBehavior>,
}

impl FlConfig {
    /// A configuration matching the paper's small experiments: `T` rounds,
    /// `K` clients per round, one local step, constant rate.
    pub fn new(rounds: usize, clients_per_round: usize, eta: f64, seed: u64) -> Self {
        FlConfig {
            rounds,
            clients_per_round,
            local_steps: 1,
            learning_rate: LearningRate::Constant(eta),
            seed,
            everyone_heard_round: true,
            batch_size: None,
            tier: DeterminismTier::default_tier(),
            behaviors: Vec::new(),
        }
    }

    /// Builder-style override of the learning-rate schedule.
    pub fn with_learning_rate(mut self, lr: LearningRate) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Builder-style override of local step count.
    pub fn with_local_steps(mut self, steps: usize) -> Self {
        assert!(steps >= 1, "need at least one local step");
        self.local_steps = steps;
        self
    }

    /// Builder-style toggle for the Assumption-1 full round.
    pub fn with_everyone_heard(mut self, on: bool) -> Self {
        self.everyone_heard_round = on;
        self
    }

    /// Builder-style override of the minibatch size (stochastic local
    /// updates, as in standard FedAvg).
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "batch size must be positive");
        self.batch_size = Some(batch);
        self
    }

    /// Builder-style override of the numeric tier the local-update
    /// kernels run at (see [`DeterminismTier`]).
    pub fn with_tier(mut self, tier: DeterminismTier) -> Self {
        self.tier = tier;
        self
    }

    /// Builder-style per-client behavior injection (index = client id;
    /// missing entries are honest). See [`crate::behavior`].
    pub fn with_behaviors(mut self, behaviors: Vec<ClientBehavior>) -> Self {
        self.behaviors = behaviors;
        self
    }

    /// The behavior of client `i` (honest beyond the configured list).
    pub fn behavior_of(&self, i: usize) -> ClientBehavior {
        self.behaviors.get(i).copied().unwrap_or_default()
    }

    /// A stable fingerprint of every field that shapes a training run,
    /// for keying persisted traces by `(scenario, seed, fl-config)`
    /// *before* training happens. Hashes the `Debug` rendering — floats
    /// print shortest-round-trip, so distinct bit patterns render
    /// distinctly — and any drift in the rendering across versions is a
    /// cache miss (a retrain), never a wrong hit.
    pub fn cache_fingerprint(&self) -> fedval_cache::Fingerprint {
        let mut h = fedval_cache::FingerprintHasher::new("fedval-flconfig-v1");
        h.write_bytes(format!("{self:?}").as_bytes());
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sets_paper_defaults() {
        let c = FlConfig::new(10, 3, 0.1, 7);
        assert_eq!(c.rounds, 10);
        assert_eq!(c.clients_per_round, 3);
        assert_eq!(c.local_steps, 1);
        assert!(c.everyone_heard_round);
        assert!(c.batch_size.is_none());
        assert!(c.behaviors.is_empty());
        assert_eq!(c.behavior_of(3), ClientBehavior::Honest);
        assert_eq!(c.learning_rate.at(0), 0.1);
    }

    #[test]
    fn builders_override() {
        let c = FlConfig::new(5, 2, 0.1, 1)
            .with_local_steps(4)
            .with_everyone_heard(false)
            .with_learning_rate(LearningRate::proposition2(0.5, 2.0));
        assert_eq!(c.local_steps, 4);
        assert!(!c.everyone_heard_round);
        assert!(c.learning_rate.at(1) < c.learning_rate.at(0));
    }

    #[test]
    #[should_panic(expected = "at least one local step")]
    fn zero_local_steps_rejected() {
        let _ = FlConfig::new(1, 1, 0.1, 1).with_local_steps(0);
    }

    #[test]
    fn batch_size_builder() {
        let c = FlConfig::new(1, 1, 0.1, 1).with_batch_size(16);
        assert_eq!(c.batch_size, Some(16));
    }

    #[test]
    fn tier_defaults_to_process_default_and_overrides() {
        let c = FlConfig::new(1, 1, 0.1, 1);
        assert_eq!(c.tier, DeterminismTier::default_tier());
        let c = c.with_tier(DeterminismTier::Fast);
        assert_eq!(c.tier, DeterminismTier::Fast);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let _ = FlConfig::new(1, 1, 0.1, 1).with_batch_size(0);
    }

    #[test]
    fn cache_fingerprint_tracks_training_relevant_fields() {
        // Pin the tier: the process default depends on FEDVAL_TIER.
        let cfg =
            |r, k, eta, seed| FlConfig::new(r, k, eta, seed).with_tier(DeterminismTier::BitExact);
        let base = cfg(5, 2, 0.1, 1);
        assert_eq!(
            base.cache_fingerprint(),
            cfg(5, 2, 0.1, 1).cache_fingerprint(),
            "identical configurations share a world"
        );
        for other in [
            cfg(6, 2, 0.1, 1),
            cfg(5, 3, 0.1, 1),
            cfg(5, 2, 0.2, 1),
            cfg(5, 2, 0.1, 2),
            cfg(5, 2, 0.1, 1).with_tier(DeterminismTier::Fast),
            cfg(5, 2, 0.1, 1).with_behaviors(vec![ClientBehavior::FreeRider]),
            cfg(5, 2, 0.1, 1).with_everyone_heard(false),
        ] {
            assert_ne!(
                base.cache_fingerprint(),
                other.cache_fingerprint(),
                "changed field must change the world key: {other:?}"
            );
        }
    }

    #[test]
    fn behaviors_builder_indexes_per_client() {
        let c = FlConfig::new(1, 1, 0.1, 1)
            .with_behaviors(vec![ClientBehavior::Honest, ClientBehavior::FreeRider]);
        assert_eq!(c.behavior_of(1), ClientBehavior::FreeRider);
        // Beyond the list: honest.
        assert_eq!(c.behavior_of(2), ClientBehavior::Honest);
    }
}
