//! Concurrency guarantees of the batch utility-evaluation engine:
//!
//! 1. **Exactly-once**: no matter how many threads race on overlapping
//!    plans and single-cell queries, each distinct `(round, subset)` cell
//!    is evaluated exactly once (`loss_evaluations()` equals the number
//!    of distinct cells).
//! 2. **Determinism**: values produced under contention — and across
//!    worker pools of any size — are bit-identical to a single-threaded
//!    run with the same seed.
//! 3. **Cancellation**: a cancelled batch stops at a cell boundary,
//!    reports [`Cancelled`], and leaves already-evaluated cells valid.
//!
//! (The `std::thread::scope` uses below are the *test harness* hammering
//! the oracle from many threads; the oracle itself routes all batch
//! parallelism through `fedval_runtime::Pool`.)

use fedval_data::Dataset;
use fedval_fl::{train_federated, EvalPlan, FlConfig, Subset, UtilityOracle};
use fedval_linalg::Matrix;
use fedval_models::{LogisticRegression, Model};
use fedval_runtime::{CancelToken, Cancelled, Pool, PoolHandle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Test double: a model that cancels a [`CancelToken`] from inside its
/// own `loss()` after a fixed number of evaluations (counted across all
/// clones), pinning the cancellation to an exact cell boundary.
struct CancellingModel {
    inner: LogisticRegression,
    calls: Arc<AtomicU64>,
    trigger: u64,
    token: CancelToken,
}

impl Model for CancellingModel {
    fn params(&self) -> &[f64] {
        self.inner.params()
    }

    fn params_mut(&mut self) -> &mut [f64] {
        self.inner.params_mut()
    }

    fn loss(&self, data: &Dataset) -> f64 {
        if self.calls.fetch_add(1, Ordering::SeqCst) + 1 == self.trigger {
            self.token.cancel();
        }
        self.inner.loss(data)
    }

    fn grad(&self, data: &Dataset, out: &mut [f64]) -> f64 {
        self.inner.grad(data, out)
    }

    fn predict(&self, x: &[f64]) -> usize {
        self.inner.predict(x)
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(CancellingModel {
            inner: self.inner.clone(),
            calls: Arc::clone(&self.calls),
            trigger: self.trigger,
            token: self.token.clone(),
        })
    }
}

fn world(
    n: usize,
    rounds: usize,
    k: usize,
) -> (fedval_fl::TrainingTrace, LogisticRegression, Dataset) {
    let clients: Vec<Dataset> = (0..n)
        .map(|i| {
            let f = Matrix::from_fn(12, 3, |r, c| {
                (((r + 1) * (c + 2) + 3 * i) % 7) as f64 / 3.0 - 1.0
            });
            let labels: Vec<usize> = (0..12).map(|r| (r + i) % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        })
        .collect();
    let test = {
        let f = Matrix::from_fn(16, 3, |r, c| ((r * 3 + c) % 7) as f64 / 3.0 - 1.0);
        let labels: Vec<usize> = (0..16).map(|r| r % 2).collect();
        Dataset::new(f, labels, 2).unwrap()
    };
    let proto = LogisticRegression::new(3, 2, 0.01, 11);
    let trace = train_federated(&proto, &clients, &FlConfig::new(rounds, k, 0.3, 5));
    (trace, proto, test)
}

/// The full grid of distinct cells for an `n`-client, `rounds`-round run.
fn full_plan(n: usize, rounds: usize) -> EvalPlan {
    let mut plan = EvalPlan::new();
    for t in 0..rounds {
        plan.add_subsets_of(t, Subset::full(n));
    }
    plan
}

#[test]
fn hammered_oracle_evaluates_each_cell_exactly_once() {
    let (trace, proto, test) = world(6, 4, 3);
    let n = 6;
    let rounds = 4;
    let plan = full_plan(n, rounds);
    let distinct = plan.len() as u64; // (2^6 − 1) · 4 non-empty cells

    let oracle = UtilityOracle::new(&trace, &proto, &test);
    oracle.reset_counter();

    // 8 hammer threads: half replay the full overlapping plan through the
    // batch engine, half walk the same cells through the single-cell API.
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let oracle = &oracle;
            let plan = &plan;
            scope.spawn(move || {
                if worker % 2 == 0 {
                    oracle.evaluate_plan(plan);
                } else {
                    // Walk in a worker-dependent order to maximize races.
                    let mut cells: Vec<_> = plan.cells().to_vec();
                    if worker % 4 == 1 {
                        cells.reverse();
                    }
                    for (t, s) in cells {
                        let v = oracle.utility(t, s);
                        assert!(v.is_finite());
                    }
                }
            });
        }
    });

    assert_eq!(
        oracle.loss_evaluations(),
        distinct,
        "every distinct cell must be evaluated exactly once under contention"
    );
}

#[test]
fn hammered_values_are_bit_identical_to_single_threaded() {
    let (trace, proto, test) = world(5, 4, 3);
    let plan = full_plan(5, 4);

    // Reference: strictly single-threaded evaluation.
    let serial = UtilityOracle::new(&trace, &proto, &test).with_parallelism(1);
    serial.evaluate_plan(&plan);

    // Contended: many batch workers plus racing readers.
    let parallel = UtilityOracle::new(&trace, &proto, &test).with_parallelism(8);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let parallel = &parallel;
            let plan = &plan;
            scope.spawn(move || parallel.evaluate_plan(plan));
        }
    });

    for &(t, s) in plan.cells() {
        assert_eq!(
            serial.utility(t, s).to_bits(),
            parallel.utility(t, s).to_bits(),
            "cell ({t}, {s:?}) must be bit-identical under contention"
        );
    }
}

#[test]
fn concurrent_column_prefetches_share_the_table() {
    let (trace, proto, test) = world(6, 5, 3);
    let oracle = UtilityOracle::new(&trace, &proto, &test);
    oracle.reset_counter();

    // Many threads prefetch overlapping columns (the TMC access pattern).
    let subsets: Vec<Subset> = (1u64..32).map(Subset::from_bits).collect();
    std::thread::scope(|scope| {
        for chunk in subsets.chunks(8) {
            let oracle = &oracle;
            scope.spawn(move || {
                for &s in chunk {
                    let a = oracle.total_utility_parallel(s);
                    let b = oracle.total_utility(s);
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            });
        }
    });

    // 31 subsets × 5 rounds distinct cells, each exactly once.
    assert_eq!(oracle.loss_evaluations(), 31 * 5);
}

#[test]
fn valuations_bit_identical_across_pool_sizes_and_serial_path() {
    let (trace, proto, test) = world(6, 4, 3);
    let plan = full_plan(6, 4);
    let distinct = plan.len() as u64;

    // Pre-refactor serial reference: `with_parallelism(1)` takes the
    // inline scratch-model loop — the code path that predates the pool.
    let serial = UtilityOracle::new(&trace, &proto, &test).with_parallelism(1);
    serial.reset_counter();
    serial.evaluate_plan(&plan);
    assert_eq!(serial.loss_evaluations(), distinct);

    for pool_size in [1usize, 2, 4] {
        let oracle = UtilityOracle::new(&trace, &proto, &test)
            .with_pool(PoolHandle::owned(Pool::new(pool_size)));
        assert_eq!(oracle.parallelism(), pool_size);
        oracle.reset_counter();
        oracle.evaluate_plan(&plan);
        assert_eq!(
            oracle.loss_evaluations(),
            distinct,
            "pool size {pool_size}: each distinct cell exactly once"
        );
        for &(t, s) in plan.cells() {
            assert_eq!(
                serial.utility(t, s).to_bits(),
                oracle.utility(t, s).to_bits(),
                "cell ({t}, {s:?}) diverged from the serial path at pool size {pool_size}"
            );
        }
    }
}

#[test]
fn cancelled_batch_reports_cancelled_and_keeps_partial_results() {
    let (trace, proto, test) = world(6, 4, 3);
    let plan = full_plan(6, 4);

    // Pre-cancelled: nothing is evaluated at all.
    let oracle = UtilityOracle::new(&trace, &proto, &test);
    oracle.reset_counter();
    let token = CancelToken::new();
    token.cancel();
    assert_eq!(oracle.try_evaluate_plan(&plan, &token), Err(Cancelled));
    assert_eq!(oracle.loss_evaluations(), 0);

    // Cancelled mid-batch, deterministically: a wrapper model flips the
    // token from inside its own `loss()` once a budget of evaluations is
    // spent, so the cut lands at an exact cell boundary — the serial
    // path must stop within one cell of it.
    let budget = 7u64;
    let token = CancelToken::new();
    let wrapper = CancellingModel {
        inner: proto.clone(),
        // The oracle's constructor itself evaluates the 4 per-round base
        // losses through this model; spend the budget after those.
        calls: Arc::new(AtomicU64::new(0)),
        trigger: 4 + budget,
        token: token.clone(),
    };
    let oracle = UtilityOracle::new(&trace, &wrapper, &test).with_parallelism(1);
    oracle.reset_counter();
    assert_eq!(oracle.try_evaluate_plan(&plan, &token), Err(Cancelled));
    let after_cancel = oracle.loss_evaluations();
    assert_eq!(
        after_cancel, budget,
        "the batch stopped exactly one cell after the cancellation"
    );

    // Partial results are valid and a retry completes the remainder
    // exactly once.
    let fresh = CancelToken::new();
    oracle.try_evaluate_plan(&plan, &fresh).unwrap();
    assert_eq!(oracle.loss_evaluations(), plan.len() as u64);
    let reference = UtilityOracle::new(&trace, &proto, &test).with_parallelism(1);
    for &(t, s) in plan.cells() {
        assert_eq!(
            reference.utility(t, s).to_bits(),
            oracle.utility(t, s).to_bits()
        );
    }
}

#[test]
fn isolated_oracle_starts_with_an_empty_cache() {
    let (trace, proto, test) = world(5, 3, 3);
    let oracle = UtilityOracle::new(&trace, &proto, &test);
    let plan = full_plan(5, 3);
    oracle.reset_counter();
    oracle.evaluate_plan(&plan);
    let cost = oracle.loss_evaluations();
    assert_eq!(cost, plan.len() as u64);

    // The isolated clone re-pays the full cost and agrees bit-for-bit.
    let iso = oracle.isolated();
    assert_eq!(iso.loss_evaluations(), 0, "counter starts at zero");
    iso.evaluate_plan(&plan);
    assert_eq!(iso.loss_evaluations(), cost, "full cost paid again");
    for &(t, s) in plan.cells() {
        assert_eq!(oracle.utility(t, s).to_bits(), iso.utility(t, s).to_bits());
    }
    // Base losses were copied, not recounted.
    for t in 0..3 {
        assert_eq!(oracle.base_loss(t).to_bits(), iso.base_loss(t).to_bits());
    }
}
