//! Concurrency guarantees of the batch utility-evaluation engine:
//!
//! 1. **Exactly-once**: no matter how many threads race on overlapping
//!    plans and single-cell queries, each distinct `(round, subset)` cell
//!    is evaluated exactly once (`loss_evaluations()` equals the number
//!    of distinct cells).
//! 2. **Determinism**: values produced under contention are bit-identical
//!    to a single-threaded run with the same seed.

use fedval_data::Dataset;
use fedval_fl::{train_federated, EvalPlan, FlConfig, Subset, UtilityOracle};
use fedval_linalg::Matrix;
use fedval_models::LogisticRegression;

fn world(
    n: usize,
    rounds: usize,
    k: usize,
) -> (fedval_fl::TrainingTrace, LogisticRegression, Dataset) {
    let clients: Vec<Dataset> = (0..n)
        .map(|i| {
            let f = Matrix::from_fn(12, 3, |r, c| {
                (((r + 1) * (c + 2) + 3 * i) % 7) as f64 / 3.0 - 1.0
            });
            let labels: Vec<usize> = (0..12).map(|r| (r + i) % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        })
        .collect();
    let test = {
        let f = Matrix::from_fn(16, 3, |r, c| ((r * 3 + c) % 7) as f64 / 3.0 - 1.0);
        let labels: Vec<usize> = (0..16).map(|r| r % 2).collect();
        Dataset::new(f, labels, 2).unwrap()
    };
    let proto = LogisticRegression::new(3, 2, 0.01, 11);
    let trace = train_federated(&proto, &clients, &FlConfig::new(rounds, k, 0.3, 5));
    (trace, proto, test)
}

/// The full grid of distinct cells for an `n`-client, `rounds`-round run.
fn full_plan(n: usize, rounds: usize) -> EvalPlan {
    let mut plan = EvalPlan::new();
    for t in 0..rounds {
        plan.add_subsets_of(t, Subset::full(n));
    }
    plan
}

#[test]
fn hammered_oracle_evaluates_each_cell_exactly_once() {
    let (trace, proto, test) = world(6, 4, 3);
    let n = 6;
    let rounds = 4;
    let plan = full_plan(n, rounds);
    let distinct = plan.len() as u64; // (2^6 − 1) · 4 non-empty cells

    let oracle = UtilityOracle::new(&trace, &proto, &test);
    oracle.reset_counter();

    // 8 hammer threads: half replay the full overlapping plan through the
    // batch engine, half walk the same cells through the single-cell API.
    std::thread::scope(|scope| {
        for worker in 0..8 {
            let oracle = &oracle;
            let plan = &plan;
            scope.spawn(move || {
                if worker % 2 == 0 {
                    oracle.evaluate_plan(plan);
                } else {
                    // Walk in a worker-dependent order to maximize races.
                    let mut cells: Vec<_> = plan.cells().to_vec();
                    if worker % 4 == 1 {
                        cells.reverse();
                    }
                    for (t, s) in cells {
                        let v = oracle.utility(t, s);
                        assert!(v.is_finite());
                    }
                }
            });
        }
    });

    assert_eq!(
        oracle.loss_evaluations(),
        distinct,
        "every distinct cell must be evaluated exactly once under contention"
    );
}

#[test]
fn hammered_values_are_bit_identical_to_single_threaded() {
    let (trace, proto, test) = world(5, 4, 3);
    let plan = full_plan(5, 4);

    // Reference: strictly single-threaded evaluation.
    let serial = UtilityOracle::new(&trace, &proto, &test).with_parallelism(1);
    serial.evaluate_plan(&plan);

    // Contended: many batch workers plus racing readers.
    let parallel = UtilityOracle::new(&trace, &proto, &test).with_parallelism(8);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let parallel = &parallel;
            let plan = &plan;
            scope.spawn(move || parallel.evaluate_plan(plan));
        }
    });

    for &(t, s) in plan.cells() {
        assert_eq!(
            serial.utility(t, s).to_bits(),
            parallel.utility(t, s).to_bits(),
            "cell ({t}, {s:?}) must be bit-identical under contention"
        );
    }
}

#[test]
fn concurrent_column_prefetches_share_the_table() {
    let (trace, proto, test) = world(6, 5, 3);
    let oracle = UtilityOracle::new(&trace, &proto, &test);
    oracle.reset_counter();

    // Many threads prefetch overlapping columns (the TMC access pattern).
    let subsets: Vec<Subset> = (1u64..32).map(Subset::from_bits).collect();
    std::thread::scope(|scope| {
        for chunk in subsets.chunks(8) {
            let oracle = &oracle;
            scope.spawn(move || {
                for &s in chunk {
                    let a = oracle.total_utility_parallel(s);
                    let b = oracle.total_utility(s);
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            });
        }
    });

    // 31 subsets × 5 rounds distinct cells, each exactly once.
    assert_eq!(oracle.loss_evaluations(), 31 * 5);
}
