//! Compatibility contracts of the batched numeric kernels (PR 5):
//!
//! 1. **Training trajectories are unchanged.** Full-batch local updates
//!    and seeded minibatch SGD — including the `batch_size = 1`
//!    per-sample regime — produce bit-identical parameter trajectories
//!    to the pre-refactor per-sample loops (retained on each model as
//!    `grad_per_sample`), on the same seeded 6-client world the
//!    valuation suites use.
//! 2. **Cancellation lands inside a cell.** A token cancelled while the
//!    model is mid-way through a batched loss evaluation aborts that
//!    cell between minibatch chunks: the batch reports `Cancelled`, the
//!    half-evaluated cell is neither stored nor counted, and a retry
//!    completes it exactly once with unchanged values.

use fedval_data::Dataset;
use fedval_fl::{train_federated, EvalPlan, FlConfig, Subset, UtilityOracle};
use fedval_linalg::{vector, Matrix};
use fedval_models::{
    optim, Activation, DeterminismTier, LogisticRegression, Mlp, Model, Workspace,
};
use fedval_runtime::{CancelToken, Cancelled};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The seeded 6-client world shared with the valuation test suites.
fn six_client_world() -> (Vec<Dataset>, Dataset) {
    let clients: Vec<Dataset> = (0..6)
        .map(|i| {
            let f = Matrix::from_fn(12, 3, |r, c| {
                (((r + 1) * (c + 2) + 3 * i) % 7) as f64 / 3.0 - 1.0
            });
            let labels: Vec<usize> = (0..12).map(|r| (r + i) % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        })
        .collect();
    let test = {
        let f = Matrix::from_fn(16, 3, |r, c| ((r * 3 + c) % 7) as f64 / 3.0 - 1.0);
        let labels: Vec<usize> = (0..16).map(|r| r % 2).collect();
        Dataset::new(f, labels, 2).unwrap()
    };
    (clients, test)
}

/// The pre-refactor local-update loop: per-sample gradients
/// (`grad_per_sample`, evaluated at the evolving parameters), fresh
/// buffers per step, `Dataset::subset` per minibatch — exactly what the
/// trainer ran before the batched kernels.
fn reference_minibatch_updates<M: Model>(
    model: &mut M,
    grad_per_sample: &dyn Fn(&M, &Dataset, &mut [f64]) -> f64,
    data: &Dataset,
    eta: f64,
    steps: usize,
    batch: usize,
    seed: u64,
) {
    let b = batch.min(data.len()).max(1);
    let mut grad = vec![0.0; model.num_params()];
    if b == data.len() {
        for _ in 0..steps {
            grad_per_sample(model, data, &mut grad);
            vector::axpy(-eta, &grad, model.params_mut());
        }
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..steps {
        let mut picks = sample(&mut rng, data.len(), b).into_vec();
        picks.sort_unstable();
        let minibatch = data.subset(&picks);
        grad_per_sample(model, &minibatch, &mut grad);
        vector::axpy(-eta, &grad, model.params_mut());
    }
}

#[test]
fn minibatch_sgd_bit_identical_to_per_sample_reference() {
    let (clients, _) = six_client_world();
    // batch 1 (the per-sample regime), a mid-size batch, and a clamped
    // over-large batch, for both model families.
    for batch in [1usize, 4, 64] {
        for (ci, data) in clients.iter().enumerate() {
            let seed = 100 + ci as u64;

            // Logistic regression. The per-sample reference loops are
            // inherently bit-exact, so the batched side is pinned to
            // BitExact regardless of the FEDVAL_TIER environment.
            let mut batched = LogisticRegression::new(3, 2, 0.01, 7);
            let mut reference = batched.clone();
            let mut scratch = optim::SgdScratch::new();
            scratch.ws.set_tier(DeterminismTier::BitExact);
            optim::minibatch_updates(&mut batched, data, 0.2, 5, batch, seed, &mut scratch);
            reference_minibatch_updates(
                &mut reference,
                &|m: &LogisticRegression, d, g| m.grad_per_sample(d, g),
                data,
                0.2,
                5,
                batch,
                seed,
            );
            for (a, b) in batched.params().iter().zip(reference.params()) {
                assert_eq!(a.to_bits(), b.to_bits(), "logreg batch={batch} client={ci}");
            }

            // MLP.
            let mut batched = Mlp::new(&[3, 8, 2], Activation::Tanh, 0.01, 7);
            let mut reference = batched.clone();
            optim::minibatch_updates(&mut batched, data, 0.2, 5, batch, seed, &mut scratch);
            reference_minibatch_updates(
                &mut reference,
                &|m: &Mlp, d, g| m.grad_per_sample(d, g),
                data,
                0.2,
                5,
                batch,
                seed,
            );
            for (a, b) in batched.params().iter().zip(reference.params()) {
                assert_eq!(a.to_bits(), b.to_bits(), "mlp batch={batch} client={ci}");
            }
        }
    }
}

#[test]
fn federated_training_trajectories_unchanged_across_batch_sizes() {
    // train_federated through the batched kernels is deterministic and
    // the batch_size knob keeps its semantics: None == full batch,
    // clamped large batch == full batch, small batches differ.
    let (clients, _) = six_client_world();
    let proto = LogisticRegression::new(3, 2, 0.01, 11);
    let full = train_federated(&proto, &clients, &FlConfig::new(4, 3, 0.3, 5));
    let clamped = train_federated(
        &proto,
        &clients,
        &FlConfig::new(4, 3, 0.3, 5).with_batch_size(10_000),
    );
    assert_eq!(full.final_params, clamped.final_params);
    let mb1_a = train_federated(
        &proto,
        &clients,
        &FlConfig::new(4, 3, 0.3, 5).with_batch_size(1),
    );
    let mb1_b = train_federated(
        &proto,
        &clients,
        &FlConfig::new(4, 3, 0.3, 5).with_batch_size(1),
    );
    assert_eq!(mb1_a.final_params, mb1_b.final_params);
    assert_ne!(mb1_a.final_params, full.final_params);
}

#[test]
fn oracle_cells_match_per_sample_loss_reference() {
    // Every utility cell evaluated through the batched kernels equals
    // base_loss − per-sample loss of the aggregate, to the bit. The
    // oracle is pinned to BitExact (the per-sample reference loop is
    // inherently bit-exact); the base-loss tier cancels out of both
    // sides of the comparison.
    let (clients, test) = six_client_world();
    let proto = LogisticRegression::new(3, 2, 0.01, 11);
    let trace = train_federated(&proto, &clients, &FlConfig::new(4, 3, 0.3, 5));
    let oracle = UtilityOracle::new(&trace, &proto, &test).with_tier(DeterminismTier::BitExact);
    let mut plan = EvalPlan::new();
    for t in 0..trace.num_rounds() {
        plan.add_subsets_of(t, Subset::full(6));
    }
    oracle.evaluate_plan(&plan);
    let mut scratch = proto.clone();
    for &(t, s) in plan.cells() {
        let aggregate = trace.aggregate(t, s).unwrap();
        scratch.set_params(&aggregate);
        let expect = oracle.base_loss(t) - scratch.loss_per_sample(&test);
        assert_eq!(
            oracle.utility(t, s).to_bits(),
            expect.to_bits(),
            "({t}, {s:?})"
        );
    }
}

/// Wrapper model that cancels the workspace token at the start of its
/// `trigger`-th cancellable loss evaluation — the cancellation then
/// lands *inside* that cell, at the first minibatch-chunk check.
struct MidCellCancel {
    inner: LogisticRegression,
    calls: Arc<AtomicU64>,
    trigger: u64,
}

impl Model for MidCellCancel {
    fn params(&self) -> &[f64] {
        self.inner.params()
    }
    fn params_mut(&mut self) -> &mut [f64] {
        self.inner.params_mut()
    }
    fn loss(&self, data: &Dataset) -> f64 {
        self.inner.loss(data)
    }
    fn grad(&self, data: &Dataset, out: &mut [f64]) -> f64 {
        self.inner.grad(data, out)
    }
    fn try_loss_with(&self, data: &Dataset, ws: &mut Workspace) -> Result<f64, Cancelled> {
        if self.calls.fetch_add(1, Ordering::SeqCst) + 1 == self.trigger {
            if let Some(token) = ws.cancel_token() {
                token.cancel();
            }
        }
        self.inner.try_loss_with(data, ws)
    }
    fn predict(&self, x: &[f64]) -> usize {
        self.inner.predict(x)
    }
    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(MidCellCancel {
            inner: self.inner.clone(),
            calls: Arc::clone(&self.calls),
            trigger: self.trigger,
        })
    }
}

#[test]
fn mid_cell_cancellation_discards_the_in_flight_cell_and_retries_cleanly() {
    let (clients, test) = six_client_world();
    let proto = LogisticRegression::new(3, 2, 0.01, 11);
    let trace = train_federated(&proto, &clients, &FlConfig::new(4, 3, 0.3, 5));

    let trigger = 6u64;
    let wrapper = MidCellCancel {
        inner: proto.clone(),
        calls: Arc::new(AtomicU64::new(0)),
        trigger,
    };
    let oracle = UtilityOracle::new(&trace, &wrapper, &test).with_parallelism(1);
    oracle.reset_counter();

    let mut plan = EvalPlan::new();
    for t in 0..trace.num_rounds() {
        plan.add_subsets_of(t, Subset::full(6));
    }
    let token = CancelToken::new();
    assert_eq!(oracle.try_evaluate_plan(&plan, &token), Err(Cancelled));
    assert_eq!(
        oracle.loss_evaluations(),
        trigger - 1,
        "the cell whose evaluation was cancelled mid-loss is not counted"
    );

    // Retry: the abandoned cell was left unset, so the remainder —
    // including it — completes exactly once and values match a clean
    // oracle bit-for-bit.
    let fresh = CancelToken::new();
    oracle.try_evaluate_plan(&plan, &fresh).unwrap();
    assert_eq!(oracle.loss_evaluations(), plan.len() as u64);
    let reference = UtilityOracle::new(&trace, &proto, &test).with_parallelism(1);
    for &(t, s) in plan.cells() {
        assert_eq!(
            oracle.utility(t, s).to_bits(),
            reference.utility(t, s).to_bits()
        );
    }
}
