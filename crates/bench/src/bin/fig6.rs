//! Figure 6: noisy-data detection via Spearman rank correlation.
//!
//! Ten clients start from IID data; client `i` has `5·i%` of its examples
//! corrupted, so the true quality ranking is `9 < 8 < … < 0`. Each metric
//! (ground truth, FedSV, ComFedSV) ranks the clients by value and is
//! scored by Spearman correlation against the true noise ordering. Paper
//! shape: ComFedSV tracks the ground truth closely and beats FedSV.
//!
//! Substitution note (see EXPERIMENTS.md): the paper corrupts by adding
//! Gaussian noise to real image pixels. On our simulated Gaussian-mixture
//! data, additive feature noise barely degrades the learner (the label
//! stays attached to a mostly-informative feature vector), so the graded
//! quality axis is realized by label corruption on `5·i%` of the examples
//! — the same "known quality ordering → valuation ranking" pipeline.

use comfedsv::experiments::{DatasetKind, ExperimentBuilder};
use fedval_bench::{profile, write_csv};
use fedval_fl::FlConfig;
use fedval_metrics::spearman_rho;
use fedval_shapley::{ComFedSv, ExactShapley, FedSv};

fn main() {
    let prof = profile();
    let n = 10usize;
    // Noise fractions 0.00, 0.05, ..., 0.45 for clients 0..9; the clean
    // client is the most valuable, so value order should anti-align with
    // noise order. The "true ranking" scores client i by -noise_i.
    let noise: Vec<(usize, f64)> = (0..n).map(|i| (i, 0.05 * i as f64)).collect();
    let truth: Vec<f64> = noise.iter().map(|&(_, f)| -f).collect();

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    println!("== Fig 6: Spearman correlation with the true noise ranking ==");
    println!(
        "{:>10}  {:>12}  {:>12}  {:>12}",
        "dataset", "groundtruth", "FedSV", "ComFedSV"
    );
    for kind in DatasetKind::suite(false) {
        let world = ExperimentBuilder::new(kind)
            .num_clients(n)
            .samples_per_client(prof.samples_per_client.max(100))
            .test_samples(prof.test_samples)
            .label_noise(noise.clone())
            .seed(5)
            .build();
        let trace = world.train(&FlConfig::new(prof.short_rounds, 3, 0.1, 5));
        let oracle = world.oracle(&trace);

        let gt = ExactShapley.run(&oracle).unwrap();
        let fed = FedSv::exact().run(&oracle).unwrap();
        let com = ComFedSv::exact(6)
            .with_lambda(0.01)
            .run(&oracle)
            .unwrap()
            .values;

        let rho_gt = spearman_rho(&gt, &truth).unwrap_or(f64::NAN);
        let rho_fed = spearman_rho(&fed, &truth).unwrap_or(f64::NAN);
        let rho_com = spearman_rho(&com, &truth).unwrap_or(f64::NAN);
        println!(
            "{:>10}  {:>12.4}  {:>12.4}  {:>12.4}",
            kind.name(),
            rho_gt,
            rho_fed,
            rho_com
        );
        csv_rows.push(vec![
            kind.name().to_string(),
            format!("{rho_gt}"),
            format!("{rho_fed}"),
            format!("{rho_com}"),
        ]);
    }
    match write_csv(
        "fig6",
        &["dataset", "ground_truth", "fedsv", "comfedsv"],
        &csv_rows,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
