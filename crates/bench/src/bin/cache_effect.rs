//! Repeat-valuation latency with the shared utility-cell cache: cold
//! vs warm, in-process and across a process restart.
//!
//! The cache tier's whole point is that the expensive parts of a
//! valuation job — training the trace and evaluating utility cells —
//! are pure functions of the spec, so a repeat job should be near-free.
//! This binary measures exactly that through the real [`JobManager`]:
//!
//! * **in-process** — one manager with a disk-backed cell cache runs
//!   the same spec twice. The first (cold) job trains and evaluates
//!   everything; the warm repeats hit the manager's world memo (no
//!   training) and the shared cache (no cell computes).
//! * **cross-process** — the binary re-spawns itself (`--child`) twice
//!   against one cache directory. The second child starts with empty
//!   process state but rehydrates the first child's persisted training
//!   trace (no retraining) and loads every cell from its disk spill.
//!
//! Values are asserted bit-identical between every leg before any
//! number is reported — the speedup is pure caching, never a numerical
//! shortcut.
//!
//! Output: an aligned table on stdout and JSON written to
//! `target/BENCH_cache.json` (schema in the `fedval_bench` crate docs,
//! `src/lib.rs`). A reference run is committed at the repo root as
//! `BENCH_cache.json`; refresh it deliberately with
//! `--out BENCH_cache.json`. `--smoke` shrinks repetitions and fails
//! (exit ≠ 0) if the in-process warm speedup falls below
//! [`MIN_WARM_SPEEDUP`] — the acceptance gate for the cache tier.

use fedval_bench::{scan_num, scan_str, JsonWriter};
use fedval_cache::CellCache;
use fedval_runtime::{Pool, PoolHandle, SchedPolicy};
use fedval_service::job::{JobManager, JobSpec, JobStatus};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Required cold ÷ warm ratio of in-process repeat-job latency.
const MIN_WARM_SPEEDUP: f64 = 10.0;

/// The measured job: big enough that a cold run spends real time in
/// training + cell evaluation, small enough for CI. The gated leg uses
/// `exact` (4096 utility cells; run time is almost entirely cell
/// evaluation, so caching shows its full effect); a secondary ungated
/// leg runs `comfedsv`, whose warm floor is its matrix-completion
/// solve — work the cache legitimately cannot remove.
fn bench_spec(method: &str) -> JobSpec {
    let mut spec = JobSpec::new(method);
    spec.num_clients = Some(12);
    spec.samples_per_client = Some(60);
    spec.rounds = Some(10);
    spec.clients_per_round = Some(6);
    spec.rank = 4;
    spec.seed = 33;
    spec
}

fn manager_with_dir(dir: &Path) -> JobManager {
    JobManager::with_pool_and_cache(
        PoolHandle::owned(Pool::with_policy(2, SchedPolicy::FairShare)),
        CellCache::with_dir(fedval_cache::DEFAULT_MEM_BUDGET_BYTES, dir),
    )
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fedval-cache-effect-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bitwise checksum of a value vector (order-sensitive XOR-rotate) —
/// enough to assert two runs produced identical bytes across process
/// boundaries.
fn value_checksum(values: &[f64]) -> u64 {
    let mut acc = 0u64;
    for v in values {
        acc = acc.rotate_left(7) ^ v.to_bits();
    }
    acc
}

struct RunOutcome {
    run_ms: f64,
    cells_computed: u64,
    cell_hits: u64,
    disk_warm_cells: u64,
    world_reused: bool,
    values: Vec<f64>,
}

fn run_once(manager: &JobManager, method: &str) -> RunOutcome {
    let job = manager.submit(bench_spec(method)).expect("submit");
    assert_eq!(
        job.wait(),
        JobStatus::Done,
        "bench job failed: {:?}",
        job.error()
    );
    let cache = job.cache_info().expect("cache info");
    RunOutcome {
        run_ms: job.run_ms(),
        cells_computed: cache.cells_computed,
        cell_hits: cache.cell_hits,
        disk_warm_cells: cache.disk_warm_cells,
        world_reused: cache.world_reused,
        values: job.report().expect("report").values,
    }
}

/// Child mode: one fresh manager over `dir`, one job, one flat-JSON
/// result line on stdout (parsed by the parent with `scan_num`).
fn run_child(dir: &Path) -> ! {
    let manager = manager_with_dir(dir);
    let out = run_once(&manager, "exact");
    let mut w = JsonWriter::new();
    w.begin_object_compact();
    w.num_field("run_ms", out.run_ms);
    w.u64_field("cells_computed", out.cells_computed);
    w.u64_field("cell_hits", out.cell_hits);
    w.u64_field("disk_warm_cells", out.disk_warm_cells);
    w.str_field("checksum", &format!("{:016x}", value_checksum(&out.values)));
    w.end_object();
    println!("{}", w.finish_inline());
    std::process::exit(0);
}

/// Spawns this binary in `--child` mode against `dir` and parses its
/// result line.
fn spawn_child(dir: &Path) -> (f64, u64, u64, u64, String) {
    let exe = std::env::current_exe().expect("current_exe");
    let output = std::process::Command::new(exe)
        .arg("--child")
        .arg("--dir")
        .arg(dir)
        .output()
        .expect("spawn child");
    assert!(
        output.status.success(),
        "child failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.contains("\"run_ms\""))
        .unwrap_or_else(|| panic!("no result line in child output: {stdout}"));
    (
        scan_num(line, "run_ms").expect("run_ms"),
        scan_num(line, "cells_computed").expect("cells_computed") as u64,
        scan_num(line, "cell_hits").expect("cell_hits") as u64,
        scan_num(line, "disk_warm_cells").expect("disk_warm_cells") as u64,
        scan_str(line, "checksum").expect("checksum").to_string(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--child") {
        let dir = args
            .iter()
            .position(|a| a == "--dir")
            .and_then(|i| args.get(i + 1))
            .expect("--child requires --dir");
        run_child(Path::new(dir));
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target/BENCH_cache.json".to_string());
    let mode = if smoke { "smoke" } else { "full" };
    let (cold_reps, warm_reps) = if smoke { (1, 3) } else { (3, 5) };

    println!("== cache_effect ({mode}): repeat-valuation latency, cold vs warm ==");

    // In-process legs: per repetition, a fresh manager + cache
    // directory gives one cold run, then `warm_reps` warm repeats.
    let measure = |method: &str| {
        let mut cold_ms = f64::INFINITY;
        let mut warm_ms = f64::INFINITY;
        let mut warm_hits = 0u64;
        let mut cold_cells = 0u64;
        for rep in 0..cold_reps {
            let dir = tmpdir(&format!("inproc-{method}-{rep}"));
            let manager = manager_with_dir(&dir);
            let cold = run_once(&manager, method);
            assert!(!cold.world_reused, "first job must train");
            assert!(cold.cells_computed > 0, "cold run must compute cells");
            cold_ms = cold_ms.min(cold.run_ms);
            cold_cells = cold.cells_computed;
            for _ in 0..warm_reps {
                let warm = run_once(&manager, method);
                assert!(warm.world_reused, "repeat job must reuse the world memo");
                assert_eq!(warm.cells_computed, 0, "repeat job must recompute nothing");
                assert_eq!(
                    value_checksum(&warm.values),
                    value_checksum(&cold.values),
                    "warm values diverged from cold"
                );
                warm_ms = warm_ms.min(warm.run_ms);
                warm_hits = warm.cell_hits;
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
        (cold_ms, warm_ms, warm_hits, cold_cells)
    };
    let (cold_ms, warm_ms, warm_hits, cold_cells) = measure("exact");
    let speedup = cold_ms / warm_ms;
    let (cfsv_cold_ms, cfsv_warm_ms, _, _) = measure("comfedsv");
    let cfsv_speedup = cfsv_cold_ms / cfsv_warm_ms;
    println!(
        "{:>22}  {:>10}  {:>10}  {:>9}",
        "leg", "cold ms", "warm ms", "speedup"
    );
    println!(
        "{:>22}  {:>10.1}  {:>10.2}  {:>8.1}x   (gated: >= {MIN_WARM_SPEEDUP}x)",
        "in-process exact", cold_ms, warm_ms, speedup
    );
    println!(
        "{:>22}  {:>10.1}  {:>10.2}  {:>8.1}x   (warm floor = completion solve; not gated)",
        "in-process comfedsv", cfsv_cold_ms, cfsv_warm_ms, cfsv_speedup
    );

    // Cross-process leg: two fresh processes over one cache directory.
    // The warm child rehydrates the cold child's persisted trace (the
    // in-process memo dies, the trace file doesn't) and loads every
    // cell from its spill.
    let dir = tmpdir("crossproc");
    let t0 = Instant::now();
    let (cross_cold_ms, cross_cold_cells, _, cross_cold_warm, cold_sum) = spawn_child(&dir);
    let (cross_warm_ms, cross_warm_cells, _, disk_warm_cells, warm_sum) = spawn_child(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(cross_cold_warm, 0, "first child found a stale cache dir");
    assert!(cross_cold_cells > 0);
    assert_eq!(
        cross_warm_cells, 0,
        "disk-warm child recomputed {cross_warm_cells} cells"
    );
    assert!(disk_warm_cells > 0, "no cells loaded from disk");
    assert_eq!(cold_sum, warm_sum, "cross-process values diverged");
    let cross_speedup = cross_cold_ms / cross_warm_ms;
    println!(
        "{:>22}  {:>10.1}  {:>10.2}  {:>8.1}x   (children: {:.1}s; warm child trace-rehydrated, cells all disk-warm)",
        "cross-process exact",
        cross_cold_ms,
        cross_warm_ms,
        cross_speedup,
        t0.elapsed().as_secs_f64()
    );

    let mut w = JsonWriter::new();
    w.begin_object();
    w.str_field("bench", "cache_effect");
    w.str_field("mode", mode);
    w.u64_field("pool_threads", 2);
    w.str_field("method", "exact");
    w.u64_field("cells_cold", cold_cells);
    w.begin_object_field_compact("in_process");
    w.num_field("cold_ms", cold_ms);
    w.num_field("warm_ms", warm_ms);
    w.num_field("speedup", speedup);
    w.u64_field("warm_cell_hits", warm_hits);
    w.end_object();
    w.begin_object_field_compact("in_process_comfedsv");
    w.num_field("cold_ms", cfsv_cold_ms);
    w.num_field("warm_ms", cfsv_warm_ms);
    w.num_field("speedup", cfsv_speedup);
    w.end_object();
    w.begin_object_field_compact("cross_process");
    w.num_field("cold_ms", cross_cold_ms);
    w.num_field("warm_ms", cross_warm_ms);
    w.num_field("speedup", cross_speedup);
    w.u64_field("disk_warm_cells", disk_warm_cells);
    w.end_object();
    w.num_field("warm_speedup", speedup);
    w.end_object();
    match std::fs::write(&out_path, w.finish()) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("json write failed: {e}"),
    }

    if smoke && speedup < MIN_WARM_SPEEDUP {
        eprintln!("FAIL: in-process warm speedup {speedup:.1}x < required {MIN_WARM_SPEEDUP}x");
        std::process::exit(1);
    }
    println!("all cache_effect gates passed");
}
