//! Oracle-throughput benchmark: serial vs. parallel batch evaluation.
//!
//! Runs the Fig.-8-style workload — the Monte-Carlo ComFedSV pipeline,
//! whose cost is dominated by test-loss evaluations of `U_t(S)` — once
//! with the utility oracle pinned to a single worker thread and once per
//! requested thread count, and reports wall time, loss-evaluation counts,
//! and the speedup. It also *asserts* that the valuations are
//! bit-identical across thread counts: parallelism must never change the
//! numbers.
//!
//! Thread counts default to `1,2,4` and the host parallelism; override
//! with `FEDVAL_THREADS=1,4,8`. On a single-hardware-thread host the
//! speedup is necessarily ~1× — the point of the benchmark is to show
//! the ≥2× scaling at 4 threads on real multi-core hardware and to guard
//! the determinism contract everywhere.

use comfedsv::experiments::ExperimentBuilder;
use fedval_bench::{profile, write_csv};
use fedval_fl::FlConfig;
use fedval_shapley::{ComFedSv, EstimatorKind};
use std::time::Instant;

fn thread_counts() -> Vec<usize> {
    if let Ok(spec) = std::env::var("FEDVAL_THREADS") {
        let parsed: Vec<usize> = spec
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut counts = vec![1, 2, 4, host];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn main() {
    let prof = profile();
    // Fig.-8 shape: MLP on simulated MNIST (loss evaluation is the
    // dominant cost), 30% participation, Monte-Carlo estimator.
    let n = 20;
    let rounds = prof.short_rounds;
    let k = (n * 3 / 10).max(2);
    let world = ExperimentBuilder::sim_mnist(false)
        .num_clients(n)
        .samples_per_client(prof.samples_per_client.min(50))
        .test_samples(prof.test_samples.max(150))
        .seed(9)
        .build();
    let trace = world.train(&FlConfig::new(rounds, k, 0.2, 9));
    let m = ((n as f64) * (n as f64).ln()).ceil() as usize / 2 + 1;
    let config = ComFedSv {
        rank: 6,
        lambda: 0.01,
        estimator: EstimatorKind::MonteCarlo {
            num_permutations: m,
        },
        als_max_iters: 30,
        solver: Default::default(),
        seed: 2,
    };

    println!("== oracle throughput: MC ComFedSV pipeline, N={n}, T={rounds}, K={k}, M={m} ==");
    println!(
        "{:>8}  {:>12}  {:>10}  {:>12}",
        "threads", "seconds", "speedup", "loss evals"
    );

    let mut baseline: Option<(f64, Vec<f64>)> = None;
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for threads in thread_counts() {
        let oracle = world.oracle(&trace).with_parallelism(threads);
        oracle.reset_counter();
        let t0 = Instant::now();
        let out = config.run(&oracle).unwrap();
        let secs = t0.elapsed().as_secs_f64();
        let calls = oracle.loss_evaluations();

        let speedup = match &baseline {
            None => {
                baseline = Some((secs, out.values.clone()));
                1.0
            }
            Some((serial_secs, serial_values)) => {
                for (i, (a, b)) in serial_values.iter().zip(&out.values).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "client {i}: valuation diverged at {threads} threads ({a} vs {b})"
                    );
                }
                serial_secs / secs.max(1e-12)
            }
        };
        println!("{threads:>8}  {secs:>12.3}  {speedup:>9.2}x  {calls:>12}");
        csv_rows.push(vec![
            threads.to_string(),
            format!("{secs}"),
            format!("{speedup}"),
            calls.to_string(),
        ]);
    }
    println!("(valuations verified bit-identical across all thread counts)");
    match write_csv(
        "oracle_throughput",
        &["threads", "seconds", "speedup", "loss_evaluations"],
        &csv_rows,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
