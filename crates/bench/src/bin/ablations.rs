//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. **Completion rank** — ComFedSV quality (rank correlation with ground
//!    truth) as the factor rank sweeps 1..=10.
//! 2. **Regularization λ** — same quality metric across λ.
//! 3. **Solver** — ALS vs CCD++ (the LIBPMF algorithm) on the same
//!    problem: objective reached and valuation agreement.
//! 4. **Assumption 1** — what happens to ComFedSV when the
//!    everyone-heard round is removed (columns never observed).
//! 5. **Heterogeneity** — fairness gap of FedSV vs ComFedSV as the data
//!    becomes more non-IID (Dirichlet α sweep).

use comfedsv::experiments::ExperimentBuilder;
use comfedsv::prelude::*;
use comfedsv::shapley::CompletionSolver;
use fedval_bench::{print_series, write_csv};
use fedval_data::{partition_dirichlet, Dataset};
use fedval_metrics::{relative_difference, spearman_rho};

fn main() {
    ablation_rank_and_lambda();
    ablation_solver();
    ablation_assumption1();
    ablation_heterogeneity();
}

fn quality_world(seed: u64) -> (comfedsv::experiments::World, fedval_fl::TrainingTrace) {
    let world = ExperimentBuilder::synthetic(true)
        .num_clients(8)
        .samples_per_client(60)
        .test_samples(150)
        .seed(seed)
        .build();
    let trace = world.train(&FlConfig::new(10, 3, 0.2, seed));
    (world, trace)
}

fn ablation_rank_and_lambda() {
    let (world, trace) = quality_world(3);
    let oracle = world.oracle(&trace);
    let gt = ExactShapley.run(&oracle).unwrap();

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for rank in 1..=10usize {
        let out = ComFedSv::exact(rank)
            .with_lambda(0.01)
            .run(&oracle)
            .unwrap();
        let rho = spearman_rho(&out.values, &gt).unwrap_or(f64::NAN);
        rows.push((rank.to_string(), rho));
        csv.push(vec!["rank".into(), rank.to_string(), format!("{rho}")]);
    }
    print_series(
        "Ablation: ComFedSV quality (Spearman vs ground truth) by rank",
        ("rank", "rho"),
        &rows,
    );

    let mut rows = Vec::new();
    for lambda in [1e-4, 1e-3, 1e-2, 1e-1, 1.0] {
        let out = ComFedSv::exact(6).with_lambda(lambda).run(&oracle).unwrap();
        let rho = spearman_rho(&out.values, &gt).unwrap_or(f64::NAN);
        rows.push((format!("{lambda}"), rho));
        csv.push(vec!["lambda".into(), format!("{lambda}"), format!("{rho}")]);
    }
    print_series(
        "Ablation: ComFedSV quality by regularization lambda (rank 6)",
        ("lambda", "rho"),
        &rows,
    );
    let _ = write_csv("ablation_rank_lambda", &["knob", "value", "spearman"], &csv);
}

fn ablation_solver() {
    let (world, trace) = quality_world(5);
    let oracle = world.oracle(&trace);
    let als = ComFedSv::exact(6)
        .with_lambda(0.01)
        .with_solver(CompletionSolver::Als)
        .run(&oracle)
        .unwrap();
    let ccd = ComFedSv::exact(6)
        .with_lambda(0.01)
        .with_solver(CompletionSolver::Ccd)
        .run(&oracle)
        .unwrap();
    let rho = spearman_rho(&als.values, &ccd.values).unwrap_or(f64::NAN);
    println!("\n== Ablation: ALS vs CCD++ (LIBPMF) ==");
    println!(
        "final objective: ALS {:.6}, CCD++ {:.6}",
        als.objective_trace.last().unwrap(),
        ccd.objective_trace.last().unwrap()
    );
    println!("valuation rank agreement (Spearman): {rho:.4}");
    let _ = write_csv(
        "ablation_solver",
        &["solver", "objective", "agreement"],
        &[
            vec![
                "als".into(),
                format!("{}", als.objective_trace.last().unwrap()),
                format!("{rho}"),
            ],
            vec![
                "ccd".into(),
                format!("{}", ccd.objective_trace.last().unwrap()),
                format!("{rho}"),
            ],
        ],
    );
}

fn ablation_assumption1() {
    println!("\n== Ablation: Assumption 1 (everyone-heard round) ==");
    println!(
        "{:>12}  {:>16}  {:>14}",
        "protocol", "cols observed", "rho vs truth"
    );
    let mut csv = Vec::new();
    for heard in [true, false] {
        let world = ExperimentBuilder::synthetic(true)
            .num_clients(8)
            .samples_per_client(60)
            .test_samples(150)
            .seed(7)
            .build();
        let cfg = FlConfig::new(10, 3, 0.2, 7).with_everyone_heard(heard);
        let trace = world.train(&cfg);
        let oracle = world.oracle(&trace);
        let gt = ExactShapley.run(&oracle).unwrap();
        let out = ComFedSv::exact(6).with_lambda(0.01).run(&oracle).unwrap();
        let observed = (0..out.problem.num_cols())
            .filter(|&c| !out.problem.col_entries(c).is_empty())
            .count();
        let frac = observed as f64 / out.problem.num_cols() as f64;
        let rho = spearman_rho(&out.values, &gt).unwrap_or(f64::NAN);
        let name = if heard { "with A1" } else { "without A1" };
        println!("{name:>12}  {frac:>16.4}  {rho:>14.4}");
        csv.push(vec![name.into(), format!("{frac}"), format!("{rho}")]);
    }
    println!("(without the full round most coalition columns are never observed,");
    println!(" their factors collapse to zero, and the valuation degrades — the");
    println!(" reason the paper needs Assumption 1)");
    let _ = write_csv(
        "ablation_assumption1",
        &["protocol", "observed_column_fraction", "spearman"],
        &csv,
    );
}

fn ablation_heterogeneity() {
    println!("\n== Ablation: fairness gap vs heterogeneity (Dirichlet alpha) ==");
    println!("{:>8}  {:>12}  {:>12}", "alpha", "FedSV d", "ComFedSV d");
    let mut csv = Vec::new();
    for alpha in [100.0, 1.0, 0.1] {
        let mut fed_d = 0.0;
        let mut com_d = 0.0;
        let trials = 5;
        for t in 0..trials {
            let seed = 40 + t;
            // Build a pooled sim-MNIST source and re-partition by Dirichlet.
            let base = ExperimentBuilder::sim_mnist(false)
                .num_clients(10)
                .samples_per_client(60)
                .test_samples(120)
                .seed(seed)
                .build();
            let pool = Dataset::concat(&base.clients.iter().collect::<Vec<_>>()).unwrap();
            // partition_dirichlet guarantees non-empty shards (it
            // rebalances starved clients deterministically), so the
            // fairness duplicate construction can apply directly.
            let mut clients = partition_dirichlet(&pool, 10, alpha, seed);
            fedval_data::duplicate_client(&mut clients, 0, 9);
            let world = comfedsv::experiments::World {
                clients,
                test: base.test.clone(),
                prototype: base.prototype.clone_model(),
                kind: base.kind,
                behaviors: Vec::new(),
            };
            let plain = FlConfig::new(10, 3, 0.2, seed).with_everyone_heard(false);
            let trace_plain = world.train(&plain);
            let fed = FedSv::exact().run(&world.oracle(&trace_plain)).unwrap();
            fed_d += relative_difference(fed[0], fed[9]) / trials as f64;

            let trace = world.train(&FlConfig::new(10, 3, 0.2, seed));
            let out = ComFedSv::exact(6)
                .with_lambda(0.01)
                .with_seed(seed)
                .run(&world.oracle(&trace))
                .unwrap();
            com_d += relative_difference(out.values[0], out.values[9]) / trials as f64;
        }
        println!("{alpha:>8}  {fed_d:>12.4}  {com_d:>12.4}");
        csv.push(vec![
            format!("{alpha}"),
            format!("{fed_d}"),
            format!("{com_d}"),
        ]);
    }
    let _ = write_csv(
        "ablation_heterogeneity",
        &["alpha", "fedsv_d09", "comfedsv_d09"],
        &csv,
    );
}
