//! Robustness harness: every valuation method against every
//! adversarial-client scenario, scored as a bad-client detector.
//!
//! For each [`Scenario`] in the catalog (see `comfedsv::experiments`)
//! this binary builds the world at a fixed seed, trains FedAvg with the
//! scenario's behaviors, runs every registered valuation method over the
//! recorded trace, and scores the resulting per-client values against
//! the scenario's ground-truth bad-client labels with
//! [`detection_auc`] and [`precision_at_k`] (k = number of injected bad
//! clients). Scenarios without bad clients (`iid_baseline`,
//! `dirichlet_skew`) still run — their rows carry `null` detection
//! fields and exist to track how the methods behave on benign worlds.
//!
//! Output: an aligned table on stdout and machine-readable JSON written
//! to `target/BENCH_robustness.json` (schema in the `fedval_bench` crate
//! docs, `src/lib.rs`). A reference run is committed at the repo root as
//! `BENCH_robustness.json` so future PRs have a detection-quality
//! trajectory to regress against — refresh it deliberately with
//! `--out BENCH_robustness.json`. `--smoke` runs the CI subset
//! (free_riders + noisy_labels × comfedsv/fedsv/tmc) and fails if any
//! AUC drops more than [`SMOKE_TOLERANCE`] below the committed baseline;
//! because everything here is seeded and deterministic, the smoke rows
//! are bit-for-bit the corresponding full-run rows.
//!
//! Independent of mode, the run fails (exit ≠ 0) if ComFedSV's AUC falls
//! below [`COMFEDSV_AUC_FLOOR`] on the `free_riders` or `noisy_labels`
//! scenarios — the acceptance gate for the method the paper proposes.

use comfedsv::experiments::Scenario;
use fedval_bench::{scan_num, scan_str, JsonWriter};
use fedval_metrics::{detection_auc, precision_at_k};
use fedval_shapley::ValuationSession;
use std::time::Instant;

/// Seed for every world build and training run.
const SEED: u64 = 17;

/// Minimum ComFedSV detection AUC on the headline adversarial scenarios.
const COMFEDSV_AUC_FLOOR: f64 = 0.9;

/// How far below the committed baseline a smoke-run AUC may fall before
/// the run fails (one-sided: improvements always pass).
const SMOKE_TOLERANCE: f64 = 0.05;

/// Scenario subset exercised by `--smoke`.
const SMOKE_SCENARIOS: [&str; 2] = ["free_riders", "noisy_labels"];

/// Method subset exercised by `--smoke`.
const SMOKE_METHODS: [&str; 3] = ["comfedsv", "fedsv", "tmc"];

/// One (scenario, method) measurement.
struct Row {
    scenario: String,
    method: String,
    bad_clients: usize,
    /// `None` for scenarios without bad clients, where detection is
    /// undefined.
    auc: Option<f64>,
    precision: Option<f64>,
    cells_evaluated: u64,
    seconds: f64,
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.3}"),
        None => "-".to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target/BENCH_robustness.json".to_string());
    let mode = if smoke { "smoke" } else { "full" };

    let scenarios: Vec<Scenario> = Scenario::catalog()
        .into_iter()
        .filter(|s| !smoke || SMOKE_SCENARIOS.contains(&s.name))
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    println!("== robustness ({mode}): valuation methods as bad-client detectors (seed {SEED}) ==");
    for scenario in &scenarios {
        let world = scenario.build(SEED);
        let trace = world.train(&scenario.fl_config(SEED));
        let oracle = world.oracle(&trace);
        let bad = scenario.bad_clients();
        let k = scenario.num_bad();

        // Fresh session per scenario; isolated runs give every method a
        // fresh oracle cache, so `cells_evaluated` is its standalone cost.
        let mut session = ValuationSession::builder()
            .rank(4)
            .permutations(80)
            .samples(200)
            .seed(SEED)
            .isolated_runs(true)
            .build();
        let methods: Vec<String> = session
            .method_names()
            .into_iter()
            .filter(|m| !smoke || SMOKE_METHODS.contains(&m.as_str()))
            .collect();

        for method in &methods {
            let t0 = Instant::now();
            let report = match session.run(method, &oracle) {
                Ok(r) => r,
                Err(e) => {
                    // No method in the registry should reject an 8-client
                    // oracle; surface it loudly rather than skipping.
                    eprintln!("{}/{method}: {e}", scenario.name);
                    std::process::exit(1);
                }
            };
            let seconds = t0.elapsed().as_secs_f64();
            let (auc, precision) = if k > 0 {
                let auc = detection_auc(&report.values, &bad)
                    .unwrap_or_else(|e| panic!("{}/{method}: {e}", scenario.name));
                let precision = precision_at_k(&report.values, &bad, k)
                    .unwrap_or_else(|e| panic!("{}/{method}: {e}", scenario.name));
                (Some(auc), Some(precision))
            } else {
                (None, None)
            };
            rows.push(Row {
                scenario: scenario.name.to_string(),
                method: method.clone(),
                bad_clients: k,
                auc,
                precision,
                cells_evaluated: report.diagnostics.cells_evaluated,
                seconds,
            });
        }
    }

    println!(
        "{:>16}  {:>14}  {:>4}  {:>7}  {:>7}  {:>8}  {:>8}",
        "scenario", "method", "bad", "auc", "prec@k", "cells", "seconds"
    );
    for r in &rows {
        println!(
            "{:>16}  {:>14}  {:>4}  {:>7}  {:>7}  {:>8}  {:>8.3}",
            r.scenario,
            r.method,
            r.bad_clients,
            fmt_opt(r.auc),
            fmt_opt(r.precision),
            r.cells_evaluated,
            r.seconds
        );
    }

    // Acceptance gate: the paper's method must detect the headline
    // adversaries.
    let mut failures: Vec<String> = Vec::new();
    for scenario in SMOKE_SCENARIOS {
        if let Some(r) = rows
            .iter()
            .find(|r| r.scenario == scenario && r.method == "comfedsv")
        {
            let auc = r.auc.expect("adversarial scenarios have bad clients");
            if auc < COMFEDSV_AUC_FLOOR {
                failures.push(format!(
                    "comfedsv AUC {auc:.3} < {COMFEDSV_AUC_FLOOR} on {scenario}"
                ));
            }
        }
    }

    if smoke {
        failures.extend(compare_against_committed(&rows, "BENCH_robustness.json"));
    }

    write_json(&rows, mode, &out_path);

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all robustness gates passed");
}

/// Compares smoke AUCs against the committed baseline; returns failure
/// messages for any (scenario, method) whose AUC regressed by more than
/// [`SMOKE_TOLERANCE`].
fn compare_against_committed(rows: &[Row], baseline_path: &str) -> Vec<String> {
    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        println!("(no committed baseline at {baseline_path}; skipping comparison)");
        return Vec::new();
    };
    println!("\n== vs committed {baseline_path} (AUC, current vs committed) ==");
    let mut failures = Vec::new();
    let mut matched = 0usize;
    for line in baseline.lines().filter(|l| l.contains("\"scenario\"")) {
        let (Some(scenario), Some(method)) = (scan_str(line, "scenario"), scan_str(line, "method"))
        else {
            continue;
        };
        // `null` AUCs (benign scenarios) scan as None and are skipped.
        let Some(committed) = scan_num(line, "auc") else {
            continue;
        };
        let Some(current) = rows
            .iter()
            .find(|r| r.scenario == scenario && r.method == method)
            .and_then(|r| r.auc)
        else {
            continue;
        };
        matched += 1;
        let status = if current + SMOKE_TOLERANCE < committed {
            failures.push(format!(
                "{scenario}/{method}: AUC {current:.3} dropped more than {SMOKE_TOLERANCE} \
                 below committed {committed:.3}"
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        println!("{scenario:>16}  {method:>14}  {current:.3} vs {committed:.3}  {status}");
    }
    if matched == 0 {
        println!("(no comparable rows found in the committed baseline)");
    }
    failures
}

fn write_json(rows: &[Row], mode: &str, out_path: &str) {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.str_field("bench", "robustness");
    w.str_field("mode", mode);
    w.u64_field("seed", SEED);
    w.begin_array_field("rows");
    for r in rows {
        w.begin_object_compact();
        w.str_field("scenario", &r.scenario);
        w.str_field("method", &r.method);
        w.u64_field("bad_clients", r.bad_clients as u64);
        w.opt_num_field("auc", r.auc);
        w.opt_num_field("precision_at_k", r.precision);
        w.u64_field("cells_evaluated", r.cells_evaluated);
        w.num_field("seconds", r.seconds);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    match std::fs::write(out_path, w.finish()) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\njson write failed: {e}"),
    }
}
