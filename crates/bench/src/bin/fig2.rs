//! Figure 2 (Example 2): singular values of the full utility matrix.
//!
//! Trains each of three tasks for many rounds with partial participation,
//! materializes the full `T × 2^N` utility matrix (all client updates are
//! computed every round, exactly as the paper does for this study), and
//! prints the leading singular values. The paper's observation — a few
//! dominant singular values, i.e. approximate low-rankness — should
//! reproduce on all three tasks. Also prints the Proposition-1 bound for
//! the logistic task.

use comfedsv::experiments::{DatasetKind, ExperimentBuilder};
use fedval_bench::{print_series, profile, write_csv};
use fedval_fl::{full_utility_matrix, FlConfig};
use fedval_linalg::singular_values;
use fedval_shapley::theory::{empirical_lipschitz, path_length, prop1_rank_bound};

fn main() {
    let prof = profile();
    let rounds = prof.long_rounds;
    let tasks = [
        DatasetKind::Synthetic { non_iid: true },
        DatasetKind::SimMnist { non_iid: true },
        DatasetKind::SimCifar { non_iid: true },
    ];

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for kind in tasks {
        let world = ExperimentBuilder::new(kind)
            .num_clients(10)
            .samples_per_client(prof.samples_per_client)
            .test_samples(prof.test_samples)
            .regularization(1e-2)
            .seed(42)
            .build();
        let fl = FlConfig::new(rounds, 3, 0.3, 42)
            .with_local_steps(5)
            .with_batch_size(16);
        let trace = world.train(&fl);
        let oracle = world.oracle(&trace);
        let u = full_utility_matrix(&oracle);
        let sv = singular_values(&u).expect("utility matrix is finite");
        let top: Vec<(String, f64)> = sv
            .iter()
            .take(20)
            .enumerate()
            .map(|(i, &s)| ((i + 1).to_string(), s))
            .collect();
        print_series(
            &format!(
                "Fig 2: singular values of U ({}x{}) on {}",
                u.rows(),
                u.cols(),
                kind.name()
            ),
            ("index", "sigma"),
            &top,
        );
        let dominant = sv.iter().filter(|&&s| s > 0.01 * sv[0]).count();
        println!("singular values above 1% of sigma_1: {dominant}");
        for (i, &s) in sv.iter().take(30).enumerate() {
            csv_rows.push(vec![
                kind.name().to_string(),
                (i + 1).to_string(),
                format!("{s}"),
            ]);
        }

        // Proposition-1 bound check for the strongly-convex logistic task.
        if matches!(kind, DatasetKind::Synthetic { .. }) {
            let losses: Vec<f64> = (0..trace.num_rounds())
                .map(|t| oracle.base_loss(t))
                .collect();
            let l1 = empirical_lipschitz(&trace, &losses).max(1e-3) * 4.0;
            let eps = 0.05 * u.max_abs();
            let bound = prop1_rank_bound(
                l1,
                4.0,
                trace.rounds[0].eta,
                trace.rounds.last().unwrap().eta,
                path_length(&trace),
                eps,
            );
            let est = fedval_linalg::eps_rank_upper_bound(&u, eps).unwrap();
            println!(
                "Prop-1 check (eps = 5% of max entry): empirical eps-rank {est} <= bound {bound}: {}",
                est <= bound.max(1)
            );
        }
    }
    match write_csv("fig2", &["dataset", "index", "sigma"], &csv_rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
