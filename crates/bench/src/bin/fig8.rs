//! Figure 8: computing-time comparison, FedSV vs ComFedSV.
//!
//! Sweeps the client count with 30% participation and measures the wall
//! time (and the dominant cost driver: utility-oracle loss evaluations) of
//! both Monte-Carlo valuations. Paper shape: ComFedSV costs more, and the
//! ratio time(FedSV)/time(ComFedSV) approaches the participation rate
//! `K/N = 0.3` as N grows — FedSV's cost scales with the cohort K, while
//! ComFedSV's scales with all N clients.

use comfedsv::experiments::ExperimentBuilder;
use fedval_bench::{profile, write_csv};
use fedval_fl::FlConfig;
use fedval_shapley::{ComFedSv, EstimatorKind, FedSv, FedSvConfig};
use std::time::Instant;

fn main() {
    let prof = profile();
    let rounds = prof.short_rounds;
    let participation = 0.3;
    let max_n = prof.many_clients.max(40);
    let ns: Vec<usize> = (1..=5)
        .map(|i| max_n * i / 5)
        .filter(|&n| n >= 10)
        .collect();

    println!("== Fig 8: valuation wall time, 30% participation, {rounds} rounds ==");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>8}  {:>12}  {:>12}",
        "N", "FedSV (s)", "ComFedSV (s)", "ratio", "FedSV calls", "Com calls"
    );
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for &n in &ns {
        let k = ((n as f64 * participation).round() as usize).max(2);
        let world = ExperimentBuilder::synthetic(false)
            .num_clients(n)
            .samples_per_client(prof.samples_per_client.min(50))
            .test_samples(prof.test_samples.min(120))
            .seed(9)
            .build();
        // FedSV runs on plain FedAvg; ComFedSV on the Assumption-1 protocol
        // (with its extra full round), as in the paper's respective setups.
        let trace_plain = world.train(&FlConfig::new(rounds, k, 0.2, 9).with_everyone_heard(false));
        let trace = world.train(&FlConfig::new(rounds, k, 0.2, 9));

        // FedSV timing (fresh oracle so cache/counters are isolated).
        let oracle_fed = world.oracle(&trace_plain);
        oracle_fed.reset_counter();
        let t0 = Instant::now();
        let _ = FedSv::monte_carlo(FedSvConfig {
            permutations_per_round: None, // ⌈K ln K⌉ + 1
            seed: 2,
        })
        .run(&oracle_fed)
        .unwrap();
        let fed_time = t0.elapsed().as_secs_f64();
        let fed_calls = oracle_fed.loss_evaluations();

        // ComFedSV timing.
        let oracle_com = world.oracle(&trace);
        oracle_com.reset_counter();
        let m = ((n as f64) * (n as f64).ln()).ceil() as usize / 2 + 1;
        let t1 = Instant::now();
        let _ = ComFedSv {
            rank: 6,
            lambda: 0.01,
            estimator: EstimatorKind::MonteCarlo {
                num_permutations: m,
            },
            als_max_iters: 30,
            solver: Default::default(),
            seed: 2,
        }
        .run(&oracle_com)
        .unwrap();
        let com_time = t1.elapsed().as_secs_f64();
        let com_calls = oracle_com.loss_evaluations();

        let ratio = fed_time / com_time.max(1e-12);
        println!(
            "{:>6}  {:>12.3}  {:>12.3}  {:>8.3}  {:>12}  {:>12}",
            n, fed_time, com_time, ratio, fed_calls, com_calls
        );
        csv_rows.push(vec![
            n.to_string(),
            format!("{fed_time}"),
            format!("{com_time}"),
            format!("{ratio}"),
            fed_calls.to_string(),
            com_calls.to_string(),
        ]);
    }
    println!("(paper: ratio approaches the participation rate {participation} as N grows;");
    println!(" our oracle caches and deduplicates utility evaluations, which makes");
    println!(" ComFedSV cheaper than the paper's O(TNK logN) accounting, so the measured");
    println!(" ratio starts near K/N and drifts upward with N at fixed T — see EXPERIMENTS.md)");
    match write_csv(
        "fig8",
        &[
            "n",
            "fedsv_seconds",
            "comfedsv_seconds",
            "ratio",
            "fedsv_calls",
            "comfedsv_calls",
        ],
        &csv_rows,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
