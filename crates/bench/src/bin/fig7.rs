//! Figure 7: noisy-label detection at scale via the Jaccard coefficient.
//!
//! Many clients (paper: 100), ten of which have 30% of their labels
//! flipped; training selects `m%` of clients per round with
//! `m ∈ {10, …, 50}`. Each metric flags the 10 lowest-valued clients; the
//! Jaccard coefficient against the true noisy set is reported. Paper
//! shape: ComFedSV ≥ FedSV at every participation level, both improving
//! with `m`. Uses the Monte-Carlo estimators (exact enumeration is
//! impossible at these cohort sizes), on the synthetic + logistic task.

use comfedsv::experiments::ExperimentBuilder;
use fedval_bench::{profile, write_csv};
use fedval_fl::FlConfig;
use fedval_metrics::{bottom_k_indices, jaccard_index};
use fedval_shapley::{ComFedSv, EstimatorKind, FedSv, FedSvConfig};

fn main() {
    let prof = profile();
    let n = prof.many_clients;
    let noisy_count = (n / 10).max(1);
    let noisy_clients: Vec<(usize, f64)> = (0..noisy_count)
        .map(|i| (i * (n / noisy_count), 0.3))
        .collect();
    let truth: Vec<usize> = noisy_clients.iter().map(|&(c, _)| c).collect();

    println!(
        "== Fig 7: Jaccard(bottom-{noisy_count}, true noisy set), N = {n}, {} rounds ==",
        prof.label_rounds
    );
    println!("{:>6}  {:>10}  {:>10}", "m%", "FedSV", "ComFedSV");
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for m_percent in [10usize, 20, 30, 40, 50] {
        let k = (n * m_percent / 100).max(2);
        let world = ExperimentBuilder::synthetic(false)
            .num_clients(n)
            .samples_per_client(prof.samples_per_client)
            .test_samples(prof.test_samples)
            .label_noise(noisy_clients.clone())
            .seed(21)
            .build();
        let trace = world.train(&FlConfig::new(prof.label_rounds, k, 0.1, 21));
        let oracle = world.oracle(&trace);

        // FedSV with its default O(K log K) per-round permutation budget.
        let fed = FedSv::monte_carlo(FedSvConfig {
            permutations_per_round: None,
            seed: 3,
        })
        .run(&oracle)
        .unwrap();
        let j_fed = jaccard_index(&bottom_k_indices(&fed, noisy_count), &truth);

        // ComFedSV with M ≈ 2 N ln N global permutations (the paper's
        // O(N log N) sample complexity with a safety factor — estimator
        // variance at smaller M degrades the bottom-k set).
        let m_perms =
            ((2.0 * n as f64 * (n as f64).ln()).ceil() as usize).max(prof.mc_permutations);
        let com = ComFedSv {
            rank: 6,
            lambda: 0.005,
            estimator: EstimatorKind::MonteCarlo {
                num_permutations: m_perms,
            },
            als_max_iters: 50,
            solver: Default::default(),
            seed: 4,
        }
        .run(&oracle)
        .unwrap()
        .values;
        let j_com = jaccard_index(&bottom_k_indices(&com, noisy_count), &truth);

        println!("{:>6}  {:>10.4}  {:>10.4}", m_percent, j_fed, j_com);
        csv_rows.push(vec![
            m_percent.to_string(),
            format!("{j_fed}"),
            format!("{j_com}"),
        ]);
    }
    match write_csv(
        "fig7",
        &["m_percent", "fedsv_jaccard", "comfedsv_jaccard"],
        &csv_rows,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
