//! Cell-throughput benchmark: per-sample vs. batched numeric kernels.
//!
//! PRs 1 and 4 parallelized *dispatch*; this benchmark measures what PR 5
//! changed — the samples/second of the compute inside one utility cell.
//! For each model family it times the same workload two ways:
//!
//! * **per_sample** — the retained pre-refactor reference loops
//!   (`loss_per_sample`/`grad_per_sample`: one example at a time, fresh
//!   `Vec` buffers per call), and
//! * **batched** — the cache-blocked minibatch GEMM kernels with a
//!   reused [`fedval_models::Workspace`].
//!
//! Both paths produce bit-identical results (asserted on every run —
//! the determinism contract, not a tolerance), so the ratio is pure
//! kernel speed: allocation, contiguity, cache reuse. Workloads:
//!
//! * `*_train` — full-batch gradient-descent passes (the trainer's local
//!   update), samples/sec = `samples × passes / seconds`;
//! * `mlp_cell_loss` — repeated test-set loss evaluations (exactly what
//!   a utility-oracle cell costs), samples/sec likewise.
//!
//! Output: an aligned table on stdout and machine-readable JSON written
//! to `target/BENCH_cell_throughput.json` (schema documented in the
//! `fedval_bench` crate docs, `src/lib.rs`). A reference smoke run is
//! committed at the repo root as `BENCH_cell_throughput.json` so future
//! PRs have a perf trajectory to regress against — update it
//! deliberately with `--out BENCH_cell_throughput.json`, not as a side
//! effect of every run. `--smoke` shrinks every workload for CI.

use fedval_data::Dataset;
use fedval_linalg::{vector, Matrix};
use fedval_models::{
    optim::SgdScratch, Activation, Cnn, CnnConfig, LogisticRegression, Mlp, Model,
};
use std::time::Instant;

/// One timed measurement.
struct Measurement {
    case: &'static str,
    path: &'static str,
    samples: usize,
    passes: usize,
    seconds: f64,
    /// Bitwise checksum of the resulting parameters/losses, used to
    /// assert the two paths computed the same thing.
    checksum: u64,
}

impl Measurement {
    fn samples_per_sec(&self) -> f64 {
        (self.samples * self.passes) as f64 / self.seconds.max(1e-12)
    }
}

fn synthetic(n: usize, dim: usize, classes: usize, seed: u64) -> Dataset {
    let f = Matrix::from_fn(n, dim, |r, c| {
        (((r + 1) * (c + 2) + seed as usize * 3) % 17) as f64 / 8.0 - 1.0
    });
    let labels: Vec<usize> = (0..n).map(|r| (r * 7 + seed as usize) % classes).collect();
    Dataset::new(f, labels, classes).unwrap()
}

fn checksum(values: &[f64]) -> u64 {
    values
        .iter()
        .fold(0u64, |acc, v| acc.rotate_left(7) ^ v.to_bits())
}

/// Times `passes` full-batch gradient steps with per-sample gradients.
fn train_per_sample<M: Model>(
    model: &mut M,
    grad_ref: impl Fn(&M, &Dataset, &mut [f64]) -> f64,
    data: &Dataset,
    eta: f64,
    passes: usize,
) -> f64 {
    let mut grad = vec![0.0; model.num_params()];
    let t0 = Instant::now();
    for _ in 0..passes {
        grad_ref(model, data, &mut grad);
        vector::axpy(-eta, &grad, model.params_mut());
    }
    t0.elapsed().as_secs_f64()
}

/// Times `passes` full-batch gradient steps through the batched kernels
/// with a reused workspace.
fn train_batched(model: &mut dyn Model, data: &Dataset, eta: f64, passes: usize) -> f64 {
    let mut scratch = SgdScratch::new();
    let mut grad = vec![0.0; model.num_params()];
    let t0 = Instant::now();
    for _ in 0..passes {
        model.grad_with(data, &mut grad, &mut scratch.ws);
        vector::axpy(-eta, &grad, model.params_mut());
    }
    t0.elapsed().as_secs_f64()
}

/// Timing repetitions per path; the fastest is reported, which screens
/// out scheduler noise on busy hosts (results are asserted identical
/// across repetitions anyway — training is deterministic).
const REPS: usize = 3;

fn push_train_pair<M: Model + Clone>(
    out: &mut Vec<Measurement>,
    case: &'static str,
    proto: &M,
    grad_ref: impl Fn(&M, &Dataset, &mut [f64]) -> f64,
    data: &Dataset,
    passes: usize,
) {
    let eta = 0.05;
    let mut reference = proto.clone();
    let mut batched = proto.clone();
    let mut secs_ref = f64::INFINITY;
    let mut secs_batched = f64::INFINITY;
    for _ in 0..REPS {
        reference = proto.clone();
        secs_ref = secs_ref.min(train_per_sample(
            &mut reference,
            &grad_ref,
            data,
            eta,
            passes,
        ));
        batched = proto.clone();
        secs_batched = secs_batched.min(train_batched(&mut batched, data, eta, passes));
    }
    let (ck_ref, ck_batched) = (checksum(reference.params()), checksum(batched.params()));
    assert_eq!(
        ck_ref, ck_batched,
        "{case}: batched training diverged from the per-sample reference"
    );
    out.push(Measurement {
        case,
        path: "per_sample",
        samples: data.len(),
        passes,
        seconds: secs_ref,
        checksum: ck_ref,
    });
    out.push(Measurement {
        case,
        path: "batched",
        samples: data.len(),
        passes,
        seconds: secs_batched,
        checksum: ck_batched,
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target/BENCH_cell_throughput.json".to_string());

    // The MLP problem is MNIST-shaped ([784, 64, 10] — the paper's
    // "simple fully connected network"), so the wide input layer that
    // dominates a real cell evaluation dominates here too. Smoke sizes
    // keep CI under a few seconds.
    let (n, dim, hidden, classes, passes) = if smoke {
        (320, 784, 64, 10, 6)
    } else {
        (1024, 784, 64, 10, 10)
    };

    let mut measurements: Vec<Measurement> = Vec::new();

    // MLP training (the acceptance workload).
    let data = synthetic(n, dim, classes, 1);
    let mlp = Mlp::new(&[dim, hidden, classes], Activation::Relu, 0.01, 7);
    push_train_pair(
        &mut measurements,
        "mlp_train",
        &mlp,
        |m: &Mlp, d, g| m.grad_per_sample(d, g),
        &data,
        passes,
    );

    // Logistic-regression training.
    let logreg = LogisticRegression::new(dim, classes, 0.01, 7);
    push_train_pair(
        &mut measurements,
        "logistic_train",
        &logreg,
        |m: &LogisticRegression, d, g| m.grad_per_sample(d, g),
        &data,
        passes,
    );

    // CNN training (smaller: the conv is the dominant cost either way).
    let (img, cnn_n, cnn_passes) = if smoke { (8, 96, 2) } else { (12, 256, 5) };
    let cnn_data = synthetic(cnn_n, img * img, 4, 2);
    let cnn = Cnn::new(CnnConfig::small(img, img, 4), 7);
    push_train_pair(
        &mut measurements,
        "cnn_train",
        &cnn,
        |m: &Cnn, d, g| m.grad_per_sample(d, g),
        &cnn_data,
        cnn_passes,
    );

    // Oracle-cell loss: repeated test-set evaluations on a fixed model.
    {
        let reps = passes * 4;
        let mut ws = fedval_models::Workspace::new();
        let mut secs_batched = f64::INFINITY;
        let mut secs_ref = f64::INFINITY;
        let mut acc_b = 0.0;
        let mut acc_r = 0.0;
        for _ in 0..REPS {
            let t0 = Instant::now();
            acc_b = 0.0;
            for _ in 0..reps {
                acc_b += mlp.loss_with(&data, &mut ws);
            }
            secs_batched = secs_batched.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            acc_r = 0.0;
            for _ in 0..reps {
                acc_r += mlp.loss_per_sample(&data);
            }
            secs_ref = secs_ref.min(t0.elapsed().as_secs_f64());
        }
        assert_eq!(
            acc_r.to_bits(),
            acc_b.to_bits(),
            "mlp_cell_loss: batched loss diverged from the per-sample reference"
        );
        measurements.push(Measurement {
            case: "mlp_cell_loss",
            path: "per_sample",
            samples: n,
            passes: reps,
            seconds: secs_ref,
            checksum: acc_r.to_bits(),
        });
        measurements.push(Measurement {
            case: "mlp_cell_loss",
            path: "batched",
            samples: n,
            passes: reps,
            seconds: secs_batched,
            checksum: acc_b.to_bits(),
        });
    }

    // Report.
    let mode = if smoke { "smoke" } else { "full" };
    println!(
        "== cell throughput ({mode}): per-sample vs batched kernels (pool width {}) ==",
        fedval_runtime::Pool::global_width()
    );
    println!(
        "{:>16}  {:>12}  {:>10}  {:>10}  {:>14}",
        "case", "path", "samples", "seconds", "samples/sec"
    );
    for m in &measurements {
        println!(
            "{:>16}  {:>12}  {:>10}  {:>10.4}  {:>14.0}",
            m.case,
            m.path,
            m.samples * m.passes,
            m.seconds,
            m.samples_per_sec()
        );
    }

    let cases: Vec<&'static str> = {
        let mut seen = Vec::new();
        for m in &measurements {
            if !seen.contains(&m.case) {
                seen.push(m.case);
            }
        }
        seen
    };
    let mut speedups: Vec<(String, f64)> = Vec::new();
    println!();
    for case in &cases {
        let per_sample = measurements
            .iter()
            .find(|m| m.case == *case && m.path == "per_sample")
            .expect("both paths measured");
        let batched = measurements
            .iter()
            .find(|m| m.case == *case && m.path == "batched")
            .expect("both paths measured");
        let speedup = batched.samples_per_sec() / per_sample.samples_per_sec().max(1e-12);
        println!("{case}: batched is {speedup:.2}x the per-sample path (bit-identical results)");
        speedups.push((case.to_string(), speedup));
    }

    // Machine-readable JSON (schema: fedval_bench crate docs).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"cell_throughput\",\n");
    json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    json.push_str(&format!(
        "  \"pool_threads\": {},\n",
        fedval_runtime::Pool::global_width()
    ));
    json.push_str("  \"cases\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"path\": \"{}\", \"samples\": {}, \"passes\": {}, \"seconds\": {}, \"samples_per_sec\": {}, \"checksum\": \"{:016x}\"}}{comma}\n",
            m.case, m.path, m.samples, m.passes, m.seconds, m.samples_per_sec(), m.checksum
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup\": {");
    for (i, (case, speedup)) in speedups.iter().enumerate() {
        let comma = if i + 1 == speedups.len() { "" } else { ", " };
        json.push_str(&format!("\"{case}\": {speedup}{comma}"));
    }
    json.push_str("}\n}\n");
    match std::fs::write(&out_path, json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\njson write failed: {e}"),
    }
}
