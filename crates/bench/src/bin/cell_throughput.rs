//! Cell-throughput benchmark: per-sample vs. batched numeric kernels,
//! at both determinism tiers.
//!
//! PRs 1 and 4 parallelized *dispatch*; PR 5 batched the compute inside
//! one utility cell; PR 6 added the [`DeterminismTier::Fast`] kernels.
//! For each model family this benchmark times the same workload three
//! ways:
//!
//! * **per_sample** — the retained pre-refactor reference loops
//!   (`loss_per_sample`/`grad_per_sample`: one example at a time, fresh
//!   `Vec` buffers per call);
//! * **batched / bit_exact** — the cache-blocked minibatch GEMM kernels
//!   with a reused [`fedval_models::Workspace`] pinned to
//!   [`DeterminismTier::BitExact`]. Results are asserted bit-identical
//!   to the per-sample path (the determinism contract, not a
//!   tolerance);
//! * **batched / fast** — the same kernels with the workspace pinned to
//!   [`DeterminismTier::Fast`]: FMA-fused, reduction-reordered GEMM
//!   microkernels and (for the CNN) im2col convolution. Results are
//!   asserted within a composite tolerance of the per-sample reference
//!   (per-op bounds: `fedval_linalg::gemm::fast_epsilon`).
//!
//! Workloads:
//!
//! * `*_train` — full-batch gradient-descent passes (the trainer's local
//!   update), samples/sec = `samples × passes / seconds`;
//! * `mlp_cell_loss` — repeated test-set loss evaluations (exactly what
//!   a utility-oracle cell costs), samples/sec likewise.
//!
//! Output: an aligned table on stdout and machine-readable JSON written
//! to `target/BENCH_cell_throughput.json` (schema documented in the
//! `fedval_bench` crate docs, `src/lib.rs`). A reference smoke run is
//! committed at the repo root as `BENCH_cell_throughput.json` so future
//! PRs have a perf trajectory to regress against — update it
//! deliberately with `--out BENCH_cell_throughput.json`, not as a side
//! effect of every run. `--smoke` shrinks every workload for CI; a
//! smoke run also prints current-vs-committed throughput ratios when
//! the committed baseline is readable.

use fedval_bench::{scan_num, scan_str, JsonWriter};
use fedval_data::Dataset;
use fedval_linalg::{vector, Matrix};
use fedval_models::{
    optim::SgdScratch, Activation, Cnn, CnnConfig, DeterminismTier, LogisticRegression, Mlp, Model,
};
use std::time::Instant;

/// One timed measurement.
struct Measurement {
    case: &'static str,
    path: &'static str,
    /// Tier label: the per-sample loops are inherently bit-exact, so
    /// their rows carry "bit_exact" too.
    tier: &'static str,
    samples: usize,
    passes: usize,
    seconds: f64,
    /// Bitwise checksum of the resulting parameters/losses. Equal
    /// between per_sample and batched/bit_exact; recorded (but
    /// tier-specific) for batched/fast.
    checksum: u64,
}

impl Measurement {
    fn samples_per_sec(&self) -> f64 {
        (self.samples * self.passes) as f64 / self.seconds.max(1e-12)
    }
}

fn synthetic(n: usize, dim: usize, classes: usize, seed: u64) -> Dataset {
    let f = Matrix::from_fn(n, dim, |r, c| {
        (((r + 1) * (c + 2) + seed as usize * 3) % 17) as f64 / 8.0 - 1.0
    });
    let labels: Vec<usize> = (0..n).map(|r| (r * 7 + seed as usize) % classes).collect();
    Dataset::new(f, labels, classes).unwrap()
}

fn checksum(values: &[f64]) -> u64 {
    values
        .iter()
        .fold(0u64, |acc, v| acc.rotate_left(7) ^ v.to_bits())
}

/// Composite model-level tolerance for the Fast tier vs. the bit-exact
/// reference; the per-op GEMM ε (`fedval_linalg::gemm::fast_epsilon`)
/// is orders of magnitude tighter, but training compounds it over
/// passes. A genuine kernel bug shows up at ~1e-2.
fn assert_fast_close(case: &str, fast: &[f64], reference: &[f64]) {
    assert_eq!(fast.len(), reference.len());
    for (i, (a, b)) in fast.iter().zip(reference).enumerate() {
        assert!(
            (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
            "{case}: fast tier diverged at [{i}]: {a} vs {b}"
        );
    }
}

/// Times `passes` full-batch gradient steps with per-sample gradients.
fn train_per_sample<M: Model>(
    model: &mut M,
    grad_ref: impl Fn(&M, &Dataset, &mut [f64]) -> f64,
    data: &Dataset,
    eta: f64,
    passes: usize,
) -> f64 {
    let mut grad = vec![0.0; model.num_params()];
    let t0 = Instant::now();
    for _ in 0..passes {
        grad_ref(model, data, &mut grad);
        vector::axpy(-eta, &grad, model.params_mut());
    }
    t0.elapsed().as_secs_f64()
}

/// Times `passes` full-batch gradient steps through the batched kernels
/// with a reused workspace pinned to `tier`.
fn train_batched(
    model: &mut dyn Model,
    data: &Dataset,
    eta: f64,
    passes: usize,
    tier: DeterminismTier,
) -> f64 {
    let mut scratch = SgdScratch::new();
    scratch.ws.set_tier(tier);
    let mut grad = vec![0.0; model.num_params()];
    let t0 = Instant::now();
    for _ in 0..passes {
        model.grad_with(data, &mut grad, &mut scratch.ws);
        vector::axpy(-eta, &grad, model.params_mut());
    }
    t0.elapsed().as_secs_f64()
}

/// Timing repetitions per path; the fastest is reported, which screens
/// out scheduler noise on busy hosts (results are asserted identical
/// across repetitions anyway — training is deterministic per tier).
const REPS: usize = 3;

fn push_train_case<M: Model + Clone>(
    out: &mut Vec<Measurement>,
    case: &'static str,
    proto: &M,
    grad_ref: impl Fn(&M, &Dataset, &mut [f64]) -> f64,
    data: &Dataset,
    passes: usize,
) {
    let eta = 0.05;
    let mut reference = proto.clone();
    let mut exact = proto.clone();
    let mut fast = proto.clone();
    let mut secs_ref = f64::INFINITY;
    let mut secs_exact = f64::INFINITY;
    let mut secs_fast = f64::INFINITY;
    for _ in 0..REPS {
        reference = proto.clone();
        secs_ref = secs_ref.min(train_per_sample(
            &mut reference,
            &grad_ref,
            data,
            eta,
            passes,
        ));
        exact = proto.clone();
        secs_exact = secs_exact.min(train_batched(
            &mut exact,
            data,
            eta,
            passes,
            DeterminismTier::BitExact,
        ));
        fast = proto.clone();
        secs_fast = secs_fast.min(train_batched(
            &mut fast,
            data,
            eta,
            passes,
            DeterminismTier::Fast,
        ));
    }
    let (ck_ref, ck_exact) = (checksum(reference.params()), checksum(exact.params()));
    assert_eq!(
        ck_ref, ck_exact,
        "{case}: bit-exact batched training diverged from the per-sample reference"
    );
    assert_fast_close(case, fast.params(), reference.params());
    out.push(Measurement {
        case,
        path: "per_sample",
        tier: "bit_exact",
        samples: data.len(),
        passes,
        seconds: secs_ref,
        checksum: ck_ref,
    });
    out.push(Measurement {
        case,
        path: "batched",
        tier: "bit_exact",
        samples: data.len(),
        passes,
        seconds: secs_exact,
        checksum: ck_exact,
    });
    out.push(Measurement {
        case,
        path: "batched",
        tier: "fast",
        samples: data.len(),
        passes,
        seconds: secs_fast,
        checksum: checksum(fast.params()),
    });
}

/// Prints current-vs-committed samples/sec ratios for every `(case,
/// path, tier)` the committed smoke baseline also measured. Baselines
/// predating the `tier` field match their rows as `bit_exact`.
fn compare_against_committed(measurements: &[Measurement], baseline_path: &str) {
    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        println!("(no committed baseline at {baseline_path}; skipping comparison)");
        return;
    };
    println!("\n== vs committed {baseline_path} (current ÷ committed samples/sec) ==");
    let mut matched = 0usize;
    for row in baseline.lines().filter(|l| l.contains("\"case\"")) {
        let (Some(case), Some(path)) = (scan_str(row, "case"), scan_str(row, "path")) else {
            continue;
        };
        let tier = scan_str(row, "tier").unwrap_or("bit_exact");
        let Some(committed) = scan_num(row, "samples_per_sec") else {
            continue;
        };
        if let Some(m) = measurements
            .iter()
            .find(|m| m.case == case && m.path == path && m.tier == tier)
        {
            matched += 1;
            println!(
                "{:>16}  {:>12}  {:>9}  {:>6.2}x  ({:.0} vs {:.0})",
                case,
                path,
                tier,
                m.samples_per_sec() / committed.max(1e-12),
                m.samples_per_sec(),
                committed
            );
        }
    }
    if matched == 0 {
        println!("(no comparable rows found in the committed baseline)");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target/BENCH_cell_throughput.json".to_string());

    // The MLP problem is MNIST-shaped ([784, 64, 10] — the paper's
    // "simple fully connected network"), so the wide input layer that
    // dominates a real cell evaluation dominates here too. Smoke sizes
    // keep CI under a minute.
    let (n, dim, hidden, classes, passes) = if smoke {
        (320, 784, 64, 10, 6)
    } else {
        (1024, 784, 64, 10, 10)
    };

    let mut measurements: Vec<Measurement> = Vec::new();

    // MLP training (the acceptance workload).
    let data = synthetic(n, dim, classes, 1);
    let mlp = Mlp::new(&[dim, hidden, classes], Activation::Relu, 0.01, 7);
    push_train_case(
        &mut measurements,
        "mlp_train",
        &mlp,
        |m: &Mlp, d, g| m.grad_per_sample(d, g),
        &data,
        passes,
    );

    // Logistic-regression training.
    let logreg = LogisticRegression::new(dim, classes, 0.01, 7);
    push_train_case(
        &mut measurements,
        "logistic_train",
        &logreg,
        |m: &LogisticRegression, d, g| m.grad_per_sample(d, g),
        &data,
        passes,
    );

    // CNN training. Sized so every timed path runs ≥50 ms on a 1-core
    // container — the pre-PR-6 smoke case (96 samples × 2 passes) ran
    // in ~0.5 ms, pure timer noise.
    let (img, cnn_n, cnn_passes) = if smoke { (8, 2048, 50) } else { (12, 2048, 50) };
    let cnn_data = synthetic(cnn_n, img * img, 4, 2);
    let cnn = Cnn::new(CnnConfig::small(img, img, 4), 7);
    push_train_case(
        &mut measurements,
        "cnn_train",
        &cnn,
        |m: &Cnn, d, g| m.grad_per_sample(d, g),
        &cnn_data,
        cnn_passes,
    );

    // Oracle-cell loss: repeated test-set evaluations on a fixed model.
    {
        let reps = passes * 4;
        let mut ws_exact = fedval_models::Workspace::bit_exact();
        let mut ws_fast = fedval_models::Workspace::new().with_tier(DeterminismTier::Fast);
        let mut secs_exact = f64::INFINITY;
        let mut secs_fast = f64::INFINITY;
        let mut secs_ref = f64::INFINITY;
        let mut acc_exact = 0.0;
        let mut acc_fast = 0.0;
        let mut acc_ref = 0.0;
        for _ in 0..REPS {
            let t0 = Instant::now();
            acc_exact = 0.0;
            for _ in 0..reps {
                acc_exact += mlp.loss_with(&data, &mut ws_exact);
            }
            secs_exact = secs_exact.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            acc_fast = 0.0;
            for _ in 0..reps {
                acc_fast += mlp.loss_with(&data, &mut ws_fast);
            }
            secs_fast = secs_fast.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            acc_ref = 0.0;
            for _ in 0..reps {
                acc_ref += mlp.loss_per_sample(&data);
            }
            secs_ref = secs_ref.min(t0.elapsed().as_secs_f64());
        }
        assert_eq!(
            acc_ref.to_bits(),
            acc_exact.to_bits(),
            "mlp_cell_loss: bit-exact batched loss diverged from the per-sample reference"
        );
        assert_fast_close("mlp_cell_loss", &[acc_fast], &[acc_ref]);
        measurements.push(Measurement {
            case: "mlp_cell_loss",
            path: "per_sample",
            tier: "bit_exact",
            samples: n,
            passes: reps,
            seconds: secs_ref,
            checksum: acc_ref.to_bits(),
        });
        measurements.push(Measurement {
            case: "mlp_cell_loss",
            path: "batched",
            tier: "bit_exact",
            samples: n,
            passes: reps,
            seconds: secs_exact,
            checksum: acc_exact.to_bits(),
        });
        measurements.push(Measurement {
            case: "mlp_cell_loss",
            path: "batched",
            tier: "fast",
            samples: n,
            passes: reps,
            seconds: secs_fast,
            checksum: acc_fast.to_bits(),
        });
    }

    // Report.
    let mode = if smoke { "smoke" } else { "full" };
    println!(
        "== cell throughput ({mode}): per-sample vs batched kernels (pool width {}) ==",
        fedval_runtime::Pool::global_width()
    );
    println!(
        "kernel dispatch: bit_exact -> {}, fast -> {}",
        fedval_linalg::cpu::kernel_isa(DeterminismTier::BitExact),
        fedval_linalg::cpu::kernel_isa(DeterminismTier::Fast)
    );
    println!(
        "{:>16}  {:>12}  {:>9}  {:>10}  {:>10}  {:>14}",
        "case", "path", "tier", "samples", "seconds", "samples/sec"
    );
    for m in &measurements {
        println!(
            "{:>16}  {:>12}  {:>9}  {:>10}  {:>10.4}  {:>14.0}",
            m.case,
            m.path,
            m.tier,
            m.samples * m.passes,
            m.seconds,
            m.samples_per_sec()
        );
    }

    let cases: Vec<&'static str> = {
        let mut seen = Vec::new();
        for m in &measurements {
            if !seen.contains(&m.case) {
                seen.push(m.case);
            }
        }
        seen
    };
    let find = |case: &str, path: &str, tier: &str| {
        measurements
            .iter()
            .find(|m| m.case == case && m.path == path && m.tier == tier)
            .expect("all three paths measured")
    };
    let mut speedups: Vec<(String, f64, f64)> = Vec::new();
    println!();
    for case in &cases {
        let per_sample = find(case, "per_sample", "bit_exact");
        let exact = find(case, "batched", "bit_exact");
        let fast = find(case, "batched", "fast");
        let speedup = exact.samples_per_sec() / per_sample.samples_per_sec().max(1e-12);
        let speedup_fast = fast.samples_per_sec() / per_sample.samples_per_sec().max(1e-12);
        println!(
            "{case}: batched bit_exact {speedup:.2}x (bit-identical), fast {speedup_fast:.2}x \
             (within ε) the per-sample path"
        );
        speedups.push((case.to_string(), speedup, speedup_fast));
    }

    if smoke {
        compare_against_committed(&measurements, "BENCH_cell_throughput.json");
    }

    // Machine-readable JSON (schema: fedval_bench crate docs).
    let mut w = JsonWriter::new();
    w.begin_object();
    w.str_field("bench", "cell_throughput");
    w.str_field("mode", mode);
    w.u64_field("pool_threads", fedval_runtime::Pool::global_width() as u64);
    w.begin_array_field("cases");
    for m in &measurements {
        w.begin_object_compact();
        w.str_field("case", m.case);
        w.str_field("path", m.path);
        w.str_field("tier", m.tier);
        w.u64_field("samples", m.samples as u64);
        w.u64_field("passes", m.passes as u64);
        w.num_field("seconds", m.seconds);
        w.num_field("samples_per_sec", m.samples_per_sec());
        w.str_field("checksum", &format!("{:016x}", m.checksum));
        w.end_object();
    }
    w.end_array();
    w.begin_object_field_compact("speedup");
    for (case, speedup, _) in &speedups {
        w.num_field(case, *speedup);
    }
    w.end_object();
    w.begin_object_field_compact("speedup_fast");
    for (case, _, speedup_fast) in &speedups {
        w.num_field(case, *speedup_fast);
    }
    w.end_object();
    w.end_object();
    match std::fs::write(&out_path, w.finish()) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\njson write failed: {e}"),
    }
}
