//! Service latency under multi-tenant load: fair-share vs FIFO.
//!
//! The scenario the fair-share scheduler exists for: a large batch
//! valuation saturates the worker pool while small interactive jobs
//! arrive. For each scheduling policy this binary builds an owned
//! two-worker pool, keeps a batch *flood* job running through a
//! [`JobManager`], then submits a stream of small probe jobs — first
//! interactive-class, then batch-class — and records each probe's
//! end-to-end latency (submit → terminal). Per (policy, class) it
//! reports p50/p99/mean latency; the headline number is
//! `interactive_p99_speedup` = FIFO p99 ÷ fair-share p99 for the
//! interactive class.
//!
//! Results are identical across policies by construction (the
//! scheduler only reorders work; see `fedval_runtime`); this bench
//! measures the *latency* difference that reordering buys.
//!
//! Output: an aligned table on stdout and JSON written to
//! `target/BENCH_service_latency.json` (schema in the `fedval_bench`
//! crate docs, `src/lib.rs`). A reference run is committed at the repo
//! root as `BENCH_service_latency.json`; refresh it deliberately with
//! `--out BENCH_service_latency.json`. `--smoke` shrinks the probe
//! count and fails (exit ≠ 0) if the interactive p99 speedup falls
//! below [`MIN_INTERACTIVE_SPEEDUP`] — the acceptance gate for this
//! PR's scheduler.

use fedval_bench::JsonWriter;
use fedval_runtime::{JobClass, Pool, PoolHandle, SchedPolicy};
use fedval_service::job::{Job, JobManager, JobSpec, JobStatus};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Required FIFO ÷ fair-share ratio of interactive p99 latency.
const MIN_INTERACTIVE_SPEEDUP: f64 = 5.0;

/// Probes per (policy, class): smoke / full.
const SMOKE_PROBES: usize = 5;
const FULL_PROBES: usize = 12;

/// Queued chunk jobs required on the pool before a probe is measured —
/// the "large batch in flight" precondition.
const MIN_BACKLOG_JOBS: usize = 200;

/// The saturating batch job: full participation (every permutation
/// prefix lands in every round's cohort) and a deep Monte-Carlo
/// budget, so its one mega-plan of distinct prefixes chunks into
/// thousands of queued pool jobs.
fn flood_spec(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new("comfedsv-mc");
    spec.num_clients = Some(14);
    spec.samples_per_client = Some(16);
    spec.rounds = Some(6);
    spec.clients_per_round = Some(14);
    spec.permutations = 6_000;
    spec.class = JobClass::Batch;
    spec.seed = seed;
    spec
}

/// The small job whose latency is being measured. Sized so its cell
/// batches *do* fan out through the pool (≈ 93 cells per plan — above
/// the oracle's inline threshold), because an inline probe would never
/// wait on the queue under either policy.
fn probe_spec(class: JobClass, seed: u64) -> JobSpec {
    let mut spec = JobSpec::new("fedsv");
    spec.num_clients = Some(8);
    spec.samples_per_client = Some(12);
    spec.rounds = Some(3);
    spec.clients_per_round = Some(5);
    spec.class = class;
    spec.seed = seed;
    spec
}

/// Keeps the pool saturated: submits a fresh flood whenever the current
/// one went terminal, and blocks until the queue actually holds a deep
/// backlog of the flood's chunk jobs (a flood spends part of its life
/// in build/train/completion phases where the queue is shallow; probes
/// must not be measured against an accidentally idle pool).
fn ensure_flood(manager: &JobManager, flood: &mut Option<Arc<Job>>, next_seed: &mut u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let needs_new = match flood {
            Some(job) => job.status().is_terminal(),
            None => true,
        };
        if needs_new {
            if let Some(job) = flood {
                assert_ne!(
                    job.status(),
                    JobStatus::Failed,
                    "flood job failed: {:?} — probes would measure an idle pool",
                    job.error()
                );
            }
            *next_seed += 1;
            *flood = Some(
                manager
                    .submit(flood_spec(*next_seed))
                    .expect("submit flood"),
            );
        }
        if manager.pool().get().queued_jobs() >= MIN_BACKLOG_JOBS {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "flood never built a backlog of {MIN_BACKLOG_JOBS} queued jobs"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Latency percentiles over one (policy, class) probe series.
struct ClassStats {
    class: JobClass,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
}

/// Nearest-rank percentile of an unsorted sample.
fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn measure_policy(policy: SchedPolicy, probes: usize) -> Vec<ClassStats> {
    let pool = PoolHandle::owned(Pool::with_policy(2, policy));
    let manager = JobManager::with_pool(pool);
    let mut flood: Option<Arc<Job>> = None;
    let mut flood_seed = 1_000;
    // One discarded warmup probe so neither policy's series pays the
    // process-wide one-time costs (lazy statics, page faults).
    ensure_flood(&manager, &mut flood, &mut flood_seed);
    manager
        .submit(probe_spec(JobClass::Interactive, 10_000))
        .expect("warmup probe")
        .wait();
    let mut stats = Vec::new();
    for class in [JobClass::Interactive, JobClass::Batch] {
        let mut latencies = Vec::with_capacity(probes);
        for i in 0..probes {
            ensure_flood(&manager, &mut flood, &mut flood_seed);
            let job = manager
                .submit(probe_spec(class, i as u64))
                .expect("submit probe");
            let status = job.wait();
            assert_eq!(status, JobStatus::Done, "probe failed: {:?}", job.error());
            latencies.push(job.total_ms());
        }
        stats.push(ClassStats {
            class,
            p50_ms: percentile(&latencies, 0.50),
            p99_ms: percentile(&latencies, 0.99),
            mean_ms: latencies.iter().sum::<f64>() / latencies.len() as f64,
        });
    }
    if let Some(job) = flood {
        job.cancel();
        job.wait();
    }
    stats
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "target/BENCH_service_latency.json".to_string());
    let mode = if smoke { "smoke" } else { "full" };
    let probes = if smoke { SMOKE_PROBES } else { FULL_PROBES };

    println!("== service_load ({mode}): probe latency behind a batch flood, fifo vs fair ==");
    let mut results: Vec<(SchedPolicy, Vec<ClassStats>)> = Vec::new();
    for policy in [SchedPolicy::Fifo, SchedPolicy::FairShare] {
        let t0 = Instant::now();
        let stats = measure_policy(policy, probes);
        println!(
            "measured {policy} in {:.1}s ({probes} probes/class)",
            t0.elapsed().as_secs_f64()
        );
        results.push((policy, stats));
    }

    println!(
        "{:>6}  {:>12}  {:>10}  {:>10}  {:>10}",
        "policy", "class", "p50 ms", "p99 ms", "mean ms"
    );
    for (policy, stats) in &results {
        for s in stats {
            println!(
                "{:>6}  {:>12}  {:>10.1}  {:>10.1}  {:>10.1}",
                policy.name(),
                s.class.name(),
                s.p50_ms,
                s.p99_ms,
                s.mean_ms
            );
        }
    }

    let p99 = |policy: SchedPolicy, class: JobClass| -> f64 {
        results
            .iter()
            .find(|(p, _)| *p == policy)
            .and_then(|(_, stats)| stats.iter().find(|s| s.class == class))
            .map(|s| s.p99_ms)
            .expect("measured")
    };
    let speedup = p99(SchedPolicy::Fifo, JobClass::Interactive)
        / p99(SchedPolicy::FairShare, JobClass::Interactive);
    println!("interactive p99 speedup (fifo ÷ fair): {speedup:.1}x");

    let mut w = JsonWriter::new();
    w.begin_object();
    w.str_field("bench", "service_latency");
    w.str_field("mode", mode);
    w.u64_field("pool_threads", 2);
    w.u64_field("probes_per_class", probes as u64);
    w.begin_array_field("rows");
    for (policy, stats) in &results {
        for s in stats {
            w.begin_object_compact();
            w.str_field("policy", policy.name());
            w.str_field("class", s.class.name());
            w.num_field("p50_ms", s.p50_ms);
            w.num_field("p99_ms", s.p99_ms);
            w.num_field("mean_ms", s.mean_ms);
            w.end_object();
        }
    }
    w.end_array();
    w.num_field("interactive_p99_speedup", speedup);
    w.end_object();
    match std::fs::write(&out_path, w.finish()) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("json write failed: {e}"),
    }

    if smoke && speedup < MIN_INTERACTIVE_SPEEDUP {
        eprintln!(
            "FAIL: interactive p99 speedup {speedup:.1}x < required {MIN_INTERACTIVE_SPEEDUP}x"
        );
        std::process::exit(1);
    }
    println!("all service_load gates passed");
}
