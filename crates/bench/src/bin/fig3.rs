//! Figure 3 (Example 3): impact of the rank parameter on completion.
//!
//! Following the paper's Example 3 literally: all client updates are
//! computed every round so the *whole* utility matrix is available, the
//! factorization problem (9) is solved on it for ranks 1..=10, and the
//! relative difference `‖U − W Hᵀ‖_F / ‖U‖_F` is reported. The paper's
//! shape: a sharp drop over the first few ranks, then a flattening (the
//! regularized fit stops improving / mildly overfits).
//!
//! A second series reports the same sweep with only the `S ⊆ I_t` entries
//! observed — the deployment regime of Algorithm 1 — where the error floor
//! is set by what partial observation can recover.

use comfedsv::experiments::ExperimentBuilder;
use fedval_bench::{print_series, profile, write_csv};
use fedval_fl::{full_utility_matrix, FlConfig};
use fedval_mc::{AlsConfig, CompletionProblem, MatrixCompleter};

fn main() {
    let prof = profile();
    let world = ExperimentBuilder::sim_mnist(true)
        .num_clients(10)
        .samples_per_client(prof.samples_per_client)
        .test_samples(prof.test_samples)
        .seed(7)
        .build();
    let fl = FlConfig::new(prof.long_rounds, 3, 0.3, 7)
        .with_local_steps(5)
        .with_batch_size(16);
    let trace = world.train(&fl);
    let oracle = world.oracle(&trace);
    let full = full_utility_matrix(&oracle);
    let t = oracle.num_rounds();
    let n = world.num_clients();
    let denom = full.frobenius_norm();

    // Fully observed problem (the paper's Example-3 setting).
    let mut problem_full = CompletionProblem::new(t);
    for round in 0..t {
        for bits in 1..(1u64 << n) {
            problem_full.add_observation(round, bits, full.get(round, bits as usize));
        }
    }
    // Partially observed problem (the Algorithm-1 deployment setting).
    let mut problem_partial = CompletionProblem::new(t);
    for round in 0..t {
        let cohort = trace.selected(round);
        for s in cohort.subsets() {
            if !s.is_empty() {
                problem_partial.add_observation(round, s.bits(), oracle.utility(round, s));
            }
        }
    }
    for bits in 1..(1u64 << n) {
        problem_partial.ensure_column(bits);
    }

    let rel_error = |problem: &CompletionProblem, rank: usize| {
        let factors = AlsConfig::new(rank)
            .with_lambda(0.05)
            .with_max_iters(60)
            .complete(problem)
            .unwrap()
            .factors;
        let mut sq = 0.0;
        for round in 0..t {
            for bits in 0..(1u64 << n) {
                let truth = full.get(round, bits as usize);
                let pred = problem
                    .column_index(bits)
                    .map(|c| factors.predict(round, c))
                    .unwrap_or(0.0);
                let d = truth - pred;
                sq += d * d;
            }
        }
        sq.sqrt() / denom
    };

    let mut rows_full = Vec::new();
    let mut rows_partial = Vec::new();
    let mut csv_rows = Vec::new();
    for rank in 1..=10usize {
        let e_full = rel_error(&problem_full, rank);
        let e_partial = rel_error(&problem_partial, rank);
        rows_full.push((rank.to_string(), e_full));
        rows_partial.push((rank.to_string(), e_partial));
        csv_rows.push(vec![
            rank.to_string(),
            format!("{e_full}"),
            format!("{e_partial}"),
        ]);
    }
    print_series(
        "Fig 3: ||U - WH'||_F / ||U||_F vs rank, fully observed (paper Example 3)",
        ("rank", "rel diff"),
        &rows_full,
    );
    print_series(
        "Fig 3b: same sweep, only S in I_t observed (Algorithm-1 regime)",
        ("rank", "rel diff"),
        &rows_partial,
    );
    match write_csv(
        "fig3",
        &["rank", "rel_diff_fully_observed", "rel_diff_partial"],
        &csv_rows,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
