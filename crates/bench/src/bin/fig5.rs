//! Figure 5: fairness ECDFs of `d_{0,9}` for FedSV vs ComFedSV.
//!
//! For each of the paper's four tasks (non-IID), clients 0 and 9 hold
//! identical data; the ECDF of the relative valuation difference over
//! repeated trials is printed for both metrics. The paper's conclusion —
//! the ComFedSV curve lies above (stochastically dominates) the FedSV
//! curve — should hold on every task.

use comfedsv::experiments::DatasetKind;
use fedval_bench::{profile, run_fairness_trials, write_csv};
use fedval_metrics::Ecdf;

fn main() {
    let prof = profile();
    let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for kind in DatasetKind::suite(true) {
        let result = run_fairness_trials(
            kind,
            prof.fairness_trials,
            prof.short_rounds,
            3,
            prof.samples_per_client,
            prof.test_samples,
        );
        let fed = Ecdf::new(result.fedsv_diffs.clone()).expect("non-empty, finite");
        let com = Ecdf::new(result.comfedsv_diffs.clone()).expect("non-empty, finite");
        println!(
            "\n== Fig 5: ECDF of d_0,9 on {} ({} trials) ==",
            kind.name(),
            prof.fairness_trials
        );
        println!("{:>6}  {:>12}  {:>12}", "t", "FedSV", "ComFedSV");
        for &t in &grid {
            println!("{:>6.2}  {:>12.4}  {:>12.4}", t, fed.eval(t), com.eval(t));
            csv_rows.push(vec![
                kind.name().to_string(),
                format!("{t}"),
                format!("{}", fed.eval(t)),
                format!("{}", com.eval(t)),
            ]);
        }
        // Slack of one trial's probability mass absorbs single-trial noise
        // in the tails (the paper's 50-trial curves have the same grain).
        let slack = 1.0 / prof.fairness_trials as f64;
        let dominates = com.dominates(&fed, &grid, slack);
        println!("ComFedSV stochastically dominates FedSV within one-trial slack: {dominates}");
    }
    match write_csv(
        "fig5",
        &["dataset", "t", "fedsv_cdf", "comfedsv_cdf"],
        &csv_rows,
    ) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
