//! Pool-overhead benchmark: spawn-per-batch vs. the persistent pool.
//!
//! The workloads this workspace cares about are *many small batches*:
//! TMC submits a few-cell utility column per prefix, ALS a row sweep per
//! half-step, hundreds or thousands of times per valuation. This bench
//! measures exactly that dispatch pattern on a synthetic microsecond-
//! scale task — a batch of `CHUNKS` jobs, repeated `BATCHES` times —
//! three ways:
//!
//! 1. `std::thread::scope`, spawning fresh OS threads per batch (what
//!    `fedval_fl`/`fedval_mc` did before the `fedval_runtime` refactor);
//! 2. [`Pool::global`] — the persistent worker pool (what they do now);
//! 3. single-threaded inline, as the floor.
//!
//! Both parallel strategies compute identical results (asserted). On a
//! multi-core host the pool's per-batch cost is queue-push + wakeup
//! instead of thread create + join, which is the difference between the
//! dispatch overhead rivaling the work and disappearing into it. On the
//! single-core CI container absolute numbers compress, but the
//! spawn-vs-enqueue gap is still visible.

//!
//! A second section reports **queue-wait latency**: for each scheduling
//! policy, the delay between a batch's submission and each of its jobs
//! actually starting on a worker, across `BATCHES` batches on an
//! otherwise idle two-worker pool (mean and p99). This is the per-batch
//! price of the scheduler itself — per-scope queue bookkeeping, WRR
//! credit accounting — and the number that must stay in microseconds
//! for the fair-share policy to be a safe default while `service_load`
//! measures the seconds it saves under contention.

use fedval_bench::write_csv;
use fedval_runtime::{Pool, SchedPolicy};
use std::sync::Mutex;
use std::time::Instant;

/// One microsecond-scale work item, roughly the cost class of a small
/// model's loss evaluation.
fn work_item(seed: u64) -> f64 {
    let mut acc = seed as f64 + 1.0;
    for i in 0..200 {
        acc = (acc + i as f64).sqrt() + 1.0;
    }
    acc
}

const BATCHES: usize = 2_000;
const CHUNKS: usize = 4;

fn run_spawn_per_batch() -> (f64, f64) {
    let t0 = Instant::now();
    let mut checksum = 0.0;
    for batch in 0..BATCHES {
        let mut out = [0.0f64; CHUNKS];
        std::thread::scope(|scope| {
            for (i, slot) in out.iter_mut().enumerate() {
                scope.spawn(move || *slot = work_item((batch * CHUNKS + i) as u64));
            }
        });
        checksum += out.iter().sum::<f64>();
    }
    (t0.elapsed().as_secs_f64(), checksum)
}

fn run_persistent_pool() -> (f64, f64) {
    let pool = Pool::global();
    let t0 = Instant::now();
    let mut checksum = 0.0;
    for batch in 0..BATCHES {
        let mut out = [0.0f64; CHUNKS];
        pool.scope(|scope| {
            for (i, slot) in out.iter_mut().enumerate() {
                scope.spawn(move || *slot = work_item((batch * CHUNKS + i) as u64));
            }
        });
        checksum += out.iter().sum::<f64>();
    }
    (t0.elapsed().as_secs_f64(), checksum)
}

fn run_inline() -> (f64, f64) {
    let t0 = Instant::now();
    let mut checksum = 0.0;
    for batch in 0..BATCHES {
        // Same per-batch accumulation order as the parallel strategies,
        // so the checksums are comparable bit-for-bit.
        let mut out = [0.0f64; CHUNKS];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = work_item((batch * CHUNKS + i) as u64);
        }
        checksum += out.iter().sum::<f64>();
    }
    (t0.elapsed().as_secs_f64(), checksum)
}

/// Queue-wait distribution for one policy: submission → job start, for
/// every job of every batch, on an idle two-worker pool.
fn run_queue_wait(policy: SchedPolicy) -> (f64, f64) {
    let pool = Pool::with_policy(2, policy);
    let waits: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(BATCHES * CHUNKS));
    // Warmup batch: fault in workers before timing.
    pool.scope(|scope| scope.spawn(|| {}));
    for _ in 0..BATCHES {
        let submitted = Instant::now();
        pool.scope(|scope| {
            for _ in 0..CHUNKS {
                let waits = &waits;
                scope.spawn(move || {
                    let wait_us = submitted.elapsed().as_secs_f64() * 1e6;
                    waits
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(wait_us);
                    std::hint::black_box(work_item(0));
                });
            }
        });
    }
    let mut waits = waits.into_inner().unwrap_or_else(|e| e.into_inner());
    waits.sort_by(|a, b| a.total_cmp(b));
    let mean = waits.iter().sum::<f64>() / waits.len() as f64;
    let p99 = waits[((0.99 * waits.len() as f64).ceil() as usize).clamp(1, waits.len()) - 1];
    (mean, p99)
}

fn main() {
    println!(
        "== pool overhead: {BATCHES} batches x {CHUNKS} jobs (pool: {} workers) ==",
        Pool::global().threads()
    );
    println!("{:>18}  {:>12}  {:>14}", "strategy", "seconds", "us/batch");

    let (inline_secs, inline_sum) = run_inline();
    let (spawn_secs, spawn_sum) = run_spawn_per_batch();
    let (pool_secs, pool_sum) = run_persistent_pool();
    assert_eq!(
        spawn_sum.to_bits(),
        pool_sum.to_bits(),
        "strategies must compute identical results"
    );
    assert_eq!(spawn_sum.to_bits(), inline_sum.to_bits());

    let rows = [
        ("inline", inline_secs),
        ("spawn-per-batch", spawn_secs),
        ("persistent-pool", pool_secs),
    ];
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (name, secs) in rows {
        let per_batch_us = secs * 1e6 / BATCHES as f64;
        println!("{name:>18}  {secs:>12.3}  {per_batch_us:>14.1}");
        csv_rows.push(vec![
            name.to_string(),
            format!("{secs}"),
            format!("{per_batch_us}"),
        ]);
    }
    println!(
        "\nper-batch dispatch saved by the pool: {:.1} us ({:.2}x)",
        (spawn_secs - pool_secs) * 1e6 / BATCHES as f64,
        spawn_secs / pool_secs.max(1e-12)
    );
    match write_csv(
        "pool_overhead",
        &["strategy", "seconds", "us_per_batch"],
        &csv_rows,
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }

    println!("\n== queue wait: submission -> job start, idle 2-worker pool ==");
    println!("{:>8}  {:>12}  {:>12}", "policy", "mean us", "p99 us");
    let mut wait_rows: Vec<Vec<String>> = Vec::new();
    for policy in [SchedPolicy::Fifo, SchedPolicy::FairShare] {
        let (mean_us, p99_us) = run_queue_wait(policy);
        println!("{:>8}  {mean_us:>12.1}  {p99_us:>12.1}", policy.name());
        wait_rows.push(vec![
            policy.name().to_string(),
            format!("{mean_us}"),
            format!("{p99_us}"),
        ]);
    }
    match write_csv(
        "pool_queue_wait",
        &["policy", "mean_us", "p99_us"],
        &wait_rows,
    ) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
