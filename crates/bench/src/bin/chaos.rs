//! Fault-injection (chaos) harness for the valuation service's
//! crash-safe cache coordination.
//!
//! The cache tier claims that everything under `FEDVAL_CACHE_DIR` —
//! cell segments, the persisted training trace, the manifest — is
//! *disposable acceleration state*: pure functions of fingerprinted
//! inputs, written with temp+rename+checksum discipline, verified on
//! read, and recomputed when missing. If that holds, no crash, kill,
//! concurrent writer, or corruption can ever change a valuation — only
//! make it slower. This binary injects exactly those faults against
//! real child processes and asserts, after every scenario, that the
//! recovered valuations are **bit-identical** to a clean baseline and
//! that corrupt artifacts were counted (`corrupt_events`), never
//! trusted.
//!
//! Scenarios:
//!
//! * `kill_mid_spill` — SIGKILL a worker partway through a spill-heavy
//!   run (1 MB cell budget forces mid-run segment writes); a recovery
//!   worker over the same dir must finish with baseline-identical
//!   values, absorbing any torn segment.
//! * `kill_mid_training` — SIGKILL early, before/around trace
//!   persistence; recovery retrains (or rehydrates) and matches.
//! * `concurrent_writers` — two workers race on one directory; both
//!   must agree with the baseline and **exactly one** may train the
//!   world (the per-world training election).
//! * `poisoned_segments` — truncate one segment, bit-flip another and
//!   the persisted trace, plant a stale orphan tmp file; recovery
//!   counts the corruption, retrains, sweeps the orphan, and matches.
//! * `unwritable_dir` — the cache path can never exist (its parent is
//!   a regular file); the worker serves memory-only, reports
//!   `degraded`, and matches.
//! * `sigterm_drain` — the real `fedval_serve` binary gets a job over
//!   HTTP, then SIGTERM; it must drain, flush, and exit 0, and a
//!   follow-up worker must be disk-warm (`world_reused` across
//!   processes — no retraining after a clean restart).
//!
//! `--smoke` runs `kill_mid_spill` + `concurrent_writers` (the CI
//! gate); the default runs everything. Exit status is non-zero on any
//! failed assertion. `--serve-bin PATH` points at `fedval_serve` when
//! it is not a sibling of this binary.

use fedval_bench::{scan_num, scan_str, JsonWriter};
use fedval_cache::CellCache;
use fedval_runtime::{Pool, PoolHandle, SchedPolicy};
use fedval_service::job::{JobManager, JobSpec, JobStatus};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime};

const SIGKILL: i32 = 9;
const SIGTERM: i32 = 15;

extern "C" {
    /// POSIX `kill(2)` — the workspace stays dependency-free.
    fn kill(pid: i32, sig: i32) -> i32;
}

/// The spill-heavy job: `exact` over 12 clients × 4 rounds is 16 384
/// utility cells, which a 1 MB cell budget cannot hold — the worker
/// spills segments *during* the run, giving SIGKILL a torn-write
/// window.
fn spill_spec() -> JobSpec {
    let mut spec = JobSpec::new("exact");
    spec.num_clients = Some(12);
    spec.samples_per_client = Some(24);
    spec.rounds = Some(4);
    spec.clients_per_round = Some(6);
    spec.seed = 33;
    spec
}

/// The training-heavy job: few subsets (2^5), many rounds — wall clock
/// is dominated by FedAvg itself, so an early kill lands before the
/// trace is persisted.
fn train_spec() -> JobSpec {
    let mut spec = JobSpec::new("exact");
    spec.num_clients = Some(5);
    spec.samples_per_client = Some(200);
    spec.rounds = Some(60);
    spec.clients_per_round = Some(3);
    spec.seed = 7;
    spec
}

fn spec_by_name(name: &str) -> JobSpec {
    match name {
        "spill" => spill_spec(),
        "train" => train_spec(),
        other => panic!("unknown spec {other:?}"),
    }
}

/// Bitwise checksum of a value vector (order-sensitive XOR-rotate) —
/// enough to assert bit-identity across process boundaries.
fn value_checksum(values: &[f64]) -> u64 {
    let mut acc = 0u64;
    for v in values {
        acc = acc.rotate_left(7) ^ v.to_bits();
    }
    acc
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fedval-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// Worker mode: one job through a real JobManager over --dir.
// ---------------------------------------------------------------------------

/// Child mode: runs one job over the given cache dir and prints a flat
/// JSON result line the parent scans. This is the same manager/cache
/// path `fedval_serve` uses — only the HTTP layer is skipped.
fn run_worker(dir: &Path, spec_name: &str, mem_mb: usize) -> ! {
    let cache = CellCache::with_dir(mem_mb * 1024 * 1024, dir);
    let manager = JobManager::with_pool_and_cache(
        PoolHandle::owned(Pool::with_policy(2, SchedPolicy::FairShare)),
        cache,
    );
    let job = manager.submit(spec_by_name(spec_name)).expect("submit");
    assert_eq!(
        job.wait(),
        JobStatus::Done,
        "worker job failed: {:?}",
        job.error()
    );
    let cache_info = job.cache_info().expect("cache info");
    let stats = manager.cache_stats();
    let values = job.report().expect("report").values;
    let mut w = JsonWriter::new();
    w.begin_object_compact();
    w.num_field("run_ms", job.run_ms());
    w.bool_field("world_reused", cache_info.world_reused);
    w.u64_field("cells_computed", cache_info.cells_computed);
    w.u64_field("cell_hits", cache_info.cell_hits);
    w.u64_field("disk_warm_cells", cache_info.disk_warm_cells);
    w.u64_field("corrupt_events", stats.corrupt_events);
    w.u64_field("write_errors", stats.write_errors);
    w.bool_field("degraded", stats.disk_degraded);
    w.str_field("checksum", &format!("{:016x}", value_checksum(&values)));
    w.end_object();
    println!("{}", w.finish_inline());
    std::process::exit(0);
}

/// A parsed worker result line.
#[derive(Debug, Clone)]
struct WorkerResult {
    run_ms: f64,
    world_reused: bool,
    cells_computed: u64,
    disk_warm_cells: u64,
    corrupt_events: u64,
    degraded: bool,
    checksum: String,
}

fn parse_worker_line(stdout: &str) -> WorkerResult {
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.contains("\"checksum\""))
        .unwrap_or_else(|| panic!("no result line in worker output: {stdout}"));
    // JsonWriter bools are bare `true`/`false` literals.
    let flag = |key: &str| line.contains(&format!("\"{key}\": true"));
    WorkerResult {
        run_ms: scan_num(line, "run_ms").expect("run_ms"),
        world_reused: flag("world_reused"),
        cells_computed: scan_num(line, "cells_computed").expect("cells_computed") as u64,
        disk_warm_cells: scan_num(line, "disk_warm_cells").expect("disk_warm_cells") as u64,
        corrupt_events: scan_num(line, "corrupt_events").expect("corrupt_events") as u64,
        degraded: flag("degraded"),
        checksum: scan_str(line, "checksum").expect("checksum").to_string(),
    }
}

fn worker_command(dir: &Path, spec_name: &str, mem_mb: usize) -> Command {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.arg("--worker")
        .arg("--dir")
        .arg(dir)
        .arg("--spec")
        .arg(spec_name)
        .arg("--mem-mb")
        .arg(mem_mb.to_string())
        // Workers get their cache config from flags, never the parent env.
        .env_remove("FEDVAL_CACHE_DIR")
        .env_remove("FEDVAL_CACHE_MEM_MB")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

/// Runs a worker to completion and parses its result.
fn run_worker_to_end(dir: &Path, spec_name: &str, mem_mb: usize) -> WorkerResult {
    let output = worker_command(dir, spec_name, mem_mb)
        .output()
        .expect("spawn worker");
    assert!(
        output.status.success(),
        "worker failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    parse_worker_line(&String::from_utf8_lossy(&output.stdout))
}

/// Spawns a worker and SIGKILLs it after `delay`. Returns `true` if the
/// kill landed while the worker was still running (`false` = it won the
/// race and finished first — the scenario degenerates to a warm
/// restart, which is still checked).
fn spawn_and_kill(dir: &Path, spec_name: &str, mem_mb: usize, delay: Duration) -> bool {
    let mut child = worker_command(dir, spec_name, mem_mb)
        .spawn()
        .expect("spawn victim worker");
    std::thread::sleep(delay);
    let still_running = child.try_wait().expect("try_wait").is_none();
    if still_running {
        unsafe {
            kill(child.id() as i32, SIGKILL);
        }
    }
    let _ = child.wait();
    still_running
}

// ---------------------------------------------------------------------------
// Scenarios. Each returns an error string on failed assertions.
// ---------------------------------------------------------------------------

struct Baseline {
    checksum: String,
    clean_ms: f64,
}

/// One clean run per spec in a throwaway dir: the bit-identity
/// reference and the wall-clock yardstick kill delays scale from.
fn baseline(spec_name: &str) -> Baseline {
    let dir = tmpdir(&format!("baseline-{spec_name}"));
    let t0 = Instant::now();
    let clean = run_worker_to_end(&dir, spec_name, 1);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_dir_all(&dir);
    assert!(!clean.world_reused, "baseline must train");
    assert!(clean.cells_computed > 0, "baseline must compute cells");
    assert_eq!(clean.corrupt_events, 0, "clean run saw corruption");
    println!(
        "  baseline[{spec_name}]: checksum {} run {:.0} ms (wall {:.0} ms)",
        clean.checksum, clean.run_ms, wall_ms
    );
    Baseline {
        checksum: clean.checksum,
        // Spawn overhead included on purpose: kill delays are measured
        // from spawn time too.
        clean_ms: wall_ms,
    }
}

fn kill_scenario(
    name: &str,
    spec_name: &str,
    base: &Baseline,
    kill_fraction: f64,
    kills: usize,
) -> Result<(), String> {
    let dir = tmpdir(name);
    let delay = Duration::from_secs_f64(base.clean_ms * kill_fraction / 1e3);
    let mut landed = 0;
    for _ in 0..kills {
        if spawn_and_kill(&dir, spec_name, 1, delay) {
            landed += 1;
        }
    }
    let recovered = run_worker_to_end(&dir, spec_name, 1);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "  {name}: {landed}/{kills} kills landed at ~{:.0} ms; recovery reused_world={} \
         corrupt_events={} checksum {}",
        delay.as_secs_f64() * 1e3,
        recovered.world_reused,
        recovered.corrupt_events,
        recovered.checksum
    );
    if recovered.checksum != base.checksum {
        return Err(format!(
            "{name}: recovered checksum {} != baseline {}",
            recovered.checksum, base.checksum
        ));
    }
    Ok(())
}

fn concurrent_writers(base: &Baseline) -> Result<(), String> {
    let dir = tmpdir("concurrent");
    let children: Vec<Child> = (0..2)
        .map(|_| {
            worker_command(&dir, "spill", 1)
                .spawn()
                .expect("spawn racer")
        })
        .collect();
    let mut results = Vec::new();
    for child in children {
        let output = child.wait_with_output().expect("racer output");
        if !output.status.success() {
            return Err(format!(
                "concurrent_writers: racer failed: {}",
                String::from_utf8_lossy(&output.stderr)
            ));
        }
        results.push(parse_worker_line(&String::from_utf8_lossy(&output.stdout)));
    }
    let _ = std::fs::remove_dir_all(&dir);
    let trainers = results.iter().filter(|r| !r.world_reused).count();
    println!(
        "  concurrent_writers: trainers={trainers} checksums [{}, {}]",
        results[0].checksum, results[1].checksum
    );
    for r in &results {
        if r.checksum != base.checksum {
            return Err(format!(
                "concurrent_writers: checksum {} != baseline {}",
                r.checksum, base.checksum
            ));
        }
    }
    if trainers != 1 {
        return Err(format!(
            "concurrent_writers: {trainers} processes trained the same world \
             (the training election must elect exactly one)"
        ));
    }
    Ok(())
}

fn poisoned_segments(base: &Baseline) -> Result<(), String> {
    let dir = tmpdir("poison");
    let clean = run_worker_to_end(&dir, "spill", 1);
    if clean.checksum != base.checksum {
        return Err("poisoned_segments: seeding run diverged from baseline".into());
    }
    // Layout sanity: the clean run left the documented artifacts.
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read cache dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "cells"))
        .collect();
    segments.sort();
    let trace = std::fs::read_dir(&dir)
        .expect("read cache dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "trace"));
    if segments.len() < 2 {
        return Err(format!(
            "poisoned_segments: expected several spill segments, found {}",
            segments.len()
        ));
    }
    let Some(trace) = trace else {
        return Err("poisoned_segments: no persisted trace file".into());
    };
    if !dir.join("manifest.json").exists() {
        return Err("poisoned_segments: no manifest.json".into());
    }

    // Injection 1: torn segment (truncated to half).
    let len = std::fs::metadata(&segments[0]).expect("seg meta").len();
    let bytes = std::fs::read(&segments[0]).expect("read seg");
    std::fs::write(&segments[0], &bytes[..(len / 2) as usize]).expect("truncate seg");
    // Injection 2: bit-flipped segment record.
    let mut bytes = std::fs::read(&segments[1]).expect("read seg");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&segments[1], &bytes).expect("poison seg");
    // Injection 3: bit-flipped trace payload.
    let mut bytes = std::fs::read(&trace).expect("read trace");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&trace, &bytes).expect("poison trace");
    // Injection 4: a stale writer's orphan tmp, old enough to sweep.
    let orphan = dir.join("seg-deadbeef.p1.tmp");
    std::fs::write(&orphan, b"torn half-write").expect("plant orphan");
    let old = SystemTime::now() - Duration::from_secs(600);
    let file = std::fs::File::options()
        .write(true)
        .open(&orphan)
        .expect("open orphan");
    file.set_times(std::fs::FileTimes::new().set_modified(old))
        .expect("backdate orphan");

    let recovered = run_worker_to_end(&dir, "spill", 1);
    let orphan_swept = !orphan.exists();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "  poisoned_segments: corrupt_events={} world_reused={} orphan_swept={orphan_swept} \
         checksum {}",
        recovered.corrupt_events, recovered.world_reused, recovered.checksum
    );
    if recovered.checksum != base.checksum {
        return Err(format!(
            "poisoned_segments: recovered checksum {} != baseline {}",
            recovered.checksum, base.checksum
        ));
    }
    if recovered.corrupt_events < 2 {
        return Err(format!(
            "poisoned_segments: only {} corrupt_events counted for 3 poisoned files",
            recovered.corrupt_events
        ));
    }
    if recovered.world_reused {
        return Err("poisoned_segments: a corrupt trace must be retrained, not trusted".into());
    }
    if !orphan_swept {
        return Err("poisoned_segments: stale orphan tmp survived recovery".into());
    }
    Ok(())
}

fn unwritable_dir(base: &Baseline) -> Result<(), String> {
    // The configured path's parent is a regular file — mkdir can never
    // succeed, which also models a full disk at directory creation.
    let parent = tmpdir("unwritable");
    std::fs::write(&parent, b"not a directory").expect("plant file");
    let dir = parent.join("cache");
    let result = run_worker_to_end(&dir, "spill", 1);
    let _ = std::fs::remove_file(&parent);
    println!(
        "  unwritable_dir: degraded={} checksum {}",
        result.degraded, result.checksum
    );
    if !result.degraded {
        return Err("unwritable_dir: cache did not report degraded mode".into());
    }
    if result.checksum != base.checksum {
        return Err(format!(
            "unwritable_dir: memory-only checksum {} != baseline {}",
            result.checksum, base.checksum
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// sigterm_drain: the real fedval_serve binary over HTTP.
// ---------------------------------------------------------------------------

fn http_request(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: chaos\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("no status line in {response:?}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn sigterm_drain(base: &Baseline, serve_bin: &Path) -> Result<(), String> {
    if !serve_bin.exists() {
        return Err(format!(
            "sigterm_drain: {} not found — build fedval_serve first or pass --serve-bin",
            serve_bin.display()
        ));
    }
    let dir = tmpdir("sigterm");
    let mut child = Command::new(serve_bin)
        .args(["--addr", "127.0.0.1:0", "--grace-ms", "120000"])
        .env("FEDVAL_CACHE_DIR", &dir)
        .env("FEDVAL_CACHE_MEM_MB", "1")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn fedval_serve: {e}"))?;
    // First stdout line announces the resolved ephemeral address.
    let mut stdout = BufReader::new(child.stdout.take().expect("serve stdout"));
    let mut banner = String::new();
    stdout
        .read_line(&mut banner)
        .map_err(|e| format!("read banner: {e}"))?;
    let addr = banner
        .split_whitespace()
        .find(|w| w.contains(':') && w.starts_with("127."))
        .ok_or_else(|| format!("no address in banner {banner:?}"))?
        .to_string();

    // Readiness doc answers before the drain.
    let (status, health) = http_request(&addr, "GET", "/healthz", "")?;
    if status != 200 || !health.contains("\"status\": \"ok\"") {
        let _ = child.kill();
        return Err(format!("sigterm_drain: healthz {status}: {health}"));
    }
    // Submit the baseline job, then SIGTERM while it runs.
    // Must mirror `spill_spec()` exactly — the served job's checksum is
    // compared against the spill baseline.
    let body = r#"{"method": "exact", "num_clients": 12, "samples_per_client": 24,
        "rounds": 4, "clients_per_round": 6, "seed": 33}"#;
    let (status, accepted) = http_request(&addr, "POST", "/jobs", body)?;
    if status != 202 {
        let _ = child.kill();
        return Err(format!("sigterm_drain: submit got {status}: {accepted}"));
    }
    unsafe {
        kill(child.id() as i32, SIGTERM);
    }
    // The drain must finish the job, flush the cache, and exit 0.
    let deadline = Instant::now() + Duration::from_secs(180);
    let exit = loop {
        if let Some(code) = child.try_wait().map_err(|e| format!("try_wait: {e}"))? {
            break code;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            return Err("sigterm_drain: fedval_serve did not exit within 180 s of SIGTERM".into());
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let mut stderr_text = String::new();
    if let Some(mut e) = child.stderr.take() {
        let _ = e.read_to_string(&mut stderr_text);
    }
    if !exit.success() {
        return Err(format!(
            "sigterm_drain: fedval_serve exited {exit:?}; stderr:\n{stderr_text}"
        ));
    }
    if !stderr_text.contains("drained=true") {
        return Err(format!(
            "sigterm_drain: no drained summary on stderr:\n{stderr_text}"
        ));
    }
    // A fresh process over the flushed dir must skip training and load
    // cells from disk — the warm-restart acceptance gate.
    let warm = run_worker_to_end(&dir, "spill", 1);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "  sigterm_drain: exit 0, warm restart world_reused={} disk_warm_cells={} checksum {}",
        warm.world_reused, warm.disk_warm_cells, warm.checksum
    );
    if warm.checksum != base.checksum {
        return Err(format!(
            "sigterm_drain: warm checksum {} != baseline {}",
            warm.checksum, base.checksum
        ));
    }
    if !warm.world_reused {
        return Err(
            "sigterm_drain: warm restart retrained instead of rehydrating the trace".into(),
        );
    }
    if warm.disk_warm_cells == 0 {
        return Err("sigterm_drain: no cells loaded from the flushed cache".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: chaos [--smoke | --sigterm-smoke] [--serve-bin PATH]");
        return;
    }
    if args.iter().any(|a| a == "--worker") {
        let dir = flag_value(&args, "--dir").expect("--worker requires --dir");
        let spec = flag_value(&args, "--spec").unwrap_or_else(|| "spill".into());
        let mem_mb: usize = flag_value(&args, "--mem-mb")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        run_worker(Path::new(&dir), &spec, mem_mb);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let sigterm_smoke = args.iter().any(|a| a == "--sigterm-smoke");
    let serve_bin = flag_value(&args, "--serve-bin")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            let mut path = std::env::current_exe().expect("current_exe");
            path.set_file_name("fedval_serve");
            path
        });

    let mode = if smoke {
        "smoke"
    } else if sigterm_smoke {
        "sigterm-smoke"
    } else {
        "full"
    };
    println!("== chaos ({mode}) : injected faults vs bit-identical recovery ==");
    let spill_base = baseline("spill");

    let mut failures: Vec<String> = Vec::new();
    let mut run = |name: &str, result: Result<(), String>| match result {
        Ok(()) => println!("  PASS {name}"),
        Err(e) => {
            println!("  FAIL {name}: {e}");
            failures.push(e);
        }
    };

    if !sigterm_smoke {
        run(
            "kill_mid_spill",
            kill_scenario("kill_mid_spill", "spill", &spill_base, 0.6, 2),
        );
        run("concurrent_writers", concurrent_writers(&spill_base));
    }
    if !smoke && !sigterm_smoke {
        let train_base = baseline("train");
        run(
            "kill_mid_training",
            kill_scenario("kill_mid_training", "train", &train_base, 0.2, 2),
        );
        run("poisoned_segments", poisoned_segments(&spill_base));
        run("unwritable_dir", unwritable_dir(&spill_base));
    }
    if !smoke {
        run("sigterm_drain", sigterm_drain(&spill_base, &serve_bin));
    }

    if failures.is_empty() {
        println!("all chaos scenarios passed");
    } else {
        eprintln!("{} chaos scenario(s) failed", failures.len());
        std::process::exit(1);
    }
}
