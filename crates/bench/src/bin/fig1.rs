//! Figure 1: the unfairness probability `P_s` of Observation 1.
//!
//! Prints `P_s` against `s` for several asymmetric-selection probabilities
//! `p`, matching the sweep the paper plots. The paper's conclusion — large
//! probability of a sizeable FedSV gap between two identical clients —
//! should be visible as slowly decaying curves.

use fedval_bench::{print_series, write_csv};
use fedval_shapley::observation::probability_with_p;

fn main() {
    let rounds = 25;
    let ps = [0.1, 0.2, 0.3, 0.4, 0.5];

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for &p in &ps {
        let rows: Vec<(String, f64)> = (0..=rounds)
            .map(|s| {
                let v = probability_with_p(rounds, p, s);
                csv_rows.push(vec![format!("{p}"), s.to_string(), format!("{v}")]);
                (s.to_string(), v)
            })
            .collect();
        print_series(
            &format!("Fig 1: P_s for p = {p} (T = {rounds})"),
            ("s", "P_s"),
            &rows,
        );
    }
    match write_csv("fig1", &["p", "s", "P_s"], &csv_rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
