//! Example 1: unfairness of FedSV with duplicated clients.
//!
//! Clients 0 and 9 hold identical data (sim-MNIST, non-IID elsewhere);
//! training runs 10 rounds selecting 3 of 10 clients. The paper reports
//! `P(d_{0,9} > 0.5) ≈ 65%` for FedSV over 50 repetitions — i.e. identical
//! clients very often receive wildly different values.

use comfedsv::experiments::DatasetKind;
use fedval_bench::{profile, run_fairness_trials, write_csv};
use fedval_metrics::stats::fraction_where;

fn main() {
    let prof = profile();
    let result = run_fairness_trials(
        DatasetKind::SimMnist { non_iid: true },
        prof.fairness_trials,
        prof.short_rounds,
        3,
        prof.samples_per_client,
        prof.test_samples,
    );
    let p_fed = fraction_where(&result.fedsv_diffs, |d| d > 0.5);
    let p_com = fraction_where(&result.comfedsv_diffs, |d| d > 0.5);
    println!(
        "== Example 1: P(d_0,9 > 0.5) over {} trials ==",
        prof.fairness_trials
    );
    println!("FedSV    : {:.2}  (paper reports ~0.65)", p_fed);
    println!("ComFedSV : {:.2}  (should be much smaller)", p_com);

    let rows: Vec<Vec<String>> = result
        .fedsv_diffs
        .iter()
        .zip(&result.comfedsv_diffs)
        .enumerate()
        .map(|(i, (f, c))| vec![i.to_string(), format!("{f}"), format!("{c}")])
        .collect();
    match write_csv("example1", &["trial", "fedsv_d09", "comfedsv_d09"], &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
