//! Output helpers: aligned text tables and CSV files.
//!
//! Each figure binary prints its series to stdout (for eyeballing the
//! shape against the paper) and writes a CSV under `target/figures/` so
//! EXPERIMENTS.md can reference stable artifacts.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Prints a labelled series as an aligned two-column block.
pub fn print_series(title: &str, header: (&str, &str), rows: &[(String, f64)]) {
    println!("\n== {title} ==");
    println!("{:>16}  {:>12}", header.0, header.1);
    for (label, value) in rows {
        println!("{label:>16}  {value:>12.6}");
    }
}

/// Writes rows as CSV under `target/figures/<name>.csv`, creating the
/// directory as needed. Returns the path written.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target/figures");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_csv_roundtrip() {
        let rows = vec![
            vec!["1".to_string(), "0.5".to_string()],
            vec!["2".to_string(), "0.25".to_string()],
        ];
        let path = write_csv("unit_test_artifact", &["x", "y"], &rows).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x,y\n"));
        assert!(content.contains("2,0.25"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn print_series_does_not_panic() {
        print_series(
            "test",
            ("s", "P_s"),
            &[("1".to_string(), 0.5), ("2".to_string(), 0.25)],
        );
    }
}
