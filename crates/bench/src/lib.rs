//! Benchmark and figure-regeneration harnesses for the ComFedSV paper.
//!
//! Every figure in the paper's evaluation has a binary here (`fig1` …
//! `fig8`, `example1`) that prints the corresponding series as aligned
//! text and CSV. Criterion benches (`valuation`, `completion`, `training`)
//! measure the kernels that dominate each experiment.
//!
//! Set `FEDVAL_PROFILE=quick|default|paper` to trade fidelity for runtime;
//! see [`mod@profile`].
//!
//! # `BENCH_cell_throughput.json` schema
//!
//! The `cell_throughput` binary (per-sample vs. batched kernel
//! throughput at both determinism tiers; `--smoke` for the CI-sized
//! run) writes a JSON object to `target/BENCH_cell_throughput.json` by
//! default; the committed repo-root `BENCH_cell_throughput.json` is the
//! reference smoke run for perf-trajectory tracking, refreshed
//! deliberately via `--out BENCH_cell_throughput.json` (a `--smoke` run
//! also prints current ÷ committed throughput ratios per row):
//!
//! ```json
//! {
//!   "bench": "cell_throughput",
//!   "mode": "smoke" | "full",
//!   "pool_threads": 1,
//!   "cases": [
//!     {
//!       "case": "mlp_train" | "logistic_train" | "cnn_train" | "mlp_cell_loss",
//!       "path": "per_sample" | "batched",
//!       "tier": "bit_exact" | "fast", // per_sample rows are always "bit_exact"
//!       "samples": 320,            // examples per pass
//!       "passes": 6,               // training passes / loss repetitions
//!       "seconds": 0.0123,         // wall-clock for samples × passes
//!       "samples_per_sec": 156097.5,
//!       "checksum": "1a2b…"        // bitwise result checksum; equal between
//!                                  // per_sample and batched bit_exact rows
//!     }
//!   ],
//!   "speedup":      { "<case>": 2.1, … },  // batched bit_exact ÷ per_sample samples/sec
//!   "speedup_fast": { "<case>": 4.2, … }   // batched fast ÷ per_sample samples/sec
//! }
//! ```
//!
//! Per case, the batched bit_exact path is asserted bit-identical to the
//! per-sample path before the file is written (so `speedup` is pure
//! kernel speed — allocation + cache + SIMD, not a numerical
//! trade-off), and the batched fast path is asserted within the
//! documented tolerance of the reference (so `speedup_fast` additionally
//! buys FMA fusion and reduction reordering at bounded ε — see
//! `fedval_linalg::DeterminismTier`).

pub mod fairness_trials;
pub mod profile;
pub mod report;

pub use fairness_trials::{run_fairness_trials, FairnessTrialResult};
pub use profile::{profile, Profile};
pub use report::{print_series, write_csv};
