//! Benchmark and figure-regeneration harnesses for the ComFedSV paper.
//!
//! Every figure in the paper's evaluation has a binary here (`fig1` …
//! `fig8`, `example1`) that prints the corresponding series as aligned
//! text and CSV. Criterion benches (`valuation`, `completion`, `training`)
//! measure the kernels that dominate each experiment.
//!
//! Set `FEDVAL_PROFILE=quick|default|paper` to trade fidelity for runtime;
//! see [`mod@profile`].
//!
//! # `BENCH_cell_throughput.json` schema
//!
//! The `cell_throughput` binary (per-sample vs. batched kernel
//! throughput at both determinism tiers; `--smoke` for the CI-sized
//! run) writes a JSON object to `target/BENCH_cell_throughput.json` by
//! default; the committed repo-root `BENCH_cell_throughput.json` is the
//! reference smoke run for perf-trajectory tracking, refreshed
//! deliberately via `--out BENCH_cell_throughput.json` (a `--smoke` run
//! also prints current ÷ committed throughput ratios per row):
//!
//! ```json
//! {
//!   "bench": "cell_throughput",
//!   "mode": "smoke" | "full",
//!   "pool_threads": 1,
//!   "cases": [
//!     {
//!       "case": "mlp_train" | "logistic_train" | "cnn_train" | "mlp_cell_loss",
//!       "path": "per_sample" | "batched",
//!       "tier": "bit_exact" | "fast", // per_sample rows are always "bit_exact"
//!       "samples": 320,            // examples per pass
//!       "passes": 6,               // training passes / loss repetitions
//!       "seconds": 0.0123,         // wall-clock for samples × passes
//!       "samples_per_sec": 156097.5,
//!       "checksum": "1a2b…"        // bitwise result checksum; equal between
//!                                  // per_sample and batched bit_exact rows
//!     }
//!   ],
//!   "speedup":      { "<case>": 2.1, … },  // batched bit_exact ÷ per_sample samples/sec
//!   "speedup_fast": { "<case>": 4.2, … }   // batched fast ÷ per_sample samples/sec
//! }
//! ```
//!
//! Per case, the batched bit_exact path is asserted bit-identical to the
//! per-sample path before the file is written (so `speedup` is pure
//! kernel speed — allocation + cache + SIMD, not a numerical
//! trade-off), and the batched fast path is asserted within the
//! documented tolerance of the reference (so `speedup_fast` additionally
//! buys FMA fusion and reduction reordering at bounded ε — see
//! `fedval_linalg::DeterminismTier`).
//!
//! # `BENCH_robustness.json` schema
//!
//! The `robustness` binary runs every valuation method over every
//! adversarial-client [`Scenario`](comfedsv::experiments::Scenario) and
//! scores the per-client values as a bad-client detector. It writes
//! `target/BENCH_robustness.json` by default; the committed repo-root
//! `BENCH_robustness.json` is the reference full run (everything is
//! seeded, so smoke rows are bit-identical to the corresponding full
//! rows), refreshed deliberately via `--out BENCH_robustness.json`. A
//! `--smoke` run covers the CI subset (free_riders + noisy_labels ×
//! comfedsv/fedsv/tmc) and fails on AUC regressions beyond a 0.05
//! one-sided tolerance; every run fails if ComFedSV's AUC drops below
//! 0.9 on `free_riders` or `noisy_labels`:
//!
//! ```json
//! {
//!   "bench": "robustness",
//!   "mode": "smoke" | "full",
//!   "seed": 17,
//!   "rows": [
//!     {
//!       "scenario": "iid_baseline" | "dirichlet_skew" | "noisy_labels"
//!                 | "free_riders" | "stragglers" | "churn" | "mixed",
//!       "method": "exact" | "fedsv" | "fedsv-mc" | "comfedsv"
//!               | "comfedsv-mc" | "tmc" | "group-testing",
//!       "bad_clients": 2,          // injected bad clients (k)
//!       "auc": 1.0,                // detection ROC-AUC; null when k = 0
//!       "precision_at_k": 1.0,     // bottom-k hit rate; null when k = 0
//!       "cells_evaluated": 472,    // standalone oracle cost (isolated runs)
//!       "seconds": 0.02            // wall-clock for the valuation
//!     }
//!   ]
//! }
//! ```
//!
//! # `BENCH_service_latency.json` schema
//!
//! The `service_load` binary measures multi-tenant probe latency through
//! `fedval_service`: per scheduling policy it keeps a saturating batch
//! flood running on an owned two-worker pool, submits a series of small
//! probe jobs per class, and records submit → terminal latency. It
//! writes `target/BENCH_service_latency.json` by default; the committed
//! repo-root `BENCH_service_latency.json` is the reference full run,
//! refreshed deliberately via `--out BENCH_service_latency.json`. A
//! `--smoke` run shrinks the probe count and fails (exit ≠ 0) if the
//! interactive p99 speedup falls below 5×:
//!
//! ```json
//! {
//!   "bench": "service_latency",
//!   "mode": "smoke" | "full",
//!   "pool_threads": 2,
//!   "probes_per_class": 12,
//!   "rows": [
//!     {
//!       "policy": "fifo" | "fair",
//!       "class": "interactive" | "batch",
//!       "p50_ms": 32.8,            // nearest-rank percentiles of
//!       "p99_ms": 56.0,            // submit → terminal latency
//!       "mean_ms": 36.8
//!     }
//!   ],
//!   "interactive_p99_speedup": 68.8  // fifo p99 ÷ fair p99, interactive class
//! }
//! ```
//!
//! Probe results are bit-identical across policies (the scheduler only
//! reorders work); the related `pool_overhead` binary reports the
//! scheduler's own cost — queue-wait mean/p99 per policy on an idle
//! pool — as `target/figures/pool_queue_wait.csv`.
//!
//! # `BENCH_cache.json` schema
//!
//! The `cache_effect` binary measures repeat-valuation latency through
//! the real `fedval_service::JobManager` with a disk-backed
//! `fedval_cache::CellCache`: one cold run (train + evaluate every
//! cell) versus warm repeats served by the world memo and the shared
//! cache, both in-process and across a process restart (the binary
//! re-spawns itself twice against one cache directory for the
//! cross-process leg). It writes `target/BENCH_cache.json` by default;
//! the committed repo-root `BENCH_cache.json` is the reference full
//! run, refreshed deliberately via `--out BENCH_cache.json`. A
//! `--smoke` run shrinks repetitions and fails (exit ≠ 0) if the
//! in-process warm speedup falls below 10×:
//!
//! ```json
//! {
//!   "bench": "cache_effect",
//!   "mode": "smoke" | "full",
//!   "pool_threads": 2,
//!   "method": "exact",            // gated leg: run time ≈ pure cell work
//!   "cells_cold": 40950,          // cells the cold run computed
//!   "in_process": {
//!     "cold_ms": 1590.3,          // first job: trains + computes all cells
//!     "warm_ms": 15.0,            // min over repeats: memoized world, all hits
//!     "speedup": 106.1,           // the gated number (≥10× in --smoke)
//!     "warm_cell_hits": 40950
//!   },
//!   "in_process_comfedsv": {      // informational, not gated: comfedsv's
//!     "cold_ms": 253.3,           // warm floor is its matrix-completion
//!     "warm_ms": 69.4,            // solve, which caching cannot remove
//!     "speedup": 3.7
//!   },
//!   "cross_process": {
//!     "cold_ms": 1724.2,          // child 1: empty cache directory
//!     "warm_ms": 45.6,            // child 2: rehydrates the persisted trace,
//!     "speedup": 37.8,            //          loads all cells from disk
//!     "disk_warm_cells": 40950
//!   },
//!   "warm_speedup": 106.1         // = in_process.speedup (the CI gate)
//! }
//! ```
//!
//! Values are asserted bit-identical between every cold/warm pair
//! before any number is written (in-process directly, cross-process via
//! an order-sensitive checksum of the value bits), so every speedup is
//! pure caching — never a numerical shortcut.
//!
//! # The `chaos` binary
//!
//! `chaos` emits no JSON baseline — it is a pass/fail fault-injection
//! harness for the crash-safety contract. Each scenario computes a
//! clean-run value checksum, injects a fault (SIGKILL mid-spill or
//! mid-training, two same-directory writer processes, truncated and
//! bit-flipped segments/traces, a planted stale temp file, an unusable
//! cache directory, a SIGTERM drain of the real `fedval_serve`
//! binary), then asserts the recovered valuation is bit-identical to
//! the baseline, corruption is counted in `corrupt_events` rather than
//! trusted, and exactly one process trains a shared world. `--smoke`
//! runs the kill + writer-race scenarios; `--sigterm-smoke` runs the
//! serve drain; no flags runs everything. Exit ≠ 0 on any violation.

pub mod fairness_trials;
pub mod profile;
pub mod report;

/// Flat-JSON field extraction (re-exported from `fedval_jsonio`, which
/// also serves the `fedval_service` wire format).
pub use fedval_jsonio::scan as jsonscan;
/// Layout-controlled JSON writing (re-exported from `fedval_jsonio`).
pub use fedval_jsonio::write as jsonwrite;

pub use fairness_trials::{run_fairness_trials, FairnessTrialResult};
pub use fedval_jsonio::{scan_num, scan_str, JsonWriter};
pub use profile::{profile, Profile};
pub use report::{print_series, write_csv};
