//! Benchmark and figure-regeneration harnesses for the ComFedSV paper.
//!
//! Every figure in the paper's evaluation has a binary here (`fig1` …
//! `fig8`, `example1`) that prints the corresponding series as aligned
//! text and CSV. Criterion benches (`valuation`, `completion`, `training`)
//! measure the kernels that dominate each experiment.
//!
//! Set `FEDVAL_PROFILE=quick|default|paper` to trade fidelity for runtime;
//! see [`mod@profile`].
//!
//! # `BENCH_cell_throughput.json` schema
//!
//! The `cell_throughput` binary (per-sample vs. batched kernel
//! throughput at both determinism tiers; `--smoke` for the CI-sized
//! run) writes a JSON object to `target/BENCH_cell_throughput.json` by
//! default; the committed repo-root `BENCH_cell_throughput.json` is the
//! reference smoke run for perf-trajectory tracking, refreshed
//! deliberately via `--out BENCH_cell_throughput.json` (a `--smoke` run
//! also prints current ÷ committed throughput ratios per row):
//!
//! ```json
//! {
//!   "bench": "cell_throughput",
//!   "mode": "smoke" | "full",
//!   "pool_threads": 1,
//!   "cases": [
//!     {
//!       "case": "mlp_train" | "logistic_train" | "cnn_train" | "mlp_cell_loss",
//!       "path": "per_sample" | "batched",
//!       "tier": "bit_exact" | "fast", // per_sample rows are always "bit_exact"
//!       "samples": 320,            // examples per pass
//!       "passes": 6,               // training passes / loss repetitions
//!       "seconds": 0.0123,         // wall-clock for samples × passes
//!       "samples_per_sec": 156097.5,
//!       "checksum": "1a2b…"        // bitwise result checksum; equal between
//!                                  // per_sample and batched bit_exact rows
//!     }
//!   ],
//!   "speedup":      { "<case>": 2.1, … },  // batched bit_exact ÷ per_sample samples/sec
//!   "speedup_fast": { "<case>": 4.2, … }   // batched fast ÷ per_sample samples/sec
//! }
//! ```
//!
//! Per case, the batched bit_exact path is asserted bit-identical to the
//! per-sample path before the file is written (so `speedup` is pure
//! kernel speed — allocation + cache + SIMD, not a numerical
//! trade-off), and the batched fast path is asserted within the
//! documented tolerance of the reference (so `speedup_fast` additionally
//! buys FMA fusion and reduction reordering at bounded ε — see
//! `fedval_linalg::DeterminismTier`).
//!
//! # `BENCH_robustness.json` schema
//!
//! The `robustness` binary runs every valuation method over every
//! adversarial-client [`Scenario`](comfedsv::experiments::Scenario) and
//! scores the per-client values as a bad-client detector. It writes
//! `target/BENCH_robustness.json` by default; the committed repo-root
//! `BENCH_robustness.json` is the reference full run (everything is
//! seeded, so smoke rows are bit-identical to the corresponding full
//! rows), refreshed deliberately via `--out BENCH_robustness.json`. A
//! `--smoke` run covers the CI subset (free_riders + noisy_labels ×
//! comfedsv/fedsv/tmc) and fails on AUC regressions beyond a 0.05
//! one-sided tolerance; every run fails if ComFedSV's AUC drops below
//! 0.9 on `free_riders` or `noisy_labels`:
//!
//! ```json
//! {
//!   "bench": "robustness",
//!   "mode": "smoke" | "full",
//!   "seed": 17,
//!   "rows": [
//!     {
//!       "scenario": "iid_baseline" | "dirichlet_skew" | "noisy_labels"
//!                 | "free_riders" | "stragglers" | "churn" | "mixed",
//!       "method": "exact" | "fedsv" | "fedsv-mc" | "comfedsv"
//!               | "comfedsv-mc" | "tmc" | "group-testing",
//!       "bad_clients": 2,          // injected bad clients (k)
//!       "auc": 1.0,                // detection ROC-AUC; null when k = 0
//!       "precision_at_k": 1.0,     // bottom-k hit rate; null when k = 0
//!       "cells_evaluated": 472,    // standalone oracle cost (isolated runs)
//!       "seconds": 0.02            // wall-clock for the valuation
//!     }
//!   ]
//! }
//! ```
//!
//! # `BENCH_service_latency.json` schema
//!
//! The `service_load` binary measures multi-tenant probe latency through
//! `fedval_service`: per scheduling policy it keeps a saturating batch
//! flood running on an owned two-worker pool, submits a series of small
//! probe jobs per class, and records submit → terminal latency. It
//! writes `target/BENCH_service_latency.json` by default; the committed
//! repo-root `BENCH_service_latency.json` is the reference full run,
//! refreshed deliberately via `--out BENCH_service_latency.json`. A
//! `--smoke` run shrinks the probe count and fails (exit ≠ 0) if the
//! interactive p99 speedup falls below 5×:
//!
//! ```json
//! {
//!   "bench": "service_latency",
//!   "mode": "smoke" | "full",
//!   "pool_threads": 2,
//!   "probes_per_class": 12,
//!   "rows": [
//!     {
//!       "policy": "fifo" | "fair",
//!       "class": "interactive" | "batch",
//!       "p50_ms": 32.8,            // nearest-rank percentiles of
//!       "p99_ms": 56.0,            // submit → terminal latency
//!       "mean_ms": 36.8
//!     }
//!   ],
//!   "interactive_p99_speedup": 68.8  // fifo p99 ÷ fair p99, interactive class
//! }
//! ```
//!
//! Probe results are bit-identical across policies (the scheduler only
//! reorders work); the related `pool_overhead` binary reports the
//! scheduler's own cost — queue-wait mean/p99 per policy on an idle
//! pool — as `target/figures/pool_queue_wait.csv`.

pub mod fairness_trials;
pub mod profile;
pub mod report;

/// Flat-JSON field extraction (re-exported from `fedval_jsonio`, which
/// also serves the `fedval_service` wire format).
pub use fedval_jsonio::scan as jsonscan;
/// Layout-controlled JSON writing (re-exported from `fedval_jsonio`).
pub use fedval_jsonio::write as jsonwrite;

pub use fairness_trials::{run_fairness_trials, FairnessTrialResult};
pub use fedval_jsonio::{scan_num, scan_str, JsonWriter};
pub use profile::{profile, Profile};
pub use report::{print_series, write_csv};
