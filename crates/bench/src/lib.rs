//! Benchmark and figure-regeneration harnesses for the ComFedSV paper.
//!
//! Every figure in the paper's evaluation has a binary here (`fig1` …
//! `fig8`, `example1`) that prints the corresponding series as aligned
//! text and CSV. Criterion benches (`valuation`, `completion`, `training`)
//! measure the kernels that dominate each experiment.
//!
//! Set `FEDVAL_PROFILE=quick|default|paper` to trade fidelity for runtime;
//! see [`mod@profile`].
//!
//! # `BENCH_cell_throughput.json` schema
//!
//! The `cell_throughput` binary (per-sample vs. batched kernel
//! throughput; `--smoke` for the CI-sized run) writes a JSON object to
//! `target/BENCH_cell_throughput.json` by default; the committed
//! repo-root `BENCH_cell_throughput.json` is the reference smoke run
//! for perf-trajectory tracking, refreshed deliberately via
//! `--out BENCH_cell_throughput.json`:
//!
//! ```json
//! {
//!   "bench": "cell_throughput",
//!   "mode": "smoke" | "full",
//!   "pool_threads": 1,
//!   "cases": [
//!     {
//!       "case": "mlp_train" | "logistic_train" | "cnn_train" | "mlp_cell_loss",
//!       "path": "per_sample" | "batched",
//!       "samples": 320,            // examples per pass
//!       "passes": 6,               // training passes / loss repetitions
//!       "seconds": 0.0123,         // wall-clock for samples × passes
//!       "samples_per_sec": 156097.5,
//!       "checksum": "1a2b…"        // bitwise result checksum; equal across the two paths of a case
//!     }
//!   ],
//!   "speedup": { "<case>": 2.1, … }  // batched ÷ per_sample samples/sec
//! }
//! ```
//!
//! Every case's two paths are asserted bit-identical before the file is
//! written, so a schema consumer can treat `speedup` as pure kernel
//! speed (allocation + cache + SIMD), not a numerical trade-off.

pub mod fairness_trials;
pub mod profile;
pub mod report;

pub use fairness_trials::{run_fairness_trials, FairnessTrialResult};
pub use profile::{profile, Profile};
pub use report::{print_series, write_csv};
