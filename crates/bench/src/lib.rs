//! Benchmark and figure-regeneration harnesses for the ComFedSV paper.
//!
//! Every figure in the paper's evaluation has a binary here (`fig1` …
//! `fig8`, `example1`) that prints the corresponding series as aligned
//! text and CSV. Criterion benches (`valuation`, `completion`, `training`)
//! measure the kernels that dominate each experiment.
//!
//! Set `FEDVAL_PROFILE=quick|default|paper` to trade fidelity for runtime;
//! see [`mod@profile`].

pub mod fairness_trials;
pub mod profile;
pub mod report;

pub use fairness_trials::{run_fairness_trials, FairnessTrialResult};
pub use profile::{profile, Profile};
pub use report::{print_series, write_csv};
