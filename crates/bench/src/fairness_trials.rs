//! Shared driver for the duplicated-client fairness experiments
//! (Example 1 and Fig. 5): repeat training with fresh selection seeds and
//! collect the relative difference `d_{0,N-1}` between the two clients
//! holding identical data, under FedSV and ComFedSV.

use comfedsv::experiments::{DatasetKind, ExperimentBuilder};
use fedval_fl::FlConfig;
use fedval_metrics::relative_difference;
use fedval_shapley::{ComFedSv, FedSv};

/// Result of one fairness sweep.
pub struct FairnessTrialResult {
    /// `d_{0,9}` per trial under FedSV.
    pub fedsv_diffs: Vec<f64>,
    /// `d_{0,9}` per trial under ComFedSV.
    pub comfedsv_diffs: Vec<f64>,
}

/// Runs `trials` independent runs of the duplicated-client construction on
/// `kind` (client `N−1` holds a copy of client 0's data) and values each
/// run with FedSV and ComFedSV.
pub fn run_fairness_trials(
    kind: DatasetKind,
    trials: usize,
    rounds: usize,
    clients_per_round: usize,
    samples_per_client: usize,
    test_samples: usize,
) -> FairnessTrialResult {
    let num_clients = 10;
    let mut fedsv_diffs = Vec::with_capacity(trials);
    let mut comfedsv_diffs = Vec::with_capacity(trials);
    for trial in 0..trials {
        let seed = 1000 + trial as u64;
        let world = ExperimentBuilder::new(kind)
            .num_clients(num_clients)
            .samples_per_client(samples_per_client)
            .test_samples(test_samples)
            .duplicate(0, num_clients - 1)
            .seed(seed)
            .build();

        // FedSV is measured on plain FedAvg (every round samples K of N),
        // exactly as in the paper's Example 1; the "everyone heard" round
        // is an Assumption-1 requirement of ComFedSV only, and including
        // it would hand both twins a large shared round-0 value that
        // artificially shrinks d_{0,9}.
        let plain = FlConfig::new(rounds, clients_per_round, 0.2, seed).with_everyone_heard(false);
        let trace_plain = world.train(&plain);
        let oracle_plain = world.oracle(&trace_plain);
        let fed = FedSv::exact().run(&oracle_plain).unwrap();
        fedsv_diffs.push(relative_difference(fed[0], fed[num_clients - 1]));

        // ComFedSV runs on the Assumption-1 protocol it requires.
        let heard = FlConfig::new(rounds, clients_per_round, 0.2, seed);
        let trace_heard = world.train(&heard);
        let oracle_heard = world.oracle(&trace_heard);
        let out = ComFedSv::exact(6)
            .with_lambda(0.01)
            .with_seed(seed)
            .run(&oracle_heard)
            .unwrap();
        comfedsv_diffs.push(relative_difference(
            out.values[0],
            out.values[num_clients - 1],
        ));
    }
    FairnessTrialResult {
        fedsv_diffs,
        comfedsv_diffs,
    }
}
