//! Minimal flat-JSON field extraction for reading committed baseline
//! files back without a JSON dependency.
//!
//! The benchmark binaries write their machine-readable output as one
//! JSON object per line in a `"rows"` / `"cases"` array; the smoke modes
//! read the committed copy back to compare against. These scanners pull
//! `"key": value` pairs out of such a line. They are deliberately not a
//! JSON parser — they assume the writer's own formatting (one object per
//! line, `": "` separators, no escaped quotes in values), which is
//! exactly what the binaries in this crate emit.

/// Extracts the string value of `"key": "…"` from a flat JSON object
/// line.
pub fn scan_str<'a>(row: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = row.find(&pat)? + pat.len();
    let end = row[start..].find('"')? + start;
    Some(&row[start..end])
}

/// Extracts the numeric value of `"key": 1.25` from a flat JSON object
/// line. Returns `None` for missing keys and non-numeric values
/// (including `null`).
pub fn scan_num(row: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = row.find(&pat)? + pat.len();
    let end = row[start..].find([',', '}']).map(|i| i + start)?;
    row[start..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROW: &str =
        "    {\"case\": \"mlp\", \"tier\": \"fast\", \"seconds\": 0.5, \"auc\": null},";

    #[test]
    fn scans_strings_and_numbers() {
        assert_eq!(scan_str(ROW, "case"), Some("mlp"));
        assert_eq!(scan_str(ROW, "tier"), Some("fast"));
        assert_eq!(scan_num(ROW, "seconds"), Some(0.5));
    }

    #[test]
    fn missing_and_null_fields_are_none() {
        assert_eq!(scan_str(ROW, "absent"), None);
        assert_eq!(scan_num(ROW, "absent"), None);
        assert_eq!(scan_num(ROW, "auc"), None, "null is not a number");
    }

    #[test]
    fn last_field_terminated_by_brace() {
        assert_eq!(scan_num("{\"x\": 2}", "x"), Some(2.0));
    }
}
