//! Runtime/fidelity profiles for the figure harnesses.
//!
//! The paper's full settings (100 rounds, 50 repetitions, 100 clients) run
//! in minutes in release mode; CI and quick local iterations want smaller
//! numbers. The `FEDVAL_PROFILE` environment variable selects:
//!
//! * `quick` — smallest runs that still show every qualitative effect;
//! * `default` — the middle ground used by `cargo bench` (default);
//! * `paper` — the paper's settings wherever feasible.

/// Scaling knobs shared by the figure harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Name ("quick" / "default" / "paper").
    pub name: &'static str,
    /// Repetitions of the fairness trials (paper: 50).
    pub fairness_trials: usize,
    /// Rounds for the long training runs (paper: 100).
    pub long_rounds: usize,
    /// Rounds for the short valuation runs (paper: 10).
    pub short_rounds: usize,
    /// Clients for the large-scale noisy-label experiment (paper: 100).
    pub many_clients: usize,
    /// Rounds for the noisy-label experiment (paper: 100).
    pub label_rounds: usize,
    /// Monte-Carlo permutations for the large-scale runs.
    pub mc_permutations: usize,
    /// Examples per client.
    pub samples_per_client: usize,
    /// Server test-set size.
    pub test_samples: usize,
}

/// Reads the profile from `FEDVAL_PROFILE` (default: `default`).
pub fn profile() -> Profile {
    match std::env::var("FEDVAL_PROFILE").as_deref() {
        Ok("quick") => Profile {
            name: "quick",
            fairness_trials: 10,
            long_rounds: 30,
            short_rounds: 6,
            many_clients: 30,
            label_rounds: 15,
            mc_permutations: 30,
            samples_per_client: 40,
            test_samples: 100,
        },
        Ok("paper") => Profile {
            name: "paper",
            fairness_trials: 50,
            long_rounds: 100,
            short_rounds: 10,
            many_clients: 100,
            label_rounds: 50,
            mc_permutations: 200,
            samples_per_client: 80,
            test_samples: 200,
        },
        _ => Profile {
            name: "default",
            fairness_trials: 25,
            long_rounds: 60,
            short_rounds: 10,
            many_clients: 50,
            label_rounds: 30,
            mc_permutations: 80,
            samples_per_client: 60,
            test_samples: 150,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_default() {
        // The test environment does not set FEDVAL_PROFILE.
        if std::env::var("FEDVAL_PROFILE").is_err() {
            assert_eq!(profile().name, "default");
        }
    }

    #[test]
    fn profiles_scale_monotonically() {
        let quick = Profile {
            name: "quick",
            fairness_trials: 10,
            long_rounds: 30,
            short_rounds: 6,
            many_clients: 30,
            label_rounds: 15,
            mc_permutations: 30,
            samples_per_client: 40,
            test_samples: 100,
        };
        let paper = Profile {
            name: "paper",
            fairness_trials: 50,
            long_rounds: 100,
            short_rounds: 10,
            many_clients: 100,
            label_rounds: 50,
            mc_permutations: 200,
            samples_per_client: 80,
            test_samples: 200,
        };
        assert!(quick.fairness_trials < paper.fairness_trials);
        assert!(quick.long_rounds < paper.long_rounds);
        assert!(quick.many_clients < paper.many_clients);
    }
}
