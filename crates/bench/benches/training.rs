//! Criterion benches for the training substrate: FedAvg rounds per model
//! family and utility-oracle evaluations (the unit cost of Fig. 8).

use comfedsv::experiments::{DatasetKind, ExperimentBuilder};
use criterion::{criterion_group, criterion_main, Criterion};
use fedval_fl::{FlConfig, Subset};

fn bench_fedavg_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fedavg_5_rounds_n10_k3");
    for kind in [
        DatasetKind::Synthetic { non_iid: false },
        DatasetKind::SimMnist { non_iid: false },
        DatasetKind::SimCifar { non_iid: false },
    ] {
        let world = ExperimentBuilder::new(kind)
            .num_clients(10)
            .samples_per_client(40)
            .test_samples(50)
            .seed(1)
            .build();
        group.bench_function(kind.name(), |b| {
            b.iter(|| std::hint::black_box(world.train(&FlConfig::new(5, 3, 0.2, 1))))
        });
    }
    group.finish();
}

fn bench_utility_evaluation(c: &mut Criterion) {
    let world = ExperimentBuilder::sim_mnist(false)
        .num_clients(10)
        .samples_per_client(40)
        .test_samples(100)
        .seed(2)
        .build();
    let trace = world.train(&FlConfig::new(5, 3, 0.2, 2));
    c.bench_function("utility_oracle_64_fresh_subsets", |b| {
        b.iter(|| {
            let oracle = world.oracle(&trace);
            let mut acc = 0.0;
            for bits in 1u64..=64 {
                acc += oracle.utility(2, Subset::from_bits(bits % 1023 + 1));
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_full_utility_matrix(c: &mut Criterion) {
    let world = ExperimentBuilder::synthetic(false)
        .num_clients(8)
        .samples_per_client(30)
        .test_samples(60)
        .seed(3)
        .build();
    let trace = world.train(&FlConfig::new(5, 3, 0.2, 3));
    c.bench_function("full_utility_matrix_n8_t5", |b| {
        b.iter(|| {
            let oracle = world.oracle(&trace);
            std::hint::black_box(fedval_fl::full_utility_matrix(&oracle))
        })
    });
}

criterion_group!(
    benches,
    bench_fedavg_round,
    bench_utility_evaluation,
    bench_full_utility_matrix
);
criterion_main!(benches);
