//! Criterion benches for the valuation algorithms (backs Fig. 8's cost
//! analysis with controlled micro-measurements).

use comfedsv::experiments::ExperimentBuilder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedval_fl::FlConfig;
use fedval_shapley::{ComFedSv, EstimatorKind, ExactShapley, FedSv, FedSvConfig};

fn build(
    n: usize,
    rounds: usize,
    k: usize,
) -> (comfedsv::experiments::World, fedval_fl::TrainingTrace) {
    let world = ExperimentBuilder::synthetic(false)
        .num_clients(n)
        .samples_per_client(30)
        .test_samples(60)
        .seed(1)
        .build();
    let trace = world.train(&FlConfig::new(rounds, k, 0.2, 1));
    (world, trace)
}

fn bench_fedsv_exact(c: &mut Criterion) {
    let (world, trace) = build(8, 5, 3);
    c.bench_function("fedsv_exact_n8_t5_k3", |b| {
        b.iter(|| {
            let oracle = world.oracle(&trace);
            std::hint::black_box(FedSv::exact().run(&oracle).unwrap())
        })
    });
}

fn bench_fedsv_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("fedsv_mc_t5");
    for &n in &[10usize, 20, 40] {
        let k = (n * 3 / 10).max(2);
        let (world, trace) = build(n, 5, k);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let oracle = world.oracle(&trace);
                std::hint::black_box(
                    FedSv::monte_carlo(FedSvConfig {
                        permutations_per_round: Some(20),
                        seed: 1,
                    })
                    .run(&oracle)
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_comfedsv_exact_pipeline(c: &mut Criterion) {
    let (world, trace) = build(8, 5, 3);
    c.bench_function("comfedsv_exact_pipeline_n8_t5", |b| {
        b.iter(|| {
            let oracle = world.oracle(&trace);
            std::hint::black_box(ComFedSv::exact(4).with_lambda(0.01).run(&oracle).unwrap())
        })
    });
}

fn bench_comfedsv_monte_carlo_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("comfedsv_mc_t5");
    for &n in &[10usize, 20, 40] {
        let k = (n * 3 / 10).max(2);
        let (world, trace) = build(n, 5, k);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let oracle = world.oracle(&trace);
                std::hint::black_box(
                    ComFedSv {
                        rank: 5,
                        lambda: 0.01,
                        estimator: EstimatorKind::MonteCarlo {
                            num_permutations: 30,
                        },
                        als_max_iters: 20,
                        solver: Default::default(),
                        seed: 1,
                    }
                    .run(&oracle)
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_ground_truth(c: &mut Criterion) {
    let (world, trace) = build(8, 5, 3);
    c.bench_function("ground_truth_n8_t5", |b| {
        b.iter(|| {
            let oracle = world.oracle(&trace);
            std::hint::black_box(ExactShapley.run(&oracle).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_fedsv_exact,
    bench_fedsv_monte_carlo,
    bench_comfedsv_exact_pipeline,
    bench_comfedsv_monte_carlo_pipeline,
    bench_ground_truth
);
criterion_main!(benches);
