//! Criterion benches for the dense linear-algebra kernels underpinning
//! everything: SVD (the Fig-2 spectrum study), Cholesky ridge solves (ALS
//! sub-problems), and the big matmul shapes of the completion diagnostics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedval_linalg::{cholesky, Matrix, Svd};

fn dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i as u64).wrapping_mul(6364136223846793005)
            ^ (j as u64).wrapping_mul(1442695040888963407)
            ^ seed;
        ((x >> 33) % 2000) as f64 / 1000.0 - 1.0
    })
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi_svd");
    for &(rows, cols) in &[(30usize, 256usize), (60, 1024)] {
        let m = dense(rows, cols, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &m,
            |b, m| b.iter(|| std::hint::black_box(Svd::new(m).unwrap())),
        );
    }
    group.finish();
}

fn bench_ridge_solve(c: &mut Criterion) {
    // The exact shape of an ALS column sub-solve: few observations, tiny rank.
    let design = dense(8, 6, 2);
    let rhs: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
    c.bench_function("ridge_solve_8x6", |b| {
        b.iter(|| std::hint::black_box(cholesky::ridge_solve(&design, &rhs, 0.1).unwrap()))
    });
}

fn bench_matmul_transpose(c: &mut Criterion) {
    // Factor product W Hᵀ at utility-matrix scale.
    let w = dense(60, 6, 3);
    let h = dense(1024, 6, 4);
    c.bench_function("factor_product_60x6_x_1024x6", |b| {
        b.iter(|| std::hint::black_box(w.matmul_transpose(&h).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_svd,
    bench_ridge_solve,
    bench_matmul_transpose
);
criterion_main!(benches);
