#![allow(clippy::needless_range_loop)]
//! Criterion benches for the matrix-completion solvers (the LIBPMF role;
//! backs Fig. 3's rank sweep with timing data).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedval_mc::{AlsConfig, CompletionProblem, MatrixCompleter, SgdConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a masked low-rank problem of the utility-matrix shape.
fn masked_problem(
    rows: usize,
    cols: usize,
    rank: usize,
    keep: f64,
    seed: u64,
) -> CompletionProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..rank).map(|_| rng.random::<f64>() - 0.5).collect())
        .collect();
    let h: Vec<Vec<f64>> = (0..cols)
        .map(|_| (0..rank).map(|_| rng.random::<f64>() - 0.5).collect())
        .collect();
    let mut p = CompletionProblem::new(rows);
    for j in 0..cols {
        let v: f64 = w[0].iter().zip(&h[j]).map(|(a, b)| a * b).sum();
        p.add_observation(0, j as u64, v);
    }
    for i in 1..rows {
        for j in 0..cols {
            if rng.random::<f64>() < keep {
                let v: f64 = w[i].iter().zip(&h[j]).map(|(a, b)| a * b).sum();
                p.add_observation(i, j as u64, v);
            }
        }
    }
    p
}

fn bench_als_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("als_100_rows");
    for &cols in &[256usize, 1024, 4096] {
        let p = masked_problem(100, cols, 4, 0.05, 1);
        group.bench_with_input(BenchmarkId::from_parameter(cols), &cols, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    AlsConfig::new(4)
                        .with_lambda(0.05)
                        .with_max_iters(10)
                        .complete(&p)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_als_rank_sweep(c: &mut Criterion) {
    let p = masked_problem(100, 1024, 4, 0.05, 2);
    let mut group = c.benchmark_group("als_rank");
    for &rank in &[1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    AlsConfig::new(rank)
                        .with_lambda(0.05)
                        .with_max_iters(10)
                        .complete(&p)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_sgd(c: &mut Criterion) {
    let p = masked_problem(100, 1024, 4, 0.05, 3);
    c.bench_function("sgd_1024_cols_20_epochs", |b| {
        b.iter(|| {
            std::hint::black_box(
                SgdConfig::new(4)
                    .with_lambda(0.05)
                    .with_epochs(20)
                    .complete(&p)
                    .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_als_sizes, bench_als_rank_sweep, bench_sgd);
criterion_main!(benches);
