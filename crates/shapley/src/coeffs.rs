//! Shapley weights and combinatorial helpers.

/// Table of binomial coefficients `C(n, k)` as `f64`, for `n ≤ 170`
/// (beyond that `f64` overflows; the valuation formulas only ever need
/// `n = N − 1 ≤ 62`).
#[derive(Debug, Clone)]
pub struct BinomialTable {
    n: usize,
    rows: Vec<Vec<f64>>,
}

impl BinomialTable {
    /// Builds the Pascal triangle up to `n`.
    pub fn new(n: usize) -> Self {
        assert!(n <= 170, "binomial table overflows f64 beyond n = 170");
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let mut row = vec![1.0; i + 1];
            for k in 1..i {
                row[k] = rows[i - 1][k - 1] + rows[i - 1][k];
            }
            rows.push(row);
        }
        BinomialTable { n, rows }
    }

    /// `C(n, k)`; zero outside the triangle.
    pub fn get(&self, n: usize, k: usize) -> f64 {
        if n > self.n || k > n {
            return 0.0;
        }
        self.rows[n][k]
    }

    /// The Shapley weight `1 / (N · C(N−1, |S|))` of Definitions 2 and 4.
    pub fn shapley_weight(&self, num_players: usize, coalition_size: usize) -> f64 {
        debug_assert!(num_players >= 1);
        debug_assert!(coalition_size < num_players);
        1.0 / (num_players as f64 * self.get(num_players - 1, coalition_size))
    }
}

/// Cumulative `ln(k!)` table for the Observation-1 probability formula.
#[derive(Debug, Clone)]
pub struct LogFactorial {
    table: Vec<f64>,
}

impl LogFactorial {
    /// Builds `ln(k!)` for `k = 0..=n`.
    pub fn new(n: usize) -> Self {
        let mut table = Vec::with_capacity(n + 1);
        table.push(0.0);
        for k in 1..=n {
            table.push(table[k - 1] + (k as f64).ln());
        }
        LogFactorial { table }
    }

    /// `ln(k!)`.
    pub fn get(&self, k: usize) -> f64 {
        self.table[k]
    }

    /// `ln` of the multinomial coefficient `n! / (a! b! c!)` with
    /// `a + b + c = n`.
    pub fn ln_multinomial3(&self, n: usize, a: usize, b: usize, c: usize) -> f64 {
        debug_assert_eq!(a + b + c, n, "multinomial parts must sum to n");
        self.get(n) - self.get(a) - self.get(b) - self.get(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_binomials_match_hand_values() {
        let t = BinomialTable::new(10);
        assert_eq!(t.get(5, 0), 1.0);
        assert_eq!(t.get(5, 2), 10.0);
        assert_eq!(t.get(10, 5), 252.0);
        assert_eq!(t.get(4, 7), 0.0);
    }

    #[test]
    fn rows_sum_to_powers_of_two() {
        let t = BinomialTable::new(20);
        for n in 0..=20usize {
            let sum: f64 = (0..=n).map(|k| t.get(n, k)).sum();
            assert!((sum - 2f64.powi(n as i32)).abs() < 1e-6);
        }
    }

    #[test]
    fn shapley_weights_sum_to_one_over_all_coalitions() {
        // Σ_{S ⊆ I\{i}} 1/(N·C(N−1,|S|)) = Σ_k C(N−1,k)/(N·C(N−1,k)) = 1.
        let t = BinomialTable::new(12);
        for n in 1..=12usize {
            let total: f64 = (0..n)
                .map(|k| t.get(n - 1, k) * t.shapley_weight(n, k))
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "n={n}: {total}");
        }
    }

    #[test]
    fn log_factorial_matches_direct() {
        let lf = LogFactorial::new(10);
        assert_eq!(lf.get(0), 0.0);
        assert!((lf.get(5) - 120f64.ln()).abs() < 1e-12);
        assert!((lf.get(10) - 3628800f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn multinomial_matches_direct() {
        let lf = LogFactorial::new(10);
        // 6!/(1!2!3!) = 60.
        assert!((lf.ln_multinomial3(6, 1, 2, 3).exp() - 60.0).abs() < 1e-9);
        // Degenerate: n!/(n!0!0!) = 1.
        assert!((lf.ln_multinomial3(7, 7, 0, 0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn rejects_oversized_table() {
        let _ = BinomialTable::new(200);
    }
}
