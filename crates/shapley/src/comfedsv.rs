//! Completed federated Shapley value (paper Definition 4 and equation (12)).
//!
//! Given completion factors `(W, H)`, the ComFedSV of client `i` is
//!
//! ```text
//! s_i = (1/N) Σ_t Σ_{S ⊆ I\{i}} [1 / C(N−1,|S|)] w_tᵀ (h_{S∪{i}} − h_S)
//! ```
//!
//! Because the round factor enters linearly, `Σ_t w_tᵀ x = (Σ_t w_t)ᵀ x`,
//! so both the exact sum and the Monte-Carlo estimator reduce to single
//! passes over subset *scores* `g(S) = (Σ_t w_t)ᵀ h_S`, which this module
//! precomputes.

use crate::coeffs::BinomialTable;
use fedval_fl::Subset;
use fedval_linalg::vector;
use fedval_mc::{CompletionProblem, Factors};
use std::collections::HashMap;

/// Precomputed subset scores `g(S) = (Σ_t w_t)ᵀ h_S` for every column
/// registered in the completion problem. Unregistered subsets score zero
/// (their factor row is pinned to zero by the regularizer).
#[derive(Debug, Clone)]
pub struct SubsetColumns {
    scores: HashMap<u64, f64>,
}

impl SubsetColumns {
    /// Builds the score table from solved factors and the problem that
    /// defined the column keys.
    pub fn new(factors: &Factors, problem: &CompletionProblem) -> Self {
        let v = factors.row_factor_sum();
        let mut scores = HashMap::with_capacity(problem.num_cols());
        for col in 0..problem.num_cols() {
            let key = problem.column_key(col);
            scores.insert(key, vector::dot(&v, factors.h.row(col)));
        }
        SubsetColumns { scores }
    }

    /// `g(S)`, zero for unregistered subsets.
    pub fn score(&self, s: Subset) -> f64 {
        self.scores.get(&s.bits()).copied().unwrap_or(0.0)
    }

    /// Number of registered subsets.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// `true` when no subset is registered.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

/// Exact ComFedSV over the full coalition space (Definition 4). Requires
/// `n ≤` [`MAX_EXACT_CLIENTS`](crate::MAX_EXACT_CLIENTS) (the same gate
/// as the exact-subsets pipeline); for larger cohorts use
/// [`comfedsv_monte_carlo`].
pub fn comfedsv_from_factors(factors: &Factors, problem: &CompletionProblem, n: usize) -> Vec<f64> {
    assert!(
        (1..=crate::MAX_EXACT_CLIENTS).contains(&n),
        "exact ComFedSV is exponential in N (max {})",
        crate::MAX_EXACT_CLIENTS
    );
    let columns = SubsetColumns::new(factors, problem);
    let table = BinomialTable::new(n);
    let full = Subset::full(n);
    let mut out = vec![0.0; n];
    for (i, out_i) in out.iter_mut().enumerate() {
        let others = full.without(i);
        let mut acc = 0.0;
        for s in others.subsets() {
            let weight = table.shapley_weight(n, s.len());
            acc += weight * (columns.score(s.with(i)) - columns.score(s));
        }
        *out_i = acc;
    }
    out
}

/// Monte-Carlo ComFedSV (equation (12)): permutation prefixes only.
///
/// `permutations` are the same `π_1 … π_M` used when building the reduced
/// completion problem (13); each must be a permutation of `0..n`.
pub fn comfedsv_monte_carlo(
    factors: &Factors,
    problem: &CompletionProblem,
    n: usize,
    permutations: &[Vec<usize>],
) -> Vec<f64> {
    assert!(!permutations.is_empty(), "need at least one permutation");
    let columns = SubsetColumns::new(factors, problem);
    let mut out = vec![0.0; n];
    let inv_m = 1.0 / permutations.len() as f64;
    for perm in permutations {
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut prefix = Subset::EMPTY;
        let mut prefix_score = columns.score(prefix); // = 0 by convention
        for &i in perm {
            let next = prefix.with(i);
            let next_score = columns.score(next);
            out[i] += (next_score - prefix_score) * inv_m;
            prefix = next;
            prefix_score = next_score;
        }
    }
    out
}

/// Antithetic-pairs variant of the Monte-Carlo estimator: every sampled
/// permutation is evaluated together with its reversal. Forward and
/// reversed walks see complementary prefix sizes (`|S|` and `N−1−|S|`),
/// which cancels much of the position-dependent variance of plain
/// permutation sampling at identical cost per pair — a standard
/// variance-reduction extension beyond the paper's Algorithm 1.
pub fn comfedsv_antithetic(
    factors: &Factors,
    problem: &CompletionProblem,
    n: usize,
    permutations: &[Vec<usize>],
) -> Vec<f64> {
    assert!(!permutations.is_empty(), "need at least one permutation");
    let mirrored: Vec<Vec<usize>> = permutations
        .iter()
        .flat_map(|p| {
            let mut rev = p.clone();
            rev.reverse();
            [p.clone(), rev]
        })
        .collect();
    comfedsv_monte_carlo(factors, problem, n, &mirrored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_linalg::Matrix;

    /// Builds factors whose product is exactly a given utility matrix with
    /// columns = all subsets of `n` players, by "completing" a fully
    /// observed rank-revealing problem with rank = min(T, 2^n).
    ///
    /// Rather than run ALS here, the tests construct factors directly:
    /// W = I (T×T) and H's row for subset S holds the column of utilities,
    /// so that w_tᵀ h_S = U_t(S) exactly.
    fn exact_factors(
        utility: impl Fn(usize, Subset) -> f64,
        t: usize,
        n: usize,
    ) -> (Factors, CompletionProblem) {
        let cols = 1usize << n;
        let mut problem = CompletionProblem::new(t);
        for bits in 0..cols as u64 {
            problem.ensure_column(bits);
        }
        let w = Matrix::identity(t);
        let mut h = Matrix::zeros(cols, t);
        for bits in 0..cols as u64 {
            let s = Subset::from_bits(bits);
            let col = problem.column_index(bits).unwrap();
            for round in 0..t {
                h.set(col, round, utility(round, s));
            }
        }
        (Factors { w, h }, problem)
    }

    #[test]
    fn matches_classical_shapley_for_single_round_game() {
        // One round, utility = additive game: ComFedSV = per-player value.
        let c = [2.0, -1.0, 0.5];
        let (f, p) = exact_factors(|_t, s| s.members().iter().map(|&i| c[i]).sum::<f64>(), 1, 3);
        let v = comfedsv_from_factors(&f, &p, 3);
        for (vi, ci) in v.iter().zip(&c) {
            assert!((vi - ci).abs() < 1e-12, "{vi} vs {ci}");
        }
    }

    #[test]
    fn sums_over_rounds() {
        // Two identical additive rounds double every value.
        let c = [1.0, 3.0];
        let single = {
            let (f, p) =
                exact_factors(|_t, s| s.members().iter().map(|&i| c[i]).sum::<f64>(), 1, 2);
            comfedsv_from_factors(&f, &p, 2)
        };
        let double = {
            let (f, p) =
                exact_factors(|_t, s| s.members().iter().map(|&i| c[i]).sum::<f64>(), 2, 2);
            comfedsv_from_factors(&f, &p, 2)
        };
        for (d, s) in double.iter().zip(&single) {
            assert!((d - 2.0 * s).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetry_with_perfect_completion() {
        // Theorem 1 with δ = 0: symmetric players get identical values.
        let (f, p) = exact_factors(
            |_t, s| {
                // Utility symmetric in players 0 and 1.
                let k = s.len() as f64;
                k * k + f64::from(u8::from(s.contains(2))) * 0.7
            },
            3,
            3,
        );
        let v = comfedsv_from_factors(&f, &p, 3);
        assert!((v[0] - v[1]).abs() < 1e-12);
    }

    #[test]
    fn zero_element_with_perfect_completion() {
        // Player 1 contributes nothing.
        let (f, p) = exact_factors(|_t, s| s.without(1).len() as f64 * 2.0, 2, 2);
        let v = comfedsv_from_factors(&f, &p, 2);
        assert!(v[1].abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_with_all_permutations_is_exact() {
        let c = [0.5, 1.5, -0.5];
        let (f, p) = exact_factors(|_t, s| s.members().iter().map(|&i| c[i]).sum::<f64>(), 2, 3);
        let exact = comfedsv_from_factors(&f, &p, 3);
        // All 6 permutations of 3 players.
        let perms: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        let mc = comfedsv_monte_carlo(&f, &p, 3, &perms);
        for (a, b) in exact.iter().zip(&mc) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn monte_carlo_telescopes_to_full_coalition_score() {
        // For each permutation the marginals telescope, so the sum of all
        // players' values equals g(I) (score of the full coalition).
        let (f, p) = exact_factors(|_t, s| (s.len() as f64).sqrt(), 2, 4);
        let perms = vec![vec![2, 0, 3, 1], vec![1, 3, 0, 2]];
        let mc = comfedsv_monte_carlo(&f, &p, 4, &perms);
        let columns = SubsetColumns::new(&f, &p);
        let total: f64 = mc.iter().sum();
        assert!((total - columns.score(Subset::full(4))).abs() < 1e-12);
    }

    #[test]
    fn unregistered_subsets_score_zero() {
        let mut p = CompletionProblem::new(1);
        p.add_observation(0, 0b01, 2.0);
        let f = Factors {
            w: Matrix::from_rows(&[&[1.0]]).unwrap(),
            h: Matrix::from_rows(&[&[2.0]]).unwrap(),
        };
        let cols = SubsetColumns::new(&f, &p);
        assert_eq!(cols.score(Subset::from_bits(0b01)), 2.0);
        assert_eq!(cols.score(Subset::from_bits(0b10)), 0.0);
        assert_eq!(cols.len(), 1);
        assert!(!cols.is_empty());
    }

    #[test]
    fn antithetic_is_unbiased_on_full_enumeration() {
        // Using all permutations, antithetic doubling must not change the
        // (already exact) answer.
        let c = [0.5, 1.5, -0.5];
        let (f, p) = exact_factors(|_t, s| s.members().iter().map(|&i| c[i]).sum::<f64>(), 2, 3);
        let perms: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ];
        let plain = comfedsv_monte_carlo(&f, &p, 3, &perms);
        let anti = comfedsv_antithetic(&f, &p, 3, &perms);
        for (a, b) in plain.iter().zip(&anti) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn antithetic_reduces_variance_on_additive_game() {
        // For an additive game a single antithetic pair is already exact
        // (marginal of i = c_i at every position), so any single-pair
        // estimate matches the truth — the strongest form of variance
        // reduction. Plain single-permutation sampling is also exact here,
        // so test a *position-sensitive* game instead: u(S) = |S|².
        let (f, p) = exact_factors(|_t, s| (s.len() * s.len()) as f64, 1, 4);
        let exact = comfedsv_from_factors(&f, &p, 4);
        // One permutation: plain estimate is biased by position; the
        // antithetic pair averages positions k and N−1−k.
        let single = vec![vec![0usize, 1, 2, 3]];
        let plain = comfedsv_monte_carlo(&f, &p, 4, &single);
        let anti = comfedsv_antithetic(&f, &p, 4, &single);
        let err = |v: &[f64]| -> f64 {
            v.iter()
                .zip(&exact)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
        };
        assert!(
            err(&anti) <= err(&plain) + 1e-12,
            "antithetic error {} vs plain {}",
            err(&anti),
            err(&plain)
        );
    }

    #[test]
    #[should_panic(expected = "permutation length mismatch")]
    fn monte_carlo_rejects_bad_permutation() {
        let (f, p) = exact_factors(|_t, _s| 0.0, 1, 3);
        let _ = comfedsv_monte_carlo(&f, &p, 3, &[vec![0, 1]]);
    }
}
