//! The analytic unfairness probability of Observation 1 (paper Fig. 1).
//!
//! For two clients with identical data and per-round value `δ` when
//! selected, the paper lower-bounds the probability that their final
//! FedSVs differ by at least `s·δ` via a trinomial model: each round is
//! "(i selected, j not)" with probability `p = m(N−m)/(N(N−1))`,
//! "(j selected, i not)" with probability `p`, or neutral otherwise.
//!
//! ```text
//! P_s = P(#(i only) − #(j only) ≥ s)
//!     = Σ_{a=s}^{T} Σ_{b=0}^{⌊(T−a)/2⌋} C(T; b+a, T−a−2b, b) p^{2b+a} (1−2p)^{T−2b−a}
//! ```
//!
//! Note: the paper's appendix prints the neutral-category probability as
//! `(1−p)`, which makes the sum exceed 1; the trinomial requires `(1−2p)`
//! (the neutral probability is `1 − 2p`), which we verified against direct
//! enumeration and Monte-Carlo simulation. We implement the corrected
//! version and record the discrepancy in EXPERIMENTS.md.

use crate::coeffs::LogFactorial;

/// Parameters of the Observation-1 setting.
#[derive(Debug, Clone, Copy)]
pub struct UnfairnessParams {
    /// Total rounds `T`.
    pub rounds: usize,
    /// Total clients `N`.
    pub num_clients: usize,
    /// Clients selected per round `m`.
    pub selected_per_round: usize,
}

impl UnfairnessParams {
    /// The asymmetric-selection probability
    /// `p = P(i ∈ I_t, j ∉ I_t) = m(N−m)/(N(N−1))`.
    pub fn asymmetry_probability(&self) -> f64 {
        let n = self.num_clients as f64;
        let m = self.selected_per_round as f64;
        assert!(self.num_clients >= 2, "need at least two clients");
        assert!(
            self.selected_per_round >= 1 && self.selected_per_round <= self.num_clients,
            "selected count out of range"
        );
        m * (n - m) / (n * (n - 1.0))
    }
}

/// `P_s` — the probability that FedSV is *not* `sδ`-Shapley-fair under
/// Observation 1's model (the paper's lower bound, corrected as described
/// in the module docs).
pub fn unfairness_probability(params: &UnfairnessParams, s: usize) -> f64 {
    let t = params.rounds;
    if s > t {
        return 0.0;
    }
    let p = params.asymmetry_probability();
    probability_with_p(t, p, s)
}

/// Same as [`unfairness_probability`] but with the asymmetry probability
/// supplied directly (the paper's Fig. 1 sweeps `p` explicitly).
pub fn probability_with_p(t: usize, p: f64, s: usize) -> f64 {
    assert!(
        (0.0..=0.5).contains(&p),
        "p = m(N-m)/(N(N-1)) is at most 1/2"
    );
    if s == 0 {
        return 1.0;
    }
    if s > t {
        return 0.0;
    }
    let lf = LogFactorial::new(t);
    let ln_p = if p > 0.0 { p.ln() } else { f64::NEG_INFINITY };
    let neutral = 1.0 - 2.0 * p;
    let ln_q = if neutral > 0.0 {
        neutral.ln()
    } else {
        f64::NEG_INFINITY
    };
    let mut total = 0.0;
    for a in s..=t {
        let max_b = (t - a) / 2;
        for b in 0..=max_b {
            // Categories: (i only) = b + a, neutral = t − a − 2b,
            // (j only) = b.
            let ln_coeff = lf.ln_multinomial3(t, b + a, t - a - 2 * b, b);
            let p_exponent = (2 * b + a) as f64;
            let q_exponent = (t - 2 * b - a) as f64;
            // Avoid 0 * (-inf) = NaN when an exponent is zero.
            let mut ln_term = ln_coeff;
            if p_exponent > 0.0 {
                ln_term += p_exponent * ln_p;
            }
            if q_exponent > 0.0 {
                ln_term += q_exponent * ln_q;
            }
            total += ln_term.exp();
        }
    }
    total.min(1.0)
}

/// Monte-Carlo check of the same (one-sided) probability by simulating the
/// selection process directly — used by tests and available to the harness
/// as an independent verification of the closed form.
pub fn simulate_unfairness_probability(
    params: &UnfairnessParams,
    s: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    use rand::rngs::StdRng;
    use rand::seq::index::sample;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.num_clients;
    let m = params.selected_per_round;
    let mut hits = 0usize;
    for _ in 0..trials {
        // diff counts (i selected, j not) minus (j selected, i not); with
        // δ_t ≡ δ the one-sided statistic P_s bounds is diff ≥ s.
        let mut diff: i64 = 0;
        for _ in 0..params.rounds {
            let picks = sample(&mut rng, n, m);
            let has_i = picks.iter().any(|x| x == 0);
            let has_j = picks.iter().any(|x| x == 1);
            diff += i64::from(has_i) - i64::from(has_j);
        }
        if diff >= s as i64 {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymmetry_probability_formula() {
        let params = UnfairnessParams {
            rounds: 10,
            num_clients: 10,
            selected_per_round: 3,
        };
        // 3*7/(10*9) = 21/90.
        assert!((params.asymmetry_probability() - 21.0 / 90.0).abs() < 1e-15);
    }

    #[test]
    fn s_zero_is_certain() {
        assert_eq!(probability_with_p(5, 0.2, 0), 1.0);
    }

    #[test]
    fn s_beyond_rounds_is_impossible() {
        let params = UnfairnessParams {
            rounds: 4,
            num_clients: 10,
            selected_per_round: 3,
        };
        assert_eq!(unfairness_probability(&params, 5), 0.0);
    }

    #[test]
    fn single_round_matches_binomial() {
        // T = 1, s = 1: one-sided P = P(diff >= 1) = p.
        let p = 0.21;
        assert!((probability_with_p(1, p, 1) - p).abs() < 1e-12);
    }

    #[test]
    fn matches_trinomial_enumeration() {
        // Direct enumeration of the trinomial distribution.
        let t = 8;
        let p: f64 = 0.2;
        let brute = |s: usize| {
            let lf = LogFactorial::new(t);
            let mut tot = 0.0;
            for x in 0..=t {
                for z in 0..=(t - x) {
                    let y = t - x - z;
                    if x as i64 - z as i64 >= s as i64 {
                        let c = lf.ln_multinomial3(t, x, y, z).exp();
                        tot += c
                            * p.powi(x as i32)
                            * p.powi(z as i32)
                            * (1.0 - 2.0 * p).powi(y as i32);
                    }
                }
            }
            tot
        };
        for s in [1usize, 2, 3, 5] {
            let a = probability_with_p(t, p, s);
            let b = brute(s);
            assert!((a - b).abs() < 1e-12, "s={s}: {a} vs {b}");
        }
    }

    #[test]
    fn monotone_decreasing_in_s() {
        let params = UnfairnessParams {
            rounds: 20,
            num_clients: 10,
            selected_per_round: 3,
        };
        let mut prev = 1.0;
        for s in 0..=20 {
            let ps = unfairness_probability(&params, s);
            assert!(ps <= prev + 1e-12, "P_{s} = {ps} > {prev}");
            assert!((0.0..=1.0).contains(&ps));
            prev = ps;
        }
    }

    #[test]
    fn closed_form_matches_simulation() {
        let params = UnfairnessParams {
            rounds: 10,
            num_clients: 10,
            selected_per_round: 3,
        };
        for s in [1usize, 2, 4] {
            let analytic = unfairness_probability(&params, s);
            let simulated = simulate_unfairness_probability(&params, s, 40_000, 7);
            assert!(
                (analytic - simulated).abs() < 0.02,
                "s={s}: analytic {analytic} vs simulated {simulated}"
            );
        }
    }

    #[test]
    fn zero_p_never_unfair() {
        assert_eq!(probability_with_p(10, 0.0, 1), 0.0);
    }

    #[test]
    fn larger_p_is_more_unfair() {
        let lo = probability_with_p(15, 0.1, 3);
        let hi = probability_with_p(15, 0.4, 3);
        assert!(hi > lo);
    }
}
