//! Group-testing Shapley estimation (Jia et al., AISTATS 2019).
//!
//! The second classical accelerator the paper's related-work section
//! surveys. Rather than walking permutations, it samples random coalitions
//! with the harmonic size distribution and estimates all *pairwise value
//! differences* simultaneously:
//!
//! ```text
//! s_i − s_j ≈ Ẑ/T · Σ_t U(S_t) (β_ti − β_tj),   Ẑ = 2 Σ_{k=1}^{N−1} 1/k
//! ```
//!
//! where `β_ti` indicates `i ∈ S_t` and the coalition size `k` is drawn
//! with probability ∝ `1/k + 1/(N−k)`. The individual values are then
//! recovered from the differences plus the balance equation
//! `Σ_i s_i = U(I)`.

use crate::error::ValuationError;
use crate::valuator::{Diagnostics, RunContext, ValuationReport, Valuator};
use fedval_fl::{EvalPlan, Subset, UtilityOracle};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::Rng;
use rand::SeedableRng;

/// The group-testing valuation method (Jia et al.) as a
/// [`Valuator`] strategy object; the former
/// `GroupTestingConfig` name remains as a deprecated alias.
#[derive(Debug, Clone)]
pub struct GroupTesting {
    /// Number of sampled coalitions `T` (Jia et al. need
    /// `O(N (log N)²)` for an ε-guarantee).
    pub num_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Deprecated name of [`GroupTesting`].
#[deprecated(since = "0.2.0", note = "renamed to `GroupTesting`")]
pub type GroupTestingConfig = GroupTesting;

impl GroupTesting {
    /// `T = ⌈c · N (ln N)²⌉` samples for a given constant.
    pub fn scaled(n: usize, c: f64) -> Self {
        let ln = (n.max(2) as f64).ln();
        GroupTesting {
            num_samples: (c * n as f64 * ln * ln).ceil() as usize,
            seed: 0,
        }
    }

    /// Estimates the whole-run Shapley value by group testing.
    ///
    /// Requires `n ≥ 2`. Returns values satisfying the balance equation
    /// `Σ_i s_i = U(I)` exactly (it is imposed during recovery).
    pub fn run(&self, oracle: &UtilityOracle<'_>) -> Result<Vec<f64>, ValuationError> {
        self.run_inner(oracle, &mut RunContext::new())
    }

    fn run_inner(
        &self,
        oracle: &UtilityOracle<'_>,
        ctx: &mut RunContext<'_>,
    ) -> Result<Vec<f64>, ValuationError> {
        let n = oracle.num_clients();
        if n < 2 {
            return Err(ValuationError::NotEnoughClients { clients: n, min: 2 });
        }
        if self.num_samples == 0 {
            return Err(ValuationError::NoSamples);
        }
        if oracle.num_rounds() == 0 {
            return Err(ValuationError::EmptyTrace);
        }
        run_group_testing(oracle, self, ctx)
    }
}

impl Valuator for GroupTesting {
    fn name(&self) -> &'static str {
        "group-testing"
    }

    fn value(
        &self,
        oracle: &UtilityOracle<'_>,
        ctx: &mut RunContext<'_>,
    ) -> Result<ValuationReport, ValuationError> {
        let mut cfg = self.clone();
        cfg.seed = ctx.seed_or(self.seed);
        let before = oracle.loss_evaluations();
        let hits_before = oracle.cell_hits();
        ctx.emit(self.name(), "sample coalitions");
        let values = cfg.run_inner(oracle, ctx)?;
        Ok(ValuationReport {
            method: self.name(),
            values,
            diagnostics: Diagnostics {
                cells_evaluated: oracle.loss_evaluations() - before,
                cell_hits: oracle.cell_hits() - hits_before,
                ..Diagnostics::default()
            },
        })
    }
}

/// Estimates the whole-run Shapley value by group testing.
#[deprecated(
    since = "0.2.0",
    note = "use `GroupTesting::run` (or drive it as a `Valuator` through a `ValuationSession`)"
)]
pub fn group_testing_shapley(oracle: &UtilityOracle<'_>, config: &GroupTesting) -> Vec<f64> {
    match config.run(oracle) {
        Ok(values) => values,
        Err(e) => panic!("{e}"),
    }
}

/// The sampling and recovery core; configuration validity is
/// [`GroupTesting::run`]'s responsibility.
fn run_group_testing(
    oracle: &UtilityOracle<'_>,
    config: &GroupTesting,
    ctx: &mut RunContext<'_>,
) -> Result<Vec<f64>, ValuationError> {
    let n = oracle.num_clients();
    // Harmonic size distribution over k = 1..N-1.
    let weights: Vec<f64> = (1..n)
        .map(|k| 1.0 / k as f64 + 1.0 / (n - k) as f64)
        .collect();
    let z: f64 = weights.iter().sum();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, &w| {
            *acc += w;
            Some(*acc / z)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(config.seed);
    // Draw every coalition up front (the RNG stream never depended on
    // utility values), evaluate all distinct cells as one parallel batch,
    // then accumulate in the original sample order.
    let draws: Vec<Vec<usize>> = (0..config.num_samples)
        .map(|_| {
            let u01: f64 = rng.random();
            let k = 1 + cumulative.partition_point(|&c| c < u01).min(n - 2);
            sample(&mut rng, n, k).into_vec()
        })
        .collect();
    let rounds = oracle.num_rounds();
    let mut plan = EvalPlan::new();
    for members in &draws {
        plan.add_column(rounds, Subset::from_indices(members));
    }
    plan.add_column(rounds, Subset::full(n));
    oracle.try_evaluate_plan(&plan, ctx.cancel_token())?;

    // Accumulate b_i = Σ_t U(S_t) β_ti and the sum of utilities, from
    // which every pairwise difference is (z / T)(b_i − b_j).
    let mut b = vec![0.0; n];
    for members in draws {
        let s = Subset::from_indices(&members);
        let utility = oracle.total_utility(s);
        for i in members {
            b[i] += utility;
        }
    }
    let scale = z / config.num_samples as f64;

    // Recover values: s_i − s_j = scale (b_i − b_j); with balance
    // Σ s_i = U(I) the unique solution is
    // s_i = U(I)/N + scale (b_i − mean(b)).
    let grand = oracle.total_utility(Subset::full(n));
    let mean_b: f64 = b.iter().sum::<f64>() / n as f64;
    Ok(b.iter()
        .map(|&bi| grand / n as f64 + scale * (bi - mean_b))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_data::Dataset;
    use fedval_fl::{train_federated, FlConfig};
    use fedval_linalg::Matrix;
    use fedval_models::LogisticRegression;

    fn setup(seed: u64) -> (fedval_fl::TrainingTrace, LogisticRegression, Dataset) {
        let clients: Vec<Dataset> = (0..5)
            .map(|i| {
                let f = Matrix::from_fn(12, 3, |r, c| {
                    (((r + 2) * (c + 1) + 4 * i) % 7) as f64 / 3.0 - 1.0
                });
                let labels: Vec<usize> = (0..12).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        let test = {
            let f = Matrix::from_fn(16, 3, |r, c| ((r * 2 + c) % 7) as f64 / 3.0 - 1.0);
            let labels: Vec<usize> = (0..16).map(|r| r % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        };
        let proto = LogisticRegression::new(3, 2, 0.01, 11);
        let trace = train_federated(&proto, &clients, &FlConfig::new(4, 3, 0.3, seed));
        (trace, proto, test)
    }

    #[test]
    fn balance_holds_by_construction() {
        let (trace, proto, test) = setup(1);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let v = GroupTesting {
            num_samples: 50,
            seed: 3,
        }
        .run(&oracle)
        .unwrap();
        let total: f64 = v.iter().sum();
        let grand = oracle.total_utility(Subset::full(5));
        assert!((total - grand).abs() < 1e-10);
    }

    #[test]
    fn converges_to_exact_shapley() {
        let (trace, proto, test) = setup(2);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let exact = crate::pipeline::ExactShapley.run(&oracle).unwrap();
        let v = GroupTesting {
            num_samples: 60_000,
            seed: 5,
        }
        .run(&oracle)
        .unwrap();
        for (a, b) in v.iter().zip(&exact) {
            assert!((a - b).abs() < 0.02, "gt {a} vs exact {b}");
        }
    }

    #[test]
    fn ranking_agrees_at_moderate_budget() {
        let (trace, proto, test) = setup(3);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let exact = crate::pipeline::ExactShapley.run(&oracle).unwrap();
        let v = GroupTesting::scaled(5, 200.0).run(&oracle).unwrap();
        let rho = fedval_metrics::spearman_rho(&v, &exact).unwrap();
        assert!(rho > 0.6, "rank agreement {rho}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (trace, proto, test) = setup(4);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let cfg = GroupTesting {
            num_samples: 200,
            seed: 9,
        };
        let a = cfg.run(&oracle).unwrap();
        let b = cfg.run(&oracle).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scaled_budget_grows_superlinearly() {
        let small = GroupTesting::scaled(10, 1.0).num_samples;
        let large = GroupTesting::scaled(100, 1.0).num_samples;
        assert!(large > 10 * small, "{small} -> {large}");
    }

    #[test]
    fn rejects_single_client() {
        let (trace, proto, test) = setup(5);
        // Build a single-client trace.
        let clients = vec![test.clone()];
        let single = train_federated(&proto, &clients, &FlConfig::new(1, 1, 0.1, 1));
        let oracle = UtilityOracle::new(&single, &proto, &test);
        drop(trace);
        let err = GroupTesting {
            num_samples: 1,
            seed: 0,
        }
        .run(&oracle)
        .unwrap_err();
        assert_eq!(err, ValuationError::NotEnoughClients { clients: 1, min: 2 });
    }

    #[test]
    fn rejects_zero_samples() {
        let (trace, proto, test) = setup(6);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let err = GroupTesting {
            num_samples: 0,
            seed: 0,
        }
        .run(&oracle)
        .unwrap_err();
        assert_eq!(err, ValuationError::NoSamples);
    }
}
