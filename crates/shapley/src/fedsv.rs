//! Federated Shapley value (Wang et al., paper Definition 2).
//!
//! `s_{t,i}` is the Shapley value of client `i` within the round-`t`
//! cohort `I_t` (zero for unselected clients); the final FedSV is
//! `s_i = Σ_t s_{t,i}`. Exact enumeration is exponential in `|I_t|`, so a
//! permutation-sampling estimator is provided for large cohorts — the same
//! Monte-Carlo scheme the paper's cost model assumes (`O(T K² log K)`
//! utility calls).

use crate::coeffs::BinomialTable;
use crate::error::ValuationError;
use crate::valuator::{Diagnostics, RunContext, ValuationReport, Valuator};
use crate::MAX_EXACT_CLIENTS;
use fedval_fl::{EvalPlan, Subset, UtilityOracle};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for the Monte-Carlo FedSV estimator.
#[derive(Debug, Clone, Default)]
pub struct FedSvConfig {
    /// Permutations sampled per round; `None` chooses `⌈K ln K⌉ + 1`
    /// (the paper's `O(K log K)` sample complexity).
    pub permutations_per_round: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

/// The FedSV valuation method (Wang et al., paper Definition 2) as a
/// [`Valuator`] strategy object.
///
/// Two estimators, one method: [`FedSv::exact`] enumerates every
/// in-cohort coalition (gated to cohorts of
/// [`MAX_EXACT_CLIENTS`]); and
/// [`FedSv::monte_carlo`] walks sampled permutations per round,
/// absorbing [`FedSvConfig`].
#[derive(Debug, Clone, Default)]
pub struct FedSv {
    /// `None` → exact per-round enumeration; `Some` → Monte-Carlo
    /// permutation sampling with the given parameters.
    pub sampling: Option<FedSvConfig>,
}

impl FedSv {
    /// Exact per-round enumeration.
    pub fn exact() -> Self {
        FedSv { sampling: None }
    }

    /// Monte-Carlo permutation sampling.
    pub fn monte_carlo(config: FedSvConfig) -> Self {
        FedSv {
            sampling: Some(config),
        }
    }

    /// Values every client; dispatches to the configured estimator.
    pub fn run(&self, oracle: &UtilityOracle<'_>) -> Result<Vec<f64>, ValuationError> {
        let mut ctx = RunContext::new();
        match &self.sampling {
            None => try_fedsv(oracle, &mut ctx),
            Some(cfg) => Ok(try_fedsv_monte_carlo(oracle, cfg, &mut ctx)?.0),
        }
    }
}

impl Valuator for FedSv {
    fn name(&self) -> &'static str {
        match self.sampling {
            None => "fedsv",
            Some(_) => "fedsv-mc",
        }
    }

    fn value(
        &self,
        oracle: &UtilityOracle<'_>,
        ctx: &mut RunContext<'_>,
    ) -> Result<ValuationReport, ValuationError> {
        let before = oracle.loss_evaluations();
        let hits_before = oracle.cell_hits();
        let (values, permutations_used) = match &self.sampling {
            None => {
                ctx.emit(self.name(), "enumerate per-round cohorts");
                (try_fedsv(oracle, ctx)?, 0)
            }
            Some(cfg) => {
                let mut cfg = cfg.clone();
                cfg.seed = ctx.seed_or(cfg.seed);
                ctx.emit(self.name(), "sample per-round permutations");
                try_fedsv_monte_carlo(oracle, &cfg, ctx)?
            }
        };
        Ok(ValuationReport {
            method: self.name(),
            values,
            diagnostics: Diagnostics {
                cells_evaluated: oracle.loss_evaluations() - before,
                cell_hits: oracle.cell_hits() - hits_before,
                permutations_used,
                ..Diagnostics::default()
            },
        })
    }
}

/// Exact FedSV: per-round exact Shapley over the selected cohort.
///
/// Cost: `Σ_t 2^{|I_t|}` utility evaluations (batched across worker
/// threads) — fine for the paper's small experiments (`K = 3`), gated to
/// cohorts of at most [`MAX_EXACT_CLIENTS`]
/// clients, and infeasible for Fig. 7's `K = 50` (use the Monte-Carlo
/// estimator).
#[deprecated(
    since = "0.2.0",
    note = "use `FedSv::exact().run(oracle)` (or drive it as a `Valuator` through a `ValuationSession`)"
)]
pub fn fedsv(oracle: &UtilityOracle<'_>) -> Vec<f64> {
    match try_fedsv(oracle, &mut RunContext::new()) {
        Ok(values) => values,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible exact FedSV (see [`FedSv::exact`]).
fn try_fedsv(
    oracle: &UtilityOracle<'_>,
    ctx: &mut RunContext<'_>,
) -> Result<Vec<f64>, ValuationError> {
    let n = oracle.num_clients();
    if oracle.num_rounds() == 0 {
        return Err(ValuationError::EmptyTrace);
    }
    let table = BinomialTable::new(n.max(1));
    // Plan every in-cohort coalition of every round, evaluate in parallel,
    // then run the (now evaluation-free) weighted sums below.
    let mut plan = EvalPlan::new();
    for t in 0..oracle.num_rounds() {
        let cohort = oracle.trace().selected(t);
        if cohort.len() > MAX_EXACT_CLIENTS {
            return Err(ValuationError::CohortTooLarge {
                round: t,
                cohort: cohort.len(),
                max: MAX_EXACT_CLIENTS,
            });
        }
        plan.add_subsets_of(t, cohort);
    }
    oracle.try_evaluate_plan(&plan, ctx.cancel_token())?;
    let mut values = vec![0.0; n];
    for t in 0..oracle.num_rounds() {
        let cohort = oracle.trace().selected(t);
        let k = cohort.len();
        for i in cohort.members() {
            let others = cohort.without(i);
            let mut acc = 0.0;
            for s in others.subsets() {
                let weight = table.shapley_weight(k, s.len());
                acc += weight * oracle.marginal(t, s, i);
            }
            values[i] += acc;
        }
    }
    Ok(values)
}

/// Monte-Carlo FedSV: within each round, the Shapley value over `I_t` is
/// estimated as the average marginal contribution over sampled permutations
/// of the cohort.
#[deprecated(
    since = "0.2.0",
    note = "use `FedSv::monte_carlo(config).run(oracle)` (or drive it as a `Valuator` through a `ValuationSession`)"
)]
pub fn fedsv_monte_carlo(oracle: &UtilityOracle<'_>, config: &FedSvConfig) -> Vec<f64> {
    match try_fedsv_monte_carlo(oracle, config, &mut RunContext::new()) {
        Ok((values, _)) => values,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible Monte-Carlo FedSV (see [`FedSv::monte_carlo`]); the second
/// element is the number of permutations actually walked (the adaptive
/// `⌈K ln K⌉ + 1` default makes it data-dependent). Emits one
/// permutation-level progress event per walked permutation and observes
/// the context's cancellation token at permutation and batch boundaries.
fn try_fedsv_monte_carlo(
    oracle: &UtilityOracle<'_>,
    config: &FedSvConfig,
    ctx: &mut RunContext<'_>,
) -> Result<(Vec<f64>, usize), ValuationError> {
    let n = oracle.num_clients();
    if oracle.num_rounds() == 0 {
        return Err(ValuationError::EmptyTrace);
    }
    if config.permutations_per_round == Some(0) {
        return Err(ValuationError::NoPermutations);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Draw every permutation up front (the RNG stream never depended on
    // utility values, so this is the exact sequence the serial version
    // drew), plan all prefix cells, and evaluate them as one batch.
    let mut per_round: Vec<(usize, Vec<Vec<usize>>)> = Vec::new();
    for t in 0..oracle.num_rounds() {
        let cohort = oracle.trace().selected(t);
        let k = cohort.len();
        if k == 0 {
            continue;
        }
        let m = config
            .permutations_per_round
            .unwrap_or_else(|| ((k as f64) * (k as f64).ln().max(1.0)).ceil() as usize + 1);
        let mut members = cohort.members();
        let perms: Vec<Vec<usize>> = (0..m)
            .map(|_| {
                members.shuffle(&mut rng);
                members.clone()
            })
            .collect();
        per_round.push((t, perms));
    }
    let mut plan = EvalPlan::new();
    for (t, perms) in &per_round {
        for perm in perms {
            plan.add_prefixes(*t, perm);
        }
    }
    oracle.try_evaluate_plan(&plan, ctx.cancel_token())?;

    // Accumulate marginals in the original serial order — every read is
    // now a table hit, and the float sums are bit-identical.
    let total: usize = per_round.iter().map(|(_, perms)| perms.len()).sum();
    let mut values = vec![0.0; n];
    let mut walked = 0usize;
    for (t, perms) in &per_round {
        let inv_m = 1.0 / perms.len() as f64;
        for perm in perms {
            ctx.check_cancelled()?;
            let mut prefix = Subset::EMPTY;
            for &i in perm {
                let marginal = oracle.marginal(*t, prefix, i);
                values[i] += marginal * inv_m;
                prefix = prefix.with(i);
            }
            walked += 1;
            ctx.emit_permutation("fedsv-mc", walked, total);
        }
    }
    Ok((values, walked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_data::Dataset;
    use fedval_fl::{train_federated, FlConfig, TrainingTrace};
    use fedval_linalg::Matrix;
    use fedval_models::LogisticRegression;

    fn make_clients(n: usize, seed_shift: usize) -> Vec<Dataset> {
        (0..n)
            .map(|i| {
                let f = Matrix::from_fn(12, 3, |r, c| {
                    (((r + 1) * (c + 2) + i + seed_shift) % 7) as f64 / 3.0 - 1.0
                });
                let labels: Vec<usize> = (0..12).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect()
    }

    fn test_set() -> Dataset {
        let f = Matrix::from_fn(16, 3, |r, c| ((r * 3 + c) % 7) as f64 / 3.0 - 1.0);
        let labels: Vec<usize> = (0..16).map(|r| r % 2).collect();
        Dataset::new(f, labels, 2).unwrap()
    }

    fn run(
        n: usize,
        rounds: usize,
        k: usize,
        seed: u64,
    ) -> (TrainingTrace, LogisticRegression, Dataset) {
        let clients = make_clients(n, 0);
        let proto = LogisticRegression::new(3, 2, 0.01, 11);
        let trace = train_federated(&proto, &clients, &FlConfig::new(rounds, k, 0.3, seed));
        (trace, proto, test_set())
    }

    #[test]
    fn unselected_clients_can_get_zero() {
        // With 1 round beyond the full round and tiny cohorts, clients
        // outside every I_t (t ≥ 1) only earn from round 0.
        let (trace, proto, test) = run(5, 1, 2, 1);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let v = FedSv::exact().run(&oracle).unwrap();
        assert_eq!(v.len(), 5);
        // Round 0 selects everyone, so nobody is structurally zero here;
        // instead check that a no-everyone-heard run zeroes the unselected.
        let clients = make_clients(5, 0);
        let cfg = FlConfig::new(1, 2, 0.3, 7).with_everyone_heard(false);
        let trace2 = train_federated(&proto, &clients, &cfg);
        let oracle2 = UtilityOracle::new(&trace2, &proto, &test);
        let v2 = FedSv::exact().run(&oracle2).unwrap();
        let cohort = trace2.selected(0);
        for i in 0..5 {
            if !cohort.contains(i) {
                assert_eq!(v2[i], 0.0, "unselected client {i} must get zero");
            }
        }
        let _ = v;
    }

    #[test]
    fn single_round_full_cohort_matches_classical_shapley() {
        let (trace, proto, test) = run(4, 1, 4, 1);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let v = FedSv::exact().run(&oracle).unwrap();
        let classical = crate::exact::exact_shapley(4, |s| oracle.utility(0, s));
        for (a, b) in v.iter().zip(&classical) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn per_round_values_sum_to_round_utility() {
        // Balance within each round: Σ_{i∈I_t} s_{t,i} = U_t(I_t).
        let (trace, proto, test) = run(4, 3, 3, 5);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let v = FedSv::exact().run(&oracle).unwrap();
        let expected: f64 = (0..3).map(|t| oracle.utility(t, trace.selected(t))).sum();
        let total: f64 = v.iter().sum();
        assert!((total - expected).abs() < 1e-10, "{total} vs {expected}");
    }

    #[test]
    fn monte_carlo_converges_to_exact() {
        let (trace, proto, test) = run(5, 3, 3, 9);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let exact = FedSv::exact().run(&oracle).unwrap();
        let mc = FedSv::monte_carlo(FedSvConfig {
            permutations_per_round: Some(4000),
            seed: 3,
        })
        .run(&oracle)
        .unwrap();
        for (a, b) in exact.iter().zip(&mc) {
            assert!((a - b).abs() < 5e-3, "exact {a} vs mc {b}");
        }
    }

    #[test]
    fn monte_carlo_deterministic_given_seed() {
        let (trace, proto, test) = run(4, 2, 2, 2);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let cfg = FedSvConfig {
            permutations_per_round: Some(50),
            seed: 42,
        };
        let a = FedSv::monte_carlo(cfg.clone()).run(&oracle).unwrap();
        let b = FedSv::monte_carlo(cfg.clone()).run(&oracle).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn default_sample_count_scales_with_cohort() {
        let cfg = FedSvConfig::default();
        assert!(cfg.permutations_per_round.is_none());
        // Indirectly exercised via a small run: should not panic and should
        // produce finite values.
        let (trace, proto, test) = run(4, 2, 3, 8);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let v = FedSv::monte_carlo(cfg.clone()).run(&oracle).unwrap();
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn duplicated_clients_can_diverge_under_fedsv() {
        // The paper's Observation 1: identical clients receive different
        // FedSV when selection treats them differently. With K=1 cohorts
        // (and no full round) only the selected twin earns.
        let mut clients = make_clients(4, 3);
        clients[3] = clients[0].clone();
        let proto = LogisticRegression::new(3, 2, 0.01, 11);
        let cfg = FlConfig::new(4, 1, 0.3, 13).with_everyone_heard(false);
        let trace = train_federated(&proto, &clients, &cfg);
        let test = test_set();
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let v = FedSv::exact().run(&oracle).unwrap();
        // At least one round selected exactly one of the twins; unless both
        // twins were selected equally often the values differ.
        let times_0 = (0..4).filter(|&t| trace.selected(t).contains(0)).count();
        let times_3 = (0..4).filter(|&t| trace.selected(t).contains(3)).count();
        if times_0 != times_3 {
            assert_ne!(v[0], v[3], "identical clients diverged by selection");
        }
    }
}
