//! Typed failure modes of the valuation methods.
//!
//! Every public valuation entry point ([`Valuator::value`] and the
//! fallible `run` methods on the method structs) reports invalid
//! configurations and runtime failures as [`ValuationError`] values —
//! never panics. Errors from the layers below are converted on the way
//! up: [`fedval_fl::OracleError`] (exact-enumeration gates, empty
//! traces) and [`fedval_mc::CompletionError`] (solver validation and
//! divergence) both embed losslessly.
//!
//! [`Valuator::value`]: crate::valuator::Valuator::value

use fedval_fl::OracleError;
use fedval_mc::CompletionError;
use std::fmt;

/// Why a valuation run could not produce values.
#[derive(Debug, Clone, PartialEq)]
pub enum ValuationError {
    /// An exact-enumeration method was asked to enumerate `2^clients`
    /// coalitions with `clients` above
    /// [`MAX_EXACT_CLIENTS`](crate::MAX_EXACT_CLIENTS).
    TooManyClients {
        /// Requested client count `N`.
        clients: usize,
        /// The enforced ceiling.
        max: usize,
    },
    /// The method needs more clients than the world provides (e.g. group
    /// testing estimates pairwise differences, so it needs `N ≥ 2`).
    NotEnoughClients {
        /// Actual client count.
        clients: usize,
        /// Required minimum.
        min: usize,
    },
    /// The recorded training trace has no rounds — nothing to value.
    EmptyTrace,
    /// A round's cohort exceeds the exact-enumeration gate; use the
    /// Monte-Carlo estimator for that method instead.
    CohortTooLarge {
        /// Round index `t` with the oversized cohort.
        round: usize,
        /// Cohort size `|I_t|`.
        cohort: usize,
        /// The enforced ceiling.
        max: usize,
    },
    /// A permutation-sampling estimator was configured with zero
    /// permutations.
    NoPermutations,
    /// A coalition-sampling estimator was configured with zero samples.
    NoSamples,
    /// A tolerance parameter is outside its admissible range (negative or
    /// non-finite).
    InvalidTolerance {
        /// The rejected value.
        value: f64,
    },
    /// The matrix-completion stage failed (bad solver configuration or a
    /// divergent solve).
    Completion(CompletionError),
    /// A [`ValuationSession`](crate::session::ValuationSession) was asked
    /// for a method name that is not in its registry.
    UnknownMethod {
        /// The unrecognized key.
        name: String,
    },
    /// The session's ground-truth reference has a different client count
    /// than the valuation it should grade (the reference came from a
    /// different world).
    ReferenceMismatch {
        /// Clients in the supplied ground truth.
        reference: usize,
        /// Clients the method valued.
        valued: usize,
    },
    /// The run was cancelled through its
    /// [`CancelToken`](fedval_runtime::CancelToken) (e.g. via
    /// [`ValuationSession::cancel_handle`](crate::session::ValuationSession::cancel_handle))
    /// before it finished. No partial values are returned.
    Cancelled,
    /// The run exceeded its wall-clock deadline and was stopped at the
    /// next cancellation checkpoint. No partial values are returned.
    Deadline {
        /// The configured limit in milliseconds.
        limit_ms: u64,
    },
}

impl fmt::Display for ValuationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValuationError::TooManyClients { clients, max } => write!(
                f,
                "exact valuation over {clients} clients is exponential (max {max}); \
                 use a sampling estimator"
            ),
            ValuationError::NotEnoughClients { clients, min } => {
                write!(f, "method needs at least {min} clients, got {clients}")
            }
            ValuationError::EmptyTrace => {
                write!(f, "training trace has no rounds; nothing to value")
            }
            ValuationError::CohortTooLarge { round, cohort, max } => write!(
                f,
                "round {round} cohort of {cohort} clients exceeds the exact gate \
                 (max {max}); use the Monte-Carlo estimator"
            ),
            ValuationError::NoPermutations => {
                write!(f, "need at least one permutation")
            }
            ValuationError::NoSamples => write!(f, "need at least one sample"),
            ValuationError::InvalidTolerance { value } => {
                write!(f, "tolerance {value} must be finite and non-negative")
            }
            ValuationError::Completion(e) => write!(f, "matrix completion failed: {e}"),
            ValuationError::UnknownMethod { name } => {
                write!(f, "no valuation method registered under {name:?}")
            }
            ValuationError::ReferenceMismatch { reference, valued } => write!(
                f,
                "ground-truth reference covers {reference} clients but the \
                 valuation covers {valued}; it must come from the same world"
            ),
            ValuationError::Cancelled => write!(f, "the valuation run was cancelled"),
            ValuationError::Deadline { limit_ms } => {
                write!(f, "deadline exceeded after {limit_ms} ms")
            }
        }
    }
}

impl std::error::Error for ValuationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ValuationError::Completion(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompletionError> for ValuationError {
    fn from(e: CompletionError) -> Self {
        match e {
            // A cancelled solve is the run's cancellation, not a solver
            // failure — surface it uniformly.
            CompletionError::Cancelled => ValuationError::Cancelled,
            other => ValuationError::Completion(other),
        }
    }
}

impl From<fedval_runtime::Cancelled> for ValuationError {
    fn from(_: fedval_runtime::Cancelled) -> Self {
        ValuationError::Cancelled
    }
}

impl From<OracleError> for ValuationError {
    fn from(e: OracleError) -> Self {
        match e {
            OracleError::TooManyClients { clients, max } => {
                ValuationError::TooManyClients { clients, max }
            }
            OracleError::EmptyTrace => ValuationError::EmptyTrace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_errors_convert_losslessly() {
        let e: ValuationError = OracleError::TooManyClients {
            clients: 20,
            max: 16,
        }
        .into();
        assert_eq!(
            e,
            ValuationError::TooManyClients {
                clients: 20,
                max: 16
            }
        );
        let e: ValuationError = OracleError::EmptyTrace.into();
        assert_eq!(e, ValuationError::EmptyTrace);
    }

    #[test]
    fn cancellation_converts_from_every_layer() {
        let e: ValuationError = fedval_runtime::Cancelled.into();
        assert_eq!(e, ValuationError::Cancelled);
        let e: ValuationError = CompletionError::Cancelled.into();
        assert_eq!(e, ValuationError::Cancelled, "not wrapped as Completion");
    }

    #[test]
    fn completion_errors_keep_their_source() {
        use std::error::Error;
        let e: ValuationError = CompletionError::InvalidRank.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("completion"));
    }

    #[test]
    fn display_is_actionable() {
        let e = ValuationError::TooManyClients {
            clients: 17,
            max: 16,
        };
        assert!(e.to_string().contains("sampling"));
        let e = ValuationError::UnknownMethod {
            name: "frobnicate".into(),
        };
        assert!(e.to_string().contains("frobnicate"));
    }
}
