//! The classical Shapley value (equation (5) with `c = 1/N`).
//!
//! [`exact_shapley`] is the closure-driven mathematical kernel (usable
//! for arbitrary games); the oracle-driven ground-truth valuation lives
//! in [`ExactShapley`](crate::pipeline::ExactShapley), which implements
//! [`Valuator`](crate::valuator::Valuator).

use crate::coeffs::BinomialTable;
use crate::error::ValuationError;
use crate::MAX_EXACT_CLIENTS;
use fedval_fl::Subset;

/// Computes the exact Shapley value of every player for an arbitrary
/// utility function `u`, by enumerating all `2^N` coalitions.
///
/// `s_i = (1/N) Σ_{S ⊆ I\{i}} [1 / C(N−1, |S|)] (u(S ∪ {i}) − u(S))`
///
/// Gated to `n ≤` [`MAX_EXACT_CLIENTS`] players
/// (the cost is `N · 2^{N−1}` utility calls) — the same gate as every
/// other exact-enumeration path in this crate.
///
/// ```
/// use fedval_shapley::exact_shapley;
/// // Additive game: each player's value is its own contribution.
/// let contributions = [1.0, 2.0, 3.0];
/// let values = exact_shapley(3, |s| {
///     s.members().iter().map(|&i| contributions[i]).sum::<f64>()
/// });
/// for (v, c) in values.iter().zip(&contributions) {
///     assert!((v - c).abs() < 1e-12);
/// }
/// ```
pub fn exact_shapley(n: usize, u: impl FnMut(Subset) -> f64) -> Vec<f64> {
    match try_exact_shapley(n, u) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`exact_shapley`]: rejects `n = 0` and
/// `n >` [`MAX_EXACT_CLIENTS`] with typed
/// errors instead of panicking.
pub fn try_exact_shapley(
    n: usize,
    u: impl FnMut(Subset) -> f64,
) -> Result<Vec<f64>, ValuationError> {
    if n == 0 {
        return Err(ValuationError::NotEnoughClients { clients: 0, min: 1 });
    }
    if n > MAX_EXACT_CLIENTS {
        return Err(ValuationError::TooManyClients {
            clients: n,
            max: MAX_EXACT_CLIENTS,
        });
    }
    Ok(exact_shapley_unchecked(n, u))
}

/// The enumeration kernel; `1 ≤ n ≤ MAX_EXACT_CLIENTS` is the caller's
/// responsibility (the fallible wrappers check it).
pub(crate) fn exact_shapley_unchecked(n: usize, mut u: impl FnMut(Subset) -> f64) -> Vec<f64> {
    let table = BinomialTable::new(n);
    // Memoize utilities: 2^n values.
    let mut cache = vec![f64::NAN; 1usize << n];
    let mut value_of = move |s: Subset, cache: &mut Vec<f64>| {
        let idx = s.bits() as usize;
        if cache[idx].is_nan() {
            cache[idx] = u(s);
        }
        cache[idx]
    };

    let full = Subset::full(n);
    let mut out = vec![0.0; n];
    for i in 0..n {
        let others = full.without(i);
        let mut acc = 0.0;
        for s in others.subsets() {
            let weight = table.shapley_weight(n, s.len());
            let with_i = value_of(s.with(i), &mut cache);
            let without_i = value_of(s, &mut cache);
            acc += weight * (with_i - without_i);
        }
        out[i] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn additive_game_gives_individual_values() {
        // u(S) = Σ_{i∈S} c_i ⇒ s_i = c_i.
        let c = [1.0, 2.0, 3.0, 4.0];
        let v = exact_shapley(4, |s| s.members().iter().map(|&i| c[i]).sum());
        for (vi, ci) in v.iter().zip(&c) {
            assert!(close(*vi, *ci), "{vi} vs {ci}");
        }
    }

    #[test]
    fn symmetric_players_get_equal_values() {
        // u(S) = |S|² treats all players identically.
        let v = exact_shapley(5, |s| (s.len() * s.len()) as f64);
        for w in v.windows(2) {
            assert!(close(w[0], w[1]));
        }
    }

    #[test]
    fn null_player_gets_zero() {
        // Player 2 never changes the utility.
        let v = exact_shapley(3, |s| {
            let t = s.without(2);
            t.len() as f64 * 1.5
        });
        assert!(close(v[2], 0.0));
    }

    #[test]
    fn efficiency_balance_holds() {
        // Σ_i s_i = u(I) − u(∅) for the classical value.
        let u = |s: Subset| {
            let m = s.members();
            m.iter().map(|&i| (i + 1) as f64).sum::<f64>().sqrt()
        };
        let v = exact_shapley(6, u);
        let total: f64 = v.iter().sum();
        let grand = u(Subset::full(6)) - u(Subset::EMPTY);
        assert!(close(total, grand), "{total} vs {grand}");
    }

    #[test]
    fn glove_game_known_solution() {
        // Classic 3-player glove game: players 0, 1 own left gloves,
        // player 2 a right glove; u(S) = 1 iff S has both kinds.
        // Shapley values: (1/6, 1/6, 2/3).
        let v = exact_shapley(3, |s| {
            let has_left = s.contains(0) || s.contains(1);
            let has_right = s.contains(2);
            f64::from(u8::from(has_left && has_right))
        });
        assert!(close(v[0], 1.0 / 6.0));
        assert!(close(v[1], 1.0 / 6.0));
        assert!(close(v[2], 2.0 / 3.0));
    }

    #[test]
    fn two_player_split_the_surplus() {
        // u({0}) = 1, u({1}) = 2, u({0,1}) = 5: s_0 = 2, s_1 = 3.
        let v = exact_shapley(2, |s| match (s.contains(0), s.contains(1)) {
            (false, false) => 0.0,
            (true, false) => 1.0,
            (false, true) => 2.0,
            (true, true) => 5.0,
        });
        assert!(close(v[0], 2.0));
        assert!(close(v[1], 3.0));
    }

    #[test]
    fn single_player_takes_everything() {
        let v = exact_shapley(1, |s| if s.is_empty() { 0.0 } else { 7.5 });
        assert!(close(v[0], 7.5));
    }

    #[test]
    fn rejects_large_games() {
        assert_eq!(
            try_exact_shapley(MAX_EXACT_CLIENTS + 1, |_| 0.0).unwrap_err(),
            ValuationError::TooManyClients {
                clients: MAX_EXACT_CLIENTS + 1,
                max: MAX_EXACT_CLIENTS
            }
        );
    }

    #[test]
    fn rejects_zero_players() {
        assert_eq!(
            try_exact_shapley(0, |_| 0.0).unwrap_err(),
            ValuationError::NotEnoughClients { clients: 0, min: 1 }
        );
    }
}
