//! ε-Shapley-fairness checks (paper Definition 1 and Theorem 1).

use fedval_fl::Subset;
use fedval_linalg::Matrix;
use fedval_mc::{CompletionProblem, Factors};

/// Theorem 1's fairness tolerance: a `δ`-completed ComFedSV is
/// `(4δ/N)`-Shapley-fair.
pub fn theorem1_tolerance(delta: f64, num_clients: usize) -> f64 {
    assert!(num_clients > 0);
    4.0 * delta / num_clients as f64
}

/// Computes `δ = ‖U − W Hᵀ‖₁` (maximum absolute column sum, Definition 5)
/// between a fully known utility matrix (columns keyed by subset bitmask)
/// and the completion, matching columns through the problem's key map.
/// Columns of `full` absent from the problem compare against zero.
pub fn completion_delta(full: &Matrix, factors: &Factors, problem: &CompletionProblem) -> f64 {
    let t = full.rows();
    assert_eq!(t, factors.w.rows(), "round count mismatch");
    let mut worst = 0.0_f64;
    for bits in 0..full.cols() as u64 {
        let col_sum: f64 = (0..t)
            .map(|round| {
                let predicted = problem
                    .column_index(bits)
                    .map(|c| factors.predict(round, c))
                    .unwrap_or(0.0);
                (full.get(round, bits as usize) - predicted).abs()
            })
            .sum();
        worst = worst.max(col_sum);
    }
    worst
}

/// ε-fairness of a valuation measured against a trusted reference
/// valuation (typically the ground truth from the full utility matrix):
/// the estimate is `ε`-close to the fair valuation with
/// `ε = max_i |v_i − ref_i|`. Attached to
/// [`Diagnostics`](crate::valuator::Diagnostics) when a
/// [`ValuationSession`](crate::session::ValuationSession) is given a
/// ground truth.
#[derive(Debug, Clone)]
pub struct ReferenceReport {
    /// `max_i |v_i − ref_i|` — the ε of ε-fairness w.r.t. the reference.
    pub epsilon: f64,
    /// Mean absolute deviation from the reference.
    pub mean_abs_error: f64,
    /// Spearman rank correlation with the reference (`None` for
    /// degenerate inputs).
    pub spearman_rho: Option<f64>,
}

/// Measures how far `values` is from a trusted `reference` valuation.
///
/// Panics if the lengths differ (the session guarantees they match).
pub fn reference_report(values: &[f64], reference: &[f64]) -> ReferenceReport {
    assert_eq!(
        values.len(),
        reference.len(),
        "valuation/reference length mismatch"
    );
    let mut epsilon = 0.0_f64;
    let mut total = 0.0_f64;
    for (v, r) in values.iter().zip(reference) {
        let d = (v - r).abs();
        epsilon = epsilon.max(d);
        total += d;
    }
    ReferenceReport {
        epsilon,
        mean_abs_error: if values.is_empty() {
            0.0
        } else {
            total / values.len() as f64
        },
        spearman_rho: fedval_metrics::spearman_rho(values, reference),
    }
}

/// Report of how ε-fair a valuation is w.r.t. a reference utility.
#[derive(Debug, Clone)]
pub struct FairnessReport {
    /// Worst `|v_i − v_j|` over detected symmetric pairs.
    pub max_symmetry_gap: f64,
    /// Worst `|v_i|` over detected null players.
    pub max_zero_violation: f64,
    /// Symmetric pairs found (indices `i < j`).
    pub symmetric_pairs: Vec<(usize, usize)>,
    /// Null players found.
    pub null_players: Vec<usize>,
}

impl FairnessReport {
    /// `true` when both violations are within `epsilon` — i.e. the
    /// valuation is ε-symmetric and ε-zero-element per Definition 1.
    pub fn is_epsilon_fair(&self, epsilon: f64) -> bool {
        self.max_symmetry_gap <= epsilon && self.max_zero_violation <= epsilon
    }
}

/// Scans a utility function for symmetric pairs (`U(S∪{i}) = U(S∪{j})` for
/// all `S`) and null players (`U(S∪{i}) = U(S)` for all `S`), then measures
/// how far `values` is from honoring them. `utility_tol` treats
/// near-identical utilities as identical (float noise).
///
/// Exponential in `n`; intended for verification on small games.
pub fn epsilon_fair_report(
    n: usize,
    values: &[f64],
    mut utility: impl FnMut(Subset) -> f64,
    utility_tol: f64,
) -> FairnessReport {
    assert!(
        n <= crate::MAX_EXACT_CLIENTS,
        "fairness scan is exponential in N"
    );
    assert_eq!(values.len(), n);
    let full = Subset::full(n);
    // Cache utilities.
    let mut cache = vec![f64::NAN; 1usize << n];
    let mut value_of = |s: Subset, cache: &mut Vec<f64>| {
        let idx = s.bits() as usize;
        if cache[idx].is_nan() {
            cache[idx] = utility(s);
        }
        cache[idx]
    };

    let mut symmetric_pairs = Vec::new();
    let mut max_symmetry_gap = 0.0_f64;
    for i in 0..n {
        for j in (i + 1)..n {
            let others = full.without(i).without(j);
            let mut symmetric = true;
            for s in others.subsets() {
                let ui = value_of(s.with(i), &mut cache);
                let uj = value_of(s.with(j), &mut cache);
                if (ui - uj).abs() > utility_tol {
                    symmetric = false;
                    break;
                }
            }
            if symmetric {
                symmetric_pairs.push((i, j));
                max_symmetry_gap = max_symmetry_gap.max((values[i] - values[j]).abs());
            }
        }
    }

    let mut null_players = Vec::new();
    let mut max_zero_violation = 0.0_f64;
    for i in 0..n {
        let others = full.without(i);
        let mut null = true;
        for s in others.subsets() {
            let with_i = value_of(s.with(i), &mut cache);
            let without = value_of(s, &mut cache);
            if (with_i - without).abs() > utility_tol {
                null = false;
                break;
            }
        }
        if null {
            null_players.push(i);
            max_zero_violation = max_zero_violation.max(values[i].abs());
        }
    }

    FairnessReport {
        max_symmetry_gap,
        max_zero_violation,
        symmetric_pairs,
        null_players,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_report_measures_epsilon() {
        let r = reference_report(&[1.0, 2.0, 3.5], &[1.0, 2.5, 3.0]);
        assert!((r.epsilon - 0.5).abs() < 1e-12);
        assert!((r.mean_abs_error - 1.0 / 3.0).abs() < 1e-12);
        // Same ranking despite the perturbation.
        assert!((r.spearman_rho.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn theorem1_tolerance_formula() {
        assert_eq!(theorem1_tolerance(1.0, 4), 1.0);
        assert_eq!(theorem1_tolerance(0.5, 10), 0.2);
    }

    #[test]
    fn report_finds_symmetric_pair() {
        // Players 0 and 1 are interchangeable in u(S) = |S|.
        let values = [1.0, 1.2, 5.0];
        let r = epsilon_fair_report(3, &values, |s| s.len() as f64, 1e-12);
        assert!(r.symmetric_pairs.contains(&(0, 1)));
        // For u = |S| ALL pairs are symmetric; the max gap is |1.0-5.0|.
        assert!((r.max_symmetry_gap - 4.0).abs() < 1e-12);
        assert!(!r.is_epsilon_fair(0.1));
        assert!(r.is_epsilon_fair(4.0));
    }

    #[test]
    fn report_finds_null_player() {
        // Player 2 is null in u(S) = |S ∩ {0,1}|.
        let values = [0.5, 0.5, 0.01];
        let r = epsilon_fair_report(
            3,
            &values,
            |s| (s.intersection(Subset::from_indices(&[0, 1]))).len() as f64,
            1e-12,
        );
        assert_eq!(r.null_players, vec![2]);
        assert!((r.max_zero_violation - 0.01).abs() < 1e-15);
        assert!(r.is_epsilon_fair(0.02));
    }

    #[test]
    fn asymmetric_game_has_no_pairs() {
        // u weights players differently: no symmetric pairs, no nulls.
        let w = [1.0, 2.0, 4.0];
        let values = [1.0, 2.0, 4.0];
        let r = epsilon_fair_report(
            3,
            &values,
            |s| s.members().iter().map(|&i| w[i]).sum::<f64>(),
            1e-12,
        );
        assert!(r.symmetric_pairs.is_empty());
        assert!(r.null_players.is_empty());
        assert!(r.is_epsilon_fair(0.0));
    }

    #[test]
    fn completion_delta_zero_for_perfect_factors() {
        // full = W Hᵀ exactly.
        let w = Matrix::from_rows(&[&[1.0, 0.5], &[0.0, 2.0]]).unwrap();
        let h = Matrix::from_rows(&[&[1.0, 1.0], &[0.5, -1.0], &[2.0, 0.0], &[0.0, 0.0]]).unwrap();
        let mut problem = CompletionProblem::new(2);
        for bits in 0..4u64 {
            problem.ensure_column(bits);
        }
        // Column order matches bits because ensure_column is called in order.
        let full = w.matmul_transpose(&h).unwrap();
        let f = Factors { w, h };
        assert!(completion_delta(&full, &f, &problem) < 1e-12);
    }

    #[test]
    fn completion_delta_measures_max_column_error() {
        let w = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let h = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
        let mut problem = CompletionProblem::new(2);
        problem.ensure_column(0);
        problem.ensure_column(1);
        // full: column 0 = [1,1] (predicted 0 → col sum error 2),
        //       column 1 = [1,1] (predicted 1 → error 0).
        let full = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let f = Factors { w, h };
        assert!((completion_delta(&full, &f, &problem) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_columns_compare_against_zero() {
        let w = Matrix::from_rows(&[&[1.0]]).unwrap();
        let h = Matrix::from_rows(&[&[1.0]]).unwrap();
        let mut problem = CompletionProblem::new(1);
        problem.ensure_column(0);
        // full has 2 columns; bits=1 missing from the problem.
        let full = Matrix::from_rows(&[&[1.0, 3.0]]).unwrap();
        let f = Factors { w, h };
        assert!((completion_delta(&full, &f, &problem) - 3.0).abs() < 1e-12);
    }
}
