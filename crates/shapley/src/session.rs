//! One harness for every valuation method.
//!
//! A [`ValuationSession`] owns the cross-method run state — the seed
//! override, the progress callback, an optional ground-truth reference —
//! and a string-keyed registry of [`Valuator`] factories, so experiment
//! harnesses sweep every method through one loop:
//!
//! ```
//! use fedval_shapley::session::ValuationSession;
//! # use fedval_data::Dataset;
//! # use fedval_fl::{train_federated, FlConfig, UtilityOracle};
//! # use fedval_linalg::Matrix;
//! # use fedval_models::LogisticRegression;
//! # let clients: Vec<Dataset> = (0..4)
//! #     .map(|i| {
//! #         let f = Matrix::from_fn(10, 3, |r, c| (((r + 1) * (c + 2) + i) % 7) as f64 / 3.0 - 1.0);
//! #         let labels: Vec<usize> = (0..10).map(|r| (r + i) % 2).collect();
//! #         Dataset::new(f, labels, 2).unwrap()
//! #     })
//! #     .collect();
//! # let test = {
//! #     let f = Matrix::from_fn(10, 3, |r, c| ((r * 3 + c) % 7) as f64 / 3.0 - 1.0);
//! #     let labels: Vec<usize> = (0..10).map(|r| r % 2).collect();
//! #     Dataset::new(f, labels, 2).unwrap()
//! # };
//! # let proto = LogisticRegression::new(3, 2, 0.05, 17);
//! # let trace = train_federated(&proto, &clients, &FlConfig::new(3, 2, 0.3, 7));
//! # let oracle = UtilityOracle::new(&trace, &proto, &test);
//! let mut session = ValuationSession::builder().rank(3).seed(7).build();
//! for name in session.method_names() {
//!     let report = session.run(&name, &oracle).unwrap();
//!     assert_eq!(report.values.len(), 4, "{name}");
//! }
//! ```
//!
//! The default registry covers the paper's full method matrix: the exact
//! ground truth, both FedSV estimators, both ComFedSV estimators, TMC,
//! and group testing. [`ValuationSessionBuilder::register`] adds custom
//! strategies under new keys.

use crate::error::ValuationError;
use crate::fairness::reference_report;
use crate::fedsv::{FedSv, FedSvConfig};
use crate::group_testing::GroupTesting;
use crate::pipeline::{ComFedSv, CompletionSolver, EstimatorKind, ExactShapley};
use crate::tmc::Tmc;
use crate::valuator::{ProgressEvent, RunContext, ValuationReport, Valuator};
use fedval_fl::UtilityOracle;
use fedval_linalg::DeterminismTier;
use fedval_runtime::CancelToken;

/// Hyper-parameter defaults the built-in registry hands to each method.
#[derive(Debug, Clone)]
pub struct MethodDefaults {
    /// Completion rank `r` for ComFedSV.
    pub rank: usize,
    /// Completion regularization `λ`.
    pub lambda: f64,
    /// Completion-solver sweep budget.
    pub max_iters: usize,
    /// Which completion solver ComFedSV uses.
    pub solver: CompletionSolver,
    /// Permutation budget for the whole-run Monte-Carlo methods
    /// ("comfedsv-mc" and "tmc"). "fedsv-mc" keeps its per-cohort
    /// `⌈K ln K⌉ + 1` adaptive default.
    pub permutations: usize,
    /// Coalition samples for "group-testing".
    pub samples: usize,
    /// TMC truncation tolerance.
    pub truncation_tol: f64,
    /// Seed handed to every method (overridable per run by the session
    /// seed).
    pub seed: u64,
}

impl Default for MethodDefaults {
    fn default() -> Self {
        MethodDefaults {
            rank: 5,
            lambda: 1e-3,
            max_iters: 100,
            solver: CompletionSolver::Als,
            permutations: 200,
            samples: 400,
            truncation_tol: 0.01,
            seed: 0,
        }
    }
}

/// A named [`Valuator`] factory.
type Factory = Box<dyn Fn(&MethodDefaults) -> Box<dyn Valuator> + Send + Sync>;

/// Boxed progress callback stored by the session.
type ProgressSink = Box<dyn FnMut(ProgressEvent<'_>)>;

/// Builder for [`ValuationSession`]; start with
/// [`ValuationSession::builder`].
pub struct ValuationSessionBuilder {
    defaults: MethodDefaults,
    seed: Option<u64>,
    progress: Option<ProgressSink>,
    ground_truth: Option<Vec<f64>>,
    isolated_runs: bool,
    tier: Option<DeterminismTier>,
    cancel: Option<CancelToken>,
    extra: Vec<(String, Factory)>,
}

impl ValuationSessionBuilder {
    /// Session-wide seed: overrides every registered method's own seed
    /// (and is passed through [`RunContext`] to custom valuators).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Completion rank for the ComFedSV methods.
    pub fn rank(mut self, rank: usize) -> Self {
        self.defaults.rank = rank;
        self
    }

    /// Completion regularization `λ`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.defaults.lambda = lambda;
        self
    }

    /// Completion-solver sweep budget.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.defaults.max_iters = iters;
        self
    }

    /// Completion solver for the ComFedSV methods.
    pub fn solver(mut self, solver: CompletionSolver) -> Self {
        self.defaults.solver = solver;
        self
    }

    /// Permutation budget for "comfedsv-mc" and "tmc".
    pub fn permutations(mut self, m: usize) -> Self {
        self.defaults.permutations = m;
        self
    }

    /// Coalition-sample budget for "group-testing".
    pub fn samples(mut self, t: usize) -> Self {
        self.defaults.samples = t;
        self
    }

    /// TMC truncation tolerance.
    pub fn truncation_tol(mut self, tol: f64) -> Self {
        self.defaults.truncation_tol = tol;
        self
    }

    /// A trusted reference valuation (one value per client); every
    /// report's diagnostics then carry an ε-fairness
    /// [`ReferenceReport`](crate::fairness::ReferenceReport) against it.
    pub fn ground_truth(mut self, values: Vec<f64>) -> Self {
        self.ground_truth = Some(values);
        self
    }

    /// Progress callback invoked by methods at stage boundaries and —
    /// for the Monte-Carlo walks and the completion solvers — at
    /// permutation/sweep granularity (see
    /// [`Progress`](crate::valuator::Progress)).
    pub fn progress(mut self, callback: impl FnMut(ProgressEvent<'_>) + 'static) -> Self {
        self.progress = Some(Box::new(callback));
        self
    }

    /// Gives every run its own fresh oracle cache
    /// ([`UtilityOracle::isolated`]), so each method's
    /// `cells_evaluated` is its full standalone cost rather than "new
    /// cells the previous methods happened not to need" — the stable
    /// per-method accounting Fig.-8-style comparisons want. Costs more
    /// wall clock (shared cells are re-evaluated per method); values are
    /// unchanged either way.
    pub fn isolated_runs(mut self, isolated: bool) -> Self {
        self.isolated_runs = isolated;
        self
    }

    /// Numeric tier every run of this session evaluates at. When set
    /// and different from the oracle's own tier, `run`/`run_all` value
    /// against a fresh-cache
    /// [`UtilityOracle::isolated_with_tier`] clone — cached cells from
    /// another tier are never mixed into the run. Unset (the default),
    /// runs evaluate at whatever tier the oracle carries.
    pub fn tier(mut self, tier: DeterminismTier) -> Self {
        self.tier = Some(tier);
        self
    }

    /// Uses `token` as the session's cancellation token instead of a
    /// fresh one, so a controller that creates the token *before* the
    /// session exists (the `fedval_service` job manager hands the token
    /// to its HTTP `DELETE` handler at submission time) observes and
    /// cancels the same flag as
    /// [`cancel_handle`](ValuationSession::cancel_handle).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Registers a custom method under `name` (later registrations win
    /// over built-ins with the same key).
    pub fn register(
        mut self,
        name: impl Into<String>,
        factory: impl Fn(&MethodDefaults) -> Box<dyn Valuator> + Send + Sync + 'static,
    ) -> Self {
        self.extra.push((name.into(), Box::new(factory)));
        self
    }

    /// Finalizes the session.
    pub fn build(mut self) -> ValuationSession {
        if let Some(seed) = self.seed {
            self.defaults.seed = seed;
        }
        let mut registry: Vec<(String, Factory)> = vec![
            (
                "exact".into(),
                Box::new(|_: &MethodDefaults| Box::new(ExactShapley) as Box<dyn Valuator>),
            ),
            (
                "fedsv".into(),
                Box::new(|_: &MethodDefaults| Box::new(FedSv::exact()) as Box<dyn Valuator>),
            ),
            (
                "fedsv-mc".into(),
                Box::new(|d: &MethodDefaults| {
                    Box::new(FedSv::monte_carlo(FedSvConfig {
                        permutations_per_round: None,
                        seed: d.seed,
                    })) as Box<dyn Valuator>
                }),
            ),
            (
                "comfedsv".into(),
                Box::new(|d: &MethodDefaults| {
                    Box::new(
                        ComFedSv::exact(d.rank)
                            .with_lambda(d.lambda)
                            .with_solver(d.solver)
                            .with_seed(d.seed),
                    ) as Box<dyn Valuator>
                }),
            ),
            (
                "comfedsv-mc".into(),
                Box::new(|d: &MethodDefaults| {
                    let mut cfg = ComFedSv::exact(d.rank)
                        .with_lambda(d.lambda)
                        .with_solver(d.solver)
                        .with_seed(d.seed);
                    cfg.estimator = EstimatorKind::MonteCarlo {
                        num_permutations: d.permutations,
                    };
                    Box::new(cfg) as Box<dyn Valuator>
                }),
            ),
            (
                "tmc".into(),
                Box::new(|d: &MethodDefaults| {
                    Box::new(Tmc {
                        permutations: d.permutations,
                        truncation_tol: d.truncation_tol,
                        seed: d.seed,
                        ..Tmc::default()
                    }) as Box<dyn Valuator>
                }),
            ),
            (
                "group-testing".into(),
                Box::new(|d: &MethodDefaults| {
                    Box::new(GroupTesting {
                        num_samples: d.samples,
                        seed: d.seed,
                    }) as Box<dyn Valuator>
                }),
            ),
        ];
        for (name, factory) in self.extra {
            if let Some(slot) = registry.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = factory;
            } else {
                registry.push((name, factory));
            }
        }
        ValuationSession {
            defaults: self.defaults,
            seed: self.seed,
            progress: self.progress,
            ground_truth: self.ground_truth,
            isolated_runs: self.isolated_runs,
            tier: self.tier,
            cancel: self.cancel.unwrap_or_default(),
            registry,
        }
    }
}

/// The cross-method harness: seeding, progress, ground-truth comparison,
/// and the string-keyed method registry. Construct with
/// [`ValuationSession::builder`].
pub struct ValuationSession {
    defaults: MethodDefaults,
    seed: Option<u64>,
    progress: Option<ProgressSink>,
    ground_truth: Option<Vec<f64>>,
    isolated_runs: bool,
    tier: Option<DeterminismTier>,
    cancel: CancelToken,
    registry: Vec<(String, Factory)>,
}

impl ValuationSession {
    /// Starts a builder with [`MethodDefaults::default`].
    pub fn builder() -> ValuationSessionBuilder {
        ValuationSessionBuilder {
            defaults: MethodDefaults::default(),
            seed: None,
            progress: None,
            ground_truth: None,
            isolated_runs: false,
            tier: None,
            cancel: None,
            extra: Vec::new(),
        }
    }

    /// A handle that cancels this session's runs: every run shares the
    /// session's [`CancelToken`], so calling
    /// [`cancel`](CancelToken::cancel) on the returned clone — from a
    /// progress callback, another thread, a signal handler — makes the
    /// in-flight method stop at its next permutation/sweep/batch
    /// boundary and return [`ValuationError::Cancelled`]. The token
    /// stays cancelled (subsequent runs also report `Cancelled`) until
    /// [`reset_cancelled`](ValuationSession::reset_cancelled).
    pub fn cancel_handle(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Replaces a cancelled session's token so new runs can proceed.
    /// Handles returned by earlier
    /// [`cancel_handle`](ValuationSession::cancel_handle) calls keep
    /// pointing at the old token.
    pub fn reset_cancelled(&mut self) {
        self.cancel = CancelToken::new();
    }

    /// See [`ValuationSessionBuilder::isolated_runs`].
    pub fn set_isolated_runs(&mut self, isolated: bool) {
        self.isolated_runs = isolated;
    }

    /// Whether runs currently get a fresh oracle cache.
    pub fn isolated_runs(&self) -> bool {
        self.isolated_runs
    }

    /// See [`ValuationSessionBuilder::tier`]. `None` clears the
    /// override (runs follow the oracle's tier again).
    pub fn set_tier(&mut self, tier: Option<DeterminismTier>) {
        self.tier = tier;
    }

    /// The session's numeric-tier override, if any.
    pub fn tier(&self) -> Option<DeterminismTier> {
        self.tier
    }

    /// The registered method keys, in registration order.
    pub fn method_names(&self) -> Vec<String> {
        self.registry.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Constructs the valuator registered under `name`.
    pub fn valuator(&self, name: &str) -> Result<Box<dyn Valuator>, ValuationError> {
        self.registry
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f(&self.defaults))
            .ok_or_else(|| ValuationError::UnknownMethod { name: name.into() })
    }

    /// Runs the method registered under `name` against `oracle`.
    pub fn run(
        &mut self,
        name: &str,
        oracle: &UtilityOracle<'_>,
    ) -> Result<ValuationReport, ValuationError> {
        let valuator = self.valuator(name)?;
        self.run_valuator(valuator.as_ref(), oracle)
    }

    /// Runs an explicit valuator with this session's seed, progress
    /// callback, cancellation token, ground-truth comparison, and —
    /// when [`isolated_runs`](ValuationSessionBuilder::isolated_runs)
    /// is set, or the session's
    /// [`tier`](ValuationSessionBuilder::tier) differs from the
    /// oracle's — a fresh oracle cache (retiered to the session tier).
    pub fn run_valuator(
        &mut self,
        valuator: &dyn Valuator,
        oracle: &UtilityOracle<'_>,
    ) -> Result<ValuationReport, ValuationError> {
        let mut ctx = RunContext::new().with_cancel(self.cancel.clone());
        if let Some(seed) = self.seed {
            ctx = ctx.with_seed(seed);
        }
        if let Some(tier) = self.tier {
            ctx = ctx.with_tier(tier);
        }
        // A tier override that disagrees with the oracle's tier forces
        // a fresh-cache clone: the caller's oracle may hold cells
        // computed at its own tier, and a run must never mix tiers
        // within one result table.
        let needs_retier = self.tier.is_some_and(|t| t != oracle.tier());
        let isolated = (self.isolated_runs || needs_retier)
            .then(|| oracle.isolated_with_tier(self.tier.unwrap_or(oracle.tier())));
        let oracle = isolated.as_ref().unwrap_or(oracle);
        let mut report = match self.progress.as_mut() {
            Some(cb) => valuator.value(oracle, &mut ctx.with_progress(&mut **cb))?,
            None => valuator.value(oracle, &mut ctx)?,
        };
        if let Some(gt) = &self.ground_truth {
            if gt.len() != report.values.len() {
                return Err(ValuationError::ReferenceMismatch {
                    reference: gt.len(),
                    valued: report.values.len(),
                });
            }
            report.diagnostics.fairness = Some(reference_report(&report.values, gt));
        }
        Ok(report)
    }

    /// Runs every registered method, pairing each key with its outcome.
    /// Methods that reject the oracle (e.g. "exact" beyond the
    /// enumeration gate) report their error instead of aborting the
    /// sweep.
    ///
    /// Before each method starts, the progress callback (if any)
    /// receives a
    /// [`Progress::Method`](crate::valuator::Progress::Method) envelope
    /// event (`index` of `total`, 1-based, stage `"method"`), so a CLI
    /// can draw an overall sweep bar around the per-method streams.
    pub fn run_all(
        &mut self,
        oracle: &UtilityOracle<'_>,
    ) -> Vec<(String, Result<ValuationReport, ValuationError>)> {
        let names = self.method_names();
        let total = names.len();
        names
            .into_iter()
            .enumerate()
            .map(|(i, name)| {
                if let Some(cb) = self.progress.as_mut() {
                    cb(ProgressEvent {
                        method: &name,
                        stage: "method",
                        progress: crate::valuator::Progress::Method {
                            index: i + 1,
                            total,
                            name: &name,
                        },
                    });
                }
                let outcome = self.run(&name, oracle);
                (name, outcome)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valuator::Diagnostics;
    use fedval_data::Dataset;
    use fedval_fl::{train_federated, FlConfig};
    use fedval_linalg::Matrix;
    use fedval_models::LogisticRegression;

    fn world(seed: u64) -> (fedval_fl::TrainingTrace, LogisticRegression, Dataset) {
        let clients: Vec<Dataset> = (0..5)
            .map(|i| {
                let f = Matrix::from_fn(12, 3, |r, c| {
                    (((r + 1) * (c + 2) + 3 * i) % 7) as f64 / 3.0 - 1.0
                });
                let labels: Vec<usize> = (0..12).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        let test = {
            let f = Matrix::from_fn(16, 3, |r, c| ((r * 3 + c) % 7) as f64 / 3.0 - 1.0);
            let labels: Vec<usize> = (0..16).map(|r| r % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        };
        let proto = LogisticRegression::new(3, 2, 0.01, 11);
        let trace = train_federated(&proto, &clients, &FlConfig::new(4, 3, 0.3, seed));
        (trace, proto, test)
    }

    #[test]
    fn default_registry_covers_all_methods() {
        let session = ValuationSession::builder().build();
        let names = session.method_names();
        for expected in [
            "exact",
            "fedsv",
            "fedsv-mc",
            "comfedsv",
            "comfedsv-mc",
            "tmc",
            "group-testing",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn every_builtin_method_runs() {
        let (trace, proto, test) = world(1);
        let oracle = fedval_fl::UtilityOracle::new(&trace, &proto, &test);
        let mut session = ValuationSession::builder().rank(3).permutations(40).build();
        for (name, outcome) in session.run_all(&oracle) {
            let report = outcome.unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(report.values.len(), 5, "{name}");
            assert!(report.values.iter().all(|v| v.is_finite()), "{name}");
        }
    }

    #[test]
    fn unknown_method_is_a_typed_error() {
        let session = ValuationSession::builder().build();
        assert_eq!(
            session.valuator("nope").err().unwrap(),
            ValuationError::UnknownMethod {
                name: "nope".into()
            }
        );
    }

    #[test]
    fn ground_truth_attaches_fairness_report() {
        let (trace, proto, test) = world(2);
        let oracle = fedval_fl::UtilityOracle::new(&trace, &proto, &test);
        let gt = ExactShapley.run(&oracle).unwrap();
        let mut session = ValuationSession::builder()
            .rank(3)
            .ground_truth(gt.clone())
            .build();
        let report = session.run("exact", &oracle).unwrap();
        let fairness = report.diagnostics.fairness.expect("fairness report");
        // Exact vs itself: zero epsilon, perfect rank agreement.
        assert!(fairness.epsilon < 1e-15);
        assert!((fairness.spearman_rho.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_ground_truth_is_a_typed_error() {
        let (trace, proto, test) = world(6);
        let oracle = fedval_fl::UtilityOracle::new(&trace, &proto, &test);
        // Reference from a 3-client world, oracle has 5 clients.
        let mut session = ValuationSession::builder()
            .rank(3)
            .ground_truth(vec![0.0; 3])
            .build();
        assert_eq!(
            session.run("fedsv", &oracle).unwrap_err(),
            ValuationError::ReferenceMismatch {
                reference: 3,
                valued: 5
            }
        );
    }

    #[test]
    fn progress_events_flow_through() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let (trace, proto, test) = world(3);
        let oracle = fedval_fl::UtilityOracle::new(&trace, &proto, &test);
        let events: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&events);
        let mut session = ValuationSession::builder()
            .rank(3)
            .progress(move |e| sink.borrow_mut().push(format!("{}:{}", e.method, e.stage)))
            .build();
        session.run("fedsv", &oracle).unwrap();
        assert!(events.borrow().iter().any(|e| e.starts_with("fedsv:")));
    }

    #[test]
    fn run_all_emits_method_envelope_events() {
        use crate::valuator::Progress;
        use std::cell::RefCell;
        use std::rc::Rc;
        let (trace, proto, test) = world(10);
        let oracle = fedval_fl::UtilityOracle::new(&trace, &proto, &test);
        let envelopes: Rc<RefCell<Vec<(usize, usize, String)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&envelopes);
        let mut session = ValuationSession::builder()
            .rank(3)
            .permutations(10)
            .progress(move |e| {
                if let Progress::Method { index, total, name } = e.progress {
                    assert_eq!(name, e.method, "envelope name mirrors the event method");
                    sink.borrow_mut().push((index, total, name.to_string()));
                }
            })
            .build();
        let outcomes = session.run_all(&oracle);
        let envelopes = envelopes.borrow();
        assert_eq!(envelopes.len(), outcomes.len(), "one envelope per method");
        for (i, ((index, total, name), (method, _))) in envelopes.iter().zip(&outcomes).enumerate()
        {
            assert_eq!(*index, i + 1, "1-based position");
            assert_eq!(*total, outcomes.len());
            assert_eq!(name, method);
        }
    }

    #[test]
    fn session_seed_overrides_method_seed() {
        let (trace, proto, test) = world(4);
        let oracle = fedval_fl::UtilityOracle::new(&trace, &proto, &test);
        let run_with_seed = |seed: u64| {
            let mut s = ValuationSession::builder()
                .rank(3)
                .permutations(30)
                .seed(seed)
                .build();
            s.run("tmc", &oracle).unwrap().values
        };
        assert_eq!(run_with_seed(9), run_with_seed(9));
        assert_ne!(run_with_seed(9), run_with_seed(10));
    }

    #[test]
    fn cancel_handle_stops_a_tmc_run_mid_walk() {
        use crate::valuator::Progress;
        use std::cell::RefCell;
        use std::rc::Rc;
        let (trace, proto, test) = world(7);
        let oracle = fedval_fl::UtilityOracle::new(&trace, &proto, &test);
        let events: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&events);
        // The callback wants the session's cancel handle, which only
        // exists after build: hand it over through a shared cell.
        let handle_cell: Rc<RefCell<Option<fedval_runtime::CancelToken>>> =
            Rc::new(RefCell::new(None));
        let handle_for_callback = Rc::clone(&handle_cell);
        let mut session = ValuationSession::builder()
            .permutations(300)
            .seed(5)
            .progress(move |e| {
                if let Progress::Permutation { index, .. } = e.progress {
                    sink.borrow_mut().push(index);
                    if index == 2 {
                        if let Some(handle) = handle_for_callback.borrow().as_ref() {
                            handle.cancel();
                        }
                    }
                }
            })
            .build();
        *handle_cell.borrow_mut() = Some(session.cancel_handle());
        let err = session.run("tmc", &oracle).unwrap_err();
        assert_eq!(err, ValuationError::Cancelled);
        assert_eq!(
            *events.borrow(),
            vec![1, 2],
            "permutation-level events flowed and the walk stopped within one"
        );
        // The token stays set: the next run reports Cancelled too…
        assert_eq!(
            session.run("tmc", &oracle).unwrap_err(),
            ValuationError::Cancelled
        );
        // …until the session is reset.
        session.reset_cancelled();
        events.borrow_mut().clear();
        assert!(session.run("fedsv", &oracle).is_ok());
    }

    #[test]
    fn external_cancel_token_is_adopted_by_the_session() {
        let (trace, proto, test) = world(12);
        let oracle = fedval_fl::UtilityOracle::new(&trace, &proto, &test);
        // A controller creates the token before the session exists (the
        // service wires DELETE /jobs/{id} to it at submission time)…
        let token = CancelToken::new();
        let mut session = ValuationSession::builder()
            .rank(3)
            .cancel_token(token.clone())
            .build();
        // …and cancelling the external token stops the session's runs.
        token.cancel();
        assert_eq!(
            session.run("fedsv", &oracle).unwrap_err(),
            ValuationError::Cancelled
        );
        // The session's own handle is the same flag.
        assert!(session.cancel_handle().is_cancelled());
        session.reset_cancelled();
        assert!(session.run("fedsv", &oracle).is_ok());
    }

    #[test]
    fn isolated_runs_make_per_method_cost_stable() {
        let (trace, proto, test) = world(8);
        let oracle = fedval_fl::UtilityOracle::new(&trace, &proto, &test);
        // Shared cache: the second method drafts behind the first, so its
        // reported cost understates its standalone cost.
        let mut shared = ValuationSession::builder().rank(3).seed(2).build();
        let exact_shared = shared.run("exact", &oracle).unwrap();
        let fedsv_shared = shared.run("fedsv", &oracle).unwrap();

        // Isolated: every run pays — and reports — its full cost, equal to
        // what a standalone run against a fresh oracle would report.
        let mut isolated = ValuationSession::builder()
            .rank(3)
            .seed(2)
            .isolated_runs(true)
            .build();
        let exact_iso = isolated.run("exact", &oracle).unwrap();
        let fedsv_iso = isolated.run("fedsv", &oracle).unwrap();
        let fedsv_standalone = {
            let fresh = fedval_fl::UtilityOracle::new(&trace, &proto, &test);
            let mut s = ValuationSession::builder().rank(3).seed(2).build();
            s.run("fedsv", &fresh).unwrap()
        };
        assert_eq!(
            fedsv_iso.diagnostics.cells_evaluated, fedsv_standalone.diagnostics.cells_evaluated,
            "isolated cost equals standalone cost"
        );
        assert!(
            fedsv_shared.diagnostics.cells_evaluated < fedsv_iso.diagnostics.cells_evaluated,
            "shared-cache cost {} must understate the isolated cost {}",
            fedsv_shared.diagnostics.cells_evaluated,
            fedsv_iso.diagnostics.cells_evaluated
        );
        // Values are identical either way; only the accounting differs.
        assert_eq!(exact_shared.values, exact_iso.values);
        assert_eq!(fedsv_shared.values, fedsv_iso.values);
        // And the caller's oracle cache was left untouched by the
        // isolated runs beyond what the shared session already put there.
        assert_eq!(
            exact_shared.diagnostics.cells_evaluated,
            exact_iso.diagnostics.cells_evaluated
        );
    }

    #[test]
    fn run_all_reuses_the_pool_across_calls() {
        // Two consecutive run_all sweeps over one session: the second
        // reuses both the oracle cache and the persistent global pool.
        // (Worker persistence itself is asserted in fedval_runtime; here
        // we pin the cross-call behavioral contract: identical values,
        // zero re-evaluation.)
        let (trace, proto, test) = world(9);
        let oracle = fedval_fl::UtilityOracle::new(&trace, &proto, &test);
        let mut session = ValuationSession::builder()
            .rank(3)
            .permutations(25)
            .seed(4)
            .build();
        let first = session.run_all(&oracle);
        let evals_after_first = oracle.loss_evaluations();
        let second = session.run_all(&oracle);
        assert_eq!(
            oracle.loss_evaluations(),
            evals_after_first,
            "second sweep is served entirely from the result table"
        );
        for ((name_a, a), (name_b, b)) in first.iter().zip(&second) {
            assert_eq!(name_a, name_b);
            assert_eq!(
                a.as_ref().unwrap().values,
                b.as_ref().unwrap().values,
                "{name_a}: pool reuse must not perturb values"
            );
        }
    }

    #[test]
    fn session_tier_override_retiers_without_touching_the_shared_cache() {
        let (trace, proto, test) = world(11);
        let oracle = fedval_fl::UtilityOracle::new(&trace, &proto, &test)
            .with_tier(DeterminismTier::BitExact);

        let mut exact_session = ValuationSession::builder().rank(3).seed(2).build();
        let exact = exact_session.run("fedsv", &oracle).unwrap();
        let cached = oracle.loss_evaluations();

        // A Fast-tier session never writes into the BitExact oracle's
        // result table — it values against a fresh retiered clone.
        let mut fast_session = ValuationSession::builder()
            .rank(3)
            .seed(2)
            .tier(DeterminismTier::Fast)
            .build();
        assert_eq!(fast_session.tier(), Some(DeterminismTier::Fast));
        let fast = fast_session.run("fedsv", &oracle).unwrap();
        assert_eq!(
            oracle.loss_evaluations(),
            cached,
            "retiered run left the caller's cache untouched"
        );
        // Same estimator, same seed: only kernel rounding differs.
        for (a, b) in exact.values.iter().zip(&fast.values) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        }
        // Matching tiers without isolated_runs reuse the shared cache.
        let mut matching = ValuationSession::builder()
            .rank(3)
            .seed(2)
            .tier(DeterminismTier::BitExact)
            .build();
        let again = matching.run("fedsv", &oracle).unwrap();
        assert_eq!(again.values, exact.values);
        assert_eq!(
            again.diagnostics.cells_evaluated, 0,
            "matching tier drafts behind the existing cache"
        );
    }

    #[test]
    fn custom_registration_overrides_builtin() {
        struct Zeros;
        impl Valuator for Zeros {
            fn name(&self) -> &'static str {
                "zeros"
            }
            fn value(
                &self,
                oracle: &fedval_fl::UtilityOracle<'_>,
                _ctx: &mut RunContext<'_>,
            ) -> Result<ValuationReport, ValuationError> {
                Ok(ValuationReport {
                    method: "zeros",
                    values: vec![0.0; oracle.num_clients()],
                    diagnostics: Diagnostics::default(),
                })
            }
        }
        let (trace, proto, test) = world(5);
        let oracle = fedval_fl::UtilityOracle::new(&trace, &proto, &test);
        let mut session = ValuationSession::builder()
            .register("zeros", |_| Box::new(Zeros))
            .register("tmc", |_| Box::new(Zeros))
            .build();
        assert_eq!(session.run("zeros", &oracle).unwrap().values, vec![0.0; 5]);
        // The built-in "tmc" key now resolves to the custom strategy.
        assert_eq!(session.run("tmc", &oracle).unwrap().values, vec![0.0; 5]);
        // Re-registering did not duplicate the key.
        let names = session.method_names();
        assert_eq!(names.iter().filter(|n| *n == "tmc").count(), 1);
    }
}
