//! The unified valuation-method interface.
//!
//! The paper treats ComFedSV, FedSV, TMC, group testing, and the exact
//! Shapley value as interchangeable estimators over one utility oracle;
//! this module is that framing as a type. The stack has three layers:
//!
//! 1. **[`Valuator`]** (this module) — a strategy object that turns a
//!    [`UtilityOracle`] into per-client values. Implemented by
//!    [`ComFedSv`](crate::pipeline::ComFedSv),
//!    [`FedSv`](crate::fedsv::FedSv), [`Tmc`](crate::tmc::Tmc),
//!    [`GroupTesting`](crate::group_testing::GroupTesting), and
//!    [`ExactShapley`](crate::pipeline::ExactShapley).
//! 2. **[`UtilityOracle`]** (`fedval_fl`) — the batched, cached
//!    evaluation of round utilities `U_t(S)` over a recorded run.
//! 3. **[`MatrixCompleter`](fedval_mc::MatrixCompleter)** (`fedval_mc`) —
//!    the pluggable solver that ComFedSV uses to fill in unobserved
//!    cells.
//!
//! Every implementation returns a [`ValuationReport`] (values plus
//! [`Diagnostics`]) or a typed
//! [`ValuationError`] — invalid
//! configurations never panic. Methods are driven either directly
//! (`valuator.value(&oracle, &mut RunContext::new())`) or through a
//! [`ValuationSession`](crate::session::ValuationSession), which owns
//! seeding, progress callbacks, and a string-keyed method registry.

use crate::error::ValuationError;
use crate::fairness::ReferenceReport;
use fedval_fl::UtilityOracle;
use fedval_linalg::DeterminismTier;
use fedval_runtime::CancelToken;

/// How far along the reporting method is — the fine-grained payload of a
/// [`ProgressEvent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Progress<'a> {
    /// A coarse stage boundary ("plan", "evaluate", "complete", …).
    Stage,
    /// One Monte-Carlo permutation finished (`index` of `total`,
    /// counting from 1) — emitted by TMC and FedSV-MC walks.
    Permutation {
        /// Permutations finished so far.
        index: usize,
        /// Total permutation budget of the run.
        total: usize,
    },
    /// One completion-solver sweep/epoch finished, with its objective —
    /// bridged from the solver's
    /// [`SolveHooks`](fedval_mc::SolveHooks) by the ComFedSV pipeline.
    Sweep {
        /// Sweep index, counting from 1.
        index: usize,
        /// Objective after the sweep.
        objective: f64,
    },
    /// The `run_all` envelope: method `index` of `total` (1-based) is
    /// about to start. Emitted by
    /// [`ValuationSession::run_all`](crate::session::ValuationSession::run_all)
    /// before each method, so CLIs can draw an overall progress bar
    /// around the per-method streams.
    Method {
        /// Position of the starting method, counting from 1.
        index: usize,
        /// Number of methods in the sweep.
        total: usize,
        /// Registry key of the starting method (also in
        /// [`ProgressEvent::method`]).
        name: &'a str,
    },
}

/// A progress notification emitted while a method runs.
#[derive(Debug, Clone, Copy)]
pub struct ProgressEvent<'a> {
    /// Which method is running ([`Valuator::name`]).
    pub method: &'a str,
    /// What it is doing right now ("plan", "evaluate", "complete", …).
    pub stage: &'a str,
    /// Fine-grained position within the stage.
    pub progress: Progress<'a>,
}

/// Per-run state a [`Valuator`] receives: the session-level seed
/// override, the progress sink, the cancellation token, and the
/// session-level numeric-tier override. A default context (no override,
/// no callback, fresh token) reproduces the method's standalone
/// behavior bit-for-bit.
#[derive(Default)]
pub struct RunContext<'a> {
    seed: Option<u64>,
    progress: Option<&'a mut dyn FnMut(ProgressEvent<'_>)>,
    cancel: CancelToken,
    tier: Option<DeterminismTier>,
}

impl<'a> RunContext<'a> {
    /// A context with no seed override and no progress callback.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides every method's own seed with `seed` (what
    /// [`ValuationSession::builder().seed(…)`](crate::session::ValuationSessionBuilder::seed)
    /// sets).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Attaches a progress callback.
    pub fn with_progress(mut self, callback: &'a mut dyn FnMut(ProgressEvent<'_>)) -> Self {
        self.progress = Some(callback);
        self
    }

    /// Shares `token` as this run's cancellation flag (what
    /// [`ValuationSession::cancel_handle`](crate::session::ValuationSession::cancel_handle)
    /// hands out).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// The run's cancellation token — methods pass it down to
    /// [`UtilityOracle::try_evaluate_plan`] and
    /// [`SolveHooks::with_cancel`](fedval_mc::SolveHooks::with_cancel).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// `Err(ValuationError::Cancelled)` once the run's token is set —
    /// methods call this at permutation/batch boundaries
    /// (`ctx.check_cancelled()?`).
    pub fn check_cancelled(&self) -> Result<(), ValuationError> {
        self.cancel.check().map_err(ValuationError::from)
    }

    /// The seed a method should use: the session override if present,
    /// otherwise the method's own `default`.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Records the session's numeric-tier override (what
    /// [`ValuationSessionBuilder::tier`](crate::session::ValuationSessionBuilder::tier)
    /// sets). The session applies it to the oracle before the run; the
    /// context copy is informational, for custom valuators that spawn
    /// their own model evaluations.
    pub fn with_tier(mut self, tier: DeterminismTier) -> Self {
        self.tier = Some(tier);
        self
    }

    /// The tier this run evaluates at: the session override if present,
    /// otherwise `default` (callers typically pass the oracle's tier).
    pub fn tier_or(&self, default: DeterminismTier) -> DeterminismTier {
        self.tier.unwrap_or(default)
    }

    /// Emits a coarse stage-boundary event (no-op without a callback).
    pub fn emit(&mut self, method: &str, stage: &str) {
        self.emit_progress(method, stage, Progress::Stage);
    }

    /// Emits a permutation-level event (`index` of `total`, from 1).
    pub fn emit_permutation(&mut self, method: &str, index: usize, total: usize) {
        self.emit_progress(
            method,
            "permutation",
            Progress::Permutation { index, total },
        );
    }

    /// Emits a completion-sweep event.
    pub fn emit_sweep(&mut self, method: &str, index: usize, objective: f64) {
        self.emit_progress(method, "sweep", Progress::Sweep { index, objective });
    }

    /// Emits an event with an explicit [`Progress`] payload.
    pub fn emit_progress(&mut self, method: &str, stage: &str, progress: Progress<'_>) {
        if let Some(cb) = self.progress.as_mut() {
            cb(ProgressEvent {
                method,
                stage,
                progress,
            });
        }
    }
}

/// Everything a valuation run reports beyond the values themselves.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// Model loss evaluations performed during this run (the paper's
    /// Fig.-8 cost unit; cache hits on the oracle are free and excluded).
    pub cells_evaluated: u64,
    /// Utility cells this run needed that were already resident in the
    /// oracle's cache (private table, shared store, or disk-warmed) —
    /// work *avoided*. Reported separately so `cells_evaluated` keeps
    /// its strict "losses actually computed" meaning.
    pub cell_hits: u64,
    /// Completion-solver objective trajectory (empty for methods that do
    /// not complete a matrix).
    pub objective_trace: Vec<f64>,
    /// Permutations actually walked (0 for non-permutation methods).
    pub permutations_used: usize,
    /// Fraction of marginal evaluations skipped by truncation (TMC only).
    pub truncated_fraction: Option<f64>,
    /// ε-fairness against a reference valuation, filled in by the session
    /// when a ground truth was supplied.
    pub fairness: Option<ReferenceReport>,
}

/// The outcome of one valuation run: per-client values plus diagnostics.
#[derive(Debug, Clone)]
pub struct ValuationReport {
    /// Which method produced this ([`Valuator::name`]).
    pub method: &'static str,
    /// One value per client, indexed by client id.
    pub values: Vec<f64>,
    /// Run diagnostics.
    pub diagnostics: Diagnostics,
}

/// A data-valuation strategy over a recorded federated run.
///
/// Object-safe: methods are held as `Box<dyn Valuator>` by the session
/// registry and swept uniformly. Implementations validate their
/// configuration against the oracle and return typed errors; they must
/// be deterministic given the oracle and the effective seed.
pub trait Valuator {
    /// Stable lowercase method key ("comfedsv", "fedsv-mc", "tmc", …).
    fn name(&self) -> &'static str;

    /// Values every client of `oracle`'s world.
    fn value(
        &self,
        oracle: &UtilityOracle<'_>,
        ctx: &mut RunContext<'_>,
    ) -> Result<ValuationReport, ValuationError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_seed_override() {
        let ctx = RunContext::new();
        assert_eq!(ctx.seed_or(7), 7);
        let ctx = RunContext::new().with_seed(42);
        assert_eq!(ctx.seed_or(7), 42);
    }

    #[test]
    fn context_tier_override() {
        let ctx = RunContext::new();
        assert_eq!(
            ctx.tier_or(DeterminismTier::BitExact),
            DeterminismTier::BitExact
        );
        let ctx = RunContext::new().with_tier(DeterminismTier::Fast);
        assert_eq!(
            ctx.tier_or(DeterminismTier::BitExact),
            DeterminismTier::Fast
        );
    }

    #[test]
    fn context_emits_to_callback() {
        let mut events: Vec<(String, String)> = Vec::new();
        let mut sink = |e: ProgressEvent<'_>| {
            events.push((e.method.to_string(), e.stage.to_string()));
        };
        {
            let mut ctx = RunContext::new().with_progress(&mut sink);
            ctx.emit("tmc", "walk");
            ctx.emit("tmc", "done");
        }
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], ("tmc".into(), "walk".into()));
    }

    #[test]
    fn emit_without_callback_is_a_noop() {
        let mut ctx = RunContext::new();
        ctx.emit("fedsv", "stage");
        ctx.emit_permutation("tmc", 1, 10);
        ctx.emit_sweep("comfedsv", 1, 0.5);
    }

    #[test]
    fn fine_grained_events_carry_their_payload() {
        // Progress borrows from the event (the Method variant carries
        // the method name), so the sink stores an owned rendering.
        let mut events: Vec<(String, String)> = Vec::new();
        let mut sink = |e: ProgressEvent<'_>| {
            events.push((e.stage.to_string(), format!("{:?}", e.progress)));
        };
        {
            let mut ctx = RunContext::new().with_progress(&mut sink);
            ctx.emit("tmc", "walk");
            ctx.emit_permutation("tmc", 3, 20);
            ctx.emit_sweep("comfedsv", 2, 1.25);
            ctx.emit_progress(
                "fedsv",
                "method",
                Progress::Method {
                    index: 2,
                    total: 7,
                    name: "fedsv",
                },
            );
        }
        assert_eq!(events[0], ("walk".into(), format!("{:?}", Progress::Stage)));
        assert_eq!(
            events[1],
            (
                "permutation".into(),
                format!(
                    "{:?}",
                    Progress::Permutation {
                        index: 3,
                        total: 20
                    }
                )
            )
        );
        assert_eq!(
            events[2],
            (
                "sweep".into(),
                format!(
                    "{:?}",
                    Progress::Sweep {
                        index: 2,
                        objective: 1.25
                    }
                )
            )
        );
        assert_eq!(
            events[3],
            (
                "method".into(),
                format!(
                    "{:?}",
                    Progress::Method {
                        index: 2,
                        total: 7,
                        name: "fedsv",
                    }
                )
            )
        );
    }

    #[test]
    fn default_context_is_never_cancelled() {
        let ctx = RunContext::new();
        assert!(ctx.check_cancelled().is_ok());
        let token = ctx.cancel_token().clone();
        token.cancel();
        assert_eq!(ctx.check_cancelled(), Err(ValuationError::Cancelled));
    }
}
