//! The ε-rank bounds of Propositions 1 and 2.
//!
//! Proposition 1 (Lipschitz `L₁` + smooth `L₂`, non-increasing rates):
//!
//! ```text
//! rank_ε(U) ≤ ⌈((2 + η₁L₂) L₁ Σ_t ‖w_t − w_{t+1}‖ + (η₁ − η_T) L₁²) / ε⌉
//! ```
//!
//! Proposition 2 adds `μ`-strong convexity and the schedule
//! `η_t = 2/(μ(γ + t))`, yielding `rank_ε(U) = O(log T / ε)`.

use fedval_fl::TrainingTrace;
use fedval_linalg::vector;

/// Length of the global-parameter path `Σ_{t=1}^{T−1} ‖w_t − w_{t+1}‖`
/// (the quantity appearing in Proposition 1), measured from a trace.
pub fn path_length(trace: &TrainingTrace) -> f64 {
    let mut total = 0.0;
    for pair in trace.rounds.windows(2) {
        total += vector::dist2(&pair[0].global_params, &pair[1].global_params);
    }
    if let Some(last) = trace.rounds.last() {
        total += vector::dist2(&last.global_params, &trace.final_params);
    }
    total
}

/// Proposition 1's bound on `rank_ε(U)`.
pub fn prop1_rank_bound(l1: f64, l2: f64, eta1: f64, eta_t: f64, path_len: f64, eps: f64) -> usize {
    assert!(eps > 0.0, "epsilon must be positive");
    assert!(l1 >= 0.0 && l2 >= 0.0, "constants must be non-negative");
    assert!(eta1 >= eta_t, "rates must be non-increasing");
    let numerator = (2.0 + eta1 * l2) * l1 * path_len + (eta1 - eta_t) * l1 * l1;
    (numerator / eps).ceil() as usize
}

/// Proposition 2's bound on `rank_ε(U)` under `μ`-strong convexity with
/// the schedule `η_t = 2/(μ(γ+t))`.
pub fn prop2_rank_bound(mu: f64, l1: f64, l2: f64, rounds: usize, eps: f64) -> usize {
    assert!(mu > 0.0, "strong convexity modulus must be positive");
    assert!(eps > 0.0, "epsilon must be positive");
    let gamma = (8.0 * l2 / mu).max(1.0);
    let eta1 = 2.0 / (mu * gamma);
    let eta_t = 2.0 / (mu * (gamma + rounds.saturating_sub(1) as f64));
    let t = (rounds.max(2)) as f64;
    let term1 = 2.0 * (2.0 + eta1 * l2) * l1 * t.ln() / (mu * eps);
    let term2 = (eta1 - eta_t) * l1 * l1 / eps;
    (term1 + term2).ceil() as usize
}

/// Empirically estimates a Lipschitz constant `L₁` of the test loss along
/// the trace: `max_t |ℓ(w_t) − ℓ(w_{t+1})| / ‖w_t − w_{t+1}‖`. This
/// under-approximates the true constant but is the relevant scale for the
/// bound along the optimization path.
pub fn empirical_lipschitz(trace: &TrainingTrace, losses: &[f64]) -> f64 {
    assert_eq!(losses.len(), trace.rounds.len(), "one loss per round");
    let mut best = 0.0_f64;
    for t in 0..trace.rounds.len().saturating_sub(1) {
        let dw = vector::dist2(
            &trace.rounds[t].global_params,
            &trace.rounds[t + 1].global_params,
        );
        if dw > 1e-12 {
            best = best.max((losses[t] - losses[t + 1]).abs() / dw);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_data::Dataset;
    use fedval_fl::{train_federated, FlConfig};
    use fedval_linalg::Matrix;
    use fedval_models::{LearningRate, LogisticRegression, Model};

    fn small_trace(rounds: usize) -> (TrainingTrace, LogisticRegression, Dataset) {
        let clients: Vec<Dataset> = (0..4)
            .map(|i| {
                let f = Matrix::from_fn(10, 2, |r, c| ((r + c + i) % 5) as f64 / 2.0 - 1.0);
                let labels: Vec<usize> = (0..10).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        let test = {
            let f = Matrix::from_fn(10, 2, |r, c| ((2 * r + c) % 5) as f64 / 2.0 - 1.0);
            let labels: Vec<usize> = (0..10).map(|r| r % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        };
        let proto = LogisticRegression::new(2, 2, 0.1, 3);
        let cfg = FlConfig::new(rounds, 2, 0.0, 1)
            .with_learning_rate(LearningRate::proposition2(0.1, 2.0));
        let trace = train_federated(&proto, &clients, &cfg);
        (trace, proto, test)
    }

    #[test]
    fn path_length_is_positive_and_additive() {
        let (trace, _, _) = small_trace(6);
        let len6 = path_length(&trace);
        assert!(len6 > 0.0);
        // A longer run cannot have a shorter path (same dynamics prefix).
        let (trace10, _, _) = small_trace(10);
        assert!(path_length(&trace10) >= len6 * 0.9);
    }

    #[test]
    fn prop1_bound_shrinks_with_eps() {
        let b_tight = prop1_rank_bound(1.0, 1.0, 0.1, 0.05, 2.0, 0.01);
        let b_loose = prop1_rank_bound(1.0, 1.0, 0.1, 0.05, 2.0, 1.0);
        assert!(b_loose <= b_tight);
        assert!(b_loose >= 1);
    }

    #[test]
    fn prop1_bound_formula_hand_check() {
        // (2 + 0.5*2)*1*3 + (0.5-0.1)*1 = 9.4; / 2 = 4.7 → ceil 5.
        assert_eq!(prop1_rank_bound(1.0, 2.0, 0.5, 0.1, 3.0, 2.0), 5);
    }

    #[test]
    fn prop2_bound_grows_logarithmically() {
        let b100 = prop2_rank_bound(0.5, 1.0, 1.0, 100, 0.1);
        let b10000 = prop2_rank_bound(0.5, 1.0, 1.0, 10_000, 0.1);
        // log(10^4)/log(10^2) = 2: the bound should grow by roughly 2x,
        // certainly far less than the 100x of a linear bound.
        assert!(b10000 <= b100 * 3, "b100 = {b100}, b10000 = {b10000}");
    }

    #[test]
    fn empirical_rank_within_prop1_bound() {
        // Build the full utility matrix of a strongly convex run and check
        // the SVD-based ε-rank estimate against the Proposition-1 bound
        // with empirically measured constants.
        let (trace, proto, test) = small_trace(8);
        let oracle = fedval_fl::UtilityOracle::new(&trace, &proto, &test);
        let u = fedval_fl::full_utility_matrix(&oracle);

        let losses: Vec<f64> = (0..trace.num_rounds())
            .map(|t| oracle.base_loss(t))
            .collect();
        let l1 = empirical_lipschitz(&trace, &losses).max(0.1) * 4.0; // headroom
        let l2 = 4.0; // generous smoothness bound for this bounded data
        let eta1 = trace.rounds[0].eta;
        let eta_t = trace.rounds.last().unwrap().eta;
        let plen = path_length(&trace);

        let eps = 0.05 * u.max_abs().max(1e-9);
        let bound = prop1_rank_bound(l1, l2, eta1, eta_t, plen, eps);
        let est = fedval_linalg::eps_rank_upper_bound(&u, eps).unwrap();
        assert!(
            est <= bound.max(1),
            "empirical eps-rank {est} exceeded Prop-1 bound {bound}"
        );
    }

    #[test]
    fn empirical_lipschitz_detects_scale() {
        let (trace, proto, test) = small_trace(5);
        let losses: Vec<f64> = {
            let mut m = proto.clone();
            trace
                .rounds
                .iter()
                .map(|r| {
                    m.set_params(&r.global_params);
                    m.loss(&test)
                })
                .collect()
        };
        let l1 = empirical_lipschitz(&trace, &losses);
        assert!(l1.is_finite());
        assert!(l1 >= 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn prop1_rejects_zero_eps() {
        let _ = prop1_rank_bound(1.0, 1.0, 0.1, 0.1, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn prop1_rejects_increasing_rates() {
        let _ = prop1_rank_bound(1.0, 1.0, 0.1, 0.2, 1.0, 0.1);
    }
}
