//! Shapley-value data valuation for horizontal federated learning.
//!
//! This crate is the paper's primary contribution:
//!
//! * [`exact`] — the classical Shapley value (equation (5)) for arbitrary
//!   utility functions over few players;
//! * [`mod@fedsv`] — Wang et al.'s federated Shapley value (Definition 2),
//!   exact for small per-round cohorts and permutation-sampled for large
//!   ones;
//! * [`comfedsv`] — the completed federated Shapley value (Definition 4)
//!   computed from matrix-completion factors, both the exact full-subset
//!   sum and the Monte-Carlo estimator (equation (12));
//! * [`pipeline`] — Algorithm 1 end-to-end (train → observe → complete →
//!   value), plus the ground-truth valuation from the full utility matrix;
//! * [`fairness`] — ε-Shapley-fairness checks (Definition 1) and the
//!   Theorem-1 tolerance `4δ/N`;
//! * [`observation`] — the analytic unfairness probability `P_s` of
//!   Observation 1 (paper Fig. 1);
//! * [`theory`] — the ε-rank bounds of Propositions 1 and 2;
//! * [`tmc`] — truncated Monte-Carlo Shapley (Ghorbani–Zou), an
//!   efficiency extension for the ground-truth valuation;
//! * [`group_testing`] — the group-testing estimator (Jia et al.), the
//!   other classical accelerator surveyed by the paper;
//! * [`coeffs`] — Shapley weights and log-factorial utilities.

// Index-driven loops are deliberate in the numeric kernels: the loop
// variable simultaneously drives several arrays/offsets and mirrors the
// textbook formulas, which iterator chains would obscure.
#![allow(clippy::needless_range_loop)]

/// Largest client count for which the exact (full coalition-space)
/// estimators run: the exact-subsets pipeline registers `2^N` columns and
/// [`comfedsv_from_factors`] sums over all of them, so both are gated to
/// `N ≤ 16` (65 536 coalitions — about the practical ceiling for the
/// `O(N · 2^N)` Definition-4 sum). Beyond this, use the Monte-Carlo
/// estimator ([`EstimatorKind::MonteCarlo`]).
pub const MAX_EXACT_CLIENTS: usize = 16;

pub mod coeffs;
pub mod comfedsv;
pub mod exact;
pub mod fairness;
pub mod fedsv;
pub mod group_testing;
pub mod observation;
pub mod pipeline;
pub mod theory;
pub mod tmc;

pub use comfedsv::{
    comfedsv_antithetic, comfedsv_from_factors, comfedsv_monte_carlo, SubsetColumns,
};
pub use exact::exact_shapley;
pub use fairness::{epsilon_fair_report, theorem1_tolerance, FairnessReport};
pub use fedsv::{fedsv, fedsv_monte_carlo, FedSvConfig};
pub use group_testing::{group_testing_shapley, GroupTestingConfig};
pub use observation::{unfairness_probability, UnfairnessParams};
pub use pipeline::{
    comfedsv_pipeline, ground_truth_valuation, ComFedSvConfig, CompletionSolver, EstimatorKind,
    ValuationOutput,
};
pub use theory::{path_length, prop1_rank_bound, prop2_rank_bound};
pub use tmc::{tmc_shapley, TmcConfig, TmcOutput};
