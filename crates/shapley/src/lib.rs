//! Shapley-value data valuation for horizontal federated learning.
//!
//! Every method is a strategy object implementing the
//! [`Valuator`] trait over a shared
//! [`UtilityOracle`](fedval_fl::UtilityOracle), swept uniformly through a
//! [`ValuationSession`]; failures are typed
//! [`ValuationError`]s, never panics. The layering
//! is `Valuator` → `UtilityOracle` → [`MatrixCompleter`](fedval_mc::MatrixCompleter)
//! (see [`valuator`] for the full picture).
//!
//! This crate is the paper's primary contribution:
//!
//! * [`valuator`] — the [`Valuator`] trait,
//!   [`RunContext`], and
//!   [`ValuationReport`] diagnostics;
//! * [`session`] — the [`ValuationSession`]
//!   harness: seeding, progress callbacks, string-keyed method registry;
//! * [`error`] — the [`ValuationError`] type;
//! * [`exact`] — the classical Shapley value (equation (5)) for arbitrary
//!   utility functions over few players;
//! * [`mod@fedsv`] — Wang et al.'s federated Shapley value (Definition 2),
//!   exact for small per-round cohorts and permutation-sampled for large
//!   ones ([`FedSv`]);
//! * [`comfedsv`] — the completed federated Shapley value (Definition 4)
//!   computed from matrix-completion factors, both the exact full-subset
//!   sum and the Monte-Carlo estimator (equation (12));
//! * [`pipeline`] — Algorithm 1 end-to-end (train → observe → complete →
//!   value) as [`ComFedSv`], plus the ground-truth
//!   valuation [`ExactShapley`];
//! * [`fairness`] — ε-Shapley-fairness checks (Definition 1) and the
//!   Theorem-1 tolerance `4δ/N`;
//! * [`observation`] — the analytic unfairness probability `P_s` of
//!   Observation 1 (paper Fig. 1);
//! * [`theory`] — the ε-rank bounds of Propositions 1 and 2;
//! * [`tmc`] — truncated Monte-Carlo Shapley (Ghorbani–Zou,
//!   [`Tmc`]), an efficiency extension for the ground-truth
//!   valuation;
//! * [`group_testing`] — the group-testing estimator (Jia et al.,
//!   [`GroupTesting`]), the other classical
//!   accelerator surveyed by the paper;
//! * [`coeffs`] — Shapley weights and log-factorial utilities.

// Index-driven loops are deliberate in the numeric kernels: the loop
// variable simultaneously drives several arrays/offsets and mirrors the
// textbook formulas, which iterator chains would obscure.
#![allow(clippy::needless_range_loop)]

// The exact-enumeration gate lives in `fedval_fl` (the bottom of the
// valuation stack) so that `full_utility_matrix` and every estimator in
// this crate share one constant; re-exported here for compatibility.
pub use fedval_fl::MAX_EXACT_CLIENTS;

pub mod coeffs;
pub mod comfedsv;
pub mod error;
pub mod exact;
pub mod fairness;
pub mod fedsv;
pub mod group_testing;
pub mod observation;
pub mod pipeline;
pub mod session;
pub mod theory;
pub mod tmc;
pub mod valuator;

pub use comfedsv::{
    comfedsv_antithetic, comfedsv_from_factors, comfedsv_monte_carlo, SubsetColumns,
};
pub use error::ValuationError;
pub use exact::{exact_shapley, try_exact_shapley};
pub use fairness::{
    epsilon_fair_report, reference_report, theorem1_tolerance, FairnessReport, ReferenceReport,
};
pub use fedsv::{FedSv, FedSvConfig};
pub use group_testing::GroupTesting;
pub use observation::{unfairness_probability, UnfairnessParams};
pub use pipeline::{ComFedSv, CompletionSolver, EstimatorKind, ExactShapley, ValuationOutput};
pub use session::{MethodDefaults, ValuationSession, ValuationSessionBuilder};
pub use theory::{path_length, prop1_rank_bound, prop2_rank_bound};
pub use tmc::{Tmc, TmcOutput};
pub use valuator::{Diagnostics, Progress, ProgressEvent, RunContext, ValuationReport, Valuator};

// The cancellation vocabulary comes from the shared execution layer;
// re-exported so session users need not depend on `fedval_runtime`
// directly.
pub use fedval_runtime::CancelToken;

// Deprecated free-function/alias surface, kept for downstream
// compatibility; see MIGRATION.md at the workspace root.
#[allow(deprecated)]
pub use fedsv::{fedsv, fedsv_monte_carlo};
#[allow(deprecated)]
pub use group_testing::{group_testing_shapley, GroupTestingConfig};
#[allow(deprecated)]
pub use pipeline::{comfedsv_pipeline, ground_truth_valuation, ComFedSvConfig};
#[allow(deprecated)]
pub use tmc::{tmc_shapley, TmcConfig};
