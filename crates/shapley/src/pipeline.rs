//! Algorithm 1 end-to-end: observe → complete → value.
//!
//! The pipeline consumes a [`UtilityOracle`] (wrapping a recorded FedAvg
//! run), builds the partially observed completion problem, solves it with
//! a pluggable [`MatrixCompleter`], and evaluates ComFedSV — exactly (full
//! coalition space, Definition 4) or by Monte-Carlo permutation sampling
//! (Algorithm 1 / equation (12)). The method struct [`ComFedSv`]
//! implements [`Valuator`]; its fallible
//! [`ComFedSv::run`] returns the rich [`ValuationOutput`] for callers
//! that need the factors and the completion problem.

use crate::comfedsv::{comfedsv_from_factors, comfedsv_monte_carlo};
use crate::error::ValuationError;
use crate::exact::exact_shapley_unchecked;
use crate::valuator::{Diagnostics, RunContext, ValuationReport, Valuator};
use crate::MAX_EXACT_CLIENTS;
use fedval_fl::{EvalPlan, Subset, UtilityOracle};
use fedval_mc::{
    AlsConfig, CcdConfig, CompletionProblem, Factors, MatrixCompleter, SgdConfig, SolveHooks,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;

/// Which ComFedSV estimator the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Register all `2^N` coalition columns and evaluate Definition 4
    /// exactly (requires `N ≤` [`MAX_EXACT_CLIENTS`]).
    ExactSubsets,
    /// Algorithm 1: `M` sampled permutations, reduced problem (13),
    /// estimator (12).
    MonteCarlo {
        /// Number of sampled permutations `M`. The paper cites
        /// `M = O(N log N)` for a good approximation.
        num_permutations: usize,
    },
}

/// Which factorization solver completes the utility matrix. Each variant
/// materializes as a [`MatrixCompleter`] via
/// [`CompletionSolver::completer`], so the pipeline itself is
/// solver-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompletionSolver {
    /// Alternating least squares (exact ridge sub-solves; default).
    #[default]
    Als,
    /// CCD++ — the LIBPMF algorithm the paper's released code uses.
    Ccd,
    /// Stochastic gradient descent — the cheap baseline for very large
    /// column counts (sweep budget is interpreted as epochs).
    Sgd,
}

impl CompletionSolver {
    /// Builds the boxed solver for this variant with the pipeline's
    /// hyper-parameters (`max_iters` = ALS/CCD sweeps or SGD epochs).
    pub fn completer(
        &self,
        rank: usize,
        lambda: f64,
        max_iters: usize,
        seed: u64,
    ) -> Box<dyn MatrixCompleter> {
        match self {
            CompletionSolver::Als => Box::new(AlsConfig {
                rank,
                lambda,
                max_iters,
                tol: 1e-9,
                seed,
            }),
            CompletionSolver::Ccd => Box::new(CcdConfig {
                rank,
                lambda,
                max_iters,
                inner_iters: 3,
                tol: 1e-9,
                seed,
            }),
            CompletionSolver::Sgd => {
                let mut cfg = SgdConfig::new(rank)
                    .with_lambda(lambda)
                    .with_epochs(max_iters);
                cfg.seed = seed;
                Box::new(cfg)
            }
        }
    }
}

/// The ComFedSV valuation method (paper Algorithm 1): train-trace
/// observation, matrix completion, Definition-4 / equation-(12) values.
///
/// This struct is both the configuration and the
/// [`Valuator`] strategy object; the former
/// `ComFedSvConfig` name remains as a deprecated alias.
#[derive(Debug, Clone)]
pub struct ComFedSv {
    /// Completion rank `r` (Propositions 1–2 justify `O(log T)`).
    pub rank: usize,
    /// Regularization `λ` of problem (9)/(13).
    pub lambda: f64,
    /// Estimator variant.
    pub estimator: EstimatorKind,
    /// Solver sweep budget (epochs for the SGD solver).
    pub als_max_iters: usize,
    /// Which completion solver to run.
    pub solver: CompletionSolver,
    /// Seed for permutation sampling and solver initialization.
    pub seed: u64,
}

/// Deprecated name of [`ComFedSv`].
#[deprecated(since = "0.2.0", note = "renamed to `ComFedSv`")]
pub type ComFedSvConfig = ComFedSv;

impl ComFedSv {
    /// Defaults for the paper's small experiments (exact subsets, rank 5).
    pub fn exact(rank: usize) -> Self {
        ComFedSv {
            rank,
            lambda: 0.1,
            estimator: EstimatorKind::ExactSubsets,
            als_max_iters: 100,
            solver: CompletionSolver::Als,
            seed: 0,
        }
    }

    /// Defaults for Algorithm 1 with `M = ⌈N ln N⌉ + 1` permutations.
    pub fn monte_carlo(rank: usize, n: usize) -> Self {
        let m = ((n as f64) * (n as f64).ln().max(1.0)).ceil() as usize + 1;
        ComFedSv {
            rank,
            lambda: 0.1,
            estimator: EstimatorKind::MonteCarlo {
                num_permutations: m,
            },
            als_max_iters: 100,
            solver: CompletionSolver::Als,
            seed: 0,
        }
    }

    /// Builder-style override of `λ`.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the completion solver.
    pub fn with_solver(mut self, solver: CompletionSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Runs the full pipeline with the solver configured in
    /// [`solver`](ComFedSv::solver). Returns the rich
    /// [`ValuationOutput`]; the [`Valuator`] impl wraps this into a
    /// [`ValuationReport`].
    pub fn run(&self, oracle: &UtilityOracle<'_>) -> Result<ValuationOutput, ValuationError> {
        let completer =
            self.solver
                .completer(self.rank, self.lambda, self.als_max_iters, self.seed);
        self.run_with(oracle, completer.as_ref())
    }

    /// Runs the pipeline with a caller-supplied completion solver —
    /// anything implementing [`MatrixCompleter`], including solvers not
    /// covered by the [`CompletionSolver`] enum.
    pub fn run_with(
        &self,
        oracle: &UtilityOracle<'_>,
        completer: &dyn MatrixCompleter,
    ) -> Result<ValuationOutput, ValuationError> {
        self.run_inner(oracle, completer, &mut RunContext::new())
    }

    /// The pipeline body under an explicit [`RunContext`]: observation
    /// batches honor the cancellation token, and the completion solve
    /// reports sweep-level progress through the context (bridged via
    /// [`SolveHooks`]).
    fn run_inner(
        &self,
        oracle: &UtilityOracle<'_>,
        completer: &dyn MatrixCompleter,
        ctx: &mut RunContext<'_>,
    ) -> Result<ValuationOutput, ValuationError> {
        let n = oracle.num_clients();
        let t = oracle.num_rounds();
        if t == 0 {
            return Err(ValuationError::EmptyTrace);
        }
        match self.estimator {
            EstimatorKind::ExactSubsets => {
                if n > MAX_EXACT_CLIENTS {
                    return Err(ValuationError::TooManyClients {
                        clients: n,
                        max: MAX_EXACT_CLIENTS,
                    });
                }
                // Plan every in-cohort coalition, evaluate the batch in
                // parallel, then replay the plan into the completion problem
                // (plan order == the former serial observation order).
                let mut plan = EvalPlan::new();
                for round in 0..t {
                    plan.add_subsets_of(round, oracle.trace().selected(round));
                }
                oracle.try_evaluate_plan(&plan, ctx.cancel_token())?;
                let mut problem = CompletionProblem::new(t);
                problem.add_observations(
                    plan.cells()
                        .iter()
                        .map(|&(round, s)| (round, s.bits(), oracle.utility(round, s))),
                );
                // Register the full coalition space so Definition 4's sum sees
                // a factor row for every subset.
                for bits in 1..(1u64 << n) {
                    problem.ensure_column(bits);
                }
                let completion = complete_with_context(self.name(), completer, &problem, ctx)?;
                let values = comfedsv_from_factors(&completion.factors, &problem, n);
                Ok(ValuationOutput {
                    values,
                    factors: completion.factors,
                    problem,
                    objective_trace: completion.objective_trace,
                    permutations: Vec::new(),
                })
            }
            EstimatorKind::MonteCarlo { num_permutations } => {
                if num_permutations == 0 {
                    return Err(ValuationError::NoPermutations);
                }
                let mut rng = StdRng::seed_from_u64(self.seed);
                let mut base: Vec<usize> = (0..n).collect();
                let permutations: Vec<Vec<usize>> = (0..num_permutations)
                    .map(|_| {
                        base.shuffle(&mut rng);
                        base.clone()
                    })
                    .collect();

                // Distinct non-empty prefixes across all permutations.
                let mut prefixes: Vec<Subset> = Vec::new();
                let mut seen: HashSet<u64> = HashSet::new();
                for perm in &permutations {
                    let mut prefix = Subset::EMPTY;
                    for &i in perm {
                        prefix = prefix.with(i);
                        if seen.insert(prefix.bits()) {
                            prefixes.push(prefix);
                        }
                    }
                }

                // Observe each prefix in every round whose cohort contains it
                // (Algorithm 1's `π_m(i) ⊆ I_t` test): plan the cells, batch
                // evaluate, then replay the plan into the problem.
                let mut plan = EvalPlan::new();
                for round in 0..t {
                    let cohort = oracle.trace().selected(round);
                    for &p in &prefixes {
                        if p.is_subset_of(cohort) {
                            plan.add(round, p);
                        }
                    }
                }
                oracle.try_evaluate_plan(&plan, ctx.cancel_token())?;
                let mut problem = CompletionProblem::new(t);
                for &p in &prefixes {
                    problem.ensure_column(p.bits());
                }
                problem.add_observations(
                    plan.cells()
                        .iter()
                        .map(|&(round, p)| (round, p.bits(), oracle.utility(round, p))),
                );

                let completion = complete_with_context(self.name(), completer, &problem, ctx)?;
                let values = comfedsv_monte_carlo(&completion.factors, &problem, n, &permutations);
                Ok(ValuationOutput {
                    values,
                    factors: completion.factors,
                    problem,
                    objective_trace: completion.objective_trace,
                    permutations,
                })
            }
        }
    }
}

impl Valuator for ComFedSv {
    fn name(&self) -> &'static str {
        match self.estimator {
            EstimatorKind::ExactSubsets => "comfedsv",
            EstimatorKind::MonteCarlo { .. } => "comfedsv-mc",
        }
    }

    fn value(
        &self,
        oracle: &UtilityOracle<'_>,
        ctx: &mut RunContext<'_>,
    ) -> Result<ValuationReport, ValuationError> {
        let mut cfg = self.clone();
        cfg.seed = ctx.seed_or(self.seed);
        let before = oracle.loss_evaluations();
        let hits_before = oracle.cell_hits();
        ctx.emit(self.name(), "observe + complete + value");
        let completer = cfg
            .solver
            .completer(cfg.rank, cfg.lambda, cfg.als_max_iters, cfg.seed);
        let out = cfg.run_inner(oracle, completer.as_ref(), ctx)?;
        Ok(ValuationReport {
            method: self.name(),
            values: out.values,
            diagnostics: Diagnostics {
                cells_evaluated: oracle.loss_evaluations() - before,
                cell_hits: oracle.cell_hits() - hits_before,
                permutations_used: out.permutations.len(),
                objective_trace: out.objective_trace,
                ..Diagnostics::default()
            },
        })
    }
}

/// Runs a completion solve with the context's cancel token and a
/// sweep-progress bridge: every solver sweep/epoch surfaces as a
/// [`Progress::Sweep`](crate::valuator::Progress::Sweep) event on the
/// context's callback.
fn complete_with_context(
    method: &str,
    completer: &dyn MatrixCompleter,
    problem: &CompletionProblem,
    ctx: &mut RunContext<'_>,
) -> Result<fedval_mc::Completion, ValuationError> {
    let token = ctx.cancel_token().clone();
    let mut on_sweep = |index: usize, objective: f64| ctx.emit_sweep(method, index, objective);
    let hooks = SolveHooks::new()
        .with_on_sweep(&mut on_sweep)
        .with_cancel(&token);
    completer
        .complete_with(problem, hooks)
        .map_err(ValuationError::from)
}

/// The exact-Shapley ground-truth valuation as a
/// [`Valuator`] strategy: equation (14)
/// evaluated from the *full* utility matrix (exponential — gated to
/// `N ≤` [`MAX_EXACT_CLIENTS`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactShapley;

impl ExactShapley {
    /// The ground-truth valuation of every client (classical Shapley
    /// value of the summed utility `U(S) = Σ_t U_t(S)`).
    pub fn run(&self, oracle: &UtilityOracle<'_>) -> Result<Vec<f64>, ValuationError> {
        self.run_inner(oracle, &mut RunContext::new())
    }

    fn run_inner(
        &self,
        oracle: &UtilityOracle<'_>,
        ctx: &mut RunContext<'_>,
    ) -> Result<Vec<f64>, ValuationError> {
        let n = oracle.num_clients();
        if n == 0 {
            return Err(ValuationError::NotEnoughClients { clients: 0, min: 1 });
        }
        // Gate before planning: the batch below is T · (2^N − 1) model
        // evaluations, so an oversized N must fail here, not after hours of
        // work when the Shapley sum finally checks.
        if n > MAX_EXACT_CLIENTS {
            return Err(ValuationError::TooManyClients {
                clients: n,
                max: MAX_EXACT_CLIENTS,
            });
        }
        if oracle.num_rounds() == 0 {
            return Err(ValuationError::EmptyTrace);
        }
        // The exact value reads the entire T × 2^N grid; evaluate it as one
        // parallel batch up front.
        let mut plan = EvalPlan::new();
        for round in 0..oracle.num_rounds() {
            plan.add_subsets_of(round, Subset::full(n));
        }
        oracle.try_evaluate_plan(&plan, ctx.cancel_token())?;
        Ok(exact_shapley_unchecked(n, |s| oracle.total_utility(s)))
    }
}

impl Valuator for ExactShapley {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn value(
        &self,
        oracle: &UtilityOracle<'_>,
        ctx: &mut RunContext<'_>,
    ) -> Result<ValuationReport, ValuationError> {
        let before = oracle.loss_evaluations();
        let hits_before = oracle.cell_hits();
        ctx.emit(self.name(), "evaluate full utility grid");
        let values = self.run_inner(oracle, ctx)?;
        Ok(ValuationReport {
            method: self.name(),
            values,
            diagnostics: Diagnostics {
                cells_evaluated: oracle.loss_evaluations() - before,
                cell_hits: oracle.cell_hits() - hits_before,
                ..Diagnostics::default()
            },
        })
    }
}

/// Everything the pipeline produces (kept for diagnostics and the
/// experiment harnesses).
#[derive(Debug)]
pub struct ValuationOutput {
    /// The ComFedSV of every client.
    pub values: Vec<f64>,
    /// Solved completion factors.
    pub factors: Factors,
    /// The observed problem that was completed.
    pub problem: CompletionProblem,
    /// ALS objective trajectory.
    pub objective_trace: Vec<f64>,
    /// Permutations used (empty for the exact path).
    pub permutations: Vec<Vec<usize>>,
}

/// Runs the ComFedSV pipeline against a recorded training run.
#[deprecated(
    since = "0.2.0",
    note = "use `ComFedSv::run` (or drive it as a `Valuator` through a `ValuationSession`)"
)]
pub fn comfedsv_pipeline(oracle: &UtilityOracle<'_>, config: &ComFedSv) -> ValuationOutput {
    match config.run(oracle) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// The paper's ground-truth metric: ComFedSV computed from the *full*
/// utility matrix (equation (14)), which reduces to the classical Shapley
/// value of the summed utility `U(S) = Σ_t U_t(S)`.
#[deprecated(
    since = "0.2.0",
    note = "use `ExactShapley::run` (or drive it as a `Valuator` through a `ValuationSession`)"
)]
pub fn ground_truth_valuation(oracle: &UtilityOracle<'_>) -> Vec<f64> {
    match ExactShapley.run(oracle) {
        Ok(values) => values,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_data::Dataset;
    use fedval_fl::{train_federated, FlConfig};
    use fedval_linalg::Matrix;
    use fedval_models::LogisticRegression;

    fn make_world(
        n: usize,
        rounds: usize,
        k: usize,
        seed: u64,
        duplicate: bool,
    ) -> (Vec<Dataset>, LogisticRegression, Dataset, FlConfig) {
        let mut clients: Vec<Dataset> = (0..n)
            .map(|i| {
                let f = Matrix::from_fn(14, 3, |r, c| {
                    (((r + 2) * (c + 3) + 5 * i) % 9) as f64 / 4.0 - 1.0
                });
                let labels: Vec<usize> = (0..14).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        if duplicate {
            let last = clients.len() - 1;
            clients[last] = clients[0].clone();
        }
        let test = {
            let f = Matrix::from_fn(20, 3, |r, c| ((r * 3 + 2 * c) % 9) as f64 / 4.0 - 1.0);
            let labels: Vec<usize> = (0..20).map(|r| r % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        };
        let proto = LogisticRegression::new(3, 2, 0.05, 17);
        let cfg = FlConfig::new(rounds, k, 0.3, seed);
        (clients, proto, test, cfg)
    }

    #[test]
    fn fully_observed_pipeline_matches_ground_truth() {
        // K = N every round ⇒ every coalition observed ⇒ near-perfect
        // completion ⇒ ComFedSV ≈ ground truth.
        let (clients, proto, test, cfg) = make_world(4, 4, 4, 1, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let gt = ExactShapley.run(&oracle).unwrap();
        let out = ComFedSv::exact(4).with_lambda(1e-6).run(&oracle).unwrap();
        for (a, b) in out.values.iter().zip(&gt) {
            assert!((a - b).abs() < 5e-3, "comfedsv {a} vs ground truth {b}");
        }
    }

    #[test]
    fn partial_observation_recovers_ranking() {
        let (clients, proto, test, cfg) = make_world(5, 8, 3, 3, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let gt = ExactShapley.run(&oracle).unwrap();
        let out = ComFedSv::exact(4).with_lambda(1e-3).run(&oracle).unwrap();
        let rho = fedval_metrics::spearman_rho(&out.values, &gt).unwrap();
        assert!(rho > 0.7, "rank correlation with ground truth: {rho}");
    }

    #[test]
    fn duplicated_clients_get_similar_comfedsv() {
        // The headline fairness property (Theorem 1): identical clients
        // receive (approximately) identical values despite asymmetric
        // selection.
        let (clients, proto, test, cfg) = make_world(5, 8, 2, 7, true);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let out = ComFedSv::exact(4).with_lambda(1e-3).run(&oracle).unwrap();
        let d_com = fedval_metrics::relative_difference(out.values[0], out.values[4]);
        let fed = crate::fedsv::FedSv::exact().run(&oracle).unwrap();
        let d_fed = fedval_metrics::relative_difference(fed[0], fed[4]);
        // ComFedSV must not be less fair than FedSV on this construction
        // (a strict improvement is typical but selection noise exists).
        assert!(
            d_com <= d_fed + 0.05,
            "ComFedSV relative difference {d_com} vs FedSV {d_fed}"
        );
    }

    #[test]
    fn monte_carlo_pipeline_approximates_exact_pipeline() {
        let (clients, proto, test, cfg) = make_world(5, 6, 3, 5, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let exact = ComFedSv::exact(4).with_lambda(1e-3).run(&oracle).unwrap();
        let mc_cfg = ComFedSv {
            rank: 4,
            lambda: 1e-3,
            estimator: EstimatorKind::MonteCarlo {
                num_permutations: 200,
            },
            als_max_iters: 100,
            solver: Default::default(),
            seed: 2,
        };
        let mc = mc_cfg.run(&oracle).unwrap();
        let rho = fedval_metrics::spearman_rho(&mc.values, &exact.values).unwrap();
        assert!(rho >= 0.7, "MC vs exact rank correlation {rho}");
    }

    #[test]
    fn monte_carlo_observes_only_prefixes() {
        let (clients, proto, test, cfg) = make_world(4, 4, 2, 9, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let cfg2 = ComFedSv {
            rank: 3,
            lambda: 0.01,
            estimator: EstimatorKind::MonteCarlo {
                num_permutations: 5,
            },
            als_max_iters: 20,
            solver: Default::default(),
            seed: 4,
        };
        let out = cfg2.run(&oracle).unwrap();
        assert_eq!(out.permutations.len(), 5);
        // Every registered column must be a prefix of some permutation.
        let mut prefix_keys = HashSet::new();
        for perm in &out.permutations {
            let mut p = Subset::EMPTY;
            for &i in perm {
                p = p.with(i);
                prefix_keys.insert(p.bits());
            }
        }
        for col in 0..out.problem.num_cols() {
            assert!(prefix_keys.contains(&out.problem.column_key(col)));
        }
        // Assumption 1: round 0 selects everyone, so every prefix is
        // observed at least once.
        assert!(out.problem.every_column_observed());
    }

    #[test]
    fn pipeline_deterministic_given_seed() {
        let (clients, proto, test, cfg) = make_world(4, 3, 2, 11, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let c = ComFedSv::exact(3).with_seed(5);
        let a = c.run(&oracle).unwrap();
        let b = c.run(&oracle).unwrap();
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn sgd_solver_is_reachable_with_als_like_trajectory() {
        // The SGD baseline runs through the same pluggable-completer
        // pipeline; its residual trajectory must have the ALS shape
        // (monotone-ish decrease to a small fraction of the initial
        // objective) and its values must agree with ALS on ranking.
        let (clients, proto, test, cfg) = make_world(4, 5, 3, 15, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let als = ComFedSv::exact(3).with_lambda(1e-3).run(&oracle).unwrap();
        let mut sgd_cfg = ComFedSv::exact(3)
            .with_lambda(1e-3)
            .with_solver(CompletionSolver::Sgd);
        // SGD epochs are much cheaper than ALS sweeps; give it a
        // comparable total budget.
        sgd_cfg.als_max_iters = 600;
        let sgd = sgd_cfg.run(&oracle).unwrap();
        for t in [&als.objective_trace, &sgd.objective_trace] {
            assert!(t.len() >= 2);
            assert!(
                t.last().unwrap() < &t[0],
                "objective did not decrease: {} -> {}",
                t[0],
                t.last().unwrap()
            );
        }
        // Same objective, same λ: with the adaptive-backoff schedule SGD
        // must land within ~2× of the ALS optimum (the old unconditional
        // decay stalled an order of magnitude above it).
        let als_final = *als.objective_trace.last().unwrap();
        let sgd_final = *sgd.objective_trace.last().unwrap();
        assert!(
            sgd_final <= 2.0 * als_final.max(1e-12),
            "SGD objective {sgd_final} not within 2x of ALS {als_final}"
        );
        let rho = fedval_metrics::spearman_rho(&sgd.values, &als.values).unwrap();
        assert!(rho > 0.6, "SGD vs ALS pipeline agreement {rho}");
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        use crate::error::ValuationError;
        let (clients, proto, test, cfg) = make_world(4, 3, 2, 17, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        // Zero permutations.
        let mut mc = ComFedSv::monte_carlo(3, 4);
        mc.estimator = EstimatorKind::MonteCarlo {
            num_permutations: 0,
        };
        assert_eq!(mc.run(&oracle).unwrap_err(), ValuationError::NoPermutations);
        // Bad solver config surfaces as a completion error.
        let bad = ComFedSv::exact(0);
        assert!(matches!(
            bad.run(&oracle).unwrap_err(),
            ValuationError::Completion(fedval_mc::CompletionError::InvalidRank)
        ));
    }

    #[test]
    fn empty_trace_is_a_typed_error() {
        use crate::error::ValuationError;
        let (clients, proto, test, _) = make_world(4, 3, 2, 19, false);
        let trace = train_federated(&proto, &clients, &FlConfig::new(0, 2, 0.3, 19));
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        assert_eq!(
            ComFedSv::exact(3).run(&oracle).unwrap_err(),
            ValuationError::EmptyTrace
        );
        assert_eq!(
            ExactShapley.run(&oracle).unwrap_err(),
            ValuationError::EmptyTrace
        );
    }

    #[test]
    fn ground_truth_balance() {
        // Ground truth is a classical Shapley value of the total utility,
        // so it satisfies balance: Σ_i s_i = U(I).
        let (clients, proto, test, cfg) = make_world(4, 5, 2, 13, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let gt = ExactShapley.run(&oracle).unwrap();
        let total: f64 = gt.iter().sum();
        let grand = oracle.total_utility(Subset::full(4));
        assert!((total - grand).abs() < 1e-10);
    }
}
