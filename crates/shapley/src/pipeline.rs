//! Algorithm 1 end-to-end: observe → complete → value.
//!
//! The pipeline consumes a [`UtilityOracle`] (wrapping a recorded FedAvg
//! run), builds the partially observed completion problem, solves it with
//! ALS, and evaluates ComFedSV — exactly (full coalition space, Definition
//! 4) or by Monte-Carlo permutation sampling (Algorithm 1 / equation (12)).

use crate::comfedsv::{comfedsv_from_factors, comfedsv_monte_carlo};
use crate::exact::exact_shapley;
use crate::MAX_EXACT_CLIENTS;
use fedval_fl::{EvalPlan, Subset, UtilityOracle};
use fedval_mc::{solve_als, solve_ccd, AlsConfig, CcdConfig, CompletionProblem, Factors};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;

/// Which ComFedSV estimator the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Register all `2^N` coalition columns and evaluate Definition 4
    /// exactly (requires `N ≤` [`MAX_EXACT_CLIENTS`](crate::MAX_EXACT_CLIENTS)).
    ExactSubsets,
    /// Algorithm 1: `M` sampled permutations, reduced problem (13),
    /// estimator (12).
    MonteCarlo {
        /// Number of sampled permutations `M`. The paper cites
        /// `M = O(N log N)` for a good approximation.
        num_permutations: usize,
    },
}

/// Which factorization solver completes the utility matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompletionSolver {
    /// Alternating least squares (exact ridge sub-solves; default).
    #[default]
    Als,
    /// CCD++ — the LIBPMF algorithm the paper's released code uses.
    Ccd,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct ComFedSvConfig {
    /// Completion rank `r` (Propositions 1–2 justify `O(log T)`).
    pub rank: usize,
    /// Regularization `λ` of problem (9)/(13).
    pub lambda: f64,
    /// Estimator variant.
    pub estimator: EstimatorKind,
    /// Solver sweep budget.
    pub als_max_iters: usize,
    /// Which completion solver to run.
    pub solver: CompletionSolver,
    /// Seed for permutation sampling and solver initialization.
    pub seed: u64,
}

impl ComFedSvConfig {
    /// Defaults for the paper's small experiments (exact subsets, rank 5).
    pub fn exact(rank: usize) -> Self {
        ComFedSvConfig {
            rank,
            lambda: 0.1,
            estimator: EstimatorKind::ExactSubsets,
            als_max_iters: 100,
            solver: CompletionSolver::Als,
            seed: 0,
        }
    }

    /// Defaults for Algorithm 1 with `M = ⌈N ln N⌉ + 1` permutations.
    pub fn monte_carlo(rank: usize, n: usize) -> Self {
        let m = ((n as f64) * (n as f64).ln().max(1.0)).ceil() as usize + 1;
        ComFedSvConfig {
            rank,
            lambda: 0.1,
            estimator: EstimatorKind::MonteCarlo {
                num_permutations: m,
            },
            als_max_iters: 100,
            solver: CompletionSolver::Als,
            seed: 0,
        }
    }

    /// Builder-style override of `λ`.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the completion solver.
    pub fn with_solver(mut self, solver: CompletionSolver) -> Self {
        self.solver = solver;
        self
    }
}

/// Everything the pipeline produces (kept for diagnostics and the
/// experiment harnesses).
pub struct ValuationOutput {
    /// The ComFedSV of every client.
    pub values: Vec<f64>,
    /// Solved completion factors.
    pub factors: Factors,
    /// The observed problem that was completed.
    pub problem: CompletionProblem,
    /// ALS objective trajectory.
    pub objective_trace: Vec<f64>,
    /// Permutations used (empty for the exact path).
    pub permutations: Vec<Vec<usize>>,
}

/// Runs the ComFedSV pipeline against a recorded training run.
pub fn comfedsv_pipeline(oracle: &UtilityOracle<'_>, config: &ComFedSvConfig) -> ValuationOutput {
    let n = oracle.num_clients();
    let t = oracle.num_rounds();
    match config.estimator {
        EstimatorKind::ExactSubsets => {
            assert!(
                n <= MAX_EXACT_CLIENTS,
                "exact-subsets pipeline needs N <= {MAX_EXACT_CLIENTS}"
            );
            // Plan every in-cohort coalition, evaluate the batch in
            // parallel, then replay the plan into the completion problem
            // (plan order == the former serial observation order).
            let mut plan = EvalPlan::new();
            for round in 0..t {
                plan.add_subsets_of(round, oracle.trace().selected(round));
            }
            oracle.evaluate_plan(&plan);
            let mut problem = CompletionProblem::new(t);
            problem.add_observations(
                plan.cells()
                    .iter()
                    .map(|&(round, s)| (round, s.bits(), oracle.utility(round, s))),
            );
            // Register the full coalition space so Definition 4's sum sees
            // a factor row for every subset.
            for bits in 1..(1u64 << n) {
                problem.ensure_column(bits);
            }
            let (factors, objective_trace) = run_solver(&problem, config);
            let values = comfedsv_from_factors(&factors, &problem, n);
            ValuationOutput {
                values,
                factors,
                problem,
                objective_trace,
                permutations: Vec::new(),
            }
        }
        EstimatorKind::MonteCarlo { num_permutations } => {
            assert!(num_permutations > 0, "need at least one permutation");
            let mut rng = StdRng::seed_from_u64(config.seed);
            let mut base: Vec<usize> = (0..n).collect();
            let permutations: Vec<Vec<usize>> = (0..num_permutations)
                .map(|_| {
                    base.shuffle(&mut rng);
                    base.clone()
                })
                .collect();

            // Distinct non-empty prefixes across all permutations.
            let mut prefixes: Vec<Subset> = Vec::new();
            let mut seen: HashSet<u64> = HashSet::new();
            for perm in &permutations {
                let mut prefix = Subset::EMPTY;
                for &i in perm {
                    prefix = prefix.with(i);
                    if seen.insert(prefix.bits()) {
                        prefixes.push(prefix);
                    }
                }
            }

            // Observe each prefix in every round whose cohort contains it
            // (Algorithm 1's `π_m(i) ⊆ I_t` test): plan the cells, batch
            // evaluate, then replay the plan into the problem.
            let mut plan = EvalPlan::new();
            for round in 0..t {
                let cohort = oracle.trace().selected(round);
                for &p in &prefixes {
                    if p.is_subset_of(cohort) {
                        plan.add(round, p);
                    }
                }
            }
            oracle.evaluate_plan(&plan);
            let mut problem = CompletionProblem::new(t);
            for &p in &prefixes {
                problem.ensure_column(p.bits());
            }
            problem.add_observations(
                plan.cells()
                    .iter()
                    .map(|&(round, p)| (round, p.bits(), oracle.utility(round, p))),
            );

            let (factors, objective_trace) = run_solver(&problem, config);
            let values = comfedsv_monte_carlo(&factors, &problem, n, &permutations);
            ValuationOutput {
                values,
                factors,
                problem,
                objective_trace,
                permutations,
            }
        }
    }
}

/// Dispatches to the configured completion solver.
fn run_solver(problem: &CompletionProblem, config: &ComFedSvConfig) -> (Factors, Vec<f64>) {
    match config.solver {
        CompletionSolver::Als => solve_als(
            problem,
            &AlsConfig {
                rank: config.rank,
                lambda: config.lambda,
                max_iters: config.als_max_iters,
                tol: 1e-9,
                seed: config.seed,
            },
        ),
        CompletionSolver::Ccd => solve_ccd(
            problem,
            &CcdConfig {
                rank: config.rank,
                lambda: config.lambda,
                max_iters: config.als_max_iters,
                inner_iters: 3,
                tol: 1e-9,
                seed: config.seed,
            },
        ),
    }
}

/// The paper's ground-truth metric: ComFedSV computed from the *full*
/// utility matrix (equation (14)), which reduces to the classical Shapley
/// value of the summed utility `U(S) = Σ_t U_t(S)`.
pub fn ground_truth_valuation(oracle: &UtilityOracle<'_>) -> Vec<f64> {
    let n = oracle.num_clients();
    // Gate before planning: the batch below is T · (2^N − 1) model
    // evaluations, so an oversized N must fail here, not after hours of
    // work when exact_shapley finally checks.
    assert!(
        n <= MAX_EXACT_CLIENTS,
        "ground-truth valuation is exponential in N (max {MAX_EXACT_CLIENTS})"
    );
    // The exact value reads the entire T × 2^N grid; evaluate it as one
    // parallel batch up front.
    let mut plan = EvalPlan::new();
    for round in 0..oracle.num_rounds() {
        plan.add_subsets_of(round, Subset::full(n));
    }
    oracle.evaluate_plan(&plan);
    exact_shapley(n, |s| oracle.total_utility(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_data::Dataset;
    use fedval_fl::{train_federated, FlConfig};
    use fedval_linalg::Matrix;
    use fedval_models::LogisticRegression;

    fn make_world(
        n: usize,
        rounds: usize,
        k: usize,
        seed: u64,
        duplicate: bool,
    ) -> (Vec<Dataset>, LogisticRegression, Dataset, FlConfig) {
        let mut clients: Vec<Dataset> = (0..n)
            .map(|i| {
                let f = Matrix::from_fn(14, 3, |r, c| {
                    (((r + 2) * (c + 3) + 5 * i) % 9) as f64 / 4.0 - 1.0
                });
                let labels: Vec<usize> = (0..14).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        if duplicate {
            let last = clients.len() - 1;
            clients[last] = clients[0].clone();
        }
        let test = {
            let f = Matrix::from_fn(20, 3, |r, c| ((r * 3 + 2 * c) % 9) as f64 / 4.0 - 1.0);
            let labels: Vec<usize> = (0..20).map(|r| r % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        };
        let proto = LogisticRegression::new(3, 2, 0.05, 17);
        let cfg = FlConfig::new(rounds, k, 0.3, seed);
        (clients, proto, test, cfg)
    }

    #[test]
    fn fully_observed_pipeline_matches_ground_truth() {
        // K = N every round ⇒ every coalition observed ⇒ near-perfect
        // completion ⇒ ComFedSV ≈ ground truth.
        let (clients, proto, test, cfg) = make_world(4, 4, 4, 1, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let gt = ground_truth_valuation(&oracle);
        let out = comfedsv_pipeline(&oracle, &ComFedSvConfig::exact(4).with_lambda(1e-6));
        for (a, b) in out.values.iter().zip(&gt) {
            assert!((a - b).abs() < 5e-3, "comfedsv {a} vs ground truth {b}");
        }
    }

    #[test]
    fn partial_observation_recovers_ranking() {
        let (clients, proto, test, cfg) = make_world(5, 8, 3, 3, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let gt = ground_truth_valuation(&oracle);
        let out = comfedsv_pipeline(&oracle, &ComFedSvConfig::exact(4).with_lambda(1e-3));
        let rho = fedval_metrics::spearman_rho(&out.values, &gt).unwrap();
        assert!(rho > 0.7, "rank correlation with ground truth: {rho}");
    }

    #[test]
    fn duplicated_clients_get_similar_comfedsv() {
        // The headline fairness property (Theorem 1): identical clients
        // receive (approximately) identical values despite asymmetric
        // selection.
        let (clients, proto, test, cfg) = make_world(5, 8, 2, 7, true);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let out = comfedsv_pipeline(&oracle, &ComFedSvConfig::exact(4).with_lambda(1e-3));
        let d_com = fedval_metrics::relative_difference(out.values[0], out.values[4]);
        let fed = crate::fedsv::fedsv(&oracle);
        let d_fed = fedval_metrics::relative_difference(fed[0], fed[4]);
        // ComFedSV must not be less fair than FedSV on this construction
        // (a strict improvement is typical but selection noise exists).
        assert!(
            d_com <= d_fed + 0.05,
            "ComFedSV relative difference {d_com} vs FedSV {d_fed}"
        );
    }

    #[test]
    fn monte_carlo_pipeline_approximates_exact_pipeline() {
        let (clients, proto, test, cfg) = make_world(5, 6, 3, 5, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let exact = comfedsv_pipeline(&oracle, &ComFedSvConfig::exact(4).with_lambda(1e-3));
        let mc_cfg = ComFedSvConfig {
            rank: 4,
            lambda: 1e-3,
            estimator: EstimatorKind::MonteCarlo {
                num_permutations: 200,
            },
            als_max_iters: 100,
            solver: Default::default(),
            seed: 2,
        };
        let mc = comfedsv_pipeline(&oracle, &mc_cfg);
        let rho = fedval_metrics::spearman_rho(&mc.values, &exact.values).unwrap();
        assert!(rho >= 0.7, "MC vs exact rank correlation {rho}");
    }

    #[test]
    fn monte_carlo_observes_only_prefixes() {
        let (clients, proto, test, cfg) = make_world(4, 4, 2, 9, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let cfg2 = ComFedSvConfig {
            rank: 3,
            lambda: 0.01,
            estimator: EstimatorKind::MonteCarlo {
                num_permutations: 5,
            },
            als_max_iters: 20,
            solver: Default::default(),
            seed: 4,
        };
        let out = comfedsv_pipeline(&oracle, &cfg2);
        assert_eq!(out.permutations.len(), 5);
        // Every registered column must be a prefix of some permutation.
        let mut prefix_keys = HashSet::new();
        for perm in &out.permutations {
            let mut p = Subset::EMPTY;
            for &i in perm {
                p = p.with(i);
                prefix_keys.insert(p.bits());
            }
        }
        for col in 0..out.problem.num_cols() {
            assert!(prefix_keys.contains(&out.problem.column_key(col)));
        }
        // Assumption 1: round 0 selects everyone, so every prefix is
        // observed at least once.
        assert!(out.problem.every_column_observed());
    }

    #[test]
    fn pipeline_deterministic_given_seed() {
        let (clients, proto, test, cfg) = make_world(4, 3, 2, 11, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let c = ComFedSvConfig::exact(3).with_seed(5);
        let a = comfedsv_pipeline(&oracle, &c);
        let b = comfedsv_pipeline(&oracle, &c);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn ground_truth_balance() {
        // Ground truth is a classical Shapley value of the total utility,
        // so it satisfies balance: Σ_i s_i = U(I).
        let (clients, proto, test, cfg) = make_world(4, 5, 2, 13, false);
        let trace = train_federated(&proto, &clients, &cfg);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let gt = ground_truth_valuation(&oracle);
        let total: f64 = gt.iter().sum();
        let grand = oracle.total_utility(Subset::full(4));
        assert!((total - grand).abs() < 1e-10);
    }
}
