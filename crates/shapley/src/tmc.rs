//! Truncated Monte-Carlo Shapley (Ghorbani & Zou), adapted to the
//! federated whole-run utility.
//!
//! An extension beyond the paper's core method (its related-work section
//! discusses TMC as the standard data-Shapley accelerator): estimate the
//! ground-truth valuation `Φ(U)`, `U(S) = Σ_t U_t(S)`, by permutation
//! sampling with *early truncation* — once a prefix's utility is within a
//! tolerance of the grand coalition's, the remaining marginal
//! contributions are treated as zero and the (expensive) utility calls for
//! them are skipped.
//!
//! Truncation makes the walk inherently adaptive — which cells are needed
//! depends on values already computed — so unlike the other estimators
//! this one cannot pre-plan its whole workload. The best it can do is
//! column granularity: each prefix's `T` round-utilities are submitted as
//! one batch, which fans out across workers only when `T` is large
//! enough to amortize thread setup (the engine keeps short columns —
//! including every bundled quick/default profile — on its serial path).
//! Speculative cross-permutation batching is a ROADMAP item.

use fedval_fl::{Subset, UtilityOracle};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// TMC configuration.
#[derive(Debug, Clone)]
pub struct TmcConfig {
    /// Number of sampled permutations.
    pub permutations: usize,
    /// Truncate a permutation once
    /// `|U(I) − U(prefix)| ≤ tol · |U(I)|`.
    pub truncation_tol: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TmcConfig {
    fn default() -> Self {
        TmcConfig {
            permutations: 100,
            truncation_tol: 0.01,
            seed: 0,
        }
    }
}

/// Output of [`tmc_shapley`].
#[derive(Debug, Clone)]
pub struct TmcOutput {
    /// Estimated Shapley values.
    pub values: Vec<f64>,
    /// Fraction of marginal evaluations skipped by truncation.
    pub truncated_fraction: f64,
}

/// Truncated Monte-Carlo estimate of the whole-run Shapley value.
pub fn tmc_shapley(oracle: &UtilityOracle<'_>, config: &TmcConfig) -> TmcOutput {
    assert!(config.permutations > 0, "need at least one permutation");
    assert!(
        config.truncation_tol >= 0.0,
        "tolerance must be non-negative"
    );
    let n = oracle.num_clients();
    let grand = oracle.total_utility_parallel(Subset::full(n));
    let threshold = config.truncation_tol * grand.abs();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut values = vec![0.0; n];
    let inv_m = 1.0 / config.permutations as f64;
    let mut evaluated = 0u64;
    let mut skipped = 0u64;
    for _ in 0..config.permutations {
        order.shuffle(&mut rng);
        let mut prefix = Subset::EMPTY;
        let mut prefix_utility = 0.0;
        let mut truncated = false;
        for &i in &order {
            if truncated {
                skipped += 1;
                continue;
            }
            prefix = prefix.with(i);
            // Truncation decides cell-by-cell, so permutations cannot be
            // pre-planned wholesale — but each prefix's T-round column
            // can be evaluated as one parallel batch.
            let u = oracle.total_utility_parallel(prefix);
            evaluated += 1;
            values[i] += (u - prefix_utility) * inv_m;
            prefix_utility = u;
            if (grand - prefix_utility).abs() <= threshold {
                truncated = true;
            }
        }
    }
    let total = evaluated + skipped;
    TmcOutput {
        values,
        truncated_fraction: if total == 0 {
            0.0
        } else {
            skipped as f64 / total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_data::Dataset;
    use fedval_fl::{train_federated, FlConfig};
    use fedval_linalg::Matrix;
    use fedval_models::LogisticRegression;

    fn setup(seed: u64) -> (fedval_fl::TrainingTrace, LogisticRegression, Dataset) {
        let clients: Vec<Dataset> = (0..5)
            .map(|i| {
                let f = Matrix::from_fn(12, 3, |r, c| {
                    (((r + 1) * (c + 2) + 3 * i) % 7) as f64 / 3.0 - 1.0
                });
                let labels: Vec<usize> = (0..12).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        let test = {
            let f = Matrix::from_fn(16, 3, |r, c| ((r * 3 + c) % 7) as f64 / 3.0 - 1.0);
            let labels: Vec<usize> = (0..16).map(|r| r % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        };
        let proto = LogisticRegression::new(3, 2, 0.01, 11);
        let trace = train_federated(&proto, &clients, &FlConfig::new(4, 3, 0.3, seed));
        (trace, proto, test)
    }

    #[test]
    fn untruncated_tmc_converges_to_exact() {
        let (trace, proto, test) = setup(1);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let exact = crate::pipeline::ground_truth_valuation(&oracle);
        let out = tmc_shapley(
            &oracle,
            &TmcConfig {
                permutations: 3000,
                truncation_tol: 0.0,
                seed: 5,
            },
        );
        for (a, b) in out.values.iter().zip(&exact) {
            assert!((a - b).abs() < 0.01, "tmc {a} vs exact {b}");
        }
    }

    #[test]
    fn balance_holds_without_truncation() {
        // Marginals telescope, so Σ_i values = U(I) exactly per permutation.
        let (trace, proto, test) = setup(2);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let out = tmc_shapley(
            &oracle,
            &TmcConfig {
                permutations: 20,
                truncation_tol: 0.0,
                seed: 7,
            },
        );
        let total: f64 = out.values.iter().sum();
        let grand = oracle.total_utility(Subset::full(5));
        assert!((total - grand).abs() < 1e-10);
        assert_eq!(out.truncated_fraction, 0.0);
    }

    #[test]
    fn truncation_saves_evaluations() {
        let (trace, proto, test) = setup(3);

        let oracle_a = UtilityOracle::new(&trace, &proto, &test);
        oracle_a.reset_counter();
        let _ = tmc_shapley(
            &oracle_a,
            &TmcConfig {
                permutations: 50,
                truncation_tol: 0.0,
                seed: 9,
            },
        );
        let full_calls = oracle_a.loss_evaluations();

        let oracle_b = UtilityOracle::new(&trace, &proto, &test);
        oracle_b.reset_counter();
        let out = tmc_shapley(
            &oracle_b,
            &TmcConfig {
                permutations: 50,
                truncation_tol: 0.5, // aggressive truncation
                seed: 9,
            },
        );
        let truncated_calls = oracle_b.loss_evaluations();
        assert!(out.truncated_fraction > 0.0, "expected some truncation");
        assert!(
            truncated_calls <= full_calls,
            "truncation should not increase calls: {truncated_calls} vs {full_calls}"
        );
    }

    #[test]
    fn aggressive_truncation_still_ranks_reasonably() {
        let (trace, proto, test) = setup(4);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let exact = crate::pipeline::ground_truth_valuation(&oracle);
        let out = tmc_shapley(
            &oracle,
            &TmcConfig {
                permutations: 2000,
                truncation_tol: 0.05,
                seed: 11,
            },
        );
        let rho = fedval_metrics::spearman_rho(&out.values, &exact).unwrap();
        assert!(rho > 0.6, "rank correlation under truncation {rho}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (trace, proto, test) = setup(5);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let cfg = TmcConfig {
            permutations: 25,
            truncation_tol: 0.1,
            seed: 13,
        };
        let a = tmc_shapley(&oracle, &cfg);
        let b = tmc_shapley(&oracle, &cfg);
        assert_eq!(a.values, b.values);
    }

    #[test]
    #[should_panic(expected = "at least one permutation")]
    fn rejects_zero_permutations() {
        let (trace, proto, test) = setup(6);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let _ = tmc_shapley(
            &oracle,
            &TmcConfig {
                permutations: 0,
                truncation_tol: 0.0,
                seed: 0,
            },
        );
    }
}
