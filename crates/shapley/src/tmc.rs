//! Truncated Monte-Carlo Shapley (Ghorbani & Zou), adapted to the
//! federated whole-run utility.
//!
//! An extension beyond the paper's core method (its related-work section
//! discusses TMC as the standard data-Shapley accelerator): estimate the
//! ground-truth valuation `Φ(U)`, `U(S) = Σ_t U_t(S)`, by permutation
//! sampling with *early truncation* — once a prefix's utility is within a
//! tolerance of the grand coalition's, the remaining marginal
//! contributions are treated as zero and the (expensive) utility calls for
//! them are skipped.
//!
//! Truncation makes the walk inherently adaptive — which cells are
//! needed depends on values already computed — so a strictly lazy walk
//! degenerates into many tiny per-prefix batches that never saturate a
//! worker pool. This implementation instead *speculates*: the RNG
//! stream never depends on utility values, so all permutations are
//! drawn up front and the first [`Tmc::speculation`] prefix columns of
//! every permutation are planned as **one** cross-permutation
//! [`EvalPlan`] batch, evaluated in parallel on the persistent
//! `fedval_runtime` pool. The walk itself then runs off table hits,
//! checking cancellation and emitting a permutation-level progress
//! event per permutation. Speculation never changes the estimate (the
//! accumulation order is untouched); it can only evaluate cells that
//! truncation would have skipped — at most the truncated tail of each
//! permutation — which is the price of keeping the workers busy. Set
//! `speculation: 0` to recover the strictly lazy per-column batching.

use crate::error::ValuationError;
use crate::valuator::{Diagnostics, RunContext, ValuationReport, Valuator};
use fedval_fl::{EvalPlan, Subset, UtilityOracle};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The truncated-Monte-Carlo valuation method (Ghorbani & Zou) as a
/// [`Valuator`] strategy object; the former
/// `TmcConfig` name remains as a deprecated alias.
#[derive(Debug, Clone)]
pub struct Tmc {
    /// Number of sampled permutations.
    pub permutations: usize,
    /// Truncate a permutation once
    /// `|U(I) − U(prefix)| ≤ tol · |U(I)|`.
    pub truncation_tol: f64,
    /// How many leading prefixes of every permutation are speculatively
    /// planned as one cross-permutation batch (clamped to `N`; the
    /// default `usize::MAX` speculates whole permutations, wasting at
    /// most each truncated tail; `0` disables speculation).
    pub speculation: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Deprecated name of [`Tmc`].
#[deprecated(since = "0.2.0", note = "renamed to `Tmc`")]
pub type TmcConfig = Tmc;

impl Default for Tmc {
    fn default() -> Self {
        Tmc {
            permutations: 100,
            truncation_tol: 0.01,
            speculation: usize::MAX,
            seed: 0,
        }
    }
}

/// Output of a TMC run.
#[derive(Debug, Clone)]
pub struct TmcOutput {
    /// Estimated Shapley values.
    pub values: Vec<f64>,
    /// Fraction of marginal evaluations skipped by truncation.
    pub truncated_fraction: f64,
}

impl Tmc {
    /// Runs the truncated permutation walk, returning the rich
    /// [`TmcOutput`]; the [`Valuator`] impl wraps this into a
    /// [`ValuationReport`].
    pub fn run(&self, oracle: &UtilityOracle<'_>) -> Result<TmcOutput, ValuationError> {
        self.run_with(oracle, &mut RunContext::new())
    }

    /// [`Tmc::run`] under an explicit [`RunContext`]: honors its
    /// cancellation token (permutation-level, plus cell-level inside
    /// batches) and emits a permutation-level progress event per walked
    /// permutation. Note the context's seed override is *not* applied
    /// here — that is [`Valuator::value`]'s job.
    pub fn run_with(
        &self,
        oracle: &UtilityOracle<'_>,
        ctx: &mut RunContext<'_>,
    ) -> Result<TmcOutput, ValuationError> {
        if self.permutations == 0 {
            return Err(ValuationError::NoPermutations);
        }
        // NaN and ±∞ both fail is_finite; NaN < 0.0 is false, so the
        // order of the clauses does not matter.
        if !self.truncation_tol.is_finite() || self.truncation_tol < 0.0 {
            return Err(ValuationError::InvalidTolerance {
                value: self.truncation_tol,
            });
        }
        if oracle.num_rounds() == 0 {
            return Err(ValuationError::EmptyTrace);
        }
        run_tmc(oracle, self, ctx)
    }
}

impl Valuator for Tmc {
    fn name(&self) -> &'static str {
        "tmc"
    }

    fn value(
        &self,
        oracle: &UtilityOracle<'_>,
        ctx: &mut RunContext<'_>,
    ) -> Result<ValuationReport, ValuationError> {
        let mut cfg = self.clone();
        cfg.seed = ctx.seed_or(self.seed);
        let before = oracle.loss_evaluations();
        let hits_before = oracle.cell_hits();
        ctx.emit(self.name(), "truncated permutation walk");
        let out = cfg.run_with(oracle, ctx)?;
        Ok(ValuationReport {
            method: self.name(),
            values: out.values,
            diagnostics: Diagnostics {
                cells_evaluated: oracle.loss_evaluations() - before,
                cell_hits: oracle.cell_hits() - hits_before,
                permutations_used: self.permutations,
                truncated_fraction: Some(out.truncated_fraction),
                ..Diagnostics::default()
            },
        })
    }
}

/// Truncated Monte-Carlo estimate of the whole-run Shapley value.
#[deprecated(
    since = "0.2.0",
    note = "use `Tmc::run` (or drive it as a `Valuator` through a `ValuationSession`)"
)]
pub fn tmc_shapley(oracle: &UtilityOracle<'_>, config: &Tmc) -> TmcOutput {
    match config.run(oracle) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// The truncated walk itself; configuration validity is
/// [`Tmc::run_with`]'s responsibility.
fn run_tmc(
    oracle: &UtilityOracle<'_>,
    config: &Tmc,
    ctx: &mut RunContext<'_>,
) -> Result<TmcOutput, ValuationError> {
    let n = oracle.num_clients();
    let rounds = oracle.num_rounds();
    let grand = {
        let mut plan = EvalPlan::new();
        plan.add_column(rounds, Subset::full(n));
        oracle.try_evaluate_plan(&plan, ctx.cancel_token())?;
        oracle.total_utility(Subset::full(n))
    };
    let threshold = config.truncation_tol * grand.abs();

    // The RNG stream never depends on utility values, so all
    // permutations can be drawn up front — the exact sequence the lazy
    // walk would have drawn.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let permutations: Vec<Vec<usize>> = (0..config.permutations)
        .map(|_| {
            order.shuffle(&mut rng);
            order.clone()
        })
        .collect();

    // Batch-aware truncation: plan the first `speculation` prefix
    // columns of *every* permutation as one batch. The plan dedups
    // shared prefixes, and the engine fans the whole frontier across
    // the pool at once instead of T cells at a time.
    let speculation = config.speculation.min(n);
    if speculation > 0 {
        let mut plan = EvalPlan::new();
        for perm in &permutations {
            let mut prefix = Subset::EMPTY;
            for &i in &perm[..speculation] {
                prefix = prefix.with(i);
                plan.add_column(rounds, prefix);
            }
        }
        oracle.try_evaluate_plan(&plan, ctx.cancel_token())?;
    }

    let mut values = vec![0.0; n];
    let inv_m = 1.0 / config.permutations as f64;
    let mut evaluated = 0u64;
    let mut skipped = 0u64;
    for (walked, perm) in permutations.iter().enumerate() {
        ctx.check_cancelled()?;
        let mut prefix = Subset::EMPTY;
        let mut prefix_utility = 0.0;
        let mut truncated = false;
        for (position, &i) in perm.iter().enumerate() {
            if truncated {
                skipped += 1;
                continue;
            }
            prefix = prefix.with(i);
            // Speculated prefixes are table hits; beyond the horizon
            // (or with speculation disabled) each prefix's T-round
            // column is evaluated as one cancellable batch.
            if position >= speculation {
                let mut plan = EvalPlan::new();
                plan.add_column(rounds, prefix);
                oracle.try_evaluate_plan(&plan, ctx.cancel_token())?;
            }
            let u = oracle.total_utility(prefix);
            evaluated += 1;
            values[i] += (u - prefix_utility) * inv_m;
            prefix_utility = u;
            if (grand - prefix_utility).abs() <= threshold {
                truncated = true;
            }
        }
        ctx.emit_permutation("tmc", walked + 1, config.permutations);
    }
    let total = evaluated + skipped;
    Ok(TmcOutput {
        values,
        truncated_fraction: if total == 0 {
            0.0
        } else {
            skipped as f64 / total as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_data::Dataset;
    use fedval_fl::{train_federated, FlConfig};
    use fedval_linalg::Matrix;
    use fedval_models::LogisticRegression;

    fn setup(seed: u64) -> (fedval_fl::TrainingTrace, LogisticRegression, Dataset) {
        let clients: Vec<Dataset> = (0..5)
            .map(|i| {
                let f = Matrix::from_fn(12, 3, |r, c| {
                    (((r + 1) * (c + 2) + 3 * i) % 7) as f64 / 3.0 - 1.0
                });
                let labels: Vec<usize> = (0..12).map(|r| (r + i) % 2).collect();
                Dataset::new(f, labels, 2).unwrap()
            })
            .collect();
        let test = {
            let f = Matrix::from_fn(16, 3, |r, c| ((r * 3 + c) % 7) as f64 / 3.0 - 1.0);
            let labels: Vec<usize> = (0..16).map(|r| r % 2).collect();
            Dataset::new(f, labels, 2).unwrap()
        };
        let proto = LogisticRegression::new(3, 2, 0.01, 11);
        let trace = train_federated(&proto, &clients, &FlConfig::new(4, 3, 0.3, seed));
        (trace, proto, test)
    }

    #[test]
    fn untruncated_tmc_converges_to_exact() {
        let (trace, proto, test) = setup(1);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let exact = crate::pipeline::ExactShapley.run(&oracle).unwrap();
        let out = Tmc {
            permutations: 3000,
            truncation_tol: 0.0,
            seed: 5,
            ..Tmc::default()
        }
        .run(&oracle)
        .unwrap();
        for (a, b) in out.values.iter().zip(&exact) {
            assert!((a - b).abs() < 0.01, "tmc {a} vs exact {b}");
        }
    }

    #[test]
    fn balance_holds_without_truncation() {
        // Marginals telescope, so Σ_i values = U(I) exactly per permutation.
        let (trace, proto, test) = setup(2);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let out = Tmc {
            permutations: 20,
            truncation_tol: 0.0,
            seed: 7,
            ..Tmc::default()
        }
        .run(&oracle)
        .unwrap();
        let total: f64 = out.values.iter().sum();
        let grand = oracle.total_utility(Subset::full(5));
        assert!((total - grand).abs() < 1e-10);
        assert_eq!(out.truncated_fraction, 0.0);
    }

    #[test]
    fn truncation_saves_evaluations() {
        let (trace, proto, test) = setup(3);

        let oracle_a = UtilityOracle::new(&trace, &proto, &test);
        oracle_a.reset_counter();
        let _ = Tmc {
            permutations: 50,
            truncation_tol: 0.0,
            seed: 9,
            ..Tmc::default()
        }
        .run(&oracle_a)
        .unwrap();
        let full_calls = oracle_a.loss_evaluations();

        let oracle_b = UtilityOracle::new(&trace, &proto, &test);
        oracle_b.reset_counter();
        let out = Tmc {
            permutations: 50,
            truncation_tol: 0.5, // aggressive truncation
            seed: 9,
            ..Tmc::default()
        }
        .run(&oracle_b)
        .unwrap();
        let truncated_calls = oracle_b.loss_evaluations();
        assert!(out.truncated_fraction > 0.0, "expected some truncation");
        assert!(
            truncated_calls <= full_calls,
            "truncation should not increase calls: {truncated_calls} vs {full_calls}"
        );
    }

    #[test]
    fn aggressive_truncation_still_ranks_reasonably() {
        let (trace, proto, test) = setup(4);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let exact = crate::pipeline::ExactShapley.run(&oracle).unwrap();
        let out = Tmc {
            permutations: 2000,
            truncation_tol: 0.05,
            seed: 11,
            ..Tmc::default()
        }
        .run(&oracle)
        .unwrap();
        let rho = fedval_metrics::spearman_rho(&out.values, &exact).unwrap();
        assert!(rho > 0.6, "rank correlation under truncation {rho}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (trace, proto, test) = setup(5);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let cfg = Tmc {
            permutations: 25,
            truncation_tol: 0.1,
            seed: 13,
            ..Tmc::default()
        };
        let a = cfg.run(&oracle).unwrap();
        let b = cfg.run(&oracle).unwrap();
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn speculation_never_changes_the_estimate() {
        // Full, partial, and disabled speculation must agree bit-for-bit
        // with each other (only the evaluation cost may differ), and the
        // lazy walk must match the pre-speculation implementation's
        // access pattern (per-prefix columns only).
        let (trace, proto, test) = setup(8);
        let lazy_oracle = UtilityOracle::new(&trace, &proto, &test);
        let lazy = Tmc {
            permutations: 40,
            truncation_tol: 0.2,
            speculation: 0,
            seed: 17,
        }
        .run(&lazy_oracle)
        .unwrap();
        let lazy_calls = lazy_oracle.loss_evaluations();
        for speculation in [2, usize::MAX] {
            let oracle = UtilityOracle::new(&trace, &proto, &test);
            let out = Tmc {
                permutations: 40,
                truncation_tol: 0.2,
                speculation,
                seed: 17,
            }
            .run(&oracle)
            .unwrap();
            for (a, b) in lazy.values.iter().zip(&out.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "speculation {speculation}");
            }
            assert_eq!(lazy.truncated_fraction, out.truncated_fraction);
            assert!(
                oracle.loss_evaluations() >= lazy_calls,
                "speculation can only add evaluations"
            );
        }
    }

    #[test]
    fn cancelled_walk_returns_cancelled_within_one_permutation() {
        use crate::valuator::Progress;
        let (trace, proto, test) = setup(9);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let cfg = Tmc {
            permutations: 500,
            truncation_tol: 0.0,
            seed: 3,
            ..Tmc::default()
        };
        let token = fedval_runtime::CancelToken::new();
        let canceller = token.clone();
        let mut walked = Vec::new();
        let mut sink = |e: crate::valuator::ProgressEvent<'_>| {
            if let Progress::Permutation { index, .. } = e.progress {
                walked.push(index);
                if index == 3 {
                    canceller.cancel();
                }
            }
        };
        let mut ctx = RunContext::new()
            .with_progress(&mut sink)
            .with_cancel(token);
        let err = cfg.run_with(&oracle, &mut ctx).unwrap_err();
        assert_eq!(err, ValuationError::Cancelled);
        drop(ctx);
        assert_eq!(
            walked,
            vec![1, 2, 3],
            "the walk stopped within one permutation of the cancel"
        );
    }

    #[test]
    fn rejects_zero_permutations() {
        let (trace, proto, test) = setup(6);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let err = Tmc {
            permutations: 0,
            truncation_tol: 0.0,
            seed: 0,
            ..Tmc::default()
        }
        .run(&oracle)
        .unwrap_err();
        assert_eq!(err, ValuationError::NoPermutations);
    }

    #[test]
    fn rejects_negative_tolerance() {
        let (trace, proto, test) = setup(7);
        let oracle = UtilityOracle::new(&trace, &proto, &test);
        let err = Tmc {
            permutations: 5,
            truncation_tol: -0.1,
            seed: 0,
            ..Tmc::default()
        }
        .run(&oracle)
        .unwrap_err();
        assert_eq!(err, ValuationError::InvalidTolerance { value: -0.1 });
    }
}
