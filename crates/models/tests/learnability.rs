//! Cross-crate learnability checks: every model family must learn its
//! matching simulated dataset well above chance. These are the guard rails
//! behind the paper-figure harnesses — if a model/dataset pairing stops
//! being learnable, every downstream valuation experiment silently turns
//! into noise.

use fedval_data::images::SimImageSource;
use fedval_data::{SimImageConfig, SyntheticConfig, SyntheticFederated};
use fedval_linalg::vector;
use fedval_models::{Activation, Cnn, CnnConfig, LogisticRegression, Mlp, Model};

fn train_full_batch(model: &mut dyn Model, data: &fedval_data::Dataset, eta: f64, steps: usize) {
    let mut g = vec![0.0; model.num_params()];
    for _ in 0..steps {
        model.grad(data, &mut g);
        vector::axpy(-eta, &g, model.params_mut());
    }
}

#[test]
fn logistic_learns_synthetic_iid() {
    let fed = SyntheticFederated::generate(&SyntheticConfig {
        num_clients: 4,
        samples_per_client: 150,
        test_samples: 200,
        ..SyntheticConfig::iid()
    });
    let train = fedval_data::Dataset::concat(&fed.client_data.iter().collect::<Vec<_>>()).unwrap();
    let mut m = LogisticRegression::new(train.dim(), train.num_classes(), 1e-4, 1);
    train_full_batch(&mut m, &train, 0.05, 150);
    let acc = m.accuracy(&fed.test_data);
    assert!(
        acc > 0.45,
        "logistic on synthetic: accuracy {acc} (chance 0.1)"
    );
}

#[test]
fn mlp_learns_sim_mnist() {
    let src = SimImageSource::new(SimImageConfig::mnist());
    let train = src.sample(400, 1);
    let test = src.sample(200, 2);
    let mut m = Mlp::new(&[train.dim(), 32, 10], Activation::Relu, 1e-4, 3);
    train_full_batch(&mut m, &train, 0.3, 120);
    let acc = m.accuracy(&test);
    assert!(acc > 0.6, "MLP on sim-MNIST: accuracy {acc} (chance 0.1)");
}

#[test]
fn cnn_learns_sim_fashion() {
    let src = SimImageSource::new(SimImageConfig::fashion_mnist());
    let train = src.sample(300, 1);
    let test = src.sample(150, 2);
    let mut m = Cnn::new(
        CnnConfig {
            height: 8,
            width: 8,
            filters: 6,
            num_classes: 10,
            reg: 1e-4,
        },
        5,
    );
    train_full_batch(&mut m, &train, 0.3, 120);
    let acc = m.accuracy(&test);
    assert!(acc > 0.4, "CNN on sim-Fashion: accuracy {acc} (chance 0.1)");
}

#[test]
fn difficulty_ordering_mnist_easier_than_cifar() {
    // The simulated datasets must preserve the paper's difficulty ladder:
    // identical training budgets should score higher on sim-MNIST than on
    // sim-CIFAR.
    // Both tasks are linearly separable with a generous budget, so compare
    // generalization *loss* under a deliberately tight budget instead of
    // accuracy (which saturates at 1.0 for both).
    let loss_for = |cfg: SimImageConfig| {
        let src = SimImageSource::new(cfg);
        let train = src.sample(80, 1);
        let test = src.sample(200, 2);
        let mut m = LogisticRegression::new(train.dim(), 10, 1e-4, 7);
        train_full_batch(&mut m, &train, 0.1, 25);
        m.loss(&test)
    };
    let mnist = loss_for(SimImageConfig::mnist());
    let cifar = loss_for(SimImageConfig::cifar10());
    assert!(
        mnist < cifar,
        "difficulty ladder broken: sim-MNIST loss {mnist} >= sim-CIFAR loss {cifar}"
    );
}
