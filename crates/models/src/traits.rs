//! The [`Model`] abstraction shared by every learner in the repo.

use crate::workspace::Workspace;
use fedval_data::Dataset;
use fedval_runtime::Cancelled;

/// A differentiable classifier with a flat parameter vector.
///
/// The flat layout is the load-bearing design decision: FedAvg aggregates
/// client models by averaging these vectors, and the utility-matrix oracle
/// evaluates the loss of averaged vectors directly. Implementations must
/// treat the parameter slice as the *only* state that affects `loss`,
/// `grad`, and `predict`.
pub trait Model: Send + Sync {
    /// Immutable view of the flat parameter vector.
    fn params(&self) -> &[f64];

    /// Mutable view of the flat parameter vector.
    fn params_mut(&mut self) -> &mut [f64];

    /// Mean loss (including any regularization) over `data`.
    fn loss(&self, data: &Dataset) -> f64;

    /// Writes the full-batch gradient of [`Model::loss`] into `out` and
    /// returns the loss. `out.len()` must equal `num_params()`.
    fn grad(&self, data: &Dataset, out: &mut [f64]) -> f64;

    /// [`loss`](Model::loss) with caller-provided, reusable minibatch
    /// buffers. The built-in models override this with their batched
    /// kernels so repeated evaluations (the utility oracle's cell loop,
    /// the trainer's local updates) never re-allocate; the provided
    /// default simply ignores `ws`, so third-party models keep working
    /// unchanged.
    fn loss_with(&self, data: &Dataset, ws: &mut Workspace) -> f64 {
        let _ = ws;
        self.loss(data)
    }

    /// [`grad`](Model::grad) with caller-provided, reusable minibatch
    /// buffers (see [`loss_with`](Model::loss_with)).
    fn grad_with(&self, data: &Dataset, out: &mut [f64], ws: &mut Workspace) -> f64 {
        let _ = ws;
        self.grad(data, out)
    }

    /// Cancellable [`loss_with`](Model::loss_with): observes the
    /// workspace's [`CancelToken`](fedval_runtime::CancelToken) between
    /// minibatch chunks and abandons the evaluation with
    /// `Err(Cancelled)` — this is what lets the utility oracle stop
    /// *inside* a cell instead of finishing a huge evaluation first.
    /// The provided default checks once up front, then runs the
    /// uncancellable path.
    fn try_loss_with(&self, data: &Dataset, ws: &mut Workspace) -> Result<f64, Cancelled> {
        if let Some(token) = ws.cancel_token() {
            token.check()?;
        }
        Ok(self.loss_with(data, ws))
    }

    /// Cancellable [`grad_with`](Model::grad_with); same contract as
    /// [`try_loss_with`](Model::try_loss_with).
    fn try_grad_with(
        &self,
        data: &Dataset,
        out: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<f64, Cancelled> {
        if let Some(token) = ws.cancel_token() {
            token.check()?;
        }
        Ok(self.grad_with(data, out, ws))
    }

    /// Predicted class for one feature vector.
    fn predict(&self, x: &[f64]) -> usize;

    /// A stable string identifying the architecture and every
    /// hyperparameter that affects [`loss`](Model::loss) *besides* the
    /// parameter vector (layer shapes, regularization strength, …).
    /// The shared cell cache hashes this into trace fingerprints, so
    /// two models that would score the same parameters differently
    /// **must** return different descriptors — otherwise cached cells
    /// could be served across them. The default covers only the
    /// parameter count; built-in models override it.
    fn cache_descriptor(&self) -> String {
        format!("model:params={}", self.num_params())
    }

    /// Deep copy behind a trait object. FedAvg clones one prototype per
    /// client, and the utility oracle's batch engine clones one scratch
    /// model per worker thread — implementations should keep this a plain
    /// copy of the flat parameter vector (no shared interior state), so a
    /// clone is cheap and the copies are safe to drive from different
    /// threads.
    fn clone_model(&self) -> Box<dyn Model>;

    /// Number of parameters.
    fn num_params(&self) -> usize {
        self.params().len()
    }

    /// Overwrites the parameters from a slice of the same length.
    fn set_params(&mut self, params: &[f64]) {
        let dst = self.params_mut();
        assert_eq!(dst.len(), params.len(), "parameter length mismatch");
        dst.copy_from_slice(params);
    }

    /// Classification accuracy on `data` (0 for an empty dataset).
    fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.example(i);
                self.predict(x) == y
            })
            .count();
        correct as f64 / data.len() as f64
    }
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_model()
    }
}

/// Numerically checks `grad` against central finite differences at the
/// current parameters. Returns the maximum absolute difference over the
/// probed coordinates. Shared by the gradient tests of every model.
pub fn finite_difference_check(
    model: &mut dyn Model,
    data: &Dataset,
    coords: &[usize],
    h: f64,
) -> f64 {
    let n = model.num_params();
    let mut grad = vec![0.0; n];
    model.grad(data, &mut grad);
    let mut worst = 0.0_f64;
    for &c in coords {
        assert!(c < n);
        let orig = model.params()[c];
        model.params_mut()[c] = orig + h;
        let up = model.loss(data);
        model.params_mut()[c] = orig - h;
        let down = model.loss(data);
        model.params_mut()[c] = orig;
        let fd = (up - down) / (2.0 * h);
        worst = worst.max((fd - grad[c]).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_linalg::Matrix;

    /// Minimal linear model `loss = mean((w·x - y)²)` used to test the
    /// provided methods of the trait itself.
    struct Lsq {
        w: Vec<f64>,
    }

    impl Model for Lsq {
        fn params(&self) -> &[f64] {
            &self.w
        }
        fn params_mut(&mut self) -> &mut [f64] {
            &mut self.w
        }
        fn loss(&self, data: &Dataset) -> f64 {
            let mut total = 0.0;
            for i in 0..data.len() {
                let (x, y) = data.example(i);
                let p = fedval_linalg::vector::dot(&self.w, x) - y as f64;
                total += p * p;
            }
            total / data.len() as f64
        }
        fn grad(&self, data: &Dataset, out: &mut [f64]) -> f64 {
            out.iter_mut().for_each(|v| *v = 0.0);
            let mut total = 0.0;
            for i in 0..data.len() {
                let (x, y) = data.example(i);
                let p = fedval_linalg::vector::dot(&self.w, x) - y as f64;
                total += p * p;
                fedval_linalg::vector::axpy(2.0 * p / data.len() as f64, x, out);
            }
            total / data.len() as f64
        }
        fn predict(&self, x: &[f64]) -> usize {
            usize::from(fedval_linalg::vector::dot(&self.w, x) > 0.5)
        }
        fn clone_model(&self) -> Box<dyn Model> {
            Box::new(Lsq { w: self.w.clone() })
        }
    }

    fn data() -> Dataset {
        let f = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        Dataset::new(f, vec![0, 1, 1], 2).unwrap()
    }

    #[test]
    fn set_params_roundtrip() {
        let mut m = Lsq { w: vec![0.0, 0.0] };
        m.set_params(&[1.0, 2.0]);
        assert_eq!(m.params(), &[1.0, 2.0]);
        assert_eq!(m.num_params(), 2);
    }

    #[test]
    #[should_panic(expected = "parameter length mismatch")]
    fn set_params_rejects_wrong_length() {
        let mut m = Lsq { w: vec![0.0, 0.0] };
        m.set_params(&[1.0]);
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let m = Lsq { w: vec![0.0, 1.0] };
        // predictions: x=(1,0) -> 0 ✓, x=(0,1) -> 1 ✓, x=(1,1) -> 1 ✓
        assert_eq!(m.accuracy(&data()), 1.0);
        let m2 = Lsq { w: vec![1.0, 0.0] };
        // predictions: 1 ✗, 0 ✗, 1 ✓.
        assert!((m2.accuracy(&data()) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_of_empty_dataset_is_zero() {
        let m = Lsq { w: vec![0.0, 0.0] };
        let empty = data().subset(&[]);
        assert_eq!(m.accuracy(&empty), 0.0);
    }

    #[test]
    fn boxed_clone_is_deep() {
        let m: Box<dyn Model> = Box::new(Lsq { w: vec![1.0, 2.0] });
        let mut c = m.clone();
        c.params_mut()[0] = 9.0;
        assert_eq!(m.params()[0], 1.0);
        assert_eq!(c.params()[0], 9.0);
    }

    #[test]
    fn finite_difference_agrees_for_quadratic() {
        let mut m = Lsq { w: vec![0.3, -0.7] };
        let err = finite_difference_check(&mut m, &data(), &[0, 1], 1e-5);
        assert!(err < 1e-7, "fd mismatch {err}");
    }
}
