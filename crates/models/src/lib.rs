//! Differentiable models for the ComFedSV reproduction.
//!
//! The paper's experiments use a ladder of models — logistic regression on
//! synthetic data, a fully connected network on MNIST, CNNs on
//! Fashion-MNIST/CIFAR10 — and its theory (Propositions 1–2) needs a
//! Lipschitz + smooth (+ strongly convex) instance, which L2-regularized
//! logistic regression provides.
//!
//! Every model stores its parameters as one flat `Vec<f64>`, which makes
//! FedAvg aggregation (`w = mean of client vectors`) and the utility-matrix
//! probes (`ℓ(w̄_S; D_c)` for many averaged vectors) trivial and fast.
//!
//! * [`traits`] — the [`Model`] abstraction.
//! * [`linear`] — multinomial logistic regression with optional L2.
//! * [`mlp`] — fully connected network with manual backprop.
//! * [`cnn`] — small convolutional network (conv → ReLU → pool → dense).
//! * [`optim`] — SGD steps, minibatch SGD, and the learning-rate
//!   schedules.
//! * [`init`] — seeded parameter initialization.
//! * [`workspace`] — reusable minibatch buffers for the batched kernels.
//!
//! # Batched evaluation
//!
//! `loss`/`grad` run through cache-blocked minibatch GEMM kernels
//! (`fedval_linalg::gemm`): examples are processed in `(batch ×
//! features)` chunks with preallocated per-layer activation/gradient
//! matrices from a [`Workspace`]. In the default
//! [`DeterminismTier::BitExact`] tier every reduction keeps the
//! per-sample, ascending accumulation order, so batched results are
//! bit-identical to the per-sample loops — which are retained on each
//! model as `loss_per_sample`/`grad_per_sample` reference paths and
//! asserted equal (to the bit) in `tests/batched_equivalence.rs`.
//!
//! A workspace carrying [`DeterminismTier::Fast`] instead routes the
//! GEMMs through FMA-fused, reduction-reordered kernels and — for the
//! CNN — an im2col convolution, trading bit-exactness for speed within
//! the documented ε of `fedval_linalg::gemm::fast_epsilon`; see the
//! [`DeterminismTier`] rustdoc for exactly which operations may reorder.

pub mod cnn;
pub mod init;
pub mod linear;
pub mod mlp;
pub mod optim;
pub mod traits;
pub mod workspace;

pub use cnn::{Cnn, CnnConfig};
pub use fedval_linalg::DeterminismTier;
pub use linear::LogisticRegression;
pub use mlp::{Activation, Mlp};
pub use optim::{sgd_step, LearningRate};
pub use traits::Model;
pub use workspace::Workspace;
