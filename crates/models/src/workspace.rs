//! Reusable minibatch workspaces for the batched model kernels.
//!
//! Every model's `loss`/`grad` is evaluated as a sequence of minibatch
//! chunks of at most [`CHUNK_ROWS`] examples, each chunk one set of
//! GEMM calls over `(batch × features)` matrices. The per-layer
//! activation/gradient buffers those calls need live in a [`Workspace`]:
//! create one per worker (the utility oracle keeps one per scratch
//! model, the trainer one per chunk worker) and every subsequent
//! evaluation reuses the same allocations — the pre-batching code paid
//! a `Vec<Vec<f64>>` of allocations *per sample*.
//!
//! A workspace can also carry a [`CancelToken`]; the chunked loops
//! observe it between minibatches (`Model::try_loss_with`), which is
//! what lets a cancelled valuation stop *inside* a utility cell instead
//! of finishing an arbitrarily large model evaluation first.

use fedval_linalg::{gemm, DeterminismTier, Matrix};
use fedval_runtime::{CancelToken, Cancelled};

/// Rows per minibatch chunk of the batched kernels. Large enough that
/// the GEMM calls amortize their setup, small enough that one chunk's
/// activations stay modest and cancellation latency is bounded.
pub const CHUNK_ROWS: usize = 256;

/// Reusable per-worker buffers for the batched model kernels plus an
/// optional cancellation token observed between minibatch chunks.
///
/// The workspace also carries the evaluation's [`DeterminismTier`]: the
/// batched model kernels read it to pick between the bit-exact and the
/// FMA-fused `Fast` GEMM paths, so the tier travels with the worker
/// state rather than living in a global — concurrent evaluations can
/// mix tiers safely.
pub struct Workspace {
    bufs: Vec<Matrix>,
    gemm: gemm::Scratch,
    cancel: Option<CancelToken>,
    tier: DeterminismTier,
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

impl Workspace {
    /// An empty workspace at the process default tier
    /// ([`DeterminismTier::default_tier`], i.e. `FEDVAL_TIER` or
    /// `BitExact`); buffers are grown by the first evaluation.
    pub fn new() -> Self {
        Workspace {
            bufs: Vec::new(),
            gemm: gemm::Scratch::new(),
            cancel: None,
            tier: DeterminismTier::default_tier(),
        }
    }

    /// An empty workspace pinned to [`DeterminismTier::BitExact`] —
    /// what the bitwise equivalence tests and reference baselines use
    /// regardless of the `FEDVAL_TIER` environment.
    pub fn bit_exact() -> Self {
        Workspace::new().with_tier(DeterminismTier::BitExact)
    }

    /// Sets the tier (builder style).
    pub fn with_tier(mut self, tier: DeterminismTier) -> Self {
        self.tier = tier;
        self
    }

    /// Replaces the tier in place.
    pub fn set_tier(&mut self, tier: DeterminismTier) {
        self.tier = tier;
    }

    /// The tier evaluations through this workspace run at.
    pub fn tier(&self) -> DeterminismTier {
        self.tier
    }

    /// Attaches `token`: chunked evaluations driven through
    /// [`Model::try_loss_with`](crate::Model::try_loss_with) /
    /// [`try_grad_with`](crate::Model::try_grad_with) will observe it
    /// between minibatches.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Replaces (or clears) the attached cancellation token.
    pub fn set_cancel(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The first `count` scratch matrices (created empty on first use)
    /// plus the shared GEMM packing scratch. Models carve their
    /// activation/delta buffers out of the slice with `split_at_mut`.
    pub(crate) fn parts(&mut self, count: usize) -> (&mut [Matrix], &mut gemm::Scratch) {
        if self.bufs.len() < count {
            self.bufs.resize_with(count, Matrix::default);
        }
        (&mut self.bufs[..count], &mut self.gemm)
    }
}

/// `Err(Cancelled)` once `cancel` is set; `Ok` when absent.
#[inline]
pub(crate) fn check(cancel: Option<&CancelToken>) -> Result<(), Cancelled> {
    match cancel {
        Some(token) => token.check(),
        None => Ok(()),
    }
}

/// The `[start, end)` minibatch chunks covering `n` examples, in
/// ascending order (ascending order is load-bearing: it keeps the
/// chunked reductions bit-identical to the per-sample loops).
pub(crate) fn chunks(n: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..n.div_ceil(CHUNK_ROWS)).map(move |c| (c * CHUNK_ROWS, ((c + 1) * CHUNK_ROWS).min(n)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_in_order() {
        for n in [
            0,
            1,
            CHUNK_ROWS - 1,
            CHUNK_ROWS,
            CHUNK_ROWS + 1,
            3 * CHUNK_ROWS + 7,
        ] {
            let mut expect_start = 0;
            for (start, end) in chunks(n) {
                assert_eq!(start, expect_start);
                assert!(end > start && end <= n);
                expect_start = end;
            }
            assert_eq!(expect_start, n, "n={n}");
        }
    }

    #[test]
    fn workspace_buffers_persist_across_parts_calls() {
        let mut ws = Workspace::new();
        {
            let (bufs, _) = ws.parts(3);
            bufs[2].resize(4, 5);
        }
        let (bufs, _) = ws.parts(2);
        assert_eq!(bufs.len(), 2);
        let (bufs, _) = ws.parts(3);
        assert_eq!(bufs[2].shape(), (4, 5), "buffer three survived");
    }

    #[test]
    fn check_respects_token() {
        assert!(check(None).is_ok());
        let token = CancelToken::new();
        assert!(check(Some(&token)).is_ok());
        token.cancel();
        assert_eq!(check(Some(&token)), Err(Cancelled));
    }

    #[test]
    fn tier_roundtrip_and_bit_exact_pin() {
        let mut ws = Workspace::new().with_tier(DeterminismTier::Fast);
        assert_eq!(ws.tier(), DeterminismTier::Fast);
        ws.set_tier(DeterminismTier::BitExact);
        assert_eq!(ws.tier(), DeterminismTier::BitExact);
        assert_eq!(Workspace::bit_exact().tier(), DeterminismTier::BitExact);
        // The default constructor follows the process-wide default.
        assert_eq!(Workspace::new().tier(), DeterminismTier::default_tier());
    }

    #[test]
    fn cancel_token_roundtrip() {
        let token = CancelToken::new();
        let mut ws = Workspace::new().with_cancel(token.clone());
        assert!(ws.cancel_token().is_some());
        ws.set_cancel(None);
        assert!(ws.cancel_token().is_none());
    }
}
