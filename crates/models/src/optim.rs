//! SGD steps, minibatch SGD, and the paper's learning-rate schedules.

use crate::traits::Model;
use crate::workspace::Workspace;
use fedval_data::Dataset;
use fedval_linalg::vector;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

/// Learning-rate schedule `η_t` (t is the 0-based round index).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LearningRate {
    /// Constant rate.
    Constant(f64),
    /// The schedule of Proposition 2: `η_t = 2 / (μ (γ + t))` with
    /// `γ = max(8 L₂ / μ, 1)` — non-increasing, as the theory requires.
    ///
    /// Note the paper's text writes `γ = max(8μ/L₂, 1)`, but the cited
    /// convergence result (Li et al., Theorem 1) and the decay analysis in
    /// Appendix D require `γ = max(8 L₂/μ, 1)`; we implement the latter and
    /// record the discrepancy in EXPERIMENTS.md.
    InverseDecay {
        /// Strong-convexity modulus `μ`.
        mu: f64,
        /// Offset `γ`.
        gamma: f64,
    },
}

impl LearningRate {
    /// Builds the Proposition-2 schedule from `μ` and smoothness `L₂`.
    pub fn proposition2(mu: f64, l2: f64) -> Self {
        assert!(mu > 0.0 && l2 > 0.0);
        LearningRate::InverseDecay {
            mu,
            gamma: (8.0 * l2 / mu).max(1.0),
        }
    }

    /// Rate at round `t` (0-based).
    pub fn at(&self, t: usize) -> f64 {
        match *self {
            LearningRate::Constant(eta) => eta,
            LearningRate::InverseDecay { mu, gamma } => 2.0 / (mu * (gamma + t as f64)),
        }
    }

    /// `true` when the schedule is non-increasing (required by
    /// Proposition 1). Both variants are, by construction.
    pub fn is_non_increasing(&self) -> bool {
        true
    }
}

/// Reusable buffers for the SGD helpers: the gradient vector, the
/// model's minibatch [`Workspace`], and the gathered-minibatch dataset.
/// One per trainer worker; a steady-state training loop allocates
/// nothing per step.
#[derive(Default)]
pub struct SgdScratch {
    grad: Vec<f64>,
    /// The model workspace, exposed so callers driving `loss_with`
    /// directly (benchmarks, evaluators) can share it.
    pub ws: Workspace,
    minibatch: Option<Dataset>,
}

impl SgdScratch {
    /// Empty scratch; buffers are grown on first use.
    pub fn new() -> Self {
        SgdScratch::default()
    }
}

/// One full-batch gradient-descent step `w ← w − η ∇F(w)` on `data`.
/// Returns the loss at the *pre-step* parameters. This mirrors the paper's
/// local update (equation (3)): one deterministic step per round.
pub fn sgd_step(model: &mut dyn Model, data: &Dataset, eta: f64) -> f64 {
    sgd_step_with(model, data, eta, &mut SgdScratch::new())
}

/// [`sgd_step`] with reusable buffers: the gradient runs through the
/// model's batched `grad_with` kernel and the scratch's workspace.
pub fn sgd_step_with(
    model: &mut dyn Model,
    data: &Dataset,
    eta: f64,
    scratch: &mut SgdScratch,
) -> f64 {
    let n = model.num_params();
    scratch.grad.resize(n, 0.0);
    let loss = model.grad_with(data, &mut scratch.grad, &mut scratch.ws);
    vector::axpy(-eta, &scratch.grad, model.params_mut());
    loss
}

/// Runs `steps` local gradient steps (the paper's theory uses one; the
/// simulator supports more, matching "an arbitrary number of local
/// updates"). Returns the loss before the first step.
pub fn local_updates(model: &mut dyn Model, data: &Dataset, eta: f64, steps: usize) -> f64 {
    local_updates_with(model, data, eta, steps, &mut SgdScratch::new())
}

/// [`local_updates`] with reusable buffers.
pub fn local_updates_with(
    model: &mut dyn Model,
    data: &Dataset,
    eta: f64,
    steps: usize,
    scratch: &mut SgdScratch,
) -> f64 {
    let mut first_loss = 0.0;
    for s in 0..steps {
        let loss = sgd_step_with(model, data, eta, scratch);
        if s == 0 {
            first_loss = loss;
        }
    }
    first_loss
}

/// True minibatch SGD: each step samples a fresh size-`batch` minibatch
/// without replacement (clamped to the dataset size) and takes one
/// gradient step on it through the batched kernels. Deterministic given
/// the seed — the sampling (seeded [`StdRng`], indices sorted ascending)
/// is exactly the trainer's historical scheme, and a clamped
/// `batch == data.len()` short-circuits to the deterministic full-batch
/// path with no RNG draws, so existing traces reproduce bit-for-bit.
///
/// With `batch == 1` this reproduces the pre-batching per-sample
/// trajectories bit-for-bit (asserted in
/// `crates/fl/tests/batch_compat.rs`).
pub fn minibatch_updates(
    model: &mut dyn Model,
    data: &Dataset,
    eta: f64,
    steps: usize,
    batch: usize,
    seed: u64,
    scratch: &mut SgdScratch,
) {
    let b = batch.min(data.len()).max(1);
    if b == data.len() {
        // Clamped to the full dataset: identical to the deterministic path
        // (and bit-identical — no index reshuffling of the summation).
        local_updates_with(model, data, eta, steps, scratch);
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut minibatch = scratch.minibatch.take().unwrap_or_else(|| data.subset(&[]));
    for _ in 0..steps {
        let mut picks = sample(&mut rng, data.len(), b).into_vec();
        picks.sort_unstable();
        data.subset_into(&picks, &mut minibatch);
        sgd_step_with(model, &minibatch, eta, scratch);
    }
    scratch.minibatch = Some(minibatch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LogisticRegression;
    use fedval_linalg::Matrix;

    fn blobs() -> Dataset {
        let f =
            Matrix::from_rows(&[&[2.0, 2.0], &[2.2, 1.8], &[-2.0, -2.0], &[-1.8, -2.2]]).unwrap();
        Dataset::new(f, vec![0, 0, 1, 1], 2).unwrap()
    }

    #[test]
    fn constant_schedule_is_constant() {
        let lr = LearningRate::Constant(0.3);
        assert_eq!(lr.at(0), 0.3);
        assert_eq!(lr.at(100), 0.3);
    }

    #[test]
    fn inverse_decay_matches_formula_and_decreases() {
        let lr = LearningRate::proposition2(0.5, 1.0);
        // gamma = max(8*1/0.5, 1) = 16; eta_0 = 2/(0.5*16) = 0.25.
        assert!((lr.at(0) - 0.25).abs() < 1e-12);
        let mut prev = f64::INFINITY;
        for t in 0..50 {
            let e = lr.at(t);
            assert!(e < prev);
            prev = e;
        }
    }

    #[test]
    fn proposition2_gamma_floor_is_one() {
        // Large mu relative to L2 forces the floor.
        let lr = LearningRate::proposition2(100.0, 1.0);
        match lr {
            LearningRate::InverseDecay { gamma, .. } => assert_eq!(gamma, 1.0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn sgd_step_decreases_loss_on_convex_problem() {
        let d = blobs();
        let mut m = LogisticRegression::new(2, 2, 0.01, 2);
        let before = m.loss(&d);
        let reported = sgd_step(&mut m, &d, 0.1);
        assert!((reported - before).abs() < 1e-12, "returns pre-step loss");
        assert!(m.loss(&d) < before);
    }

    #[test]
    fn local_updates_runs_requested_steps() {
        let d = blobs();
        let mut m1 = LogisticRegression::new(2, 2, 0.01, 2);
        let mut m2 = m1.clone();
        local_updates(&mut m1, &d, 0.1, 3);
        for _ in 0..3 {
            sgd_step(&mut m2, &d, 0.1);
        }
        assert_eq!(m1.params(), m2.params());
    }

    #[test]
    fn zero_steps_is_noop() {
        let d = blobs();
        let mut m = LogisticRegression::new(2, 2, 0.0, 2);
        let before = m.params().to_vec();
        local_updates(&mut m, &d, 0.1, 0);
        assert_eq!(m.params(), &before[..]);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_buffers() {
        let d = blobs();
        let mut with_scratch = LogisticRegression::new(2, 2, 0.01, 2);
        let mut fresh = with_scratch.clone();
        let mut scratch = SgdScratch::new();
        for _ in 0..4 {
            sgd_step_with(&mut with_scratch, &d, 0.1, &mut scratch);
            sgd_step(&mut fresh, &d, 0.1);
        }
        assert_eq!(with_scratch.params(), fresh.params());
    }

    #[test]
    fn minibatch_updates_is_seeded_and_reuses_buffers() {
        let d = blobs();
        let mut a = LogisticRegression::new(2, 2, 0.01, 3);
        let mut b = a.clone();
        let mut scratch_a = SgdScratch::new();
        let mut scratch_b = SgdScratch::new();
        minibatch_updates(&mut a, &d, 0.1, 5, 2, 42, &mut scratch_a);
        minibatch_updates(&mut b, &d, 0.1, 5, 2, 42, &mut scratch_b);
        assert_eq!(a.params(), b.params(), "same seed, same trajectory");
        // Scratch from a previous run perturbs nothing.
        let mut c = LogisticRegression::new(2, 2, 0.01, 3);
        minibatch_updates(&mut c, &d, 0.1, 5, 2, 42, &mut scratch_a);
        assert_eq!(a.params(), c.params());
    }

    #[test]
    fn minibatch_clamped_to_full_dataset_is_deterministic_path() {
        let d = blobs();
        let mut a = LogisticRegression::new(2, 2, 0.01, 5);
        let mut b = a.clone();
        minibatch_updates(&mut a, &d, 0.2, 3, 100, 7, &mut SgdScratch::new());
        local_updates(&mut b, &d, 0.2, 3);
        assert_eq!(a.params(), b.params());
    }
}
