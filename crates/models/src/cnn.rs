//! Small convolutional network with manual backpropagation.
//!
//! Plays the role of the paper's CNN / VGG16 on the simulated
//! Fashion-MNIST and CIFAR10 tasks: single-channel `H × W` inputs, one
//! 3×3 valid convolution with `K` filters, ReLU, 2×2 average pooling, then
//! a dense softmax head. Deliberately small — what the experiments need is
//! "the hardest model on the hardest data", not ImageNet capacity.

use crate::init::xavier_fill;
use crate::traits::Model;
use crate::workspace::{check, chunks, Workspace};
use fedval_data::Dataset;
#[cfg(target_arch = "x86_64")]
use fedval_linalg::KernelIsa;
use fedval_linalg::{gemm, vector, DeterminismTier, Matrix};
use fedval_runtime::{CancelToken, Cancelled};

/// Architecture of [`Cnn`].
#[derive(Debug, Clone)]
pub struct CnnConfig {
    /// Image height (input dim must be `height * width`).
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of 3×3 convolution filters.
    pub filters: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// L2 regularization strength.
    pub reg: f64,
}

impl CnnConfig {
    /// A small default suitable for the simulated image datasets.
    pub fn small(height: usize, width: usize, num_classes: usize) -> Self {
        CnnConfig {
            height,
            width,
            filters: 8,
            num_classes,
            reg: 0.0,
        }
    }
}

const KERNEL: usize = 3;

/// Sub-block rows for the `Fast`-tier gradient: small enough that the
/// channel-last conv activations, pooled maps, and deltas for one
/// sub-block fit in L2 together, so the fused backward re-reads the
/// forward's conv buffer without an L3 round trip.
const FAST_GRAD_ROWS: usize = 64;

/// Convolutional classifier: conv3×3(K) → ReLU → avgpool2×2 → dense.
#[derive(Debug, Clone)]
pub struct Cnn {
    config: CnnConfig,
    /// Conv output spatial dims (valid convolution).
    conv_h: usize,
    conv_w: usize,
    /// Pool output spatial dims.
    pool_h: usize,
    pool_w: usize,
    /// Offsets into the flat parameter vector.
    conv_w_off: usize,
    conv_b_off: usize,
    dense_w_off: usize,
    dense_b_off: usize,
    params: Vec<f64>,
}

impl Cnn {
    /// Builds a CNN; panics when the image is too small for a 3×3 valid
    /// convolution followed by 2×2 pooling.
    pub fn new(config: CnnConfig, seed: u64) -> Self {
        assert!(
            config.height > KERNEL && config.width > KERNEL,
            "image too small for conv3x3 + pool2x2"
        );
        assert!(config.filters > 0 && config.num_classes >= 2);
        let conv_h = config.height - KERNEL + 1;
        let conv_w = config.width - KERNEL + 1;
        let pool_h = conv_h / 2;
        let pool_w = conv_w / 2;
        assert!(pool_h > 0 && pool_w > 0, "pooled feature map is empty");

        let conv_w_off = 0;
        let conv_b_off = conv_w_off + config.filters * KERNEL * KERNEL;
        let dense_w_off = conv_b_off + config.filters;
        let dense_in = config.filters * pool_h * pool_w;
        let dense_b_off = dense_w_off + config.num_classes * dense_in;
        let total = dense_b_off + config.num_classes;

        let mut params = vec![0.0; total];
        xavier_fill(
            &mut params[conv_w_off..conv_b_off],
            KERNEL * KERNEL,
            config.filters,
            seed,
        );
        xavier_fill(
            &mut params[dense_w_off..dense_b_off],
            dense_in,
            config.num_classes,
            seed.wrapping_add(1),
        );
        Cnn {
            config,
            conv_h,
            conv_w,
            pool_h,
            pool_w,
            conv_w_off,
            conv_b_off,
            dense_w_off,
            dense_b_off,
            params,
        }
    }

    /// Flattened input dimension this model expects.
    pub fn input_dim(&self) -> usize {
        self.config.height * self.config.width
    }

    /// The architecture config.
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    fn dense_in(&self) -> usize {
        self.config.filters * self.pool_h * self.pool_w
    }

    fn reg_term(&self) -> f64 {
        if self.config.reg == 0.0 {
            0.0
        } else {
            0.5 * self.config.reg * vector::dot(&self.params, &self.params)
        }
    }

    /// Conv + pool for one sample, writing the post-ReLU conv maps into
    /// `conv_row` and the pooled maps into `pooled_row`. The scalar
    /// kernel loop keeps its original accumulation order (`acc = bias`,
    /// then one 3-wide dot per kernel row) — the batched path reuses it
    /// per row, so conv results stay bit-identical to the per-sample
    /// code.
    fn conv_pool_sample(&self, x: &[f64], conv_row: &mut [f64], pooled_row: &mut [f64]) {
        let w = self.config.width;
        debug_assert_eq!(x.len(), self.config.height * w);
        let k = self.config.filters;
        for f in 0..k {
            let wf = &self.params[self.conv_w_off + f * KERNEL * KERNEL
                ..self.conv_w_off + (f + 1) * KERNEL * KERNEL];
            let bias = self.params[self.conv_b_off + f];
            for i in 0..self.conv_h {
                for j in 0..self.conv_w {
                    let mut acc = bias;
                    for ki in 0..KERNEL {
                        let row = &x[(i + ki) * w + j..(i + ki) * w + j + KERNEL];
                        let wrow = &wf[ki * KERNEL..(ki + 1) * KERNEL];
                        acc += vector::dot(row, wrow);
                    }
                    // ReLU applied in place.
                    conv_row[f * self.conv_h * self.conv_w + i * self.conv_w + j] = acc.max(0.0);
                }
            }
        }
        // 2x2 average pooling (stride 2, trailing row/col dropped).
        for f in 0..k {
            let plane =
                &conv_row[f * self.conv_h * self.conv_w..(f + 1) * self.conv_h * self.conv_w];
            for i in 0..self.pool_h {
                for j in 0..self.pool_w {
                    let a = plane[(2 * i) * self.conv_w + 2 * j];
                    let b = plane[(2 * i) * self.conv_w + 2 * j + 1];
                    let c = plane[(2 * i + 1) * self.conv_w + 2 * j];
                    let d = plane[(2 * i + 1) * self.conv_w + 2 * j + 1];
                    pooled_row[f * self.pool_h * self.pool_w + i * self.pool_w + j] =
                        0.25 * (a + b + c + d);
                }
            }
        }
    }

    /// Forward pass for one sample. Writes the post-ReLU conv maps,
    /// pooled maps, and logits into the provided buffers (resized as
    /// needed). Used by `predict` and the retained reference loops.
    fn forward_into(
        &self,
        x: &[f64],
        conv_out: &mut Vec<f64>,
        pooled: &mut Vec<f64>,
        logits: &mut Vec<f64>,
    ) {
        let k = self.config.filters;
        conv_out.clear();
        conv_out.resize(k * self.conv_h * self.conv_w, 0.0);
        pooled.clear();
        pooled.resize(self.dense_in(), 0.0);
        self.conv_pool_sample(x, conv_out, pooled);
        // Dense head.
        let dense_in = self.dense_in();
        logits.clear();
        logits.resize(self.config.num_classes, 0.0);
        for (c, l) in logits.iter_mut().enumerate() {
            let wrow = &self.params
                [self.dense_w_off + c * dense_in..self.dense_w_off + (c + 1) * dense_in];
            *l = vector::dot(wrow, pooled) + self.params[self.dense_b_off + c];
        }
    }

    /// Batched forward over a chunk: per-sample conv/pool into workspace
    /// matrix rows (no per-sample allocation), then one `pooled · Wᵀ`
    /// GEMM plus fused bias add for the dense head.
    fn forward_chunk(
        &self,
        x: &[f64],
        rows: usize,
        conv: &mut Matrix,
        pooled: &mut Matrix,
        logits: &mut Matrix,
        scratch: &mut gemm::Scratch,
    ) {
        let in_dim = self.input_dim();
        let dense_in = self.dense_in();
        let classes = self.config.num_classes;
        conv.resize_for_overwrite(rows, self.config.filters * self.conv_h * self.conv_w);
        pooled.resize_for_overwrite(rows, dense_in);
        for r in 0..rows {
            self.conv_pool_sample(
                &x[r * in_dim..(r + 1) * in_dim],
                conv.row_mut(r),
                pooled.row_mut(r),
            );
        }
        logits.resize_for_overwrite(rows, classes);
        gemm::gemm_nt_into(
            pooled.as_slice(),
            &self.params[self.dense_w_off..self.dense_b_off],
            logits.as_mut_slice(),
            rows,
            dense_in,
            classes,
            scratch,
        );
        gemm::add_bias_rows(
            logits.as_mut_slice(),
            classes,
            &self.params[self.dense_b_off..],
        );
    }

    /// `Fast`-tier batched forward: one fused conv+bias+ReLU+pool pass
    /// straight from the input rows (see [`conv_forward_fused`]) writing
    /// the **channel-last** conv activations (`convf[pos][f]`) the
    /// backward pass masks against and the f-major `pooled` rows the
    /// dense head expects, then the tiered dense GEMM. Reorders the conv
    /// reduction (tap-order broadcast FMA instead of the scalar
    /// accumulation) — within the documented ε of [`forward_chunk`].
    fn forward_chunk_fast(
        &self,
        x: &[f64],
        rows: usize,
        convf: &mut Matrix,
        pooled: &mut Matrix,
        logits: &mut Matrix,
        scratch: &mut gemm::Scratch,
    ) {
        let tier = DeterminismTier::Fast;
        let in_dim = self.input_dim();
        let k = self.config.filters;
        let (ch, cw) = (self.conv_h, self.conv_w);
        let positions = ch * cw;
        let dense_in = self.dense_in();
        let classes = self.config.num_classes;

        // Conv positions outside every pool window (odd conv dims) are
        // left unwritten in `convf`; nothing downstream reads them — the
        // backward ReLU mask only visits pooled positions.
        convf.resize_for_overwrite(rows * positions, k);
        pooled.resize_for_overwrite(rows, dense_in);
        conv_forward_fused(
            &ConvFwd {
                x,
                rows,
                in_dim,
                width: self.config.width,
                conv_h: ch,
                conv_w: cw,
                pool_h: self.pool_h,
                pool_w: self.pool_w,
                filters: k,
                weights: &self.params[self.conv_w_off..self.conv_b_off],
                bias: &self.params[self.conv_b_off..self.dense_w_off],
                dense_in,
            },
            convf.as_mut_slice(),
            pooled.as_mut_slice(),
        );
        logits.resize_for_overwrite(rows, classes);
        gemm::gemm_nt_tiered(
            pooled.as_slice(),
            &self.params[self.dense_w_off..self.dense_b_off],
            logits.as_mut_slice(),
            rows,
            dense_in,
            classes,
            scratch,
            tier,
        );
        gemm::add_bias_rows(
            logits.as_mut_slice(),
            classes,
            &self.params[self.dense_b_off..],
        );
    }
}

/// Per-chunk inputs for the fused `Fast`-tier conv forward pass.
struct ConvFwd<'a> {
    /// Input rows for the chunk, `rows × in_dim`.
    x: &'a [f64],
    rows: usize,
    in_dim: usize,
    /// Image width (row stride within one input row).
    width: usize,
    conv_h: usize,
    conv_w: usize,
    pool_h: usize,
    pool_w: usize,
    filters: usize,
    /// Conv weights in the filter-major parameter layout (`filters × 9`).
    weights: &'a [f64],
    /// Conv bias, one per filter.
    bias: &'a [f64],
    dense_in: usize,
}

/// Register-tiled body of the fused conv forward: the filter weights are
/// hoisted into a tap-major `[tap][filter]` register file once, then
/// every pool window computes its four conv positions as nine broadcast
/// FMAs each — straight from the input row, no im2col expansion — fuses
/// bias + ReLU, stores the channel-last activation row, and accumulates
/// the 2×2 average into the f-major pooled plane.
///
/// `KF` is the padded filter width (4/8/16); lanes `f ≥ filters` hold
/// zero weights/bias so they stay zero throughout, and the activation
/// store narrows back to `filters` lanes (constant-trip conditional
/// stores — a runtime-length `copy_from_slice` here becomes a memcpy
/// libcall that spills the register file per position).
#[inline(always)]
fn conv_forward_fused_body<const KF: usize>(p: &ConvFwd, conv: &mut [f64], pooled: &mut [f64]) {
    let k = p.filters;
    let pool_plane = p.pool_h * p.pool_w;
    let positions = p.conv_h * p.conv_w;
    let mut wreg = [[0.0f64; KF]; KERNEL * KERNEL];
    let mut breg = [0.0f64; KF];
    for f in 0..k {
        for (t, wt) in wreg.iter_mut().enumerate() {
            wt[f] = p.weights[f * KERNEL * KERNEL + t];
        }
        breg[f] = p.bias[f];
    }
    for r in 0..p.rows {
        let xr = &p.x[r * p.in_dim..(r + 1) * p.in_dim];
        let base = r * positions;
        let prow = &mut pooled[r * p.dense_in..(r + 1) * p.dense_in];
        for pi in 0..p.pool_h {
            for pj in 0..p.pool_w {
                let mut pacc = [0.0f64; KF];
                for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    let ci = 2 * pi + di;
                    let cj = 2 * pj + dj;
                    let mut acc = breg;
                    for (t, wt) in wreg.iter().enumerate() {
                        let xv = xr[(ci + t / KERNEL) * p.width + cj + t % KERNEL];
                        for (av, &wv) in acc.iter_mut().zip(wt) {
                            *av = xv.mul_add(wv, *av);
                        }
                    }
                    for av in &mut acc {
                        *av = av.max(0.0);
                    }
                    let pos = base + ci * p.conv_w + cj;
                    let crow = &mut conv[pos * k..(pos + 1) * k];
                    if k == KF {
                        let dst: &mut [f64; KF] = crow.try_into().unwrap();
                        *dst = acc;
                    } else {
                        for (f, &av) in acc.iter().enumerate() {
                            if f < k {
                                crow[f] = av;
                            }
                        }
                    }
                    for (pv, &av) in pacc.iter_mut().zip(&acc) {
                        *pv += av;
                    }
                }
                let widx = pi * p.pool_w + pj;
                for (f, &pv) in pacc.iter().enumerate() {
                    if f < k {
                        prow[f * pool_plane + widx] = pv * 0.25;
                    }
                }
            }
        }
    }
}

/// AVX2+FMA instantiation of [`conv_forward_fused_body`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn conv_forward_fused_avx2(p: &ConvFwd, conv: &mut [f64], pooled: &mut [f64]) {
    match p.filters {
        0..=4 => conv_forward_fused_body::<4>(p, conv, pooled),
        5..=8 => conv_forward_fused_body::<8>(p, conv, pooled),
        _ => conv_forward_fused_body::<16>(p, conv, pooled),
    }
}

/// AVX-512+FMA instantiation of [`conv_forward_fused_body`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
unsafe fn conv_forward_fused_avx512(p: &ConvFwd, conv: &mut [f64], pooled: &mut [f64]) {
    match p.filters {
        0..=4 => conv_forward_fused_body::<4>(p, conv, pooled),
        5..=8 => conv_forward_fused_body::<8>(p, conv, pooled),
        _ => conv_forward_fused_body::<16>(p, conv, pooled),
    }
}

/// Portable fallback for wide filter counts or CPUs without runtime
/// FMA: same window-order traversal, runtime-length filter loop, plain
/// multiply-add (`mul_add` without FMA codegen is a libm call).
fn conv_forward_fused_scalar(p: &ConvFwd, conv: &mut [f64], pooled: &mut [f64]) {
    let k = p.filters;
    let pool_plane = p.pool_h * p.pool_w;
    let positions = p.conv_h * p.conv_w;
    for r in 0..p.rows {
        let xr = &p.x[r * p.in_dim..(r + 1) * p.in_dim];
        let base = r * positions;
        let prow = &mut pooled[r * p.dense_in..(r + 1) * p.dense_in];
        for pi in 0..p.pool_h {
            for pj in 0..p.pool_w {
                let widx = pi * p.pool_w + pj;
                for f in 0..k {
                    let wf = &p.weights[f * KERNEL * KERNEL..(f + 1) * KERNEL * KERNEL];
                    let mut pacc = 0.0;
                    for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                        let ci = 2 * pi + di;
                        let cj = 2 * pj + dj;
                        let mut acc = p.bias[f];
                        for ki in 0..KERNEL {
                            for kj in 0..KERNEL {
                                acc += xr[(ci + ki) * p.width + cj + kj] * wf[ki * KERNEL + kj];
                            }
                        }
                        let act = acc.max(0.0);
                        conv[(base + ci * p.conv_w + cj) * k + f] = act;
                        pacc += act;
                    }
                    prow[f * pool_plane + widx] = pacc * 0.25;
                }
            }
        }
    }
}

/// Fused `Fast`-tier conv forward: dispatches on the cached CPU feature
/// probe (same policy as the tiered GEMMs). Replaces the im2col buffer +
/// conv GEMM + bias/ReLU sweep + pool gather with a single pass over the
/// input rows; the conv reduction runs in tap order, which is what the
/// `Fast` tier's ε contract licenses.
fn conv_forward_fused(p: &ConvFwd, conv: &mut [f64], pooled: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if p.filters <= 16 {
        match fedval_linalg::cpu::kernel_isa(DeterminismTier::Fast) {
            KernelIsa::Avx512Fma => {
                // SAFETY: `kernel_isa` reports these variants only when
                // the corresponding features are present at runtime.
                unsafe { conv_forward_fused_avx512(p, conv, pooled) };
                return;
            }
            KernelIsa::Avx2Fma => {
                // SAFETY: as above.
                unsafe { conv_forward_fused_avx2(p, conv, pooled) };
                return;
            }
            _ => {}
        }
    }
    conv_forward_fused_scalar(p, conv, pooled);
}

/// Per-chunk inputs for the fused `Fast`-tier conv backward pass.
///
/// The fused kernel reads the raw input rows directly instead of the
/// im2col expansion, so the backward pass touches `rows · in_dim`
/// doubles where the materialized `dcols`/`cols` route streamed
/// `2 · rows · positions · max(9, filters)` — the difference is what
/// keeps the chunk L2-resident.
struct ConvBack<'a> {
    /// Input rows for the chunk, `rows × in_dim`.
    x: &'a [f64],
    rows: usize,
    in_dim: usize,
    /// Image width (row stride within one input row).
    width: usize,
    conv_h: usize,
    conv_w: usize,
    pool_h: usize,
    pool_w: usize,
    filters: usize,
    /// Post-ReLU conv activations in channel-last layout
    /// (`conv[pos · filters + f]`), as produced by the fast forward.
    conv: &'a [f64],
    /// Upstream pooled deltas, `rows × dense_in`, f-major planes.
    pooled_delta: &'a [f64],
    dense_in: usize,
}

/// Register-tiled body of the fused conv backward: for every pool
/// window, broadcast the pooled delta once, then for each of its four
/// conv positions mask by the forward ReLU and accumulate the bias and
/// the nine tap gradients into a `[tap][filter]` register file. The
/// accumulators only spill to memory once per chunk, and positions
/// outside any pool window (odd conv dims) contribute nothing — exactly
/// as in the per-sample backward.
///
/// `KF` is the padded filter width (4/8/16); lanes `f ≥ filters` are
/// forced to zero via constant-trip conditional loads — a runtime-length
/// `copy_from_slice` here becomes a memcpy libcall that spills every
/// accumulator per position.
#[inline(always)]
fn conv_backward_fused_body<const KF: usize>(p: &ConvBack, wgrad: &mut [f64], bgrad: &mut [f64]) {
    let k = p.filters;
    let pool_plane = p.pool_h * p.pool_w;
    let positions = p.conv_h * p.conv_w;
    let mut wacc = [[0.0f64; KF]; KERNEL * KERNEL];
    let mut bacc = [0.0f64; KF];
    for r in 0..p.rows {
        let xr = &p.x[r * p.in_dim..(r + 1) * p.in_dim];
        let pdrow = &p.pooled_delta[r * p.dense_in..(r + 1) * p.dense_in];
        let base = r * positions;
        for pi in 0..p.pool_h {
            for pj in 0..p.pool_w {
                let widx = pi * p.pool_w + pj;
                let mut pd = [0.0f64; KF];
                for (f, v) in pd.iter_mut().enumerate() {
                    *v = if f < k {
                        pdrow[f * pool_plane + widx] * 0.25
                    } else {
                        0.0
                    };
                }
                for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    let ci = 2 * pi + di;
                    let cj = 2 * pj + dj;
                    let pos = base + ci * p.conv_w + cj;
                    let crow = &p.conv[pos * k..(pos + 1) * k];
                    let mut drow = [0.0f64; KF];
                    for (f, v) in drow.iter_mut().enumerate() {
                        let act = if f < k { crow[f] } else { 0.0 };
                        *v = if act > 0.0 { pd[f] } else { 0.0 };
                    }
                    for (bv, &dv) in bacc.iter_mut().zip(&drow) {
                        *bv += dv;
                    }
                    for (t, wt) in wacc.iter_mut().enumerate() {
                        let xv = xr[(ci + t / KERNEL) * p.width + cj + t % KERNEL];
                        for (wv, &dv) in wt.iter_mut().zip(&drow) {
                            *wv = xv.mul_add(dv, *wv);
                        }
                    }
                }
            }
        }
    }
    // Spill once: `wacc` is tap-major, the parameter layout is
    // filter-major (`wgrad[f · 9 + tap]`).
    for f in 0..k {
        for (t, wt) in wacc.iter().enumerate() {
            wgrad[f * KERNEL * KERNEL + t] += wt[f];
        }
        bgrad[f] += bacc[f];
    }
}

/// AVX2+FMA instantiation of [`conv_backward_fused_body`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn conv_backward_fused_avx2(p: &ConvBack, wgrad: &mut [f64], bgrad: &mut [f64]) {
    match p.filters {
        0..=4 => conv_backward_fused_body::<4>(p, wgrad, bgrad),
        5..=8 => conv_backward_fused_body::<8>(p, wgrad, bgrad),
        _ => conv_backward_fused_body::<16>(p, wgrad, bgrad),
    }
}

/// AVX-512+FMA instantiation of [`conv_backward_fused_body`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
unsafe fn conv_backward_fused_avx512(p: &ConvBack, wgrad: &mut [f64], bgrad: &mut [f64]) {
    match p.filters {
        0..=4 => conv_backward_fused_body::<4>(p, wgrad, bgrad),
        5..=8 => conv_backward_fused_body::<8>(p, wgrad, bgrad),
        _ => conv_backward_fused_body::<16>(p, wgrad, bgrad),
    }
}

/// Portable fallback for wide filter counts or CPUs without runtime
/// FMA: same window-order traversal, runtime-length filter loop, plain
/// multiply-add (`mul_add` without FMA codegen is a libm call).
fn conv_backward_fused_scalar(p: &ConvBack, wgrad: &mut [f64], bgrad: &mut [f64]) {
    let k = p.filters;
    let pool_plane = p.pool_h * p.pool_w;
    let positions = p.conv_h * p.conv_w;
    for r in 0..p.rows {
        let xr = &p.x[r * p.in_dim..(r + 1) * p.in_dim];
        let pdrow = &p.pooled_delta[r * p.dense_in..(r + 1) * p.dense_in];
        let base = r * positions;
        for pi in 0..p.pool_h {
            for pj in 0..p.pool_w {
                let widx = pi * p.pool_w + pj;
                for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    let ci = 2 * pi + di;
                    let cj = 2 * pj + dj;
                    let pos = base + ci * p.conv_w + cj;
                    let crow = &p.conv[pos * k..(pos + 1) * k];
                    for (f, &act) in crow.iter().enumerate() {
                        if act <= 0.0 {
                            continue;
                        }
                        let dv = pdrow[f * pool_plane + widx] * 0.25;
                        if dv == 0.0 {
                            continue;
                        }
                        bgrad[f] += dv;
                        let wf = &mut wgrad[f * KERNEL * KERNEL..(f + 1) * KERNEL * KERNEL];
                        for ki in 0..KERNEL {
                            for kj in 0..KERNEL {
                                wf[ki * KERNEL + kj] += xr[(ci + ki) * p.width + cj + kj] * dv;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Fused `Fast`-tier conv backward: dispatches on the cached CPU
/// feature probe (same policy as the tiered GEMMs) and accumulates into
/// the conv weight/bias gradient slices. Replaces the materialized
/// `dcols` build + `dcolsᵀ·cols` GEMM + column sums with one pass that
/// never leaves registers; the reduction order (row → pool window →
/// position → tap) differs from both, which is what the `Fast` tier's ε
/// contract licenses.
fn conv_backward_fused(p: &ConvBack, wgrad: &mut [f64], bgrad: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if p.filters <= 16 {
        match fedval_linalg::cpu::kernel_isa(DeterminismTier::Fast) {
            KernelIsa::Avx512Fma => {
                // SAFETY: `kernel_isa` reports these variants only when
                // the corresponding features are present at runtime.
                unsafe { conv_backward_fused_avx512(p, wgrad, bgrad) };
                return;
            }
            KernelIsa::Avx2Fma => {
                // SAFETY: as above.
                unsafe { conv_backward_fused_avx2(p, wgrad, bgrad) };
                return;
            }
            _ => {}
        }
    }
    conv_backward_fused_scalar(p, wgrad, bgrad);
}

impl Cnn {
    /// Pool + ReLU backward and conv weight/bias accumulation for one
    /// sample — the original scalar loop, accumulation order unchanged.
    fn conv_backward_sample(
        &self,
        x: &[f64],
        conv_row: &[f64],
        pooled_delta: &[f64],
        out: &mut [f64],
    ) {
        let k = self.config.filters;
        let w = self.config.width;
        for f in 0..k {
            let plane =
                &conv_row[f * self.conv_h * self.conv_w..(f + 1) * self.conv_h * self.conv_w];
            for pi in 0..self.pool_h {
                for pj in 0..self.pool_w {
                    let pd =
                        pooled_delta[f * self.pool_h * self.pool_w + pi * self.pool_w + pj] * 0.25;
                    if pd == 0.0 {
                        continue;
                    }
                    for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                        let ci = 2 * pi + di;
                        let cj = 2 * pj + dj;
                        // ReLU derivative: active iff output > 0.
                        if plane[ci * self.conv_w + cj] <= 0.0 {
                            continue;
                        }
                        // conv cell (f, ci, cj) delta = pd; accumulate
                        // into filter weights and bias.
                        let wf_grad = &mut out[self.conv_w_off + f * KERNEL * KERNEL
                            ..self.conv_w_off + (f + 1) * KERNEL * KERNEL];
                        for ki in 0..KERNEL {
                            let xrow = &x[(ci + ki) * w + cj..(ci + ki) * w + cj + KERNEL];
                            vector::axpy(pd, xrow, &mut wf_grad[ki * KERNEL..(ki + 1) * KERNEL]);
                        }
                        out[self.conv_b_off + f] += pd;
                    }
                }
            }
        }
    }

    fn batched_loss(
        &self,
        data: &Dataset,
        ws: &mut Workspace,
        cancel: Option<&CancelToken>,
    ) -> Result<f64, Cancelled> {
        assert_eq!(data.dim(), self.input_dim(), "dataset dimension mismatch");
        if data.is_empty() {
            return Ok(self.reg_term());
        }
        let in_dim = self.input_dim();
        let feat = data.features().as_slice();
        let labels = data.labels();
        let fast = ws.tier() == DeterminismTier::Fast;
        let (bufs, gemm_scratch) = ws.parts(3);
        let mut total = 0.0;
        for (start, end) in chunks(data.len()) {
            check(cancel)?;
            let rows = end - start;
            let x = &feat[start * in_dim..end * in_dim];
            let (conv, rest) = bufs.split_at_mut(1);
            let (pooled, logits) = rest.split_at_mut(1);
            if fast {
                self.forward_chunk_fast(
                    x,
                    rows,
                    &mut conv[0],
                    &mut pooled[0],
                    &mut logits[0],
                    gemm_scratch,
                );
            } else {
                self.forward_chunk(
                    x,
                    rows,
                    &mut conv[0],
                    &mut pooled[0],
                    &mut logits[0],
                    gemm_scratch,
                );
            }
            for (r, &y) in labels[start..end].iter().enumerate() {
                let row = logits[0].row(r);
                total += vector::log_sum_exp(row) - row[y];
            }
        }
        Ok(total / data.len() as f64 + self.reg_term())
    }

    fn batched_grad(
        &self,
        data: &Dataset,
        out: &mut [f64],
        ws: &mut Workspace,
        cancel: Option<&CancelToken>,
    ) -> Result<f64, Cancelled> {
        assert_eq!(out.len(), self.params.len(), "gradient buffer mismatch");
        assert_eq!(data.dim(), self.input_dim(), "dataset dimension mismatch");
        out.iter_mut().for_each(|v| *v = 0.0);
        if data.is_empty() {
            vector::axpy(self.config.reg, &self.params, out);
            return Ok(self.reg_term());
        }
        let inv_n = 1.0 / data.len() as f64;
        let in_dim = self.input_dim();
        let dense_in = self.dense_in();
        let classes = self.config.num_classes;
        let feat = data.features().as_slice();
        let labels = data.labels();
        let tier = ws.tier();
        let fast = tier == DeterminismTier::Fast;
        let (bufs, gemm_scratch) = ws.parts(5);
        let mut total = 0.0;
        for (start, end) in chunks(data.len()) {
            check(cancel)?;
            if fast {
                // The Fast tier re-chunks into smaller sub-blocks so the
                // conv activations written by the forward pass are still
                // L2-resident when the fused backward re-reads them for
                // the ReLU mask — at full chunk size the conv buffer
                // round-trips through L3. BitExact keeps the original
                // chunking: its gradient grouping (one accumulating GEMM
                // per chunk) is part of the bit-for-bit contract.
                let mut s0 = start;
                while s0 < end {
                    let s1 = (s0 + FAST_GRAD_ROWS).min(end);
                    total += self.grad_chunk_fast(
                        &feat[s0 * in_dim..s1 * in_dim],
                        &labels[s0..s1],
                        inv_n,
                        out,
                        bufs,
                        gemm_scratch,
                    );
                    s0 = s1;
                }
                continue;
            }
            let rows = end - start;
            let x = &feat[start * in_dim..end * in_dim];
            let (conv, rest) = bufs.split_at_mut(1);
            let (pooled, rest) = rest.split_at_mut(1);
            let (logits, rest) = rest.split_at_mut(1);
            let (coeff, pooled_delta) = rest.split_at_mut(1);
            let (conv, pooled, logits) = (&mut conv[0], &mut pooled[0], &mut logits[0]);
            let (coeff, pooled_delta) = (&mut coeff[0], &mut pooled_delta[0]);

            self.forward_chunk(x, rows, conv, pooled, logits, gemm_scratch);
            // coeff row = (softmax(logits) − onehot(y)) · inv_n — the
            // per-sample code's `delta_c`, including the scaling.
            coeff.resize_for_overwrite(rows, classes);
            for (r, &y) in labels[start..end].iter().enumerate() {
                let lrow = logits.row(r);
                total += vector::log_sum_exp(lrow) - lrow[y];
                let crow = coeff.row_mut(r);
                vector::softmax_into(lrow, crow);
                crow[y] -= 1.0;
                for v in crow {
                    *v *= inv_n;
                }
            }
            // Dense head: W += coeffᵀ · pooled, bias += column sums.
            gemm::gemm_tn_acc_tiered(
                coeff.as_slice(),
                pooled.as_slice(),
                &mut out[self.dense_w_off..self.dense_b_off],
                rows,
                classes,
                dense_in,
                tier,
            );
            gemm::col_sums_acc(
                coeff.as_slice(),
                classes,
                &mut out[self.dense_b_off..self.dense_b_off + classes],
            );
            // pooled_delta = coeff · W_dense (class-ascending per element,
            // as the per-sample axpy loop).
            pooled_delta.resize_for_overwrite(rows, dense_in);
            gemm::gemm_nn_tiered(
                coeff.as_slice(),
                &self.params[self.dense_w_off..self.dense_b_off],
                pooled_delta.as_mut_slice(),
                rows,
                classes,
                dense_in,
                tier,
            );
            // Conv backward, per sample in ascending order.
            for r in 0..rows {
                self.conv_backward_sample(
                    &x[r * in_dim..(r + 1) * in_dim],
                    conv.row(r),
                    pooled_delta.row(r),
                    out,
                );
            }
        }
        vector::axpy(self.config.reg, &self.params, out);
        Ok(total * inv_n + self.reg_term())
    }

    /// `Fast`-tier gradient for one sub-block of rows: fused forward,
    /// softmax coefficients, dense-head gradient GEMMs, and the fused
    /// conv backward — every buffer sized to the sub-block so the whole
    /// round trip stays in L2. Returns the sub-block's summed
    /// cross-entropy (pre-`inv_n` scaling).
    fn grad_chunk_fast(
        &self,
        x: &[f64],
        labels: &[usize],
        inv_n: f64,
        out: &mut [f64],
        bufs: &mut [Matrix],
        gemm_scratch: &mut gemm::Scratch,
    ) -> f64 {
        let tier = DeterminismTier::Fast;
        let rows = labels.len();
        let in_dim = self.input_dim();
        let dense_in = self.dense_in();
        let classes = self.config.num_classes;
        let (conv, rest) = bufs.split_at_mut(1);
        let (pooled, rest) = rest.split_at_mut(1);
        let (logits, rest) = rest.split_at_mut(1);
        let (coeff, pooled_delta) = rest.split_at_mut(1);
        let (conv, pooled, logits) = (&mut conv[0], &mut pooled[0], &mut logits[0]);
        let (coeff, pooled_delta) = (&mut coeff[0], &mut pooled_delta[0]);

        self.forward_chunk_fast(x, rows, conv, pooled, logits, gemm_scratch);
        // coeff row = (softmax(logits) − onehot(y)) · inv_n, as in the
        // BitExact chunk body.
        let mut total = 0.0;
        coeff.resize_for_overwrite(rows, classes);
        for (r, &y) in labels.iter().enumerate() {
            let lrow = logits.row(r);
            total += vector::log_sum_exp(lrow) - lrow[y];
            let crow = coeff.row_mut(r);
            vector::softmax_into(lrow, crow);
            crow[y] -= 1.0;
            for v in crow {
                *v *= inv_n;
            }
        }
        // Dense head: W += coeffᵀ · pooled, bias += column sums.
        gemm::gemm_tn_acc_tiered(
            coeff.as_slice(),
            pooled.as_slice(),
            &mut out[self.dense_w_off..self.dense_b_off],
            rows,
            classes,
            dense_in,
            tier,
        );
        gemm::col_sums_acc(
            coeff.as_slice(),
            classes,
            &mut out[self.dense_b_off..self.dense_b_off + classes],
        );
        pooled_delta.resize_for_overwrite(rows, dense_in);
        gemm::gemm_nn_tiered(
            coeff.as_slice(),
            &self.params[self.dense_w_off..self.dense_b_off],
            pooled_delta.as_mut_slice(),
            rows,
            classes,
            dense_in,
            tier,
        );
        // Fused conv backward: routes the pooled deltas through the ReLU
        // mask and accumulates the conv weight/bias gradients straight
        // from the input rows — no `dcols` scatter, no im2col replay,
        // register-resident accumulators (see [`conv_backward_fused`]).
        let (wgrad, bgrad) =
            out[self.conv_w_off..self.dense_w_off].split_at_mut(self.conv_b_off - self.conv_w_off);
        conv_backward_fused(
            &ConvBack {
                x,
                rows,
                in_dim,
                width: self.config.width,
                conv_h: self.conv_h,
                conv_w: self.conv_w,
                pool_h: self.pool_h,
                pool_w: self.pool_w,
                filters: self.config.filters,
                conv: conv.as_slice(),
                pooled_delta: pooled_delta.as_slice(),
                dense_in,
            },
            wgrad,
            bgrad,
        );
        total
    }

    /// The pre-batching per-sample loss loop, retained verbatim as the
    /// naive reference the equivalence tests and the `cell_throughput`
    /// benchmark compare against.
    #[doc(hidden)]
    pub fn loss_per_sample(&self, data: &Dataset) -> f64 {
        assert_eq!(data.dim(), self.input_dim(), "dataset dimension mismatch");
        if data.is_empty() {
            return self.reg_term();
        }
        let mut conv = Vec::new();
        let mut pooled = Vec::new();
        let mut logits = Vec::new();
        let mut total = 0.0;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            self.forward_into(x, &mut conv, &mut pooled, &mut logits);
            total += vector::log_sum_exp(&logits) - logits[y];
        }
        total / data.len() as f64 + self.reg_term()
    }

    /// The pre-batching per-sample gradient loop (see
    /// [`loss_per_sample`](Cnn::loss_per_sample)).
    #[doc(hidden)]
    pub fn grad_per_sample(&self, data: &Dataset, out: &mut [f64]) -> f64 {
        assert_eq!(out.len(), self.params.len(), "gradient buffer mismatch");
        assert_eq!(data.dim(), self.input_dim(), "dataset dimension mismatch");
        out.iter_mut().for_each(|v| *v = 0.0);
        if data.is_empty() {
            vector::axpy(self.config.reg, &self.params, out);
            return self.reg_term();
        }
        let inv_n = 1.0 / data.len() as f64;
        let dense_in = self.dense_in();
        let mut conv = Vec::new();
        let mut pooled = Vec::new();
        let mut logits = Vec::new();
        let mut probs = vec![0.0; self.config.num_classes];
        let mut total = 0.0;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            self.forward_into(x, &mut conv, &mut pooled, &mut logits);
            total += vector::log_sum_exp(&logits) - logits[y];
            vector::softmax_into(&logits, &mut probs);

            // Dense layer gradients and pooled delta.
            let mut pooled_delta = vec![0.0; dense_in];
            for (c, &p) in probs.iter().enumerate() {
                let delta_c = (p - f64::from(u8::from(c == y))) * inv_n;
                if delta_c == 0.0 {
                    continue;
                }
                let w_grad = &mut out
                    [self.dense_w_off + c * dense_in..self.dense_w_off + (c + 1) * dense_in];
                vector::axpy(delta_c, &pooled, w_grad);
                out[self.dense_b_off + c] += delta_c;
                let wrow = &self.params
                    [self.dense_w_off + c * dense_in..self.dense_w_off + (c + 1) * dense_in];
                vector::axpy(delta_c, wrow, &mut pooled_delta);
            }

            // Back through pooling and ReLU.
            self.conv_backward_sample(x, &conv, &pooled_delta, out);
        }
        vector::axpy(self.config.reg, &self.params, out);
        total * inv_n + self.reg_term()
    }
}

impl Model for Cnn {
    fn params(&self) -> &[f64] {
        &self.params
    }

    fn cache_descriptor(&self) -> String {
        format!(
            "cnn:h={}:w={}:filters={}:classes={}:reg={:x}",
            self.config.height,
            self.config.width,
            self.config.filters,
            self.config.num_classes,
            self.config.reg.to_bits()
        )
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn loss(&self, data: &Dataset) -> f64 {
        self.loss_with(data, &mut Workspace::new())
    }

    fn grad(&self, data: &Dataset, out: &mut [f64]) -> f64 {
        self.grad_with(data, out, &mut Workspace::new())
    }

    fn loss_with(&self, data: &Dataset, ws: &mut Workspace) -> f64 {
        self.batched_loss(data, ws, None)
            .expect("uncancellable evaluation")
    }

    fn grad_with(&self, data: &Dataset, out: &mut [f64], ws: &mut Workspace) -> f64 {
        self.batched_grad(data, out, ws, None)
            .expect("uncancellable evaluation")
    }

    fn try_loss_with(&self, data: &Dataset, ws: &mut Workspace) -> Result<f64, Cancelled> {
        let cancel = ws.cancel_token().cloned();
        self.batched_loss(data, ws, cancel.as_ref())
    }

    fn try_grad_with(
        &self,
        data: &Dataset,
        out: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<f64, Cancelled> {
        let cancel = ws.cancel_token().cloned();
        self.batched_grad(data, out, ws, cancel.as_ref())
    }

    fn predict(&self, x: &[f64]) -> usize {
        let mut conv = Vec::new();
        let mut pooled = Vec::new();
        let mut logits = Vec::new();
        self.forward_into(x, &mut conv, &mut pooled, &mut logits);
        vector::argmax(&logits)
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::finite_difference_check;
    use fedval_linalg::Matrix;

    fn image_dataset(n: usize, h: usize, w: usize, classes: usize, seed: u64) -> Dataset {
        // Class c gets a bright band at row c % h: linearly separable-ish
        // structure a convolution can pick up.
        let mut feat = Matrix::zeros(n, h * w);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = (i + seed as usize) % classes;
            let row = feat.row_mut(i);
            for j in 0..w {
                row[(c % h) * w + j] = 1.0;
                // Mild deterministic clutter.
                row[((c + 2) % h) * w + (j + i) % w] += 0.3;
            }
            labels.push(c);
        }
        Dataset::new(feat, labels, classes).unwrap()
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let m = Cnn::new(CnnConfig::small(8, 8, 10), 1);
        // conv: 8 filters * 9 + 8 bias = 80. conv out 6x6, pool 3x3,
        // dense in = 8*9 = 72; dense: 10*72 + 10 = 730. total 810.
        assert_eq!(m.num_params(), 810);
        assert_eq!(m.input_dim(), 64);
    }

    /// Like [`image_dataset`] but with every pixel non-zero, keeping conv
    /// pre-activations away from the ReLU kink so finite differences are
    /// valid.
    fn dense_image_dataset(n: usize, h: usize, w: usize, classes: usize) -> Dataset {
        let mut feat = Matrix::zeros(n, h * w);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            let row = feat.row_mut(i);
            for (idx, v) in row.iter_mut().enumerate() {
                *v = 0.13 + 0.07 * ((idx * 31 + i * 17 + c * 5) % 11) as f64;
            }
            labels.push(c);
        }
        Dataset::new(feat, labels, classes).unwrap()
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut m = Cnn::new(
            CnnConfig {
                height: 6,
                width: 6,
                filters: 2,
                num_classes: 3,
                reg: 0.0,
            },
            13,
        );
        crate::init::gaussian_fill(m.params_mut(), 0.4, 77);
        let d = dense_image_dataset(4, 6, 6, 3);
        let coords: Vec<usize> = (0..m.num_params()).step_by(2).collect();
        let err = finite_difference_check(&mut m, &d, &coords, 1e-6);
        assert!(err < 1e-5, "fd mismatch {err}");
    }

    #[test]
    fn regularized_gradient_matches_finite_differences() {
        let mut m = Cnn::new(
            CnnConfig {
                height: 6,
                width: 6,
                filters: 2,
                num_classes: 2,
                reg: 0.1,
            },
            3,
        );
        crate::init::gaussian_fill(m.params_mut(), 0.4, 78);
        let d = dense_image_dataset(3, 6, 6, 2);
        let coords: Vec<usize> = (0..m.num_params()).step_by(5).collect();
        let err = finite_difference_check(&mut m, &d, &coords, 1e-6);
        assert!(err < 1e-5, "fd mismatch {err}");
    }

    #[test]
    fn batched_paths_match_per_sample_reference_bitwise() {
        let d = image_dataset(23, 7, 8, 3, 4);
        let m = Cnn::new(
            CnnConfig {
                height: 7,
                width: 8,
                filters: 3,
                num_classes: 3,
                reg: 0.01,
            },
            17,
        );
        // Pinned to BitExact: this contract must hold regardless of the
        // FEDVAL_TIER environment the suite runs under.
        let mut ws = crate::workspace::Workspace::bit_exact();
        assert_eq!(
            m.loss_with(&d, &mut ws).to_bits(),
            m.loss_per_sample(&d).to_bits()
        );
        let mut g_batched = vec![0.0; m.num_params()];
        let mut g_ref = vec![0.0; m.num_params()];
        let lb = m.grad_with(&d, &mut g_batched, &mut ws);
        let lr = m.grad_per_sample(&d, &mut g_ref);
        assert_eq!(lb.to_bits(), lr.to_bits());
        for (a, b) in g_batched.iter().zip(&g_ref) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fast_tier_matches_reference_within_tolerance() {
        // 300 samples spans a chunk boundary; the ragged 7×8 image
        // (conv 5×6, pool 2×3) leaves a trailing conv row unused, which
        // the Fast gather/scatter must skip exactly like the scalar pool.
        let d = image_dataset(300, 7, 8, 3, 4);
        let m = Cnn::new(
            CnnConfig {
                height: 7,
                width: 8,
                filters: 3,
                num_classes: 3,
                reg: 0.01,
            },
            17,
        );
        // Composite bound: the per-op GEMM ε (≲1e-12 at these depths and
        // magnitudes) composed through softmax/log-sum-exp stays orders
        // of magnitude below 1e-9; an actual layout or masking bug shows
        // up at ~1e-2.
        let tol = |reference: f64| 1e-9 * (1.0 + reference.abs());
        let mut ws = crate::workspace::Workspace::new().with_tier(DeterminismTier::Fast);
        let lf = m.loss_with(&d, &mut ws);
        let lr = m.loss_per_sample(&d);
        assert!((lf - lr).abs() <= tol(lr), "loss {lf} vs {lr}");
        let mut g_fast = vec![0.0; m.num_params()];
        let mut g_ref = vec![0.0; m.num_params()];
        let lgf = m.grad_with(&d, &mut g_fast, &mut ws);
        let lgr = m.grad_per_sample(&d, &mut g_ref);
        assert!((lgf - lgr).abs() <= tol(lgr), "grad loss {lgf} vs {lgr}");
        for (i, (a, b)) in g_fast.iter().zip(&g_ref).enumerate() {
            assert!((a - b).abs() <= tol(*b), "param {i}: {a} vs {b}");
        }
    }

    #[test]
    fn fast_tier_is_deterministic_within_itself() {
        let d = image_dataset(64, 8, 8, 4, 1);
        let m = Cnn::new(CnnConfig::small(8, 8, 4), 9);
        let mut ws1 = crate::workspace::Workspace::new().with_tier(DeterminismTier::Fast);
        let mut ws2 = crate::workspace::Workspace::new().with_tier(DeterminismTier::Fast);
        assert_eq!(
            m.loss_with(&d, &mut ws1).to_bits(),
            m.loss_with(&d, &mut ws2).to_bits()
        );
        let mut g1 = vec![0.0; m.num_params()];
        let mut g2 = vec![0.0; m.num_params()];
        m.grad_with(&d, &mut g1, &mut ws1);
        m.grad_with(&d, &mut g2, &mut ws2);
        for (a, b) in g1.iter().zip(&g2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn training_reduces_loss_and_learns_bands() {
        let d = image_dataset(40, 8, 8, 4, 0);
        let mut m = Cnn::new(CnnConfig::small(8, 8, 4), 5);
        let mut g = vec![0.0; m.num_params()];
        let start = m.loss(&d);
        for _ in 0..200 {
            m.grad(&d, &mut g);
            vector::axpy(-0.5, &g, m.params_mut());
        }
        assert!(
            m.loss(&d) < start * 0.5,
            "loss {} vs start {start}",
            m.loss(&d)
        );
        assert!(m.accuracy(&d) > 0.8, "accuracy {}", m.accuracy(&d));
    }

    #[test]
    #[should_panic(expected = "image too small")]
    fn rejects_tiny_images() {
        let _ = Cnn::new(CnnConfig::small(3, 3, 2), 1);
    }

    #[test]
    fn same_params_same_loss() {
        let d = image_dataset(5, 6, 6, 2, 0);
        let cfg = CnnConfig {
            height: 6,
            width: 6,
            filters: 3,
            num_classes: 2,
            reg: 0.0,
        };
        let m1 = Cnn::new(cfg.clone(), 1);
        let mut m2 = Cnn::new(cfg, 2);
        m2.set_params(m1.params());
        assert_eq!(m1.loss(&d), m2.loss(&d));
    }

    #[test]
    fn loss_on_empty_dataset_is_reg_only() {
        let d = image_dataset(3, 6, 6, 2, 0).subset(&[]);
        let m = Cnn::new(
            CnnConfig {
                height: 6,
                width: 6,
                filters: 2,
                num_classes: 2,
                reg: 0.0,
            },
            1,
        );
        assert_eq!(m.loss(&d), 0.0);
    }
}
