//! Fully connected neural network with manual backpropagation.
//!
//! Plays the role of the paper's "simple fully connected network" on MNIST.
//! Supports ReLU and Tanh activations and any number of hidden layers; the
//! output layer is linear with softmax cross-entropy loss.

use crate::init::xavier_fill;
use crate::traits::Model;
use crate::workspace::{check, chunks, Workspace};
use fedval_data::Dataset;
use fedval_linalg::{gemm, vector, DeterminismTier, Matrix};
use fedval_runtime::{CancelToken, Cancelled};

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent (smooth, useful when the theory prefers
    /// smoothness).
    Tanh,
}

impl Activation {
    #[inline]
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *activated* value `a = σ(x)`.
    #[inline]
    fn derivative_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
        }
    }
}

/// Layer extents: weight matrix `out × in` then bias `out`, flattened in
/// order of layers.
#[derive(Debug, Clone)]
struct LayerShape {
    input: usize,
    output: usize,
    /// Offset of the weight block in the flat parameter vector.
    w_off: usize,
    /// Offset of the bias block.
    b_off: usize,
}

/// Multi-layer perceptron with softmax cross-entropy loss and optional L2.
#[derive(Debug, Clone)]
pub struct Mlp {
    sizes: Vec<usize>,
    shapes: Vec<LayerShape>,
    activation: Activation,
    reg: f64,
    params: Vec<f64>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `[64, 32, 10]` for
    /// one hidden layer of 32 units. The last size is the class count.
    pub fn new(sizes: &[usize], activation: Activation, reg: f64, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        assert!(reg >= 0.0);
        let mut shapes = Vec::with_capacity(sizes.len() - 1);
        let mut off = 0;
        for w in sizes.windows(2) {
            let (input, output) = (w[0], w[1]);
            shapes.push(LayerShape {
                input,
                output,
                w_off: off,
                b_off: off + input * output,
            });
            off += input * output + output;
        }
        let mut params = vec![0.0; off];
        for (li, s) in shapes.iter().enumerate() {
            xavier_fill(
                &mut params[s.w_off..s.w_off + s.input * s.output],
                s.input,
                s.output,
                seed.wrapping_add(li as u64),
            );
        }
        Mlp {
            sizes: sizes.to_vec(),
            shapes,
            activation,
            reg,
            params,
        }
    }

    /// Layer sizes, including input and output.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of classes (output size).
    pub fn num_classes(&self) -> usize {
        *self.sizes.last().expect("validated at construction")
    }

    fn reg_term(&self) -> f64 {
        if self.reg == 0.0 {
            0.0
        } else {
            0.5 * self.reg * vector::dot(&self.params, &self.params)
        }
    }

    /// Runs a forward pass, storing each layer's activated output in
    /// `acts` (layer 0 output at index 0, etc.). The final entry holds the
    /// raw logits (no softmax). Per-sample path: used by `predict` and
    /// the retained reference loops.
    fn forward_into(&self, x: &[f64], acts: &mut Vec<Vec<f64>>) {
        acts.clear();
        let mut current: &[f64] = x;
        let last = self.shapes.len() - 1;
        for (li, s) in self.shapes.iter().enumerate() {
            let mut out = vec![0.0; s.output];
            for (o, outv) in out.iter_mut().enumerate() {
                let w_row = &self.params[s.w_off + o * s.input..s.w_off + (o + 1) * s.input];
                *outv = vector::dot(w_row, current) + self.params[s.b_off + o];
            }
            if li != last {
                for v in &mut out {
                    *v = self.activation.apply(*v);
                }
            }
            acts.push(out);
            current = acts.last().expect("just pushed").as_slice();
        }
    }

    /// Batched forward over a chunk of `rows` examples: per layer one
    /// `X · Wᵀ` GEMM, fused bias add, and the activation map. `acts[li]`
    /// holds layer `li`'s activated output (`rows × width`); the last
    /// entry holds raw logits. Per element this is the same
    /// `dot + bias` (then `σ`) as [`forward_into`](Mlp::forward_into).
    fn forward_chunk(
        &self,
        x: &[f64],
        rows: usize,
        acts: &mut [Matrix],
        scratch: &mut gemm::Scratch,
        tier: DeterminismTier,
    ) {
        let last = self.shapes.len() - 1;
        for li in 0..self.shapes.len() {
            let s = &self.shapes[li];
            let (prev, rest) = acts.split_at_mut(li);
            let cur = &mut rest[0];
            let input: &[f64] = if li == 0 { x } else { prev[li - 1].as_slice() };
            cur.resize_for_overwrite(rows, s.output);
            gemm::gemm_nt_tiered(
                input,
                &self.params[s.w_off..s.w_off + s.output * s.input],
                cur.as_mut_slice(),
                rows,
                s.input,
                s.output,
                scratch,
                tier,
            );
            gemm::add_bias_rows(
                cur.as_mut_slice(),
                s.output,
                &self.params[s.b_off..s.b_off + s.output],
            );
            if li != last {
                for v in cur.as_mut_slice() {
                    *v = self.activation.apply(*v);
                }
            }
        }
    }

    fn batched_loss(
        &self,
        data: &Dataset,
        ws: &mut Workspace,
        cancel: Option<&CancelToken>,
    ) -> Result<f64, Cancelled> {
        assert_eq!(data.dim(), self.sizes[0], "dataset dimension mismatch");
        if data.is_empty() {
            return Ok(self.reg_term());
        }
        let nl = self.shapes.len();
        let d = self.sizes[0];
        let feat = data.features().as_slice();
        let labels = data.labels();
        let tier = ws.tier();
        let (acts, gemm_scratch) = ws.parts(nl);
        let mut total = 0.0;
        for (start, end) in chunks(data.len()) {
            check(cancel)?;
            self.forward_chunk(
                &feat[start * d..end * d],
                end - start,
                acts,
                gemm_scratch,
                tier,
            );
            let logits = &acts[nl - 1];
            for (r, &y) in labels[start..end].iter().enumerate() {
                let row = logits.row(r);
                total += vector::log_sum_exp(row) - row[y];
            }
        }
        Ok(total / data.len() as f64 + self.reg_term())
    }

    fn batched_grad(
        &self,
        data: &Dataset,
        out: &mut [f64],
        ws: &mut Workspace,
        cancel: Option<&CancelToken>,
    ) -> Result<f64, Cancelled> {
        assert_eq!(out.len(), self.params.len(), "gradient buffer mismatch");
        assert_eq!(data.dim(), self.sizes[0], "dataset dimension mismatch");
        out.iter_mut().for_each(|v| *v = 0.0);
        if data.is_empty() {
            vector::axpy(self.reg, &self.params, out);
            return Ok(self.reg_term());
        }
        let nl = self.shapes.len();
        let d = self.sizes[0];
        let inv_n = 1.0 / data.len() as f64;
        let feat = data.features().as_slice();
        let labels = data.labels();
        let tier = ws.tier();
        // Buffers: nl activations, then delta / delta_prev / delta_scaled.
        let (bufs, gemm_scratch) = ws.parts(nl + 3);
        let mut total = 0.0;
        for (start, end) in chunks(data.len()) {
            check(cancel)?;
            let rows = end - start;
            let x = &feat[start * d..end * d];
            let (acts, rest) = bufs.split_at_mut(nl);
            let (delta_buf, rest) = rest.split_at_mut(1);
            let (prev_buf, ds_buf) = rest.split_at_mut(1);
            let (delta, delta_prev, ds) = (&mut delta_buf[0], &mut prev_buf[0], &mut ds_buf[0]);

            self.forward_chunk(x, rows, acts, gemm_scratch, tier);
            let classes = *self.sizes.last().expect("validated at construction");
            delta.resize_for_overwrite(rows, classes);
            {
                let logits = &acts[nl - 1];
                for (r, &y) in labels[start..end].iter().enumerate() {
                    let lrow = logits.row(r);
                    total += vector::log_sum_exp(lrow) - lrow[y];
                    // delta row = softmax(logits) − onehot(y), unscaled.
                    let drow = delta.row_mut(r);
                    vector::softmax_into(lrow, drow);
                    drow[y] -= 1.0;
                }
            }

            for li in (0..nl).rev() {
                let s = &self.shapes[li];
                let input: &[f64] = if li == 0 { x } else { acts[li - 1].as_slice() };
                // Scaled copy ds = delta · inv_n: the per-sample code
                // multiplied each coefficient by inv_n at use.
                ds.resize_for_overwrite(rows, s.output);
                for (dsv, &dv) in ds.as_mut_slice().iter_mut().zip(delta.as_slice()) {
                    *dsv = dv * inv_n;
                }
                // W += dsᵀ · input, bias += column sums of ds —
                // sample-ascending, bit-identical to the per-sample axpy.
                gemm::gemm_tn_acc_tiered(
                    ds.as_slice(),
                    input,
                    &mut out[s.w_off..s.w_off + s.output * s.input],
                    rows,
                    s.output,
                    s.input,
                    tier,
                );
                gemm::col_sums_acc(
                    ds.as_slice(),
                    s.output,
                    &mut out[s.b_off..s.b_off + s.output],
                );
                if li == 0 {
                    break;
                }
                // delta_prev = (delta · W) ⊙ σ'(act), unscaled delta as
                // in the per-sample path.
                delta_prev.resize_for_overwrite(rows, s.input);
                gemm::gemm_nn_tiered(
                    delta.as_slice(),
                    &self.params[s.w_off..s.w_off + s.output * s.input],
                    delta_prev.as_mut_slice(),
                    rows,
                    s.output,
                    s.input,
                    tier,
                );
                for (pd, &a) in delta_prev
                    .as_mut_slice()
                    .iter_mut()
                    .zip(acts[li - 1].as_slice())
                {
                    *pd *= self.activation.derivative_from_output(a);
                }
                std::mem::swap(delta, delta_prev);
            }
        }
        vector::axpy(self.reg, &self.params, out);
        Ok(total * inv_n + self.reg_term())
    }

    /// The pre-batching per-sample loss loop, retained verbatim as the
    /// naive reference the equivalence tests and the `cell_throughput`
    /// benchmark compare against.
    #[doc(hidden)]
    pub fn loss_per_sample(&self, data: &Dataset) -> f64 {
        assert_eq!(data.dim(), self.sizes[0], "dataset dimension mismatch");
        if data.is_empty() {
            return self.reg_term();
        }
        let mut acts: Vec<Vec<f64>> = Vec::new();
        let mut total = 0.0;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            self.forward_into(x, &mut acts);
            let logits = acts.last().expect("non-empty network");
            total += vector::log_sum_exp(logits) - logits[y];
        }
        total / data.len() as f64 + self.reg_term()
    }

    /// The pre-batching per-sample gradient loop (see
    /// [`loss_per_sample`](Mlp::loss_per_sample)).
    #[doc(hidden)]
    pub fn grad_per_sample(&self, data: &Dataset, out: &mut [f64]) -> f64 {
        assert_eq!(out.len(), self.params.len(), "gradient buffer mismatch");
        assert_eq!(data.dim(), self.sizes[0], "dataset dimension mismatch");
        out.iter_mut().for_each(|v| *v = 0.0);
        if data.is_empty() {
            vector::axpy(self.reg, &self.params, out);
            return self.reg_term();
        }
        let inv_n = 1.0 / data.len() as f64;
        let mut acts: Vec<Vec<f64>> = Vec::new();
        let mut total = 0.0;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            self.forward_into(x, &mut acts);
            let logits = acts.last().expect("non-empty network");
            total += vector::log_sum_exp(logits) - logits[y];

            // delta at the output: softmax(logits) - onehot(y).
            let mut delta = vec![0.0; logits.len()];
            vector::softmax_into(logits, &mut delta);
            delta[y] -= 1.0;

            // Backward through layers.
            for li in (0..self.shapes.len()).rev() {
                let s = &self.shapes[li];
                let input: &[f64] = if li == 0 { x } else { &acts[li - 1] };
                // Accumulate weight/bias gradients.
                for (o, &dv) in delta.iter().enumerate() {
                    if dv == 0.0 {
                        continue;
                    }
                    let w_grad = &mut out[s.w_off + o * s.input..s.w_off + (o + 1) * s.input];
                    vector::axpy(dv * inv_n, input, w_grad);
                    out[s.b_off + o] += dv * inv_n;
                }
                if li == 0 {
                    break;
                }
                // Propagate delta to the previous layer (through the
                // activation derivative of that layer's output).
                let mut prev_delta = vec![0.0; s.input];
                for (o, &dv) in delta.iter().enumerate() {
                    if dv == 0.0 {
                        continue;
                    }
                    let w_row = &self.params[s.w_off + o * s.input..s.w_off + (o + 1) * s.input];
                    vector::axpy(dv, w_row, &mut prev_delta);
                }
                let prev_act = &acts[li - 1];
                for (pd, &a) in prev_delta.iter_mut().zip(prev_act) {
                    *pd *= self.activation.derivative_from_output(a);
                }
                delta = prev_delta;
            }
        }
        vector::axpy(self.reg, &self.params, out);
        total * inv_n + self.reg_term()
    }
}

impl Model for Mlp {
    fn params(&self) -> &[f64] {
        &self.params
    }

    fn cache_descriptor(&self) -> String {
        format!(
            "mlp:sizes={:?}:act={:?}:reg={:x}",
            self.sizes,
            self.activation,
            self.reg.to_bits()
        )
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn loss(&self, data: &Dataset) -> f64 {
        self.loss_with(data, &mut Workspace::new())
    }

    fn grad(&self, data: &Dataset, out: &mut [f64]) -> f64 {
        self.grad_with(data, out, &mut Workspace::new())
    }

    fn loss_with(&self, data: &Dataset, ws: &mut Workspace) -> f64 {
        self.batched_loss(data, ws, None)
            .expect("uncancellable evaluation")
    }

    fn grad_with(&self, data: &Dataset, out: &mut [f64], ws: &mut Workspace) -> f64 {
        self.batched_grad(data, out, ws, None)
            .expect("uncancellable evaluation")
    }

    fn try_loss_with(&self, data: &Dataset, ws: &mut Workspace) -> Result<f64, Cancelled> {
        let cancel = ws.cancel_token().cloned();
        self.batched_loss(data, ws, cancel.as_ref())
    }

    fn try_grad_with(
        &self,
        data: &Dataset,
        out: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<f64, Cancelled> {
        let cancel = ws.cancel_token().cloned();
        self.batched_grad(data, out, ws, cancel.as_ref())
    }

    fn predict(&self, x: &[f64]) -> usize {
        let mut acts: Vec<Vec<f64>> = Vec::new();
        self.forward_into(x, &mut acts);
        vector::argmax(acts.last().expect("non-empty network"))
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::finite_difference_check;
    use fedval_linalg::Matrix;

    fn xor_dataset() -> Dataset {
        let f = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        Dataset::new(f, vec![0, 1, 1, 0], 2).unwrap()
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let m = Mlp::new(&[4, 8, 3], Activation::Relu, 0.0, 1);
        // 4*8 + 8 + 8*3 + 3 = 67.
        assert_eq!(m.num_params(), 67);
        assert_eq!(m.num_classes(), 3);
    }

    #[test]
    fn gradient_matches_finite_differences_tanh() {
        let mut m = Mlp::new(&[3, 5, 4], Activation::Tanh, 0.0, 11);
        let f = Matrix::from_rows(&[&[0.2, -0.4, 0.9], &[1.0, 0.5, -0.2]]).unwrap();
        let d = Dataset::new(f, vec![1, 3], 4).unwrap();
        let coords: Vec<usize> = (0..m.num_params()).step_by(3).collect();
        let err = finite_difference_check(&mut m, &d, &coords, 1e-6);
        assert!(err < 1e-5, "fd mismatch {err}");
    }

    #[test]
    fn gradient_matches_finite_differences_relu() {
        // ReLU is non-smooth at 0; generic (non-zero) parameters and inputs
        // keep every pre-activation away from the kink.
        let mut m = Mlp::new(&[2, 6, 2], Activation::Relu, 0.01, 5);
        crate::init::gaussian_fill(m.params_mut(), 0.7, 21);
        let f = Matrix::from_rows(&[&[0.3, -0.8], &[1.1, 0.4], &[-0.6, 0.9]]).unwrap();
        let d = Dataset::new(f, vec![0, 1, 0], 2).unwrap();
        let coords: Vec<usize> = (0..m.num_params()).collect();
        let err = finite_difference_check(&mut m, &d, &coords, 1e-6);
        assert!(err < 1e-5, "fd mismatch {err}");
    }

    #[test]
    fn training_solves_xor() {
        let d = xor_dataset();
        let mut m = Mlp::new(&[2, 16, 2], Activation::Tanh, 0.0, 3);
        let mut g = vec![0.0; m.num_params()];
        for _ in 0..2000 {
            m.grad(&d, &mut g);
            vector::axpy(-0.5, &g, m.params_mut());
        }
        assert_eq!(m.accuracy(&d), 1.0, "XOR not solved, loss {}", m.loss(&d));
    }

    #[test]
    fn deeper_network_builds_and_learns_something() {
        let d = xor_dataset();
        let mut m = Mlp::new(&[2, 8, 8, 2], Activation::Relu, 0.0, 9);
        let start = m.loss(&d);
        let mut g = vec![0.0; m.num_params()];
        for _ in 0..300 {
            m.grad(&d, &mut g);
            vector::axpy(-0.3, &g, m.params_mut());
        }
        assert!(m.loss(&d) < start);
    }

    #[test]
    fn loss_is_log_c_at_zero_params() {
        let mut m = Mlp::new(&[2, 4, 3], Activation::Relu, 0.0, 1);
        m.params_mut().iter_mut().for_each(|v| *v = 0.0);
        let f = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let d = Dataset::new(f, vec![2], 3).unwrap();
        assert!((m.loss(&d) - 3.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn batched_paths_match_per_sample_reference_bitwise() {
        // Cross minibatch-chunk boundaries with a ragged tail; two
        // hidden layers so the batched backprop swaps delta buffers.
        let n = crate::workspace::CHUNK_ROWS + 91;
        let f = Matrix::from_fn(n, 5, |r, c| (((r + 1) * (c + 2)) % 13) as f64 / 6.0 - 1.0);
        let labels: Vec<usize> = (0..n).map(|r| (r * 7) % 4).collect();
        let d = Dataset::new(f, labels, 4).unwrap();
        for activation in [Activation::Tanh, Activation::Relu] {
            let m = Mlp::new(&[5, 9, 6, 4], activation, 0.02, 23);
            // Pinned to BitExact: this contract must hold regardless of
            // the FEDVAL_TIER environment the suite runs under.
            let mut ws = crate::workspace::Workspace::bit_exact();
            assert_eq!(
                m.loss_with(&d, &mut ws).to_bits(),
                m.loss_per_sample(&d).to_bits()
            );
            let mut g_batched = vec![0.0; m.num_params()];
            let mut g_ref = vec![0.0; m.num_params()];
            let lb = m.grad_with(&d, &mut g_batched, &mut ws);
            let lr = m.grad_per_sample(&d, &mut g_ref);
            assert_eq!(lb.to_bits(), lr.to_bits());
            for (a, b) in g_batched.iter().zip(&g_ref) {
                assert_eq!(a.to_bits(), b.to_bits(), "{activation:?}");
            }
        }
    }

    #[test]
    fn fast_tier_matches_reference_within_tolerance() {
        let n = crate::workspace::CHUNK_ROWS + 91;
        let f = Matrix::from_fn(n, 5, |r, c| (((r + 1) * (c + 2)) % 13) as f64 / 6.0 - 1.0);
        let labels: Vec<usize> = (0..n).map(|r| (r * 7) % 4).collect();
        let d = Dataset::new(f, labels, 4).unwrap();
        let tol = |reference: f64| 1e-9 * (1.0 + reference.abs());
        for activation in [Activation::Tanh, Activation::Relu] {
            let m = Mlp::new(&[5, 9, 6, 4], activation, 0.02, 23);
            let mut ws = crate::workspace::Workspace::new().with_tier(DeterminismTier::Fast);
            let lf = m.loss_with(&d, &mut ws);
            let lr = m.loss_per_sample(&d);
            assert!(
                (lf - lr).abs() <= tol(lr),
                "{activation:?}: loss {lf} vs {lr}"
            );
            let mut g_fast = vec![0.0; m.num_params()];
            let mut g_ref = vec![0.0; m.num_params()];
            m.grad_with(&d, &mut g_fast, &mut ws);
            m.grad_per_sample(&d, &mut g_ref);
            for (i, (a, b)) in g_fast.iter().zip(&g_ref).enumerate() {
                assert!(
                    (a - b).abs() <= tol(*b),
                    "{activation:?} param {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn models_with_same_params_agree() {
        let d = xor_dataset();
        let m1 = Mlp::new(&[2, 4, 2], Activation::Tanh, 0.0, 8);
        let mut m2 = Mlp::new(&[2, 4, 2], Activation::Tanh, 0.0, 99);
        m2.set_params(m1.params());
        assert_eq!(m1.loss(&d), m2.loss(&d));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_layer_spec() {
        let _ = Mlp::new(&[4], Activation::Relu, 0.0, 1);
    }
}
