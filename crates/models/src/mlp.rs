//! Fully connected neural network with manual backpropagation.
//!
//! Plays the role of the paper's "simple fully connected network" on MNIST.
//! Supports ReLU and Tanh activations and any number of hidden layers; the
//! output layer is linear with softmax cross-entropy loss.

use crate::init::xavier_fill;
use crate::traits::Model;
use fedval_data::Dataset;
use fedval_linalg::vector;

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent (smooth, useful when the theory prefers
    /// smoothness).
    Tanh,
}

impl Activation {
    #[inline]
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *activated* value `a = σ(x)`.
    #[inline]
    fn derivative_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
        }
    }
}

/// Layer extents: weight matrix `out × in` then bias `out`, flattened in
/// order of layers.
#[derive(Debug, Clone)]
struct LayerShape {
    input: usize,
    output: usize,
    /// Offset of the weight block in the flat parameter vector.
    w_off: usize,
    /// Offset of the bias block.
    b_off: usize,
}

/// Multi-layer perceptron with softmax cross-entropy loss and optional L2.
#[derive(Debug, Clone)]
pub struct Mlp {
    sizes: Vec<usize>,
    shapes: Vec<LayerShape>,
    activation: Activation,
    reg: f64,
    params: Vec<f64>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `[64, 32, 10]` for
    /// one hidden layer of 32 units. The last size is the class count.
    pub fn new(sizes: &[usize], activation: Activation, reg: f64, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        assert!(reg >= 0.0);
        let mut shapes = Vec::with_capacity(sizes.len() - 1);
        let mut off = 0;
        for w in sizes.windows(2) {
            let (input, output) = (w[0], w[1]);
            shapes.push(LayerShape {
                input,
                output,
                w_off: off,
                b_off: off + input * output,
            });
            off += input * output + output;
        }
        let mut params = vec![0.0; off];
        for (li, s) in shapes.iter().enumerate() {
            xavier_fill(
                &mut params[s.w_off..s.w_off + s.input * s.output],
                s.input,
                s.output,
                seed.wrapping_add(li as u64),
            );
        }
        Mlp {
            sizes: sizes.to_vec(),
            shapes,
            activation,
            reg,
            params,
        }
    }

    /// Layer sizes, including input and output.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of classes (output size).
    pub fn num_classes(&self) -> usize {
        *self.sizes.last().expect("validated at construction")
    }

    fn reg_term(&self) -> f64 {
        if self.reg == 0.0 {
            0.0
        } else {
            0.5 * self.reg * vector::dot(&self.params, &self.params)
        }
    }

    /// Runs a forward pass, storing each layer's activated output in
    /// `acts` (layer 0 output at index 0, etc.). The final entry holds the
    /// raw logits (no softmax).
    fn forward_into(&self, x: &[f64], acts: &mut Vec<Vec<f64>>) {
        acts.clear();
        let mut current: &[f64] = x;
        let last = self.shapes.len() - 1;
        for (li, s) in self.shapes.iter().enumerate() {
            let mut out = vec![0.0; s.output];
            for (o, outv) in out.iter_mut().enumerate() {
                let w_row = &self.params[s.w_off + o * s.input..s.w_off + (o + 1) * s.input];
                *outv = vector::dot(w_row, current) + self.params[s.b_off + o];
            }
            if li != last {
                for v in &mut out {
                    *v = self.activation.apply(*v);
                }
            }
            acts.push(out);
            current = acts.last().expect("just pushed").as_slice();
        }
    }
}

impl Model for Mlp {
    fn params(&self) -> &[f64] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn loss(&self, data: &Dataset) -> f64 {
        assert_eq!(data.dim(), self.sizes[0], "dataset dimension mismatch");
        if data.is_empty() {
            return self.reg_term();
        }
        let mut acts: Vec<Vec<f64>> = Vec::new();
        let mut total = 0.0;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            self.forward_into(x, &mut acts);
            let logits = acts.last().expect("non-empty network");
            total += vector::log_sum_exp(logits) - logits[y];
        }
        total / data.len() as f64 + self.reg_term()
    }

    fn grad(&self, data: &Dataset, out: &mut [f64]) -> f64 {
        assert_eq!(out.len(), self.params.len(), "gradient buffer mismatch");
        assert_eq!(data.dim(), self.sizes[0], "dataset dimension mismatch");
        out.iter_mut().for_each(|v| *v = 0.0);
        if data.is_empty() {
            vector::axpy(self.reg, &self.params, out);
            return self.reg_term();
        }
        let inv_n = 1.0 / data.len() as f64;
        let mut acts: Vec<Vec<f64>> = Vec::new();
        let mut total = 0.0;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            self.forward_into(x, &mut acts);
            let logits = acts.last().expect("non-empty network");
            total += vector::log_sum_exp(logits) - logits[y];

            // delta at the output: softmax(logits) - onehot(y).
            let mut delta = vec![0.0; logits.len()];
            vector::softmax_into(logits, &mut delta);
            delta[y] -= 1.0;

            // Backward through layers.
            for li in (0..self.shapes.len()).rev() {
                let s = &self.shapes[li];
                let input: &[f64] = if li == 0 { x } else { &acts[li - 1] };
                // Accumulate weight/bias gradients.
                for (o, &dv) in delta.iter().enumerate() {
                    if dv == 0.0 {
                        continue;
                    }
                    let w_grad = &mut out[s.w_off + o * s.input..s.w_off + (o + 1) * s.input];
                    vector::axpy(dv * inv_n, input, w_grad);
                    out[s.b_off + o] += dv * inv_n;
                }
                if li == 0 {
                    break;
                }
                // Propagate delta to the previous layer (through the
                // activation derivative of that layer's output).
                let mut prev_delta = vec![0.0; s.input];
                for (o, &dv) in delta.iter().enumerate() {
                    if dv == 0.0 {
                        continue;
                    }
                    let w_row = &self.params[s.w_off + o * s.input..s.w_off + (o + 1) * s.input];
                    vector::axpy(dv, w_row, &mut prev_delta);
                }
                let prev_act = &acts[li - 1];
                for (pd, &a) in prev_delta.iter_mut().zip(prev_act) {
                    *pd *= self.activation.derivative_from_output(a);
                }
                delta = prev_delta;
            }
        }
        vector::axpy(self.reg, &self.params, out);
        total * inv_n + self.reg_term()
    }

    fn predict(&self, x: &[f64]) -> usize {
        let mut acts: Vec<Vec<f64>> = Vec::new();
        self.forward_into(x, &mut acts);
        vector::argmax(acts.last().expect("non-empty network"))
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::finite_difference_check;
    use fedval_linalg::Matrix;

    fn xor_dataset() -> Dataset {
        let f = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]).unwrap();
        Dataset::new(f, vec![0, 1, 1, 0], 2).unwrap()
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let m = Mlp::new(&[4, 8, 3], Activation::Relu, 0.0, 1);
        // 4*8 + 8 + 8*3 + 3 = 67.
        assert_eq!(m.num_params(), 67);
        assert_eq!(m.num_classes(), 3);
    }

    #[test]
    fn gradient_matches_finite_differences_tanh() {
        let mut m = Mlp::new(&[3, 5, 4], Activation::Tanh, 0.0, 11);
        let f = Matrix::from_rows(&[&[0.2, -0.4, 0.9], &[1.0, 0.5, -0.2]]).unwrap();
        let d = Dataset::new(f, vec![1, 3], 4).unwrap();
        let coords: Vec<usize> = (0..m.num_params()).step_by(3).collect();
        let err = finite_difference_check(&mut m, &d, &coords, 1e-6);
        assert!(err < 1e-5, "fd mismatch {err}");
    }

    #[test]
    fn gradient_matches_finite_differences_relu() {
        // ReLU is non-smooth at 0; generic (non-zero) parameters and inputs
        // keep every pre-activation away from the kink.
        let mut m = Mlp::new(&[2, 6, 2], Activation::Relu, 0.01, 5);
        crate::init::gaussian_fill(m.params_mut(), 0.7, 21);
        let f = Matrix::from_rows(&[&[0.3, -0.8], &[1.1, 0.4], &[-0.6, 0.9]]).unwrap();
        let d = Dataset::new(f, vec![0, 1, 0], 2).unwrap();
        let coords: Vec<usize> = (0..m.num_params()).collect();
        let err = finite_difference_check(&mut m, &d, &coords, 1e-6);
        assert!(err < 1e-5, "fd mismatch {err}");
    }

    #[test]
    fn training_solves_xor() {
        let d = xor_dataset();
        let mut m = Mlp::new(&[2, 16, 2], Activation::Tanh, 0.0, 3);
        let mut g = vec![0.0; m.num_params()];
        for _ in 0..2000 {
            m.grad(&d, &mut g);
            vector::axpy(-0.5, &g, m.params_mut());
        }
        assert_eq!(m.accuracy(&d), 1.0, "XOR not solved, loss {}", m.loss(&d));
    }

    #[test]
    fn deeper_network_builds_and_learns_something() {
        let d = xor_dataset();
        let mut m = Mlp::new(&[2, 8, 8, 2], Activation::Relu, 0.0, 9);
        let start = m.loss(&d);
        let mut g = vec![0.0; m.num_params()];
        for _ in 0..300 {
            m.grad(&d, &mut g);
            vector::axpy(-0.3, &g, m.params_mut());
        }
        assert!(m.loss(&d) < start);
    }

    #[test]
    fn loss_is_log_c_at_zero_params() {
        let mut m = Mlp::new(&[2, 4, 3], Activation::Relu, 0.0, 1);
        m.params_mut().iter_mut().for_each(|v| *v = 0.0);
        let f = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let d = Dataset::new(f, vec![2], 3).unwrap();
        assert!((m.loss(&d) - 3.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn models_with_same_params_agree() {
        let d = xor_dataset();
        let m1 = Mlp::new(&[2, 4, 2], Activation::Tanh, 0.0, 8);
        let mut m2 = Mlp::new(&[2, 4, 2], Activation::Tanh, 0.0, 99);
        m2.set_params(m1.params());
        assert_eq!(m1.loss(&d), m2.loss(&d));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_layer_spec() {
        let _ = Mlp::new(&[4], Activation::Relu, 0.0, 1);
    }
}
