//! Multinomial logistic regression with optional L2 regularization.
//!
//! This is the strongly convex workhorse of the paper's theory: with
//! regularization strength `μ > 0` the loss is `μ`-strongly convex, and on
//! bounded data it is Lipschitz and smooth, so Propositions 1–2 apply and
//! the utility matrix it generates must be approximately low-rank.

use crate::init::xavier_fill;
use crate::traits::Model;
use crate::workspace::{check, chunks, Workspace};
use fedval_data::Dataset;
use fedval_linalg::{gemm, vector, DeterminismTier};
use fedval_runtime::{CancelToken, Cancelled};

/// Multinomial (softmax) logistic regression.
///
/// Parameter layout: the weight matrix `W` (`num_classes × dim`) stored
/// row-major, followed by the bias vector (`num_classes`). Loss is mean
/// cross-entropy plus `reg/2 · ‖params‖²`.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    dim: usize,
    num_classes: usize,
    reg: f64,
    params: Vec<f64>,
}

impl LogisticRegression {
    /// Creates a model with Xavier-initialized weights.
    pub fn new(dim: usize, num_classes: usize, reg: f64, seed: u64) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        assert!(reg >= 0.0, "regularization must be non-negative");
        let mut params = vec![0.0; num_classes * dim + num_classes];
        xavier_fill(&mut params[..num_classes * dim], dim, num_classes, seed);
        LogisticRegression {
            dim,
            num_classes,
            reg,
            params,
        }
    }

    /// Creates a model with all-zero parameters (useful for tests that need
    /// an exactly known starting point).
    pub fn zeros(dim: usize, num_classes: usize, reg: f64) -> Self {
        LogisticRegression {
            dim,
            num_classes,
            reg,
            params: vec![0.0; num_classes * dim + num_classes],
        }
    }

    /// Regularization strength `μ` (the strong-convexity modulus).
    pub fn regularization(&self) -> f64 {
        self.reg
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    #[inline]
    fn logits_into(&self, x: &[f64], out: &mut [f64]) {
        let c = self.num_classes;
        let d = self.dim;
        for (k, o) in out.iter_mut().enumerate() {
            let w_row = &self.params[k * d..(k + 1) * d];
            *o = vector::dot(w_row, x) + self.params[c * d + k];
        }
    }

    fn reg_term(&self) -> f64 {
        if self.reg == 0.0 {
            0.0
        } else {
            0.5 * self.reg * vector::dot(&self.params, &self.params)
        }
    }

    /// Fills `logits` (`rows × num_classes`) for a chunk of examples:
    /// one `X · Wᵀ` GEMM plus the fused bias add — per element the same
    /// `dot + bias` the per-sample path computes.
    fn logits_chunk(
        &self,
        x: &[f64],
        rows: usize,
        logits: &mut fedval_linalg::Matrix,
        scratch: &mut gemm::Scratch,
        tier: DeterminismTier,
    ) {
        let (c, d) = (self.num_classes, self.dim);
        logits.resize_for_overwrite(rows, c);
        gemm::gemm_nt_tiered(
            x,
            &self.params[..c * d],
            logits.as_mut_slice(),
            rows,
            d,
            c,
            scratch,
            tier,
        );
        gemm::add_bias_rows(logits.as_mut_slice(), c, &self.params[c * d..]);
    }

    fn batched_loss(
        &self,
        data: &Dataset,
        ws: &mut Workspace,
        cancel: Option<&CancelToken>,
    ) -> Result<f64, Cancelled> {
        assert_eq!(data.dim(), self.dim, "dataset dimension mismatch");
        if data.is_empty() {
            return Ok(self.reg_term());
        }
        let d = self.dim;
        let feat = data.features().as_slice();
        let labels = data.labels();
        let tier = ws.tier();
        let (bufs, gemm_scratch) = ws.parts(1);
        let mut total = 0.0;
        for (start, end) in chunks(data.len()) {
            check(cancel)?;
            self.logits_chunk(
                &feat[start * d..end * d],
                end - start,
                &mut bufs[0],
                gemm_scratch,
                tier,
            );
            for (r, &y) in labels[start..end].iter().enumerate() {
                let row = bufs[0].row(r);
                total += vector::log_sum_exp(row) - row[y];
            }
        }
        Ok(total / data.len() as f64 + self.reg_term())
    }

    fn batched_grad(
        &self,
        data: &Dataset,
        out: &mut [f64],
        ws: &mut Workspace,
        cancel: Option<&CancelToken>,
    ) -> Result<f64, Cancelled> {
        assert_eq!(out.len(), self.params.len(), "gradient buffer mismatch");
        assert_eq!(data.dim(), self.dim, "dataset dimension mismatch");
        out.iter_mut().for_each(|v| *v = 0.0);
        let (c, d) = (self.num_classes, self.dim);
        if data.is_empty() {
            vector::axpy(self.reg, &self.params, out);
            return Ok(self.reg_term());
        }
        let inv_n = 1.0 / data.len() as f64;
        let feat = data.features().as_slice();
        let labels = data.labels();
        let tier = ws.tier();
        let (bufs, gemm_scratch) = ws.parts(2);
        let mut total = 0.0;
        for (start, end) in chunks(data.len()) {
            check(cancel)?;
            let rows = end - start;
            let x = &feat[start * d..end * d];
            let (logits, coeff) = {
                let (a, b) = bufs.split_at_mut(1);
                (&mut a[0], &mut b[0])
            };
            self.logits_chunk(x, rows, logits, gemm_scratch, tier);
            coeff.resize_for_overwrite(rows, c);
            for (r, &y) in labels[start..end].iter().enumerate() {
                let lrow = logits.row(r);
                total += vector::log_sum_exp(lrow) - lrow[y];
                // coeff row = (softmax(logits) − onehot(y)) · inv_n.
                let crow = coeff.row_mut(r);
                vector::softmax_into(lrow, crow);
                crow[y] -= 1.0;
                for v in crow {
                    *v *= inv_n;
                }
            }
            // W += coeffᵀ X, bias += column sums — sample-ascending
            // accumulation, bit-identical to the per-sample axpy loop in
            // the BitExact tier.
            gemm::gemm_tn_acc_tiered(coeff.as_slice(), x, &mut out[..c * d], rows, c, d, tier);
            gemm::col_sums_acc(coeff.as_slice(), c, &mut out[c * d..]);
        }
        vector::axpy(self.reg, &self.params, out);
        Ok(total * inv_n + self.reg_term())
    }

    /// The pre-batching per-sample loss loop, retained verbatim as the
    /// naive reference the equivalence tests and the `cell_throughput`
    /// benchmark compare against.
    #[doc(hidden)]
    pub fn loss_per_sample(&self, data: &Dataset) -> f64 {
        assert_eq!(data.dim(), self.dim, "dataset dimension mismatch");
        if data.is_empty() {
            return self.reg_term();
        }
        let c = self.num_classes;
        let mut logits = vec![0.0; c];
        let mut total = 0.0;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            self.logits_into(x, &mut logits);
            total += vector::log_sum_exp(&logits) - logits[y];
        }
        total / data.len() as f64 + self.reg_term()
    }

    /// The pre-batching per-sample gradient loop (see
    /// [`loss_per_sample`](LogisticRegression::loss_per_sample)).
    #[doc(hidden)]
    pub fn grad_per_sample(&self, data: &Dataset, out: &mut [f64]) -> f64 {
        assert_eq!(out.len(), self.params.len(), "gradient buffer mismatch");
        assert_eq!(data.dim(), self.dim, "dataset dimension mismatch");
        out.iter_mut().for_each(|v| *v = 0.0);
        let c = self.num_classes;
        let d = self.dim;
        if data.is_empty() {
            vector::axpy(self.reg, &self.params, out);
            return self.reg_term();
        }
        let inv_n = 1.0 / data.len() as f64;
        let mut logits = vec![0.0; c];
        let mut probs = vec![0.0; c];
        let mut total = 0.0;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            self.logits_into(x, &mut logits);
            total += vector::log_sum_exp(&logits) - logits[y];
            vector::softmax_into(&logits, &mut probs);
            for k in 0..c {
                let coeff = (probs[k] - f64::from(u8::from(k == y))) * inv_n;
                if coeff == 0.0 {
                    continue;
                }
                vector::axpy(coeff, x, &mut out[k * d..(k + 1) * d]);
                out[c * d + k] += coeff;
            }
        }
        vector::axpy(self.reg, &self.params, out);
        total * inv_n + self.reg_term()
    }
}

impl Model for LogisticRegression {
    fn params(&self) -> &[f64] {
        &self.params
    }

    fn cache_descriptor(&self) -> String {
        format!(
            "logreg:dim={}:classes={}:reg={:x}",
            self.dim,
            self.num_classes,
            self.reg.to_bits()
        )
    }

    fn params_mut(&mut self) -> &mut [f64] {
        &mut self.params
    }

    fn loss(&self, data: &Dataset) -> f64 {
        self.loss_with(data, &mut Workspace::new())
    }

    fn grad(&self, data: &Dataset, out: &mut [f64]) -> f64 {
        self.grad_with(data, out, &mut Workspace::new())
    }

    fn loss_with(&self, data: &Dataset, ws: &mut Workspace) -> f64 {
        self.batched_loss(data, ws, None)
            .expect("uncancellable evaluation")
    }

    fn grad_with(&self, data: &Dataset, out: &mut [f64], ws: &mut Workspace) -> f64 {
        self.batched_grad(data, out, ws, None)
            .expect("uncancellable evaluation")
    }

    fn try_loss_with(&self, data: &Dataset, ws: &mut Workspace) -> Result<f64, Cancelled> {
        let cancel = ws.cancel_token().cloned();
        self.batched_loss(data, ws, cancel.as_ref())
    }

    fn try_grad_with(
        &self,
        data: &Dataset,
        out: &mut [f64],
        ws: &mut Workspace,
    ) -> Result<f64, Cancelled> {
        let cancel = ws.cancel_token().cloned();
        self.batched_grad(data, out, ws, cancel.as_ref())
    }

    fn predict(&self, x: &[f64]) -> usize {
        let mut logits = vec![0.0; self.num_classes];
        self.logits_into(x, &mut logits);
        vector::argmax(&logits)
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::finite_difference_check;
    use fedval_linalg::Matrix;

    fn two_blob_dataset() -> Dataset {
        // Two well separated clusters in 2D.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let t = i as f64 / 10.0;
            rows.push(vec![2.0 + t.sin() * 0.2, 2.0 + t.cos() * 0.2]);
            labels.push(0);
            rows.push(vec![-2.0 + t.cos() * 0.2, -2.0 + t.sin() * 0.2]);
            labels.push(1);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs).unwrap(), labels, 2).unwrap()
    }

    #[test]
    fn zero_model_has_log_c_loss() {
        let m = LogisticRegression::zeros(2, 2, 0.0);
        let d = two_blob_dataset();
        assert!((m.loss(&d) - 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut m = LogisticRegression::new(2, 3, 0.0, 42);
        let f = Matrix::from_rows(&[&[0.5, -1.0], &[1.5, 2.0], &[-0.5, 0.3]]).unwrap();
        let d = Dataset::new(f, vec![0, 1, 2], 3).unwrap();
        let coords: Vec<usize> = (0..m.num_params()).collect();
        let err = finite_difference_check(&mut m, &d, &coords, 1e-6);
        assert!(err < 1e-6, "fd mismatch {err}");
    }

    #[test]
    fn regularized_gradient_matches_finite_differences() {
        let mut m = LogisticRegression::new(3, 2, 0.5, 7);
        let f = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, -1.0]]).unwrap();
        let d = Dataset::new(f, vec![0, 1], 2).unwrap();
        let coords: Vec<usize> = (0..m.num_params()).collect();
        let err = finite_difference_check(&mut m, &d, &coords, 1e-6);
        assert!(err < 1e-6, "fd mismatch {err}");
    }

    #[test]
    fn gradient_descent_separates_blobs() {
        let d = two_blob_dataset();
        let mut m = LogisticRegression::new(2, 2, 1e-4, 1);
        let mut g = vec![0.0; m.num_params()];
        let mut prev = f64::INFINITY;
        for _ in 0..200 {
            let loss = m.grad(&d, &mut g);
            assert!(
                loss <= prev + 1e-9,
                "loss must not increase: {loss} > {prev}"
            );
            prev = loss;
            vector::axpy(-0.5, &g, m.params_mut());
        }
        assert!(m.accuracy(&d) > 0.99);
        assert!(m.loss(&d) < 0.1);
    }

    #[test]
    fn regularization_penalizes_large_weights() {
        let mut a = LogisticRegression::zeros(2, 2, 1.0);
        let d = two_blob_dataset();
        let base = a.loss(&d);
        a.params_mut()[0] = 10.0;
        // ℓ(w) ≥ reg term = 50 for this parameter change.
        assert!(a.loss(&d) > base + 49.0);
    }

    #[test]
    fn predict_is_argmax_of_logits() {
        let mut m = LogisticRegression::zeros(2, 3, 0.0);
        // Give class 2 a big bias.
        let n = m.num_params();
        m.params_mut()[n - 1] = 5.0;
        assert_eq!(m.predict(&[0.1, -0.2]), 2);
    }

    #[test]
    fn loss_on_empty_dataset_is_reg_term_only() {
        let d = two_blob_dataset().subset(&[]);
        let mut m = LogisticRegression::zeros(2, 2, 2.0);
        m.params_mut()[0] = 3.0;
        assert!((m.loss(&d) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn batched_paths_match_per_sample_reference_bitwise() {
        // More examples than one minibatch chunk, with a ragged tail, so
        // the chunked reductions cross chunk boundaries.
        let n = crate::workspace::CHUNK_ROWS * 2 + 37;
        let f = Matrix::from_fn(n, 3, |r, c| (((r + 2) * (c + 3)) % 11) as f64 / 5.0 - 1.0);
        let labels: Vec<usize> = (0..n).map(|r| r % 3).collect();
        let d = Dataset::new(f, labels, 3).unwrap();
        let m = LogisticRegression::new(3, 3, 0.05, 13);

        // Pinned to BitExact: this contract must hold regardless of the
        // FEDVAL_TIER environment the suite runs under.
        let mut ws = crate::workspace::Workspace::bit_exact();
        assert_eq!(
            m.loss_with(&d, &mut ws).to_bits(),
            m.loss_per_sample(&d).to_bits()
        );

        let mut g_batched = vec![0.0; m.num_params()];
        let mut g_ref = vec![0.0; m.num_params()];
        let lb = m.grad_with(&d, &mut g_batched, &mut ws);
        let lr = m.grad_per_sample(&d, &mut g_ref);
        assert_eq!(lb.to_bits(), lr.to_bits());
        for (a, b) in g_batched.iter().zip(&g_ref) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fast_tier_matches_reference_within_tolerance() {
        let n = crate::workspace::CHUNK_ROWS + 19;
        let f = Matrix::from_fn(n, 3, |r, c| (((r + 2) * (c + 3)) % 11) as f64 / 5.0 - 1.0);
        let labels: Vec<usize> = (0..n).map(|r| r % 3).collect();
        let d = Dataset::new(f, labels, 3).unwrap();
        let m = LogisticRegression::new(3, 3, 0.05, 13);
        let tol = |reference: f64| 1e-9 * (1.0 + reference.abs());
        let mut ws = crate::workspace::Workspace::new().with_tier(DeterminismTier::Fast);
        let lf = m.loss_with(&d, &mut ws);
        let lr = m.loss_per_sample(&d);
        assert!((lf - lr).abs() <= tol(lr), "loss {lf} vs {lr}");
        let mut g_fast = vec![0.0; m.num_params()];
        let mut g_ref = vec![0.0; m.num_params()];
        m.grad_with(&d, &mut g_fast, &mut ws);
        m.grad_per_sample(&d, &mut g_ref);
        for (i, (a, b)) in g_fast.iter().zip(&g_ref).enumerate() {
            assert!((a - b).abs() <= tol(*b), "param {i}: {a} vs {b}");
        }
    }

    #[test]
    fn clone_model_is_independent() {
        let m = LogisticRegression::new(2, 2, 0.0, 3);
        let mut b = m.clone_model();
        b.params_mut()[0] += 1.0;
        assert_ne!(m.params()[0], b.params()[0]);
    }

    #[test]
    fn identical_params_same_loss() {
        // The property behind "same data + same model ⇒ same utility".
        let d = two_blob_dataset();
        let m1 = LogisticRegression::new(2, 2, 0.1, 5);
        let mut m2 = LogisticRegression::zeros(2, 2, 0.1);
        m2.set_params(m1.params());
        assert_eq!(m1.loss(&d), m2.loss(&d));
    }
}
