//! Seeded parameter initialization.

use fedval_data::NormalSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fills `params` with Xavier/Glorot-style Gaussian values of standard
/// deviation `sqrt(2 / (fan_in + fan_out))`.
pub fn xavier_fill(params: &mut [f64], fan_in: usize, fan_out: usize, seed: u64) {
    let sd = (2.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = NormalSampler::new();
    for p in params.iter_mut() {
        *p = normal.sample_with(&mut rng, 0.0, sd);
    }
}

/// Fills `params` with `N(0, sd²)` values.
pub fn gaussian_fill(params: &mut [f64], sd: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = NormalSampler::new();
    for p in params.iter_mut() {
        *p = normal.sample_with(&mut rng, 0.0, sd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_scale_matches_fan() {
        let mut a = vec![0.0; 10_000];
        xavier_fill(&mut a, 100, 100, 1);
        let var = a.iter().map(|v| v * v).sum::<f64>() / a.len() as f64;
        // Expected variance 2/200 = 0.01.
        assert!((var - 0.01).abs() < 0.002, "var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        xavier_fill(&mut a, 4, 4, 7);
        xavier_fill(&mut b, 4, 4, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        gaussian_fill(&mut a, 1.0, 1);
        gaussian_fill(&mut b, 1.0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn gaussian_fill_zero_sd_is_zero() {
        let mut a = vec![1.0; 8];
        gaussian_fill(&mut a, 0.0, 3);
        assert!(a.iter().all(|&v| v == 0.0));
    }
}
