//! Sparse observed-entry store for the completion problem.

use std::collections::HashMap;

/// A partially observed matrix with `num_rows` rows (training rounds) and
/// columns keyed by arbitrary `u64` keys (subset bitmasks). Columns are
/// densified in first-seen order so the solvers can index factor rows
/// directly.
#[derive(Debug, Clone, Default)]
pub struct CompletionProblem {
    num_rows: usize,
    col_keys: Vec<u64>,
    key_to_col: HashMap<u64, usize>,
    /// Flat entries `(row, col, value)`.
    entries: Vec<(usize, usize, f64)>,
    /// Per-row entry indices.
    row_adj: Vec<Vec<usize>>,
    /// Per-column entry indices.
    col_adj: Vec<Vec<usize>>,
}

impl CompletionProblem {
    /// Creates an empty problem with `num_rows` rows.
    pub fn new(num_rows: usize) -> Self {
        CompletionProblem {
            num_rows,
            col_keys: Vec::new(),
            key_to_col: HashMap::new(),
            entries: Vec::new(),
            row_adj: vec![Vec::new(); num_rows],
            col_adj: Vec::new(),
        }
    }

    /// Registers a column key without adding an observation (a column that
    /// exists in the factor model but has no data is pulled to zero by the
    /// regularizer). Returns its dense index.
    pub fn ensure_column(&mut self, key: u64) -> usize {
        if let Some(&c) = self.key_to_col.get(&key) {
            return c;
        }
        let c = self.col_keys.len();
        self.col_keys.push(key);
        self.key_to_col.insert(key, c);
        self.col_adj.push(Vec::new());
        c
    }

    /// Adds an observation `value` at `(row, key)`. Duplicate observations
    /// of the same cell are allowed (they act as repeated measurements and
    /// the least-squares solution averages them).
    pub fn add_observation(&mut self, row: usize, key: u64, value: f64) {
        assert!(row < self.num_rows, "row {row} out of range");
        assert!(value.is_finite(), "observation must be finite");
        let col = self.ensure_column(key);
        let idx = self.entries.len();
        self.entries.push((row, col, value));
        self.row_adj[row].push(idx);
        self.col_adj[col].push(idx);
    }

    /// Adds a batch of `(row, key, value)` observations in iteration
    /// order — the natural sink for a utility-oracle batch evaluation
    /// replayed off its plan. Column densification order (first-seen)
    /// follows the iterator, so a deterministic iterator yields a
    /// deterministic problem.
    pub fn add_observations<I>(&mut self, observations: I)
    where
        I: IntoIterator<Item = (usize, u64, f64)>,
    {
        let iter = observations.into_iter();
        let (lower, _) = iter.size_hint();
        self.entries.reserve(lower);
        for (row, key, value) in iter {
            self.add_observation(row, key, value);
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of registered columns.
    pub fn num_cols(&self) -> usize {
        self.col_keys.len()
    }

    /// Number of observations.
    pub fn num_observations(&self) -> usize {
        self.entries.len()
    }

    /// Dense column index for `key`, if registered.
    pub fn column_index(&self, key: u64) -> Option<usize> {
        self.key_to_col.get(&key).copied()
    }

    /// Column key at dense index `col`.
    pub fn column_key(&self, col: usize) -> u64 {
        self.col_keys[col]
    }

    /// All observations as `(row, col, value)`.
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Entry indices observed in `row`.
    pub fn row_entries(&self, row: usize) -> &[usize] {
        &self.row_adj[row]
    }

    /// Entry indices observed in `col`.
    pub fn col_entries(&self, col: usize) -> &[usize] {
        &self.col_adj[col]
    }

    /// Fraction of the `num_rows × num_cols` grid that is observed.
    pub fn density(&self) -> f64 {
        let total = self.num_rows * self.num_cols().max(1);
        self.entries.len() as f64 / total as f64
    }

    /// `true` when every registered column has at least one observation —
    /// the practical form of the paper's Assumption 1 (a never-observed
    /// column cannot be recovered, only regularized to zero).
    pub fn every_column_observed(&self) -> bool {
        self.col_adj.iter().all(|c| !c.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_densify_in_first_seen_order() {
        let mut p = CompletionProblem::new(3);
        p.add_observation(0, 0b101, 1.0);
        p.add_observation(1, 0b010, 2.0);
        p.add_observation(2, 0b101, 3.0);
        assert_eq!(p.num_cols(), 2);
        assert_eq!(p.column_index(0b101), Some(0));
        assert_eq!(p.column_index(0b010), Some(1));
        assert_eq!(p.column_key(0), 0b101);
        assert_eq!(p.column_index(0b111), None);
    }

    #[test]
    fn adjacency_tracks_entries() {
        let mut p = CompletionProblem::new(2);
        p.add_observation(0, 7, 1.0);
        p.add_observation(0, 9, 2.0);
        p.add_observation(1, 7, 3.0);
        assert_eq!(p.row_entries(0), &[0, 1]);
        assert_eq!(p.row_entries(1), &[2]);
        assert_eq!(p.col_entries(0), &[0, 2]); // key 7
        assert_eq!(p.num_observations(), 3);
    }

    #[test]
    fn bulk_add_matches_sequential_add() {
        let obs = [(0usize, 7u64, 1.0), (0, 9, 2.0), (1, 7, 3.0)];
        let mut bulk = CompletionProblem::new(2);
        bulk.add_observations(obs);
        let mut seq = CompletionProblem::new(2);
        for (r, k, v) in obs {
            seq.add_observation(r, k, v);
        }
        assert_eq!(bulk.entries(), seq.entries());
        assert_eq!(bulk.num_cols(), seq.num_cols());
        assert_eq!(bulk.column_key(0), seq.column_key(0));
    }

    #[test]
    fn ensure_column_without_observation() {
        let mut p = CompletionProblem::new(1);
        let c = p.ensure_column(42);
        assert_eq!(c, 0);
        assert_eq!(p.num_cols(), 1);
        assert!(!p.every_column_observed());
        p.add_observation(0, 42, 1.0);
        assert!(p.every_column_observed());
    }

    #[test]
    fn density_computation() {
        let mut p = CompletionProblem::new(2);
        p.add_observation(0, 1, 1.0);
        p.add_observation(1, 2, 1.0);
        // 2 entries of a 2x2 grid.
        assert!((p.density() - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_row() {
        let mut p = CompletionProblem::new(1);
        p.add_observation(1, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_value() {
        let mut p = CompletionProblem::new(1);
        p.add_observation(0, 0, f64::NAN);
    }
}
