//! Stochastic-gradient solver for the factorization problem.
//!
//! A second, independent optimizer for cross-checking ALS (the two must
//! agree on recovered entries for well-posed problems) and for very large
//! column counts where the per-column ridge solves dominate.
//!
//! Uses the standard biased-per-entry regularization: for each observed
//! entry the factors are shrunk by `λ / n_obs(row or col)` so a full epoch
//! applies the same total shrinkage as the global objective.
//!
//! The step size follows a configurable [`StepSchedule`]. The default,
//! [`StepSchedule::AdaptiveBackoff`], keeps the step at the configured
//! `learning_rate` while the objective decreases and shrinks it only on
//! an epoch that *increases* the objective — replacing the old
//! unconditional `lr / (1 + epoch/50)` decay, which starved the solver
//! long before it reached the ALS/CCD basin and left it stalled an
//! order of magnitude above their objective.

use crate::completer::{check_finite, Completion, CompletionError, MatrixCompleter, SolveHooks};
use crate::factors::Factors;
use crate::problem::CompletionProblem;
use fedval_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// How the SGD step size evolves across epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepSchedule {
    /// The configured `learning_rate`, every epoch.
    Constant,
    /// `learning_rate / √(1 + epoch)` — the classical diminishing-step
    /// guarantee, for workloads where monotone decay is wanted.
    InvSqrt,
    /// Hold the step at `learning_rate` while the objective decreases;
    /// multiply it by `factor` after any epoch whose objective is not an
    /// improvement (including a non-finite one). Greedy but effective:
    /// the step stays large through the easy descent and only shrinks
    /// when it actually overshoots.
    AdaptiveBackoff {
        /// Multiplier applied on a non-improving epoch (`0 < factor < 1`).
        factor: f64,
    },
}

impl Default for StepSchedule {
    fn default() -> Self {
        StepSchedule::AdaptiveBackoff { factor: 0.5 }
    }
}

/// SGD configuration.
#[derive(Debug, Clone)]
pub struct SgdConfig {
    /// Factor rank `r`.
    pub rank: usize,
    /// Regularization `λ`.
    pub lambda: f64,
    /// Epochs (full shuffled passes over the observations).
    pub epochs: usize,
    /// Base step size (evolved per [`SgdConfig::schedule`]).
    pub learning_rate: f64,
    /// Step-size schedule across epochs.
    pub schedule: StepSchedule,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl SgdConfig {
    /// Defaults tuned for the utility matrices in the experiments.
    pub fn new(rank: usize) -> Self {
        SgdConfig {
            rank,
            lambda: 0.1,
            epochs: 200,
            learning_rate: 0.2,
            schedule: StepSchedule::default(),
            seed: 0,
        }
    }

    /// Builder-style override of `λ`.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style override of the epoch budget.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder-style override of the step schedule.
    pub fn with_schedule(mut self, schedule: StepSchedule) -> Self {
        self.schedule = schedule;
        self
    }
}

impl MatrixCompleter for SgdConfig {
    fn name(&self) -> &'static str {
        "sgd"
    }

    fn complete_with(
        &self,
        problem: &CompletionProblem,
        hooks: SolveHooks<'_>,
    ) -> Result<Completion, CompletionError> {
        if self.rank == 0 {
            return Err(CompletionError::InvalidRank);
        }
        if self.lambda.is_nan() || self.lambda < 0.0 {
            // SGD only shrinks, so λ = 0 is fine; negative λ amplifies.
            return Err(CompletionError::InvalidLambda {
                lambda: self.lambda,
            });
        }
        let (factors, trace) = run_sgd(problem, self, hooks)?;
        check_finite(self.name(), factors, trace)
    }
}

/// Runs SGD, returning factors and the objective after each epoch.
#[deprecated(
    since = "0.2.0",
    note = "use the `MatrixCompleter` impl: `config.complete(problem)`"
)]
pub fn solve_sgd(problem: &CompletionProblem, config: &SgdConfig) -> (Factors, Vec<f64>) {
    match config.complete(problem) {
        Ok(c) => (c.factors, c.objective_trace),
        Err(e) => panic!("{e}"),
    }
}

/// The SGD epochs themselves; configuration validity is the caller's
/// responsibility ([`MatrixCompleter::complete`] checks it).
fn run_sgd(
    problem: &CompletionProblem,
    config: &SgdConfig,
    mut hooks: SolveHooks<'_>,
) -> Result<(Factors, Vec<f64>), CompletionError> {
    let t = problem.num_rows();
    let c = problem.num_cols();
    let r = config.rank;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mean_abs = if problem.num_observations() == 0 {
        1.0
    } else {
        problem
            .entries()
            .iter()
            .map(|&(_, _, v)| v.abs())
            .sum::<f64>()
            / problem.num_observations() as f64
    };
    let scale = (mean_abs.max(1e-6) / r as f64).sqrt();
    let mut factors = Factors {
        w: Matrix::from_fn(t, r, |_, _| (rng.random::<f64>() - 0.5) * 2.0 * scale),
        h: Matrix::from_fn(c, r, |_, _| (rng.random::<f64>() - 0.5) * 2.0 * scale),
    };

    // Per-row/column observation counts for regularization splitting.
    let row_counts: Vec<usize> = (0..t).map(|i| problem.row_entries(i).len()).collect();
    let col_counts: Vec<usize> = (0..c).map(|j| problem.col_entries(j).len()).collect();

    let mut order: Vec<usize> = (0..problem.num_observations()).collect();
    let mut trace = Vec::with_capacity(config.epochs + 1);
    trace.push(factors.objective(problem, config.lambda));
    let mut adaptive_lr = config.learning_rate;
    for epoch in 0..config.epochs {
        hooks.check()?;
        let lr = match config.schedule {
            StepSchedule::Constant => config.learning_rate,
            StepSchedule::InvSqrt => config.learning_rate / (1.0 + epoch as f64).sqrt(),
            StepSchedule::AdaptiveBackoff { .. } => adaptive_lr,
        };
        order.shuffle(&mut rng);
        for &eid in &order {
            let (row, col, value) = problem.entries()[eid];
            let pred = factors.predict(row, col);
            let err = value - pred;
            let reg_w = config.lambda / row_counts[row].max(1) as f64;
            let reg_h = config.lambda / col_counts[col].max(1) as f64;
            for k in 0..r {
                let wv = factors.w.get(row, k);
                let hv = factors.h.get(col, k);
                factors.w.set(row, k, wv + lr * (err * hv - reg_w * wv));
                factors.h.set(col, k, hv + lr * (err * wv - reg_h * hv));
            }
        }
        let objective = factors.objective(problem, config.lambda);
        if let StepSchedule::AdaptiveBackoff { factor } = config.schedule {
            let prev = *trace.last().expect("non-empty");
            // Negated so a NaN epoch (incomparable) also backs off.
            let improved = objective <= prev;
            if !improved {
                adaptive_lr *= factor;
            }
        }
        trace.push(objective);
        hooks.sweep(epoch + 1, objective);
    }
    // Columns never observed: pin to zero (the regularizer's fixed point).
    for j in 0..c {
        if col_counts[j] == 0 {
            factors.h.row_mut(j).iter_mut().for_each(|v| *v = 0.0);
        }
    }
    Ok((factors, trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trait-API shorthand used throughout these tests.
    fn solve_sgd(problem: &CompletionProblem, config: &SgdConfig) -> (Factors, Vec<f64>) {
        let c = config.complete(problem).unwrap();
        (c.factors, c.objective_trace)
    }

    fn masked_low_rank(
        t: usize,
        c: usize,
        rank: usize,
        keep: f64,
        seed: u64,
    ) -> (CompletionProblem, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Matrix::from_fn(t, rank, |_, _| rng.random::<f64>() * 2.0 - 1.0);
        let h = Matrix::from_fn(c, rank, |_, _| rng.random::<f64>() * 2.0 - 1.0);
        let full = w.matmul_transpose(&h).unwrap();
        let mut p = CompletionProblem::new(t);
        for j in 0..c {
            p.add_observation(0, j as u64, full.get(0, j));
        }
        for i in 1..t {
            for j in 0..c {
                if rng.random::<f64>() < keep {
                    p.add_observation(i, j as u64, full.get(i, j));
                }
            }
        }
        (p, full)
    }

    #[test]
    fn objective_trends_downward() {
        let (p, _) = masked_low_rank(10, 12, 2, 0.5, 1);
        let (_, trace) = solve_sgd(&p, &SgdConfig::new(2).with_epochs(50));
        assert!(trace.last().unwrap() < &(trace[0] * 0.5), "{trace:?}");
    }

    #[test]
    fn fits_observed_entries() {
        let (p, _) = masked_low_rank(12, 14, 2, 0.6, 2);
        let (factors, _) = solve_sgd(&p, &SgdConfig::new(3).with_lambda(1e-3).with_epochs(300));
        assert!(
            factors.observed_rmse(&p) < 0.05,
            "rmse {}",
            factors.observed_rmse(&p)
        );
    }

    #[test]
    fn agrees_with_als_on_recovered_entries() {
        let (p, full) = masked_low_rank(14, 16, 2, 0.6, 4);
        let (f_sgd, _) = solve_sgd(&p, &SgdConfig::new(2).with_lambda(1e-3).with_epochs(400));
        let f_als = crate::als::AlsConfig::new(2)
            .with_lambda(1e-3)
            .with_max_iters(200)
            .complete(&p)
            .unwrap()
            .factors;
        let rec_sgd = f_sgd.complete();
        let rec_als = f_als.complete();
        let denom = full.frobenius_norm();
        let d_sgd = rec_sgd.sub(&full).unwrap().frobenius_norm() / denom;
        let d_als = rec_als.sub(&full).unwrap().frobenius_norm() / denom;
        assert!(d_sgd < 0.15, "sgd recovery {d_sgd}");
        assert!(d_als < 0.05, "als recovery {d_als}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (p, _) = masked_low_rank(6, 8, 2, 0.5, 9);
        for schedule in [
            StepSchedule::Constant,
            StepSchedule::InvSqrt,
            StepSchedule::default(),
        ] {
            let cfg = SgdConfig::new(2).with_epochs(20).with_schedule(schedule);
            let (f1, _) = solve_sgd(&p, &cfg);
            let (f2, _) = solve_sgd(&p, &cfg);
            assert_eq!(f1.w.as_slice(), f2.w.as_slice(), "{schedule:?}");
        }
    }

    #[test]
    fn adaptive_backoff_beats_the_old_decay() {
        // The old unconditional `lr / (1 + epoch/50)` decay stalls well
        // above the optimum; the adaptive default keeps the step large
        // until it overshoots and must land at least as low. InvSqrt
        // reproduces the diminishing-step behavior for comparison.
        let (p, _) = masked_low_rank(12, 14, 2, 0.5, 21);
        let budget = 150;
        let adaptive = solve_sgd(&p, &SgdConfig::new(2).with_lambda(1e-3).with_epochs(budget)).1;
        let inv_sqrt = solve_sgd(
            &p,
            &SgdConfig::new(2)
                .with_lambda(1e-3)
                .with_epochs(budget)
                .with_schedule(StepSchedule::InvSqrt),
        )
        .1;
        let final_adaptive = *adaptive.last().unwrap();
        let final_inv_sqrt = *inv_sqrt.last().unwrap();
        assert!(
            final_adaptive <= final_inv_sqrt * 1.01,
            "adaptive {final_adaptive} vs inv-sqrt {final_inv_sqrt}"
        );
        // And it must come close to the exact ridge solves (the ~2×
        // criterion is asserted against ALS in the pipeline tests).
        let als = crate::als::AlsConfig::new(2)
            .with_lambda(1e-3)
            .with_max_iters(200)
            .complete(&p)
            .unwrap();
        let als_final = *als.objective_trace.last().unwrap();
        assert!(
            final_adaptive <= 2.0 * als_final.max(1e-12),
            "adaptive SGD {final_adaptive} not within 2x of ALS {als_final}"
        );
    }

    #[test]
    fn unobserved_column_pinned_to_zero() {
        let mut p = CompletionProblem::new(3);
        p.add_observation(0, 5, 2.0);
        p.add_observation(2, 5, 2.0);
        let ghost = p.ensure_column(77);
        let (factors, _) = solve_sgd(&p, &SgdConfig::new(2).with_epochs(10));
        assert!(factors.h.row(ghost).iter().all(|&v| v == 0.0));
    }
}
