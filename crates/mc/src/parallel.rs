//! Pooled row-sweep helper shared by the ALS and CCD++ solvers.
//!
//! Both solvers' sweeps decompose into independent per-row (or
//! per-column, or per-coordinate) sub-solves whose outputs land in
//! disjoint slices of one buffer. [`pooled_rows`] is the thin wrapper
//! that submits those sub-solves to the persistent
//! [`fedval_runtime::Pool`] in contiguous chunks — replacing the old
//! spawn-scoped-threads-per-sweep pattern whose setup cost dominated
//! the many-small-sweep workloads TMC produces.
//!
//! Determinism: each row's result depends only on its index and the
//! (read-only) captured state, and every row writes only its own
//! `width`-wide slice, so the outcome is bit-identical for any pool
//! size — including the inline path taken when the batch is too small
//! to amortize a submission.

use fedval_runtime::Pool;

/// Rows-per-worker below which a sweep stays on the calling thread: a
/// ridge sub-solve is microseconds, so tiny sweeps (every bundled
/// quick/default profile) would pay more in queue traffic than they
/// save.
const MIN_ROWS_PER_WORKER: usize = 32;

/// Applies `f(i, row_i)` for every `width`-wide row `i` of `target`,
/// fanning contiguous row chunks out across the global pool. `f` must
/// be a pure function of `i` and captured read-only state.
pub(crate) fn pooled_rows(target: &mut [f64], width: usize, f: impl Fn(usize, &mut [f64]) + Sync) {
    pooled_rows_init(target, width, || (), |(), i, row| f(i, row));
}

/// [`pooled_rows`] with per-worker scratch state: `init()` runs once
/// per chunk (on the worker that takes it) and `f(&mut scratch, i,
/// row_i)` per row. This is how the ALS half-steps reuse their
/// design-matrix/ridge buffers across the rows of a sweep instead of
/// allocating per sub-solve. Determinism is unchanged: scratch is
/// write-only state from `f`'s perspective between rows (each row's
/// result must not depend on which rows shared its scratch).
pub(crate) fn pooled_rows_init<S>(
    target: &mut [f64],
    width: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut [f64]) + Sync,
) {
    assert!(width > 0, "row width must be positive");
    let n = target.len() / width;
    if n == 0 {
        return;
    }
    let pool = Pool::global();
    let workers = pool.threads().min(n / MIN_ROWS_PER_WORKER).max(1).min(n);
    if workers == 1 {
        let mut scratch = init();
        for (i, row) in target.chunks_mut(width).enumerate() {
            f(&mut scratch, i, row);
        }
        return;
    }
    let chunk_rows = n.div_ceil(workers);
    pool.scope(|scope| {
        for (chunk_idx, chunk) in target.chunks_mut(chunk_rows * width).enumerate() {
            let start = chunk_idx * chunk_rows;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut scratch = init();
                for (local, row) in chunk.chunks_mut(width).enumerate() {
                    f(&mut scratch, start + local, row);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_every_row_exactly_once() {
        let mut buf = vec![0.0; 300 * 3];
        pooled_rows(&mut buf, 3, |i, row| {
            for (k, v) in row.iter_mut().enumerate() {
                *v = (i * 3 + k) as f64;
            }
        });
        for (j, v) in buf.iter().enumerate() {
            assert_eq!(*v, j as f64);
        }
    }

    #[test]
    fn init_variant_reuses_scratch_within_a_chunk() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let mut buf = vec![0.0; 4096];
        pooled_rows_init(
            &mut buf,
            1,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                vec![0.0f64; 8]
            },
            |scratch, i, row| {
                scratch[0] = i as f64;
                row[0] = scratch[0] * 2.0;
            },
        );
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, i as f64 * 2.0);
        }
        assert!(
            inits.load(Ordering::Relaxed) <= fedval_runtime::Pool::global().threads().max(1),
            "scratch created at most once per chunk"
        );
    }

    #[test]
    fn small_sweeps_stay_inline_and_match_large() {
        // 4 rows (inline) and 4096 rows (pooled) both produce the pure
        // function of the index.
        for n in [4usize, 4096] {
            let mut buf = vec![0.0; n];
            pooled_rows(&mut buf, 1, |i, row| row[0] = (i as f64).sqrt());
            for (i, v) in buf.iter().enumerate() {
                assert_eq!(v.to_bits(), (i as f64).sqrt().to_bits(), "n={n}, i={i}");
            }
        }
    }
}
