//! Low-rank matrix completion for partially observed utility matrices.
//!
//! Solves the paper's regularized factorization problem (equations (9) and
//! (13)):
//!
//! ```text
//! minimize_{W ∈ R^{T×r}, H ∈ R^{C×r}}
//!     Σ_{(t,S) observed} (U_{t,S} − w_tᵀ h_S)² + λ (‖W‖_F² + ‖H‖_F²)
//! ```
//!
//! The paper uses LIBPMF (CCD++); this crate provides that algorithm
//! ([`ccd`]) plus a deterministic ALS solver (the default — same
//! objective, same fixed points) and an SGD solver for cross-checking,
//! all over a shared sparse [`CompletionProblem`] representation whose
//! columns are keyed by subset bitmasks.
//!
//! All three solvers are driven through the object-safe
//! [`MatrixCompleter`] trait (implemented by their config types), which
//! validates inputs and returns typed [`CompletionError`]s instead of
//! panicking — the valuation layer above holds a
//! `Box<dyn MatrixCompleter>` and never cares which algorithm runs.
//!
//! * [`problem`] — observed-entry store with row/column adjacency.
//! * [`completer`] — the [`MatrixCompleter`] trait and its error type.
//! * [`als`] — alternating least squares via ridge sub-solves.
//! * [`ccd`] — CCD++ cyclic coordinate descent (the LIBPMF algorithm).
//! * [`sgd`] — stochastic gradient solver.
//! * [`factors`] — the `(W, H)` output pair and prediction helpers.

// Index-driven loops are deliberate in the numeric kernels: the loop
// variable simultaneously drives several arrays/offsets and mirrors the
// textbook formulas, which iterator chains would obscure.
#![allow(clippy::needless_range_loop)]

pub mod als;
pub mod ccd;
pub mod completer;
pub mod factors;
mod parallel;
pub mod problem;
pub mod sgd;

pub use als::AlsConfig;
pub use ccd::CcdConfig;
pub use completer::{Completion, CompletionError, MatrixCompleter, SolveHooks};
pub use factors::Factors;
pub use problem::CompletionProblem;
pub use sgd::{SgdConfig, StepSchedule};

// Deprecated free-function surface, kept for downstream compatibility.
#[allow(deprecated)]
pub use als::solve_als;
#[allow(deprecated)]
pub use ccd::solve_ccd;
#[allow(deprecated)]
pub use sgd::solve_sgd;
