//! The `(W, H)` factor pair produced by the completion solvers.

use crate::problem::CompletionProblem;
use fedval_linalg::Matrix;

/// Low-rank factors `W ∈ R^{T×r}` (rows: rounds) and `H ∈ R^{C×r}` (rows:
/// subset columns), approximating the observed matrix by `W Hᵀ`.
#[derive(Debug, Clone)]
pub struct Factors {
    /// Round factor.
    pub w: Matrix,
    /// Column (subset) factor.
    pub h: Matrix,
}

impl Factors {
    /// Factor rank `r`.
    pub fn rank(&self) -> usize {
        self.w.cols()
    }

    /// Predicted value at `(row, col)`: `w_rowᵀ h_col`.
    pub fn predict(&self, row: usize, col: usize) -> f64 {
        fedval_linalg::vector::dot(self.w.row(row), self.h.row(col))
    }

    /// The completed dense matrix `W Hᵀ` (feasible only for modest sizes).
    pub fn complete(&self) -> Matrix {
        self.w
            .matmul_transpose(&self.h)
            .expect("factor ranks agree by construction")
    }

    /// Sum of the `W` rows — the vector `Σ_t w_t` that turns the
    /// ComFedSV double sum into a single pass over subset columns.
    pub fn row_factor_sum(&self) -> Vec<f64> {
        let r = self.rank();
        let mut out = vec![0.0; r];
        for t in 0..self.w.rows() {
            fedval_linalg::vector::axpy(1.0, self.w.row(t), &mut out);
        }
        out
    }

    /// Squared-error part of the paper's objective on the observed entries.
    pub fn observed_sse(&self, problem: &CompletionProblem) -> f64 {
        problem
            .entries()
            .iter()
            .map(|&(row, col, v)| {
                let e = v - self.predict(row, col);
                e * e
            })
            .sum()
    }

    /// The full regularized objective of problem (9)/(13).
    pub fn objective(&self, problem: &CompletionProblem, lambda: f64) -> f64 {
        let reg = self.w.frobenius_norm().powi(2) + self.h.frobenius_norm().powi(2);
        self.observed_sse(problem) + lambda * reg
    }

    /// Root-mean-square error over the observed entries.
    pub fn observed_rmse(&self, problem: &CompletionProblem) -> f64 {
        let n = problem.num_observations();
        if n == 0 {
            return 0.0;
        }
        (self.observed_sse(problem) / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_factors() -> Factors {
        Factors {
            w: Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]).unwrap(),
            h: Matrix::from_rows(&[&[3.0, 1.0], &[0.5, -1.0]]).unwrap(),
        }
    }

    #[test]
    fn predict_is_dot_product() {
        let f = simple_factors();
        assert_eq!(f.predict(0, 0), 3.0);
        assert_eq!(f.predict(1, 1), -2.0);
        assert_eq!(f.rank(), 2);
    }

    #[test]
    fn complete_matches_predict() {
        let f = simple_factors();
        let m = f.complete();
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(m.get(i, j), f.predict(i, j));
            }
        }
    }

    #[test]
    fn row_factor_sum_sums_rows() {
        let f = simple_factors();
        assert_eq!(f.row_factor_sum(), vec![1.0, 2.0]);
    }

    #[test]
    fn objective_components() {
        let f = simple_factors();
        let mut p = CompletionProblem::new(2);
        p.add_observation(0, 10, 3.0); // predicted exactly
        p.add_observation(1, 11, 0.0); // predicted -2, error 2
        let sse = f.observed_sse(&p);
        assert!((sse - 4.0).abs() < 1e-12);
        let reg = f.w.frobenius_norm().powi(2) + f.h.frobenius_norm().powi(2);
        assert!((f.objective(&p, 0.5) - (4.0 + 0.5 * reg)).abs() < 1e-12);
        assert!((f.observed_rmse(&p) - (4.0f64 / 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_of_empty_problem_is_zero() {
        let f = simple_factors();
        let p = CompletionProblem::new(2);
        assert_eq!(f.observed_rmse(&p), 0.0);
    }
}
