//! The pluggable completion-solver interface.
//!
//! Every factorization solver in this crate (ALS, CCD++, SGD) minimizes
//! the same objective (9)/(13) over the same sparse
//! [`CompletionProblem`], so the valuation layer above should not care
//! which one runs. [`MatrixCompleter`] is the object-safe contract they
//! all satisfy: validate the configuration, solve, and return a
//! [`Completion`] (factors + objective trajectory) or a typed
//! [`CompletionError`] — never panic. Consumers hold a
//! `Box<dyn MatrixCompleter>` and stay solver-agnostic.
//!
//! The solver *configuration types* are the completers: [`AlsConfig`],
//! [`CcdConfig`], and [`SgdConfig`] each implement the trait, so a config
//! value doubles as a solver object.
//!
//! [`AlsConfig`]: crate::als::AlsConfig
//! [`CcdConfig`]: crate::ccd::CcdConfig
//! [`SgdConfig`]: crate::sgd::SgdConfig

use crate::factors::Factors;
use crate::problem::CompletionProblem;
use fedval_runtime::{CancelToken, Cancelled};
use std::fmt;

/// Typed failure modes of a completion solve.
#[derive(Debug, Clone, PartialEq)]
pub enum CompletionError {
    /// The factor rank was zero (every solver needs `r ≥ 1`).
    InvalidRank,
    /// The regularization weight is outside the solver's admissible range
    /// (ALS and CCD++ need `λ > 0` for well-posed ridge sub-problems; SGD
    /// accepts `λ ≥ 0`).
    InvalidLambda {
        /// The rejected value.
        lambda: f64,
    },
    /// The objective became non-finite during the solve (step size too
    /// large, pathological data, …).
    SolverDiverged {
        /// Which solver diverged (its [`MatrixCompleter::name`]).
        solver: &'static str,
        /// Sweep/epoch index at which the objective first left ℝ.
        sweep: usize,
    },
    /// The solve was cancelled through the [`SolveHooks`] cancel token
    /// before it converged (observed at sweep boundaries).
    Cancelled,
}

impl fmt::Display for CompletionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompletionError::InvalidRank => write!(f, "completion rank must be positive"),
            CompletionError::InvalidLambda { lambda } => {
                write!(f, "regularization lambda {lambda} is not admissible")
            }
            CompletionError::SolverDiverged { solver, sweep } => {
                write!(f, "{solver} solver diverged at sweep {sweep}")
            }
            CompletionError::Cancelled => write!(f, "completion solve was cancelled"),
        }
    }
}

impl std::error::Error for CompletionError {}

impl From<Cancelled> for CompletionError {
    fn from(_: Cancelled) -> Self {
        CompletionError::Cancelled
    }
}

/// Per-solve observation and cancellation hooks threaded through
/// [`MatrixCompleter::complete_with`].
///
/// The default value ([`SolveHooks::new`]) observes nothing and never
/// cancels — [`MatrixCompleter::complete`] is exactly
/// `complete_with(problem, SolveHooks::new())`.
#[derive(Default)]
pub struct SolveHooks<'a> {
    on_sweep: Option<&'a mut dyn FnMut(usize, f64)>,
    cancel: Option<&'a CancelToken>,
}

impl<'a> SolveHooks<'a> {
    /// No observer, no cancellation.
    pub fn new() -> Self {
        SolveHooks::default()
    }

    /// Calls `observer(sweep_index, objective)` after every completed
    /// sweep/epoch (`sweep_index` counts from 1; the post-init objective
    /// is not reported — it is `objective_trace[0]` in the result).
    pub fn with_on_sweep(mut self, observer: &'a mut dyn FnMut(usize, f64)) -> Self {
        self.on_sweep = Some(observer);
        self
    }

    /// Observes `cancel` at sweep boundaries; a cancelled solve returns
    /// [`CompletionError::Cancelled`] instead of partial factors.
    pub fn with_cancel(mut self, cancel: &'a CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Reports one finished sweep to the observer (no-op without one).
    pub(crate) fn sweep(&mut self, index: usize, objective: f64) {
        if let Some(observer) = self.on_sweep.as_mut() {
            observer(index, objective);
        }
    }

    /// `Err(Cancelled)` once the token (if any) is cancelled.
    pub(crate) fn check(&self) -> Result<(), CompletionError> {
        match self.cancel {
            Some(token) => token.check().map_err(CompletionError::from),
            None => Ok(()),
        }
    }
}

/// A solved completion: the `(W, H)` factor pair plus the objective value
/// after initialization and after every sweep (the "residual trajectory"
/// surfaced by valuation diagnostics).
#[derive(Debug, Clone)]
pub struct Completion {
    /// Solved factors.
    pub factors: Factors,
    /// Objective trajectory; `objective_trace[0]` is the post-init value.
    pub objective_trace: Vec<f64>,
}

/// Object-safe interface over the factorization solvers.
///
/// Implementations validate their configuration and return typed errors
/// instead of panicking, so a `Box<dyn MatrixCompleter>` can be driven by
/// user-supplied settings safely.
pub trait MatrixCompleter: Send + Sync {
    /// Short lowercase solver name ("als", "ccd", "sgd", …).
    fn name(&self) -> &'static str;

    /// Solves `problem`, returning factors and the objective trajectory.
    fn complete(&self, problem: &CompletionProblem) -> Result<Completion, CompletionError> {
        self.complete_with(problem, SolveHooks::new())
    }

    /// [`Self::complete`] with per-sweep observation and cooperative
    /// cancellation — the valuation layer bridges its progress stream
    /// and cancel token through these hooks.
    fn complete_with(
        &self,
        problem: &CompletionProblem,
        hooks: SolveHooks<'_>,
    ) -> Result<Completion, CompletionError>;
}

/// Shared post-solve check: a non-finite objective anywhere in the
/// trajectory means the solver diverged.
pub(crate) fn check_finite(
    solver: &'static str,
    factors: Factors,
    objective_trace: Vec<f64>,
) -> Result<Completion, CompletionError> {
    if let Some(sweep) = objective_trace.iter().position(|o| !o.is_finite()) {
        return Err(CompletionError::SolverDiverged { solver, sweep });
    }
    Ok(Completion {
        factors,
        objective_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::AlsConfig;
    use crate::ccd::CcdConfig;
    use crate::sgd::SgdConfig;

    fn tiny_problem() -> CompletionProblem {
        let mut p = CompletionProblem::new(3);
        p.add_observation(0, 1, 1.0);
        p.add_observation(1, 1, 1.5);
        p.add_observation(2, 3, -0.5);
        p
    }

    #[test]
    fn all_solvers_run_behind_the_trait() {
        let p = tiny_problem();
        let solvers: Vec<Box<dyn MatrixCompleter>> = vec![
            Box::new(AlsConfig::new(2)),
            Box::new(CcdConfig::new(2)),
            Box::new(SgdConfig::new(2).with_epochs(20)),
        ];
        for s in solvers {
            let c = s.complete(&p).unwrap();
            assert_eq!(c.factors.rank(), 2, "{}", s.name());
            assert!(c.objective_trace.iter().all(|o| o.is_finite()));
        }
    }

    #[test]
    fn zero_rank_is_a_typed_error() {
        let p = tiny_problem();
        for s in [
            &AlsConfig::new(0) as &dyn MatrixCompleter,
            &CcdConfig::new(0),
            &SgdConfig::new(0),
        ] {
            assert!(
                matches!(s.complete(&p), Err(CompletionError::InvalidRank)),
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn divergent_sgd_is_reported_not_panicked() {
        // An absurd learning rate makes SGD blow up to infinity.
        let mut p = CompletionProblem::new(4);
        for i in 0..4u64 {
            for j in 0..4u64 {
                p.add_observation(i as usize, j, 10.0);
            }
        }
        let mut cfg = SgdConfig::new(3).with_epochs(200);
        cfg.learning_rate = 1e6;
        match cfg.complete(&p) {
            Err(CompletionError::SolverDiverged { solver: "sgd", .. }) => {}
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn sweep_observer_sees_every_epoch() {
        let p = tiny_problem();
        let mut sweeps: Vec<(usize, f64)> = Vec::new();
        let mut observer = |i: usize, obj: f64| sweeps.push((i, obj));
        let c = AlsConfig::new(2)
            .complete_with(&p, SolveHooks::new().with_on_sweep(&mut observer))
            .unwrap();
        // One event per post-init trajectory entry, indices from 1, and
        // the reported objectives are exactly the trajectory.
        assert_eq!(sweeps.len(), c.objective_trace.len() - 1);
        for (k, &(i, obj)) in sweeps.iter().enumerate() {
            assert_eq!(i, k + 1);
            assert_eq!(obj.to_bits(), c.objective_trace[k + 1].to_bits());
        }
    }

    #[test]
    fn cancelled_solve_is_a_typed_error() {
        use fedval_runtime::CancelToken;
        let p = tiny_problem();
        let token = CancelToken::new();
        token.cancel();
        for s in [
            &AlsConfig::new(2) as &dyn MatrixCompleter,
            &CcdConfig::new(2),
            &SgdConfig::new(2),
        ] {
            assert_eq!(
                s.complete_with(&p, SolveHooks::new().with_cancel(&token))
                    .unwrap_err(),
                CompletionError::Cancelled,
                "{}",
                s.name()
            );
        }
        // Cancelling from the sweep observer stops at the next boundary
        // (SGD runs a fixed epoch budget, so the cut point is exact).
        let token = CancelToken::new();
        let mut seen = 0usize;
        let mut observer = |_: usize, _: f64| {
            seen += 1;
            if seen == 2 {
                token.cancel();
            }
        };
        let hooks = SolveHooks::new()
            .with_on_sweep(&mut observer)
            .with_cancel(&token);
        let err = SgdConfig::new(2).with_epochs(10).complete_with(&p, hooks);
        assert_eq!(err.unwrap_err(), CompletionError::Cancelled);
        assert_eq!(seen, 2, "solve stopped within one epoch of cancellation");
    }

    #[test]
    fn errors_display_human_readable() {
        let e = CompletionError::InvalidLambda { lambda: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = CompletionError::SolverDiverged {
            solver: "sgd",
            sweep: 3,
        };
        assert!(e.to_string().contains("sgd"));
    }
}
