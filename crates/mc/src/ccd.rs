//! CCD++ — the cyclic coordinate-descent solver used by LIBPMF.
//!
//! This is the algorithm the paper actually runs (via the LIBPMF package)
//! to solve problem (13). CCD++ sweeps over factor *dimensions*: for each
//! rank index `k` it alternately updates the k-th column of `W` and of `H`
//! against the rank-one residual, each scalar update being the exact
//! 1-D ridge minimizer. Like ALS it monotonically decreases the objective;
//! unlike ALS it needs no linear solves, so its per-sweep cost is linear
//! in the number of observations.
//!
//! The scalar updates within one rank dimension are independent across
//! rows (resp. columns) — each reads only the residuals and the *other*
//! factor's column — so large sweeps fan those loops out across the
//! persistent `fedval_runtime` pool (see `crate::parallel`) exactly
//! like the ALS half-steps, staying bit-identical to the serial order.

use crate::completer::{check_finite, Completion, CompletionError, MatrixCompleter, SolveHooks};
use crate::factors::Factors;
use crate::parallel::pooled_rows;
use crate::problem::CompletionProblem;
use fedval_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// CCD++ configuration.
#[derive(Debug, Clone)]
pub struct CcdConfig {
    /// Factor rank `r`.
    pub rank: usize,
    /// Regularization `λ` (must be positive).
    pub lambda: f64,
    /// Outer sweeps (each touches every rank dimension once).
    pub max_iters: usize,
    /// Inner passes per rank dimension per sweep (LIBPMF default ~5).
    pub inner_iters: usize,
    /// Stop when the relative objective improvement falls below this.
    pub tol: f64,
    /// Seed for random initialization.
    pub seed: u64,
}

impl CcdConfig {
    /// Defaults matching the ALS configuration for comparability.
    pub fn new(rank: usize) -> Self {
        CcdConfig {
            rank,
            lambda: 0.1,
            max_iters: 30,
            inner_iters: 3,
            tol: 1e-8,
            seed: 0,
        }
    }

    /// Builder-style override of `λ`.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style override of the sweep budget.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }
}

impl MatrixCompleter for CcdConfig {
    fn name(&self) -> &'static str {
        "ccd"
    }

    fn complete_with(
        &self,
        problem: &CompletionProblem,
        hooks: SolveHooks<'_>,
    ) -> Result<Completion, CompletionError> {
        if self.rank == 0 {
            return Err(CompletionError::InvalidRank);
        }
        if self.lambda.is_nan() || self.lambda <= 0.0 {
            // Each 1-D ridge update divides by λ + Σ h² — λ > 0 keeps it safe.
            return Err(CompletionError::InvalidLambda {
                lambda: self.lambda,
            });
        }
        let (factors, trace) = run_ccd(problem, self, hooks)?;
        check_finite(self.name(), factors, trace)
    }
}

/// Runs CCD++ on `problem`, returning factors and the per-sweep objective
/// trajectory (first entry = objective after initialization).
#[deprecated(
    since = "0.2.0",
    note = "use the `MatrixCompleter` impl: `config.complete(problem)`"
)]
pub fn solve_ccd(problem: &CompletionProblem, config: &CcdConfig) -> (Factors, Vec<f64>) {
    match config.complete(problem) {
        Ok(c) => (c.factors, c.objective_trace),
        Err(e) => panic!("{e}"),
    }
}

/// The CCD++ iteration itself; configuration validity is the caller's
/// responsibility ([`MatrixCompleter::complete`] checks it).
fn run_ccd(
    problem: &CompletionProblem,
    config: &CcdConfig,
    mut hooks: SolveHooks<'_>,
) -> Result<(Factors, Vec<f64>), CompletionError> {
    let t = problem.num_rows();
    let c = problem.num_cols();
    let r = config.rank;

    // Scale-aware random init (same convention as the ALS solver).
    let mean_abs = if problem.num_observations() == 0 {
        1.0
    } else {
        problem
            .entries()
            .iter()
            .map(|&(_, _, v)| v.abs())
            .sum::<f64>()
            / problem.num_observations() as f64
    };
    let scale = (mean_abs.max(1e-6) / r as f64).sqrt();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut factors = Factors {
        w: Matrix::from_fn(t, r, |_, _| (rng.random::<f64>() - 0.5) * 2.0 * scale),
        h: Matrix::from_fn(c, r, |_, _| (rng.random::<f64>() - 0.5) * 2.0 * scale),
    };

    // Residuals r_e = value − w_rowᵀ h_col, maintained incrementally.
    let mut residuals: Vec<f64> = problem
        .entries()
        .iter()
        .map(|&(row, col, v)| v - factors.predict(row, col))
        .collect();

    // Per-dimension scratch columns. The factor matrices are row-major
    // (stride `r` between consecutive rows of one column), so the inner
    // products of a rank dimension would stride-gather through them on
    // every entry; instead, column `k` of each factor is mirrored in the
    // contiguous `wcol`/`hcol` caches (refreshed after each scatter) and
    // every fold/unfold/ridge pass reads those — same values, unit
    // stride. `wk`/`hk` receive the pooled per-row updates.
    let mut wk = vec![0.0; t];
    let mut hk = vec![0.0; c];
    let mut wcol = vec![0.0; t];
    let mut hcol = vec![0.0; c];

    let mut objective_trace = vec![objective(problem, &factors, &residuals, config.lambda)];
    for sweep in 0..config.max_iters {
        hooks.check()?;
        for k in 0..r {
            for (row, v) in wcol.iter_mut().enumerate() {
                *v = factors.w.get(row, k);
            }
            for (col, v) in hcol.iter_mut().enumerate() {
                *v = factors.h.get(col, k);
            }
            // Fold dimension k back into the residual: r̂_e = r_e + w_tk h_ck.
            for (e, &(row, col, _)) in problem.entries().iter().enumerate() {
                residuals[e] += wcol[row] * hcol[col];
            }
            for _inner in 0..config.inner_iters {
                // Update column k of W: 1-D ridge per row. Rows read only
                // the residuals and H's cached column, so they fan out
                // across the pool.
                {
                    let hcol = &hcol;
                    let residuals = &residuals;
                    pooled_rows(&mut wk, 1, |row, out| {
                        let mut num = 0.0;
                        let mut den = config.lambda;
                        for &e in problem.row_entries(row) {
                            let (_, col, _) = problem.entries()[e];
                            let hv = hcol[col];
                            num += residuals[e] * hv;
                            den += hv * hv;
                        }
                        out[0] = num / den;
                    });
                }
                for (row, &v) in wk.iter().enumerate() {
                    factors.w.set(row, k, v);
                }
                wcol.copy_from_slice(&wk);
                // Update column k of H: 1-D ridge per column.
                {
                    let wcol = &wcol;
                    let residuals = &residuals;
                    pooled_rows(&mut hk, 1, |col, out| {
                        let mut num = 0.0;
                        let mut den = config.lambda;
                        for &e in problem.col_entries(col) {
                            let (row, _, _) = problem.entries()[e];
                            let wv = wcol[row];
                            num += residuals[e] * wv;
                            den += wv * wv;
                        }
                        out[0] = num / den;
                    });
                }
                for (col, &v) in hk.iter().enumerate() {
                    factors.h.set(col, k, v);
                }
                hcol.copy_from_slice(&hk);
            }
            // Subtract the refreshed rank-one term from the residual.
            for (e, &(row, col, _)) in problem.entries().iter().enumerate() {
                residuals[e] -= wcol[row] * hcol[col];
            }
        }
        let obj = objective(problem, &factors, &residuals, config.lambda);
        let prev = *objective_trace.last().expect("non-empty");
        objective_trace.push(obj);
        hooks.sweep(sweep + 1, obj);
        if prev - obj <= config.tol * prev.abs().max(1e-12) {
            break;
        }
    }

    // Never-observed columns are pulled to exactly zero by the 1-D ridge
    // (numerator 0); pin explicitly so the invariant holds even with a
    // zero sweep budget.
    for col in 0..c {
        if problem.col_entries(col).is_empty() {
            factors.h.row_mut(col).iter_mut().for_each(|v| *v = 0.0);
        }
    }

    Ok((factors, objective_trace))
}

fn objective(
    problem: &CompletionProblem,
    factors: &Factors,
    residuals: &[f64],
    lambda: f64,
) -> f64 {
    let sse: f64 = residuals.iter().map(|r| r * r).sum();
    let _ = problem;
    sse + lambda * (factors.w.frobenius_norm().powi(2) + factors.h.frobenius_norm().powi(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trait-API shorthand used throughout these tests.
    fn solve_ccd(problem: &CompletionProblem, config: &CcdConfig) -> (Factors, Vec<f64>) {
        let c = config.complete(problem).unwrap();
        (c.factors, c.objective_trace)
    }

    fn masked_low_rank(
        t: usize,
        c: usize,
        rank: usize,
        keep: f64,
        seed: u64,
    ) -> (CompletionProblem, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Matrix::from_fn(t, rank, |_, _| rng.random::<f64>() * 2.0 - 1.0);
        let h = Matrix::from_fn(c, rank, |_, _| rng.random::<f64>() * 2.0 - 1.0);
        let full = w.matmul_transpose(&h).unwrap();
        let mut p = CompletionProblem::new(t);
        for j in 0..c {
            p.add_observation(0, j as u64, full.get(0, j));
        }
        for i in 1..t {
            for j in 0..c {
                if rng.random::<f64>() < keep {
                    p.add_observation(i, j as u64, full.get(i, j));
                }
            }
        }
        (p, full)
    }

    #[test]
    fn objective_is_monotone_nonincreasing() {
        let (p, _) = masked_low_rank(12, 16, 3, 0.4, 1);
        let (_, trace) = solve_ccd(&p, &CcdConfig::new(3).with_lambda(0.05));
        for w in trace.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "objective increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn recovers_low_rank_matrix() {
        let (p, full) = masked_low_rank(20, 24, 2, 0.5, 3);
        let (factors, _) = solve_ccd(&p, &CcdConfig::new(2).with_lambda(1e-3).with_max_iters(200));
        let rec = factors.complete();
        let rel = rec.sub(&full).unwrap().frobenius_norm() / full.frobenius_norm();
        assert!(rel < 0.05, "relative recovery error {rel}");
    }

    #[test]
    fn agrees_with_als_solution() {
        // Both solvers minimize the same objective; on a well-posed problem
        // the recovered matrices must agree closely.
        let (p, _) = masked_low_rank(14, 16, 2, 0.6, 4);
        let (f_ccd, _) = solve_ccd(&p, &CcdConfig::new(2).with_lambda(1e-3).with_max_iters(300));
        let f_als = crate::als::AlsConfig::new(2)
            .with_lambda(1e-3)
            .with_max_iters(300)
            .complete(&p)
            .unwrap()
            .factors;
        let a = f_ccd.complete();
        let b = f_als.complete();
        let rel = a.sub(&b).unwrap().frobenius_norm() / b.frobenius_norm().max(1e-12);
        assert!(rel < 0.05, "CCD vs ALS disagreement {rel}");
    }

    #[test]
    fn residual_bookkeeping_matches_direct_objective() {
        let (p, _) = masked_low_rank(8, 10, 2, 0.5, 7);
        let (factors, trace) = solve_ccd(&p, &CcdConfig::new(2).with_lambda(0.05));
        let direct = factors.objective(&p, 0.05);
        let tracked = *trace.last().unwrap();
        assert!(
            (direct - tracked).abs() < 1e-8 * direct.abs().max(1.0),
            "incremental residual drifted: {tracked} vs {direct}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (p, _) = masked_low_rank(6, 8, 2, 0.5, 9);
        let cfg = CcdConfig::new(2);
        let (f1, _) = solve_ccd(&p, &cfg);
        let (f2, _) = solve_ccd(&p, &cfg);
        assert_eq!(f1.w.as_slice(), f2.w.as_slice());
        assert_eq!(f1.h.as_slice(), f2.h.as_slice());
    }

    #[test]
    fn unobserved_column_stays_zero() {
        let mut p = CompletionProblem::new(3);
        p.add_observation(0, 1, 2.0);
        p.add_observation(2, 1, 2.0);
        let ghost = p.ensure_column(50);
        let (factors, _) = solve_ccd(&p, &CcdConfig::new(2));
        assert!(factors.h.row(ghost).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_zero_rank() {
        let p = CompletionProblem::new(1);
        assert!(matches!(
            CcdConfig::new(0).complete(&p),
            Err(CompletionError::InvalidRank)
        ));
    }
}
