//! Alternating least squares for the regularized factorization problem.
//!
//! Each ALS half-step solves, per row (resp. column), the exact ridge
//! sub-problem of objective (9)/(13) with the other factor fixed — so the
//! objective is monotonically non-increasing, which the tests verify. Rows
//! and columns are independent within a half-step and are solved in
//! parallel through the persistent `fedval_runtime` pool (see
//! `crate::parallel`), eliminating the per-sweep thread-spawn overhead
//! the old scoped-thread implementation paid.

use crate::completer::{check_finite, Completion, CompletionError, MatrixCompleter, SolveHooks};
use crate::factors::Factors;
use crate::parallel::pooled_rows_init;
use crate::problem::CompletionProblem;
use fedval_linalg::{cholesky, Matrix};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// ALS configuration.
#[derive(Debug, Clone)]
pub struct AlsConfig {
    /// Factor rank `r`.
    pub rank: usize,
    /// Regularization `λ` (must be positive — it also guarantees the ridge
    /// systems are well-posed).
    pub lambda: f64,
    /// Maximum full sweeps.
    pub max_iters: usize,
    /// Stop when the relative objective improvement falls below this.
    pub tol: f64,
    /// Seed for the random initialization.
    pub seed: u64,
}

impl AlsConfig {
    /// A sensible default for the paper's utility matrices.
    pub fn new(rank: usize) -> Self {
        AlsConfig {
            rank,
            lambda: 0.1,
            max_iters: 50,
            tol: 1e-8,
            seed: 0,
        }
    }

    /// Builder-style override of `λ`.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style override of the iteration budget.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl MatrixCompleter for AlsConfig {
    fn name(&self) -> &'static str {
        "als"
    }

    fn complete_with(
        &self,
        problem: &CompletionProblem,
        hooks: SolveHooks<'_>,
    ) -> Result<Completion, CompletionError> {
        if self.rank == 0 {
            return Err(CompletionError::InvalidRank);
        }
        if self.lambda.is_nan() || self.lambda <= 0.0 {
            // The ridge sub-solves need λ > 0 to stay SPD.
            return Err(CompletionError::InvalidLambda {
                lambda: self.lambda,
            });
        }
        let (factors, trace) = run_als(problem, self, hooks)?;
        check_finite(self.name(), factors, trace)
    }
}

/// Runs ALS on `problem`, returning the factors and the per-sweep objective
/// trajectory (first entry = objective after initialization).
#[deprecated(
    since = "0.2.0",
    note = "use the `MatrixCompleter` impl: `config.complete(problem)`"
)]
pub fn solve_als(problem: &CompletionProblem, config: &AlsConfig) -> (Factors, Vec<f64>) {
    match config.complete(problem) {
        Ok(c) => (c.factors, c.objective_trace),
        Err(e) => panic!("{e}"),
    }
}

/// The ALS iteration itself; configuration validity is the caller's
/// responsibility ([`MatrixCompleter::complete`] checks it).
fn run_als(
    problem: &CompletionProblem,
    config: &AlsConfig,
    mut hooks: SolveHooks<'_>,
) -> Result<(Factors, Vec<f64>), CompletionError> {
    let t = problem.num_rows();
    let c = problem.num_cols();
    let r = config.rank;

    // Small random init, scaled so initial predictions have the magnitude
    // of the observed values.
    let scale = {
        let mean_abs = if problem.num_observations() == 0 {
            1.0
        } else {
            problem
                .entries()
                .iter()
                .map(|&(_, _, v)| v.abs())
                .sum::<f64>()
                / problem.num_observations() as f64
        };
        (mean_abs.max(1e-6) / r as f64).sqrt()
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut factors = Factors {
        w: Matrix::from_fn(t, r, |_, _| (rng.random::<f64>() - 0.5) * 2.0 * scale),
        h: Matrix::from_fn(c, r, |_, _| (rng.random::<f64>() - 0.5) * 2.0 * scale),
    };

    let mut objective_trace = vec![factors.objective(problem, config.lambda)];
    for sweep in 0..config.max_iters {
        hooks.check()?;
        half_step_rows(problem, &mut factors, config.lambda);
        half_step_cols(problem, &mut factors, config.lambda);
        let obj = factors.objective(problem, config.lambda);
        let prev = *objective_trace.last().expect("non-empty");
        objective_trace.push(obj);
        hooks.sweep(sweep + 1, obj);
        if prev - obj <= config.tol * prev.abs().max(1e-12) {
            break;
        }
    }
    Ok((factors, objective_trace))
}

/// Per-worker buffers for the ridge sub-solves of one half-step: the
/// gathered design matrix and right-hand side, plus the Gram/Cholesky
/// scratch. Reused across every row a worker handles — the half-steps
/// used to allocate all four per sub-solve.
#[derive(Default)]
struct RowScratch {
    design: Matrix,
    rhs: Vec<f64>,
    ridge: cholesky::RidgeScratch,
}

/// Solves every row of `W` given fixed `H`.
fn half_step_rows(problem: &CompletionProblem, factors: &mut Factors, lambda: f64) {
    let r = factors.rank();
    let h = factors.h.clone();
    pooled_rows_init(
        factors.w.as_mut_slice(),
        r,
        RowScratch::default,
        |scratch, row, out| {
            let entry_ids = problem.row_entries(row);
            solve_one(problem, &h, entry_ids, lambda, Side::Row, scratch, out);
        },
    );
}

/// Solves every row of `H` given fixed `W`.
fn half_step_cols(problem: &CompletionProblem, factors: &mut Factors, lambda: f64) {
    let r = factors.rank();
    let w = factors.w.clone();
    pooled_rows_init(
        factors.h.as_mut_slice(),
        r,
        RowScratch::default,
        |scratch, col, out| {
            let entry_ids = problem.col_entries(col);
            solve_one(problem, &w, entry_ids, lambda, Side::Col, scratch, out);
        },
    );
}

enum Side {
    Row,
    Col,
}

/// Ridge-solves one factor row against its observed entries, assembling
/// the normal equations through the blocked
/// [`gemm`](fedval_linalg::gemm) Gram kernel
/// ([`cholesky::ridge_solve_into`]). A row/column with no observations
/// is regularized to zero.
fn solve_one(
    problem: &CompletionProblem,
    other: &Matrix,
    entry_ids: &[usize],
    lambda: f64,
    side: Side,
    scratch: &mut RowScratch,
    out: &mut [f64],
) {
    if entry_ids.is_empty() {
        out.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let rank = other.cols();
    // Every design row is fully overwritten below; skip the zero-fill.
    scratch.design.resize_for_overwrite(entry_ids.len(), rank);
    scratch.rhs.clear();
    for (k, &eid) in entry_ids.iter().enumerate() {
        let (row, col, value) = problem.entries()[eid];
        let other_index = match side {
            Side::Row => col,
            Side::Col => row,
        };
        scratch
            .design
            .row_mut(k)
            .copy_from_slice(other.row(other_index));
        scratch.rhs.push(value);
    }
    cholesky::ridge_solve_into(
        &scratch.design,
        &scratch.rhs,
        lambda,
        out,
        &mut scratch.ridge,
    )
    .expect("ridge system is SPD for lambda > 0");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trait-API shorthand used throughout these tests.
    fn solve_als(problem: &CompletionProblem, config: &AlsConfig) -> (Factors, Vec<f64>) {
        let c = config.complete(problem).unwrap();
        (c.factors, c.objective_trace)
    }

    /// Builds a problem from a dense low-rank matrix with a random mask.
    fn masked_low_rank(
        t: usize,
        c: usize,
        rank: usize,
        keep: f64,
        seed: u64,
    ) -> (CompletionProblem, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Matrix::from_fn(t, rank, |_, _| rng.random::<f64>() * 2.0 - 1.0);
        let h = Matrix::from_fn(c, rank, |_, _| rng.random::<f64>() * 2.0 - 1.0);
        let full = w.matmul_transpose(&h).unwrap();
        let mut p = CompletionProblem::new(t);
        // Ensure every column is seen at least once (Assumption 1 analogue):
        // row 0 observes everything.
        for j in 0..c {
            p.add_observation(0, j as u64, full.get(0, j));
        }
        for i in 1..t {
            for j in 0..c {
                if rng.random::<f64>() < keep {
                    p.add_observation(i, j as u64, full.get(i, j));
                }
            }
        }
        (p, full)
    }

    #[test]
    fn objective_is_monotone_nonincreasing() {
        let (p, _) = masked_low_rank(12, 16, 3, 0.4, 1);
        let (_, trace) = solve_als(&p, &AlsConfig::new(3).with_lambda(0.05));
        for w in trace.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "objective increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn recovers_low_rank_matrix_from_partial_observations() {
        let (p, full) = masked_low_rank(20, 24, 2, 0.5, 3);
        let (factors, _) = solve_als(&p, &AlsConfig::new(2).with_lambda(1e-3).with_max_iters(200));
        let rec = factors.complete();
        let rel = rec.sub(&full).unwrap().frobenius_norm() / full.frobenius_norm();
        assert!(rel < 0.05, "relative recovery error {rel}");
    }

    #[test]
    fn observed_entries_fit_tightly() {
        let (p, _) = masked_low_rank(10, 12, 2, 0.6, 5);
        let (factors, _) = solve_als(&p, &AlsConfig::new(3).with_lambda(1e-4));
        assert!(factors.observed_rmse(&p) < 1e-2);
    }

    #[test]
    fn deterministic_given_seed() {
        let (p, _) = masked_low_rank(8, 10, 2, 0.5, 7);
        let cfg = AlsConfig::new(2).with_seed(11);
        let (f1, _) = solve_als(&p, &cfg);
        let (f2, _) = solve_als(&p, &cfg);
        assert_eq!(f1.w.as_slice(), f2.w.as_slice());
        assert_eq!(f1.h.as_slice(), f2.h.as_slice());
    }

    #[test]
    fn unobserved_column_is_zero() {
        let mut p = CompletionProblem::new(4);
        p.add_observation(0, 1, 1.0);
        p.add_observation(1, 1, 1.0);
        let ghost = p.ensure_column(99);
        let (factors, _) = solve_als(&p, &AlsConfig::new(2));
        for v in factors.h.row(ghost) {
            assert_eq!(*v, 0.0);
        }
    }

    #[test]
    fn higher_lambda_shrinks_factors() {
        let (p, _) = masked_low_rank(10, 10, 2, 0.7, 9);
        let (f_small, _) = solve_als(&p, &AlsConfig::new(2).with_lambda(1e-3));
        let (f_big, _) = solve_als(&p, &AlsConfig::new(2).with_lambda(10.0));
        let norm = |f: &Factors| f.w.frobenius_norm() + f.h.frobenius_norm();
        assert!(norm(&f_big) < norm(&f_small));
    }

    #[test]
    fn rank_one_problem_solved_by_rank_one_model() {
        // U = a bᵀ exactly; even with few observations ALS should fit the
        // observed entries nearly perfectly.
        let mut p = CompletionProblem::new(5);
        let a = [1.0, 2.0, -1.0, 0.5, 3.0];
        let b = [2.0, -1.0, 0.5, 1.5];
        for i in 0..5 {
            for j in 0..4 {
                if (i + j) % 2 == 0 || i == 0 {
                    p.add_observation(i, j as u64, a[i] * b[j]);
                }
            }
        }
        let (factors, _) = solve_als(&p, &AlsConfig::new(1).with_lambda(1e-5).with_max_iters(100));
        assert!(factors.observed_rmse(&p) < 1e-3);
    }

    #[test]
    fn rejects_zero_rank() {
        let p = CompletionProblem::new(1);
        assert!(matches!(
            AlsConfig::new(0).complete(&p),
            Err(CompletionError::InvalidRank)
        ));
    }

    #[test]
    fn rejects_zero_lambda() {
        let p = CompletionProblem::new(1);
        assert!(matches!(
            AlsConfig::new(1).with_lambda(0.0).complete(&p),
            Err(CompletionError::InvalidLambda { .. })
        ));
    }
}
