//! Cross-process coordination for shared cache directories.
//!
//! Multiple `fedval_serve` processes may point `FEDVAL_CACHE_DIR` at
//! the same directory. Segment writes were already safe without
//! coordination (unique names, temp + rename), but two operations need
//! mutual exclusion across processes:
//!
//! * **maintenance** (manifest rewrite, segment compaction, tmp GC) —
//!   a single writer at a time, so two processes never compact the same
//!   segments concurrently;
//! * **world training** — two processes handed the same
//!   `(scenario, seed, fl-config)` job should train once, with the
//!   loser waiting for the winner's persisted trace instead of
//!   duplicating minutes of FedAvg.
//!
//! Both use [`DirLock`]: an advisory, OS-level exclusive file lock
//! (`flock`-style, via the `std::fs::File` locking API) on a named
//! `*.lock` file inside the cache directory. The kernel releases the
//! lock when the holding process exits **for any reason** — including
//! `SIGKILL` — so a writer dying mid-operation never strands the
//! directory; the next contender simply acquires the lock. The lock
//! file's *contents* (holder pid + an acquisition note) are purely
//! informational, a heartbeat for humans inspecting a shared directory;
//! correctness rides on the kernel lock alone, never on the metadata.

use std::fs::{self, File, OpenOptions, TryLockError};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// An exclusive advisory lock on one file in a cache directory. Held
/// for the guard's lifetime; released on drop or process death.
#[derive(Debug)]
pub struct DirLock {
    file: File,
    path: PathBuf,
}

impl DirLock {
    /// Tries to take the exclusive lock on `path` without blocking.
    /// `Ok(None)` means another live process holds it. The lock file is
    /// created if absent and never removed (removal would race fresh
    /// acquisitions on the old inode).
    pub fn try_acquire(path: impl Into<PathBuf>, note: &str) -> io::Result<Option<DirLock>> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        match file.try_lock() {
            Ok(()) => {}
            Err(TryLockError::WouldBlock) => return Ok(None),
            Err(TryLockError::Error(e)) => return Err(e),
        }
        let lock = DirLock { file, path };
        lock.write_heartbeat(note);
        Ok(Some(lock))
    }

    /// The lock file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rewrites the informational holder metadata (pid + note). Called
    /// on acquisition and harmless to call again as a liveness
    /// heartbeat; failures are ignored — the kernel lock is the truth.
    pub fn write_heartbeat(&self, note: &str) {
        let mut file = &self.file;
        let _ = file.set_len(0);
        let _ = writeln!(file, "pid {}\n{note}", std::process::id());
        let _ = file.flush();
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        // Dropping the File releases the OS lock; scrub the metadata so
        // a stale pid is not mistaken for a live holder by humans.
        let _ = self.file.set_len(0);
    }
}

/// Removes `*.tmp` leftovers from crashed writers. A temp file only
/// exists for the instant between write and rename, so anything older
/// than `max_age` is an orphan from a process that died mid-write.
/// Returns the number of files removed; all errors are soft (another
/// process may race the same cleanup).
pub(crate) fn sweep_orphan_tmp(dir: &Path, max_age: std::time::Duration) -> u64 {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0u64;
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        let is_tmp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".tmp"));
        if !is_tmp {
            continue;
        }
        let old_enough = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age >= max_age);
        if old_enough && fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fedval-coord-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lock_is_exclusive_within_a_process_and_releases_on_drop() {
        let dir = tmpdir("excl");
        let path = dir.join("writer.lock");
        let held = DirLock::try_acquire(&path, "first")
            .unwrap()
            .expect("uncontended lock acquires");
        assert!(
            DirLock::try_acquire(&path, "second").unwrap().is_none(),
            "second acquisition must observe the held lock"
        );
        let contents = fs::read_to_string(&path).unwrap();
        assert!(contents.contains(&format!("pid {}", std::process::id())));
        drop(held);
        assert!(
            DirLock::try_acquire(&path, "third").unwrap().is_some(),
            "drop releases the lock"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_tmp_sweep_spares_fresh_files() {
        let dir = tmpdir("sweep");
        fs::write(dir.join("seg-x.cells.tmp"), b"partial").unwrap();
        fs::write(dir.join("seg-x.cells"), b"real").unwrap();
        assert_eq!(
            sweep_orphan_tmp(&dir, Duration::from_secs(3600)),
            0,
            "a just-written tmp is presumed live"
        );
        assert_eq!(sweep_orphan_tmp(&dir, Duration::ZERO), 1);
        assert!(!dir.join("seg-x.cells.tmp").exists());
        assert!(dir.join("seg-x.cells").exists(), "non-tmp files untouched");
        fs::remove_dir_all(&dir).unwrap();
    }
}
