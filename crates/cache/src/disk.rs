//! On-disk cell segments: append-friendly persistence for completed
//! utility cells, keyed by `(trace fingerprint, tier, round, subset)`.
//!
//! # Format (version 1)
//!
//! Each segment file is a 32-byte header followed by fixed-width
//! 28-byte records, all little-endian:
//!
//! ```text
//! header: magic "FVCELLS\0" (8) | version u32 (4) | tier u8 (1) |
//!         pad [0;3] (3) | trace fingerprint u128 (16)
//! record: round u32 | subset u64 | value f64 bits u64 | checksum u64
//! ```
//!
//! The per-record checksum fingerprints the full cell identity *and*
//! the value (trace, tier, round, subset, bits), so a flipped byte
//! anywhere in a record is caught, and a record can never be attributed
//! to the wrong trace even if files are renamed.
//!
//! # Degradation contract
//!
//! A corrupt, truncated, stale-versioned, or misnamed file must never
//! produce a wrong value — cells are pure, so the safe response to any
//! anomaly is to stop trusting the file and recompute. Concretely:
//! header anomalies reject the whole file; a bad record checksum or a
//! short tail stops the scan at the last good record (earlier records
//! are individually checksummed, hence still trustworthy). Every
//! anomaly increments a counter in [`LoadOutcome`] and logs one line to
//! stderr.
//!
//! # Concurrency
//!
//! Writers never touch an existing file: each flush writes a fresh
//! uniquely named segment (`seg-<trace>-t<tier>-p<pid>-<seq>.cells`)
//! via a temp file + rename, so concurrent processes sharing a cache
//! directory need no locking and readers never observe a partial
//! segment (short of a crashed writer, which truncation detection
//! absorbs). A human-readable `manifest.json` summarizing the directory
//! is rewritten after each flush; it is advisory only — loads scan the
//! directory, not the manifest.

use crate::hash::{Fingerprint, FingerprintHasher};
use fedval_jsonio::JsonWriter;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Segment file magic (8 bytes, includes a NUL so text files never
/// match).
pub const MAGIC: [u8; 8] = *b"FVCELLS\0";

/// Current segment format version; bump on any layout change.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_BYTES: usize = 32;
const RECORD_BYTES: usize = 28;

/// One persisted cell: `(round, subset bits, value)`.
pub type DiskCell = (u32, u64, f64);

/// Result of scanning a cache directory for one `(trace, tier)`.
#[derive(Default, Debug)]
pub struct LoadOutcome {
    /// Verified cells, in scan order.
    pub cells: Vec<DiskCell>,
    /// Segment files that matched the requested trace/tier name prefix.
    pub segments_scanned: u64,
    /// Anomalies encountered (bad header, bad checksum, short tail).
    /// Each was logged and the affected bytes ignored.
    pub corrupt_events: u64,
}

/// Writer/loader for one cache directory.
pub struct DiskCache {
    dir: PathBuf,
    /// Per-process suffix so concurrent flushes never collide.
    seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) `dir` as a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            seq: AtomicU64::new(0),
        })
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_prefix(trace: Fingerprint, tier: u8) -> String {
        format!("seg-{}-t{tier}-", trace.to_hex())
    }

    /// Loads every verified cell for `(trace, tier)` from all matching
    /// segments. I/O errors on individual files are treated as corrupt
    /// events (log + skip), not hard failures — a half-readable cache
    /// must degrade to recompute.
    pub fn load(&self, trace: Fingerprint, tier: u8) -> LoadOutcome {
        let mut out = LoadOutcome::default();
        let prefix = Self::segment_prefix(trace, tier);
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) => {
                log_event(&format!("cache dir {} unreadable: {e}", self.dir.display()));
                out.corrupt_events += 1;
                return out;
            }
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".cells"))
            })
            .collect();
        // Deterministic scan order across processes.
        paths.sort();
        for path in paths {
            out.segments_scanned += 1;
            match fs::read(&path) {
                Ok(bytes) => read_segment(&path, &bytes, trace, tier, &mut out),
                Err(e) => {
                    log_event(&format!("segment {} unreadable: {e}", path.display()));
                    out.corrupt_events += 1;
                }
            }
        }
        out
    }

    /// Persists `cells` as one fresh segment for `(trace, tier)`;
    /// returns the segment path. Empty input writes nothing.
    pub fn append(
        &self,
        trace: Fingerprint,
        tier: u8,
        cells: &[DiskCell],
    ) -> io::Result<Option<PathBuf>> {
        if cells.is_empty() {
            return Ok(None);
        }
        let mut buf = Vec::with_capacity(HEADER_BYTES + cells.len() * RECORD_BYTES);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.push(tier);
        buf.extend_from_slice(&[0u8; 3]);
        buf.extend_from_slice(&trace.to_le_bytes());
        for &(round, subset, value) in cells {
            let bits = value.to_bits();
            buf.extend_from_slice(&round.to_le_bytes());
            buf.extend_from_slice(&subset.to_le_bytes());
            buf.extend_from_slice(&bits.to_le_bytes());
            buf.extend_from_slice(&record_checksum(trace, tier, round, subset, bits).to_le_bytes());
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let name = format!(
            "{}p{}-{seq}.cells",
            Self::segment_prefix(trace, tier),
            std::process::id()
        );
        let tmp = self.dir.join(format!("{name}.tmp"));
        let path = self.dir.join(&name);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(Some(path))
    }

    /// Rewrites `manifest.json`: one row per segment file with its
    /// trace, tier, and record count. Advisory (for humans and tooling;
    /// never read on load).
    pub fn write_manifest(&self) -> io::Result<()> {
        let mut rows: Vec<(String, u64)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with("seg-") || !name.ends_with(".cells") {
                continue;
            }
            let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
            let records = len.saturating_sub(HEADER_BYTES as u64) / RECORD_BYTES as u64;
            rows.push((name.to_string(), records));
        }
        rows.sort();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.str_field("format", "fedval-cell-cache");
        w.u64_field("version", FORMAT_VERSION as u64);
        w.begin_array_field("segments");
        for (name, records) in &rows {
            w.begin_object_compact();
            w.str_field("file", name);
            w.u64_field("records", *records);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let tmp = self.dir.join("manifest.json.tmp");
        fs::write(&tmp, w.finish())?;
        fs::rename(tmp, self.dir.join("manifest.json"))
    }
}

/// The checksum stored with each record: a fingerprint fold of the full
/// cell identity plus the value bits.
fn record_checksum(trace: Fingerprint, tier: u8, round: u32, subset: u64, bits: u64) -> u64 {
    let mut h = FingerprintHasher::new("fedval-cell-record-v1");
    h.write_u64(trace.bits() as u64);
    h.write_u64((trace.bits() >> 64) as u64);
    h.write_u64(tier as u64);
    h.write_u64(round as u64);
    h.write_u64(subset);
    h.write_u64(bits);
    h.finish().bits() as u64
}

/// Parses one segment's bytes into `out`, enforcing the degradation
/// contract (header anomaly → reject file; record anomaly → stop at
/// last good record).
fn read_segment(path: &Path, bytes: &[u8], trace: Fingerprint, tier: u8, out: &mut LoadOutcome) {
    if bytes.len() < HEADER_BYTES {
        log_event(&format!("segment {} truncated header", path.display()));
        out.corrupt_events += 1;
        return;
    }
    if bytes[..8] != MAGIC {
        log_event(&format!("segment {} bad magic", path.display()));
        out.corrupt_events += 1;
        return;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        log_event(&format!(
            "segment {} version {version} != {FORMAT_VERSION}; ignoring",
            path.display()
        ));
        out.corrupt_events += 1;
        return;
    }
    let file_tier = bytes[12];
    let file_trace = Fingerprint::from_le_bytes(bytes[16..32].try_into().expect("16 bytes"));
    if file_tier != tier || file_trace != trace {
        // Misnamed or renamed file claiming the wrong identity.
        log_event(&format!(
            "segment {} header identity mismatch; ignoring",
            path.display()
        ));
        out.corrupt_events += 1;
        return;
    }
    let mut body = &bytes[HEADER_BYTES..];
    while !body.is_empty() {
        if body.len() < RECORD_BYTES {
            log_event(&format!(
                "segment {} short tail ({} bytes); kept {} records",
                path.display(),
                body.len(),
                out.cells.len()
            ));
            out.corrupt_events += 1;
            return;
        }
        let round = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
        let subset = u64::from_le_bytes(body[4..12].try_into().expect("8 bytes"));
        let bits = u64::from_le_bytes(body[12..20].try_into().expect("8 bytes"));
        let check = u64::from_le_bytes(body[20..28].try_into().expect("8 bytes"));
        if check != record_checksum(trace, tier, round, subset, bits) {
            log_event(&format!(
                "segment {} checksum mismatch; stopping scan",
                path.display()
            ));
            out.corrupt_events += 1;
            return;
        }
        out.cells.push((round, subset, f64::from_bits(bits)));
        body = &body[RECORD_BYTES..];
    }
}

fn log_event(msg: &str) {
    eprintln!("fedval_cache: {msg} (degrading to recompute)");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fedval-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn trace() -> Fingerprint {
        Fingerprint::from_bits(0xdead_beef_cafe_f00d_1234_5678_9abc_def0)
    }

    fn sample_cells() -> Vec<DiskCell> {
        vec![(0, 0b1, 0.5), (0, 0b11, -1.25), (3, 0b101, 1e-9)]
    }

    #[test]
    fn round_trip_preserves_bits() {
        let dir = tmpdir("roundtrip");
        let disk = DiskCache::open(&dir).unwrap();
        disk.append(trace(), 1, &sample_cells()).unwrap();
        let out = disk.load(trace(), 1);
        assert_eq!(out.cells, sample_cells());
        assert_eq!(out.corrupt_events, 0);
        assert_eq!(out.segments_scanned, 1);
        // Wrong tier / trace: nothing matches, nothing corrupt.
        assert!(disk.load(trace(), 0).cells.is_empty());
        assert!(disk.load(Fingerprint::from_bits(1), 1).cells.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_accumulate_across_appends() {
        let dir = tmpdir("accumulate");
        let disk = DiskCache::open(&dir).unwrap();
        disk.append(trace(), 0, &[(0, 1, 1.0)]).unwrap();
        disk.append(trace(), 0, &[(1, 1, 2.0)]).unwrap();
        let out = disk.load(trace(), 0);
        assert_eq!(out.segments_scanned, 2);
        assert_eq!(out.cells.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_keeps_verified_prefix() {
        let dir = tmpdir("truncate");
        let disk = DiskCache::open(&dir).unwrap();
        let path = disk
            .append(trace(), 0, &sample_cells())
            .unwrap()
            .expect("segment written");
        let bytes = fs::read(&path).unwrap();
        // Chop mid-way through the last record.
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let out = disk.load(trace(), 0);
        assert_eq!(out.cells, sample_cells()[..2].to_vec());
        assert_eq!(out.corrupt_events, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_checksum_byte_stops_scan() {
        let dir = tmpdir("flip");
        let disk = DiskCache::open(&dir).unwrap();
        let path = disk
            .append(trace(), 0, &sample_cells())
            .unwrap()
            .expect("segment written");
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte in the second record's value field.
        let off = HEADER_BYTES + RECORD_BYTES + 14;
        bytes[off] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let out = disk.load(trace(), 0);
        assert_eq!(out.cells, sample_cells()[..1].to_vec());
        assert_eq!(out.corrupt_events, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_version_header_rejects_file() {
        let dir = tmpdir("version");
        let disk = DiskCache::open(&dir).unwrap();
        let path = disk
            .append(trace(), 0, &sample_cells())
            .unwrap()
            .expect("segment written");
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 99; // version field
        fs::write(&path, &bytes).unwrap();
        let out = disk.load(trace(), 0);
        assert!(out.cells.is_empty());
        assert_eq!(out.corrupt_events, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn renamed_segment_cannot_serve_wrong_identity() {
        let dir = tmpdir("rename");
        let disk = DiskCache::open(&dir).unwrap();
        let path = disk
            .append(trace(), 0, &sample_cells())
            .unwrap()
            .expect("segment written");
        // Pretend this file belongs to another trace by renaming it.
        let other = Fingerprint::from_bits(42);
        let new_name = format!("seg-{}-t0-p1-0.cells", other.to_hex());
        fs::rename(&path, dir.join(new_name)).unwrap();
        let out = disk.load(other, 0);
        assert!(out.cells.is_empty());
        assert_eq!(out.corrupt_events, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_lists_segments() {
        let dir = tmpdir("manifest");
        let disk = DiskCache::open(&dir).unwrap();
        disk.append(trace(), 0, &sample_cells()).unwrap();
        disk.write_manifest().unwrap();
        let manifest = fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(manifest.contains("\"format\": \"fedval-cell-cache\""));
        assert!(manifest.contains("\"records\": 3"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_append_writes_nothing() {
        let dir = tmpdir("empty");
        let disk = DiskCache::open(&dir).unwrap();
        assert!(disk.append(trace(), 0, &[]).unwrap().is_none());
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
