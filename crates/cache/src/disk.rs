//! On-disk cell segments: append-friendly persistence for completed
//! utility cells, keyed by `(trace fingerprint, tier, round, subset)`.
//!
//! # Format (version 1)
//!
//! Each segment file is a 32-byte header followed by fixed-width
//! 28-byte records, all little-endian:
//!
//! ```text
//! header: magic "FVCELLS\0" (8) | version u32 (4) | tier u8 (1) |
//!         pad [0;3] (3) | trace fingerprint u128 (16)
//! record: round u32 | subset u64 | value f64 bits u64 | checksum u64
//! ```
//!
//! The per-record checksum fingerprints the full cell identity *and*
//! the value (trace, tier, round, subset, bits), so a flipped byte
//! anywhere in a record is caught, and a record can never be attributed
//! to the wrong trace even if files are renamed.
//!
//! # Degradation contract
//!
//! A corrupt, truncated, stale-versioned, or misnamed file must never
//! produce a wrong value — cells are pure, so the safe response to any
//! anomaly is to stop trusting the file and recompute. Concretely:
//! header anomalies reject the whole file; a bad record checksum or a
//! short tail stops the scan at the last good record (earlier records
//! are individually checksummed, hence still trustworthy). Every
//! anomaly increments a counter in [`LoadOutcome`] and logs one line to
//! stderr.
//!
//! # Concurrency
//!
//! Writers never touch an existing file: each flush writes a fresh
//! uniquely named segment (`seg-<trace>-t<tier>-p<pid>-<seq>.cells`)
//! via a temp file + rename, so concurrent processes sharing a cache
//! directory need no locking and readers never observe a partial
//! segment (short of a crashed writer, which truncation detection
//! absorbs). The operations that *do* mutate shared state — the
//! `manifest.json` rewrite, segment compaction, and orphan-tmp GC — run
//! under a single-writer advisory lock (`writer.lock`, see
//! [`crate::DirLock`]); a contended writer simply skips its turn, and a
//! writer killed mid-operation releases the lock with its process. The
//! manifest stays advisory for reads — loads scan the directory, not
//! the manifest — so even a torn manifest can never corrupt a value.
//!
//! [`DiskCache::maintain`] is the janitor: it sweeps `*.tmp` orphans
//! left by crashed writers and compacts any `(trace, tier)` group that
//! has accumulated more than [`COMPACT_MIN_SEGMENTS`] segment files
//! into one merged, deduplicated segment — long-lived shared
//! directories stay O(traces) files instead of O(flushes).

use crate::coord::{sweep_orphan_tmp, DirLock};
use crate::hash::{Fingerprint, FingerprintHasher};
use fedval_jsonio::JsonWriter;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Segment file magic (8 bytes, includes a NUL so text files never
/// match).
pub const MAGIC: [u8; 8] = *b"FVCELLS\0";

/// Current segment format version; bump on any layout change.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_BYTES: usize = 32;
const RECORD_BYTES: usize = 28;

/// Name of the single-writer advisory lock file inside a cache
/// directory (guards manifest rewrite, compaction, and tmp GC).
pub const WRITER_LOCK_FILE: &str = "writer.lock";

/// A `(trace, tier)` group is compacted once it spans more than this
/// many segment files.
pub const COMPACT_MIN_SEGMENTS: usize = 8;

/// A `*.tmp` file older than this is an orphan from a crashed writer
/// (live temp files exist only for the instant between write and
/// rename).
const TMP_ORPHAN_AGE: Duration = Duration::from_secs(60);

/// One persisted cell: `(round, subset bits, value)`.
pub type DiskCell = (u32, u64, f64);

/// Result of scanning a cache directory for one `(trace, tier)`.
#[derive(Default, Debug)]
pub struct LoadOutcome {
    /// Verified cells, in scan order.
    pub cells: Vec<DiskCell>,
    /// Segment files that matched the requested trace/tier name prefix.
    pub segments_scanned: u64,
    /// Anomalies encountered (bad header, bad checksum, short tail).
    /// Each was logged and the affected bytes ignored.
    pub corrupt_events: u64,
}

/// Writer/loader for one cache directory.
pub struct DiskCache {
    dir: PathBuf,
    /// Per-process suffix so concurrent flushes never collide.
    seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) `dir` as a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            seq: AtomicU64::new(0),
        })
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_prefix(trace: Fingerprint, tier: u8) -> String {
        format!("seg-{}-t{tier}-", trace.to_hex())
    }

    /// Loads every verified cell for `(trace, tier)` from all matching
    /// segments. I/O errors on individual files are treated as corrupt
    /// events (log + skip), not hard failures — a half-readable cache
    /// must degrade to recompute.
    pub fn load(&self, trace: Fingerprint, tier: u8) -> LoadOutcome {
        let mut out = LoadOutcome::default();
        let prefix = Self::segment_prefix(trace, tier);
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) => {
                log_event(&format!("cache dir {} unreadable: {e}", self.dir.display()));
                out.corrupt_events += 1;
                return out;
            }
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".cells"))
            })
            .collect();
        // Deterministic scan order across processes.
        paths.sort();
        for path in paths {
            out.segments_scanned += 1;
            match fs::read(&path) {
                Ok(bytes) => read_segment(&path, &bytes, trace, tier, &mut out),
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // A concurrent maintainer compacted this segment
                    // away between our directory scan and the read; its
                    // cells live on in the merged segment. Benign.
                    out.segments_scanned -= 1;
                }
                Err(e) => {
                    log_event(&format!("segment {} unreadable: {e}", path.display()));
                    out.corrupt_events += 1;
                }
            }
        }
        out
    }

    /// Persists `cells` as one fresh segment for `(trace, tier)`;
    /// returns the segment path. Empty input writes nothing.
    pub fn append(
        &self,
        trace: Fingerprint,
        tier: u8,
        cells: &[DiskCell],
    ) -> io::Result<Option<PathBuf>> {
        if cells.is_empty() {
            return Ok(None);
        }
        let mut buf = Vec::with_capacity(HEADER_BYTES + cells.len() * RECORD_BYTES);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.push(tier);
        buf.extend_from_slice(&[0u8; 3]);
        buf.extend_from_slice(&trace.to_le_bytes());
        for &(round, subset, value) in cells {
            let bits = value.to_bits();
            buf.extend_from_slice(&round.to_le_bytes());
            buf.extend_from_slice(&subset.to_le_bytes());
            buf.extend_from_slice(&bits.to_le_bytes());
            buf.extend_from_slice(&record_checksum(trace, tier, round, subset, bits).to_le_bytes());
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let name = format!(
            "{}p{}-{seq}.cells",
            Self::segment_prefix(trace, tier),
            std::process::id()
        );
        let tmp = self.dir.join(format!("{name}.tmp"));
        let path = self.dir.join(&name);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(Some(path))
    }

    /// Takes the directory's single-writer lock without blocking.
    /// `Ok(None)` means another live process is the writer right now.
    pub fn try_writer_lock(&self, note: &str) -> io::Result<Option<DirLock>> {
        DirLock::try_acquire(self.dir.join(WRITER_LOCK_FILE), note)
    }

    /// Rewrites `manifest.json` under the single-writer lock: one row
    /// per segment file with its record count, plus the persisted
    /// traces. Advisory (for humans and tooling; never read on load).
    /// Skips quietly when another process holds the writer lock — the
    /// current writer rewrites the manifest as part of its own turn.
    pub fn write_manifest(&self) -> io::Result<()> {
        match self.try_writer_lock("manifest rewrite")? {
            Some(_lock) => self.write_manifest_as_writer(),
            None => Ok(()),
        }
    }

    /// The manifest rewrite body; caller must hold the writer lock.
    fn write_manifest_as_writer(&self) -> io::Result<()> {
        let mut segments: Vec<(String, u64)> = Vec::new();
        let mut traces: Vec<(String, u64)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
            if name.starts_with("seg-") && name.ends_with(".cells") {
                let records = len.saturating_sub(HEADER_BYTES as u64) / RECORD_BYTES as u64;
                segments.push((name.to_string(), records));
            } else if name.starts_with("trace-") && name.ends_with(".trace") {
                traces.push((name.to_string(), len));
            }
        }
        segments.sort();
        traces.sort();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.str_field("format", "fedval-cell-cache");
        w.u64_field("version", FORMAT_VERSION as u64);
        w.u64_field("writer_pid", std::process::id() as u64);
        w.begin_array_field("segments");
        for (name, records) in &segments {
            w.begin_object_compact();
            w.str_field("file", name);
            w.u64_field("records", *records);
            w.end_object();
        }
        w.end_array();
        w.begin_array_field("traces");
        for (name, bytes) in &traces {
            w.begin_object_compact();
            w.str_field("file", name);
            w.u64_field("bytes", *bytes);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let tmp = self
            .dir
            .join(format!("manifest.json.p{}.tmp", std::process::id()));
        fs::write(&tmp, w.finish())?;
        fs::rename(tmp, self.dir.join("manifest.json"))
    }

    /// One maintenance turn: sweep orphaned temp files, compact
    /// oversized `(trace, tier)` segment groups, refresh the manifest.
    /// All under the single-writer lock; if another process is the
    /// writer, this returns immediately with `held_elsewhere` set.
    pub fn maintain(&self) -> MaintainOutcome {
        let mut out = MaintainOutcome::default();
        let lock = match self.try_writer_lock("maintenance") {
            Ok(Some(lock)) => lock,
            Ok(None) => {
                out.held_elsewhere = true;
                return out;
            }
            Err(e) => {
                log_event(&format!("writer lock unavailable: {e}"));
                out.corrupt_events += 1;
                return out;
            }
        };
        out.removed_tmp = sweep_orphan_tmp(&self.dir, TMP_ORPHAN_AGE);
        self.compact_oversized_groups(&mut out);
        let _ = lock; // held through compaction and the manifest rewrite
        if let Err(e) = self.write_manifest_as_writer() {
            log_event(&format!("manifest write failed: {e}"));
        }
        out
    }

    /// Merges every `(trace, tier)` group spanning more than
    /// [`COMPACT_MIN_SEGMENTS`] files into one deduplicated segment.
    /// Caller must hold the writer lock. The merged segment is written
    /// (temp + rename) *before* the originals are deleted, so a crash
    /// at any point loses no verified cell; a concurrent reader sees
    /// old + new (duplicate cells are idempotent — identical values of
    /// a pure function) or just new.
    fn compact_oversized_groups(&self, out: &mut MaintainOutcome) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut groups: Vec<((Fingerprint, u8), Vec<PathBuf>)> = Vec::new();
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            let Some(identity) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(parse_segment_name)
            else {
                continue;
            };
            match groups.iter_mut().find(|(g, _)| *g == identity) {
                Some((_, paths)) => paths.push(path),
                None => groups.push((identity, vec![path])),
            }
        }
        for ((trace, tier), mut paths) in groups {
            if paths.len() <= COMPACT_MIN_SEGMENTS {
                continue;
            }
            paths.sort();
            // Read only the snapshot taken above: segments appended by
            // other processes after this point are left alone.
            let mut scan = LoadOutcome::default();
            for path in &paths {
                match fs::read(path) {
                    Ok(bytes) => read_segment(path, &bytes, trace, tier, &mut scan),
                    Err(e) => {
                        log_event(&format!("segment {} unreadable: {e}", path.display()));
                        scan.corrupt_events += 1;
                    }
                }
            }
            out.corrupt_events += scan.corrupt_events;
            let mut seen = std::collections::HashSet::new();
            let merged: Vec<DiskCell> = scan
                .cells
                .into_iter()
                .filter(|&(round, subset, _)| seen.insert((round, subset)))
                .collect();
            match self.append(trace, tier, &merged) {
                Ok(_) => {
                    out.compacted_groups += 1;
                    for path in &paths {
                        if fs::remove_file(path).is_ok() {
                            out.removed_segments += 1;
                        }
                    }
                }
                Err(e) => {
                    // Keep the originals: no write, no loss.
                    log_event(&format!("compaction write failed: {e}"));
                    out.corrupt_events += 1;
                }
            }
        }
    }
}

/// What one [`DiskCache::maintain`] turn did.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaintainOutcome {
    /// Another process held the writer lock; nothing was done.
    pub held_elsewhere: bool,
    /// Orphaned `*.tmp` files removed.
    pub removed_tmp: u64,
    /// `(trace, tier)` groups merged into one segment.
    pub compacted_groups: u64,
    /// Original segment files deleted after a successful merge.
    pub removed_segments: u64,
    /// Anomalies encountered while compacting (logged, dropped).
    pub corrupt_events: u64,
}

/// Parses `seg-<32-hex trace>-t<tier>-…cells` into its identity.
fn parse_segment_name(name: &str) -> Option<(Fingerprint, u8)> {
    let rest = name.strip_prefix("seg-")?;
    if !name.ends_with(".cells") {
        return None;
    }
    let (hex, rest) = rest.split_at_checked(32)?;
    let trace = Fingerprint::from_hex(hex)?;
    let rest = rest.strip_prefix("-t")?;
    let tier: u8 = rest.split('-').next()?.parse().ok()?;
    Some((trace, tier))
}

/// The checksum stored with each record: a fingerprint fold of the full
/// cell identity plus the value bits.
fn record_checksum(trace: Fingerprint, tier: u8, round: u32, subset: u64, bits: u64) -> u64 {
    let mut h = FingerprintHasher::new("fedval-cell-record-v1");
    h.write_u64(trace.bits() as u64);
    h.write_u64((trace.bits() >> 64) as u64);
    h.write_u64(tier as u64);
    h.write_u64(round as u64);
    h.write_u64(subset);
    h.write_u64(bits);
    h.finish().bits() as u64
}

/// Parses one segment's bytes into `out`, enforcing the degradation
/// contract (header anomaly → reject file; record anomaly → stop at
/// last good record).
fn read_segment(path: &Path, bytes: &[u8], trace: Fingerprint, tier: u8, out: &mut LoadOutcome) {
    if bytes.len() < HEADER_BYTES {
        log_event(&format!("segment {} truncated header", path.display()));
        out.corrupt_events += 1;
        return;
    }
    if bytes[..8] != MAGIC {
        log_event(&format!("segment {} bad magic", path.display()));
        out.corrupt_events += 1;
        return;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        log_event(&format!(
            "segment {} version {version} != {FORMAT_VERSION}; ignoring",
            path.display()
        ));
        out.corrupt_events += 1;
        return;
    }
    let file_tier = bytes[12];
    let file_trace = Fingerprint::from_le_bytes(bytes[16..32].try_into().expect("16 bytes"));
    if file_tier != tier || file_trace != trace {
        // Misnamed or renamed file claiming the wrong identity.
        log_event(&format!(
            "segment {} header identity mismatch; ignoring",
            path.display()
        ));
        out.corrupt_events += 1;
        return;
    }
    let mut body = &bytes[HEADER_BYTES..];
    while !body.is_empty() {
        if body.len() < RECORD_BYTES {
            log_event(&format!(
                "segment {} short tail ({} bytes); kept {} records",
                path.display(),
                body.len(),
                out.cells.len()
            ));
            out.corrupt_events += 1;
            return;
        }
        let round = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
        let subset = u64::from_le_bytes(body[4..12].try_into().expect("8 bytes"));
        let bits = u64::from_le_bytes(body[12..20].try_into().expect("8 bytes"));
        let check = u64::from_le_bytes(body[20..28].try_into().expect("8 bytes"));
        if check != record_checksum(trace, tier, round, subset, bits) {
            log_event(&format!(
                "segment {} checksum mismatch; stopping scan",
                path.display()
            ));
            out.corrupt_events += 1;
            return;
        }
        out.cells.push((round, subset, f64::from_bits(bits)));
        body = &body[RECORD_BYTES..];
    }
}

fn log_event(msg: &str) {
    eprintln!("fedval_cache: {msg} (degrading to recompute)");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fedval-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn trace() -> Fingerprint {
        Fingerprint::from_bits(0xdead_beef_cafe_f00d_1234_5678_9abc_def0)
    }

    fn sample_cells() -> Vec<DiskCell> {
        vec![(0, 0b1, 0.5), (0, 0b11, -1.25), (3, 0b101, 1e-9)]
    }

    #[test]
    fn round_trip_preserves_bits() {
        let dir = tmpdir("roundtrip");
        let disk = DiskCache::open(&dir).unwrap();
        disk.append(trace(), 1, &sample_cells()).unwrap();
        let out = disk.load(trace(), 1);
        assert_eq!(out.cells, sample_cells());
        assert_eq!(out.corrupt_events, 0);
        assert_eq!(out.segments_scanned, 1);
        // Wrong tier / trace: nothing matches, nothing corrupt.
        assert!(disk.load(trace(), 0).cells.is_empty());
        assert!(disk.load(Fingerprint::from_bits(1), 1).cells.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_accumulate_across_appends() {
        let dir = tmpdir("accumulate");
        let disk = DiskCache::open(&dir).unwrap();
        disk.append(trace(), 0, &[(0, 1, 1.0)]).unwrap();
        disk.append(trace(), 0, &[(1, 1, 2.0)]).unwrap();
        let out = disk.load(trace(), 0);
        assert_eq!(out.segments_scanned, 2);
        assert_eq!(out.cells.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_keeps_verified_prefix() {
        let dir = tmpdir("truncate");
        let disk = DiskCache::open(&dir).unwrap();
        let path = disk
            .append(trace(), 0, &sample_cells())
            .unwrap()
            .expect("segment written");
        let bytes = fs::read(&path).unwrap();
        // Chop mid-way through the last record.
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let out = disk.load(trace(), 0);
        assert_eq!(out.cells, sample_cells()[..2].to_vec());
        assert_eq!(out.corrupt_events, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_checksum_byte_stops_scan() {
        let dir = tmpdir("flip");
        let disk = DiskCache::open(&dir).unwrap();
        let path = disk
            .append(trace(), 0, &sample_cells())
            .unwrap()
            .expect("segment written");
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte in the second record's value field.
        let off = HEADER_BYTES + RECORD_BYTES + 14;
        bytes[off] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let out = disk.load(trace(), 0);
        assert_eq!(out.cells, sample_cells()[..1].to_vec());
        assert_eq!(out.corrupt_events, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_version_header_rejects_file() {
        let dir = tmpdir("version");
        let disk = DiskCache::open(&dir).unwrap();
        let path = disk
            .append(trace(), 0, &sample_cells())
            .unwrap()
            .expect("segment written");
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 99; // version field
        fs::write(&path, &bytes).unwrap();
        let out = disk.load(trace(), 0);
        assert!(out.cells.is_empty());
        assert_eq!(out.corrupt_events, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn renamed_segment_cannot_serve_wrong_identity() {
        let dir = tmpdir("rename");
        let disk = DiskCache::open(&dir).unwrap();
        let path = disk
            .append(trace(), 0, &sample_cells())
            .unwrap()
            .expect("segment written");
        // Pretend this file belongs to another trace by renaming it.
        let other = Fingerprint::from_bits(42);
        let new_name = format!("seg-{}-t0-p1-0.cells", other.to_hex());
        fs::rename(&path, dir.join(new_name)).unwrap();
        let out = disk.load(other, 0);
        assert!(out.cells.is_empty());
        assert_eq!(out.corrupt_events, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_lists_segments() {
        let dir = tmpdir("manifest");
        let disk = DiskCache::open(&dir).unwrap();
        disk.append(trace(), 0, &sample_cells()).unwrap();
        disk.write_manifest().unwrap();
        let manifest = fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(manifest.contains("\"format\": \"fedval-cell-cache\""));
        assert!(manifest.contains("\"records\": 3"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn maintain_compacts_oversized_groups_and_sweeps_orphans() {
        let dir = tmpdir("maintain");
        let disk = DiskCache::open(&dir).unwrap();
        for round in 0..(COMPACT_MIN_SEGMENTS as u32 + 2) {
            disk.append(trace(), 1, &[(round, 0b1, round as f64)])
                .unwrap();
        }
        // Duplicate an existing cell in a separate segment: compaction
        // must dedup it, not double it.
        disk.append(trace(), 1, &[(0, 0b1, 0.0)]).unwrap();
        // A small group under the threshold stays untouched.
        disk.append(trace(), 0, &[(0, 0b1, 7.0)]).unwrap();
        // Plant a stale orphan tmp (backdated past TMP_ORPHAN_AGE).
        let orphan = dir.join("seg-orphan.cells.tmp");
        fs::write(&orphan, b"partial").unwrap();
        let old = std::time::SystemTime::now() - 2 * TMP_ORPHAN_AGE;
        fs::File::options()
            .write(true)
            .open(&orphan)
            .unwrap()
            .set_times(fs::FileTimes::new().set_modified(old))
            .unwrap();

        let before = disk.load(trace(), 1);
        let out = disk.maintain();
        assert!(!out.held_elsewhere);
        assert_eq!(out.removed_tmp, 1);
        assert_eq!(out.compacted_groups, 1);
        assert_eq!(out.removed_segments, COMPACT_MIN_SEGMENTS as u64 + 3);
        assert_eq!(out.corrupt_events, 0);
        assert!(!orphan.exists());

        let after = disk.load(trace(), 1);
        assert_eq!(after.segments_scanned, 1, "group merged into one file");
        let mut before_cells = before.cells.clone();
        let mut after_cells = after.cells.clone();
        before_cells.sort_by(|a, b| a.partial_cmp(b).unwrap());
        after_cells.sort_by(|a, b| a.partial_cmp(b).unwrap());
        before_cells.dedup_by_key(|&mut (round, subset, _)| (round, subset));
        assert_eq!(after_cells, before_cells, "no cell lost or invented");
        assert_eq!(
            disk.load(trace(), 0).segments_scanned,
            1,
            "small group kept"
        );
        // Idempotent: a second turn finds nothing to do.
        let again = disk.maintain();
        assert_eq!(again.compacted_groups, 0);
        assert_eq!(again.removed_tmp, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn maintain_yields_to_a_live_writer() {
        let dir = tmpdir("yield");
        let disk = DiskCache::open(&dir).unwrap();
        let _held = disk.try_writer_lock("test writer").unwrap().unwrap();
        let out = disk.maintain();
        assert!(out.held_elsewhere);
        assert_eq!(out.compacted_groups, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_names_parse_back_to_their_identity() {
        assert_eq!(
            parse_segment_name(&format!("seg-{}-t3-p77-0.cells", trace().to_hex())),
            Some((trace(), 3))
        );
        assert_eq!(parse_segment_name("manifest.json"), None);
        assert_eq!(parse_segment_name("seg-nothex-t0-p1-0.cells"), None);
        assert_eq!(
            parse_segment_name(&format!("seg-{}-t0-p1-0.cells.tmp", trace().to_hex())),
            None
        );
    }

    #[test]
    fn empty_append_writes_nothing() {
        let dir = tmpdir("empty");
        let disk = DiskCache::open(&dir).unwrap();
        assert!(disk.append(trace(), 0, &[]).unwrap().is_none());
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
