//! Streaming 128-bit fingerprinting for training traces.
//!
//! A cache key must identify *everything* a utility cell's value depends
//! on: the training trace (global/local parameters, selections, step
//! sizes), the test set, the model architecture, and the base losses the
//! oracle subtracts from. [`FingerprintHasher`] folds all of that into a
//! [`Fingerprint`] — 128 bits of well-mixed (not cryptographic) state.
//! The failure mode of a collision is a *wrong served value*, so the
//! hasher errs on the side of specificity: extra hashed inputs can only
//! lower the hit rate, never correctness, while 128 bits make accidental
//! collisions between the handful of traces a deployment ever sees
//! astronomically unlikely.
//!
//! The encoding is length-prefixed per field group (callers use
//! [`FingerprintHasher::write_len`] at sequence boundaries) so
//! `[1.0, 2.0] ++ [3.0]` and `[1.0] ++ [2.0, 3.0]` fingerprint
//! differently.

/// A 128-bit trace identity. Stable across processes and platforms
/// (the hash mixes little-endian encodings only), so it can name
/// on-disk segments.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// Rebuilds a fingerprint from its raw 128-bit value (disk headers).
    pub fn from_bits(bits: u128) -> Self {
        Fingerprint(bits)
    }

    /// The raw 128-bit value.
    pub fn bits(self) -> u128 {
        self.0
    }

    /// Little-endian byte encoding, as written to segment headers.
    pub fn to_le_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Inverse of [`to_le_bytes`](Self::to_le_bytes).
    pub fn from_le_bytes(bytes: [u8; 16]) -> Self {
        Fingerprint(u128::from_le_bytes(bytes))
    }

    /// 32-char lowercase hex, used in segment file names.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses [`to_hex`](Self::to_hex) output (exactly 32 hex chars).
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl std::fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fingerprint({:032x})", self.0)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// SplitMix64's finalizer: a full-avalanche 64-bit permutation.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Streaming hasher producing a [`Fingerprint`].
///
/// Two independently seeded 64-bit lanes each absorb every input word
/// through `mix64` with lane-distinct tweaks; `finish` folds in the
/// total word count and finalizes both lanes. Deterministic across
/// platforms; **not** collision-resistant against adversaries — cache
/// keys identify a tenant's own traces, they are not a security
/// boundary.
pub struct FingerprintHasher {
    a: u64,
    b: u64,
    words: u64,
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        Self::new("fedval-cell-cache-v1")
    }
}

impl FingerprintHasher {
    /// A fresh hasher, domain-separated by `domain` (hashed first, so
    /// distinct domains never collide on identical payloads).
    pub fn new(domain: &str) -> Self {
        let mut h = FingerprintHasher {
            a: 0x243f_6a88_85a3_08d3, // pi digits; arbitrary fixed seeds
            b: 0x1319_8a2e_0370_7344,
            words: 0,
        };
        h.write_bytes(domain.as_bytes());
        h
    }

    /// Absorbs one 64-bit word into both lanes.
    pub fn write_u64(&mut self, v: u64) {
        self.words = self.words.wrapping_add(1);
        self.a = mix64(self.a ^ v).wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.b = mix64(self.b.rotate_left(23) ^ v).wrapping_add(0xc2b2_ae3d_27d4_eb4f);
    }

    /// Absorbs a `usize` (as u64, platform-independent).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Marks a sequence boundary by absorbing the sequence length, so
    /// adjacent variable-length fields cannot alias.
    pub fn write_len(&mut self, len: usize) {
        self.write_u64(SEQ_MARKER_SALT);
        self.write_u64(len as u64);
    }

    /// Absorbs a float by its exact bit pattern (`-0.0` ≠ `0.0`; every
    /// NaN payload distinct — bit-exactness is the whole point).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a float slice with a leading length marker.
    pub fn write_f64s(&mut self, vs: &[f64]) {
        self.write_len(vs.len());
        for &v in vs {
            self.write_f64(v);
        }
    }

    /// Absorbs arbitrary bytes (length-prefixed, little-endian packed).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_len(bytes.len());
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Final fingerprint; consumes the hasher.
    pub fn finish(mut self) -> Fingerprint {
        let words = self.words;
        self.write_u64(words);
        let hi = mix64(self.a ^ self.b.rotate_left(32));
        let lo = mix64(self.b ^ hi);
        Fingerprint(((hi as u128) << 64) | lo as u128)
    }
}

/// Constant salt separating length markers from payload words.
const SEQ_MARKER_SALT: u64 = 0xa076_1d64_78bd_642f;

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(build: impl FnOnce(&mut FingerprintHasher)) -> Fingerprint {
        let mut h = FingerprintHasher::default();
        build(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_order_sensitive() {
        let a = fp(|h| {
            h.write_u64(1);
            h.write_u64(2);
        });
        let b = fp(|h| {
            h.write_u64(1);
            h.write_u64(2);
        });
        let c = fp(|h| {
            h.write_u64(2);
            h.write_u64(1);
        });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn length_prefix_prevents_sequence_aliasing() {
        let a = fp(|h| {
            h.write_f64s(&[1.0, 2.0]);
            h.write_f64s(&[3.0]);
        });
        let b = fp(|h| {
            h.write_f64s(&[1.0]);
            h.write_f64s(&[2.0, 3.0]);
        });
        assert_ne!(a, b);
    }

    #[test]
    fn float_bit_patterns_are_distinguished() {
        assert_ne!(fp(|h| h.write_f64(0.0)), fp(|h| h.write_f64(-0.0)));
        assert_ne!(
            fp(|h| h.write_f64(1.0)),
            fp(|h| h.write_f64(1.0 + f64::EPSILON))
        );
    }

    #[test]
    fn domains_separate() {
        let a = FingerprintHasher::new("domain-a").finish();
        let b = FingerprintHasher::new("domain-b").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn hex_round_trips() {
        let f = fp(|h| h.write_u64(42));
        assert_eq!(Fingerprint::from_hex(&f.to_hex()), Some(f));
        assert_eq!(f.to_hex().len(), 32);
        assert_eq!(Fingerprint::from_hex("zz"), None);
        assert_eq!(Fingerprint::from_le_bytes(f.to_le_bytes()), f);
    }

    #[test]
    fn empty_inputs_differ_from_zero_words() {
        let empty = FingerprintHasher::default().finish();
        let zero = fp(|h| h.write_u64(0));
        assert_ne!(empty, zero);
    }
}
