//! Persisted trained traces: the crash-safe store that lets a restarted
//! (or concurrent) process skip FedAvg training entirely, not just cell
//! recompute.
//!
//! The cell segments persist *derived* values; this module persists the
//! *source* — the full training trace (per-round global/local
//! parameters, selections, step sizes), the final parameters, and the
//! base losses the first oracle evaluated. The file is keyed by a
//! **world fingerprint** computed from the job's `(scenario, seed,
//! fl-config)` *before* training (the trace's own fingerprint cannot
//! key it: it only exists after training).
//!
//! # Format (version 1)
//!
//! One file per world, `trace-<worldkey>.trace`, all little-endian:
//!
//! ```text
//! header:  magic "FVTRACE\0" (8) | version u32 | pad u32 |
//!          world key u128 (16)
//! counts:  num_clients u64 | params_len u64 | rounds u64 |
//!          base_losses len u64
//! rounds:  (eta f64 | selected u64 | global [params_len × f64] |
//!           locals [num_clients × params_len × f64]) × rounds
//! tail:    final_params [params_len × f64] | base_losses [len × f64] |
//!          checksum u64
//! ```
//!
//! The trailing checksum fingerprints the world key plus every payload
//! word, so a flipped byte anywhere invalidates the whole file. Same
//! discipline as cell segments: temp + rename writes (readers never see
//! a partial file — a `SIGKILL` mid-write leaves only a `*.tmp`
//! orphan), and **any** anomaly on read degrades to retraining, never
//! to a wrong trace.

use crate::hash::{Fingerprint, FingerprintHasher};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Trace-file magic (8 bytes, NUL-terminated so text never matches).
pub const TRACE_MAGIC: [u8; 8] = *b"FVTRACE\0";

/// Current trace-file format version; bump on any layout change.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// One recorded round, in neutral (crate-independent) form.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRound {
    /// Global model broadcast at the start of the round.
    pub global: Vec<f64>,
    /// Every client's locally updated model (one `Vec` per client).
    pub locals: Vec<Vec<f64>>,
    /// Bitmask of the clients whose models were aggregated.
    pub selected: u64,
    /// Learning rate used this round.
    pub eta: f64,
}

/// A complete persisted training product. `fedval_service` converts
/// between this and its `TrainingTrace` + base losses; keeping the type
/// here (floats and masks only) spares `fedval_cache` any dependency on
/// the FL crates.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Number of participating clients.
    pub num_clients: u64,
    /// Per-round records.
    pub rounds: Vec<TraceRound>,
    /// Final aggregated global parameters.
    pub final_params: Vec<f64>,
    /// Per-round base losses (the subtrahend every oracle over this
    /// trace reuses), evaluated once by the training process.
    pub base_losses: Vec<f64>,
}

impl TraceRecord {
    /// Parameter-vector length (0 for an empty trace).
    pub fn params_len(&self) -> usize {
        self.final_params.len()
    }
}

/// File name for a world's persisted trace.
pub fn trace_file_name(world: Fingerprint) -> String {
    format!("trace-{}.trace", world.to_hex())
}

/// Serializes `record` into the version-1 byte layout.
fn encode(world: Fingerprint, record: &TraceRecord) -> Vec<u8> {
    let params_len = record.params_len() as u64;
    let mut buf = Vec::new();
    buf.extend_from_slice(&TRACE_MAGIC);
    buf.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]);
    buf.extend_from_slice(&world.to_le_bytes());
    buf.extend_from_slice(&record.num_clients.to_le_bytes());
    buf.extend_from_slice(&params_len.to_le_bytes());
    buf.extend_from_slice(&(record.rounds.len() as u64).to_le_bytes());
    buf.extend_from_slice(&(record.base_losses.len() as u64).to_le_bytes());
    for round in &record.rounds {
        buf.extend_from_slice(&round.eta.to_bits().to_le_bytes());
        buf.extend_from_slice(&round.selected.to_le_bytes());
        for &v in &round.global {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for local in &round.locals {
            for &v in local {
                buf.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    for &v in &record.final_params {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for &v in &record.base_losses {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let checksum = payload_checksum(world, &buf[32..]);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// The trailing checksum: a fingerprint fold of the world key and every
/// payload byte after the 32-byte header.
fn payload_checksum(world: Fingerprint, payload: &[u8]) -> u64 {
    let mut h = FingerprintHasher::new("fedval-trace-record-v1");
    h.write_u64(world.bits() as u64);
    h.write_u64((world.bits() >> 64) as u64);
    h.write_bytes(payload);
    h.finish().bits() as u64
}

/// Writes `record` as `trace-<world>.trace` in `dir` via temp + rename.
pub fn store_trace(dir: &Path, world: Fingerprint, record: &TraceRecord) -> io::Result<PathBuf> {
    let bytes = encode(world, record);
    let name = trace_file_name(world);
    let tmp = dir.join(format!("{name}.p{}.tmp", std::process::id()));
    let path = dir.join(&name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Result of loading a persisted trace: the verified record, or a
/// counted reason to retrain.
pub enum TraceLoad {
    /// Verified bit-exact record.
    Ready(TraceRecord),
    /// No file for this world (the normal cold-start case).
    Absent,
    /// A file existed but failed verification (logged; the caller
    /// counts a corrupt event and retrains).
    Corrupt,
}

/// Loads and fully verifies the persisted trace for `world`, if any.
/// Unlike cell segments (individually checksummed records, prefix kept
/// on a bad tail), a trace is all-or-nothing: any anomaly rejects the
/// whole file — a partially trusted trace could silently shift every
/// valuation built on it.
pub fn load_trace(dir: &Path, world: Fingerprint) -> TraceLoad {
    let path = dir.join(trace_file_name(world));
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return TraceLoad::Absent,
        Err(e) => {
            log_event(&format!("trace {} unreadable: {e}", path.display()));
            return TraceLoad::Corrupt;
        }
    };
    match decode(&bytes, world) {
        Ok(record) => TraceLoad::Ready(record),
        Err(reason) => {
            log_event(&format!("trace {} {reason}", path.display()));
            TraceLoad::Corrupt
        }
    }
}

/// Strict verifying decoder for the version-1 layout.
fn decode(bytes: &[u8], world: Fingerprint) -> Result<TraceRecord, String> {
    const HEADER: usize = 32;
    const COUNTS: usize = 32;
    if bytes.len() < HEADER + COUNTS + 8 {
        return Err(format!("truncated ({} bytes)", bytes.len()));
    }
    if bytes[..8] != TRACE_MAGIC {
        return Err("bad magic".into());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != TRACE_FORMAT_VERSION {
        return Err(format!("version {version} != {TRACE_FORMAT_VERSION}"));
    }
    let file_world = Fingerprint::from_le_bytes(bytes[16..32].try_into().expect("16 bytes"));
    if file_world != world {
        return Err("world-key mismatch".into());
    }
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    if stored != payload_checksum(world, &bytes[HEADER..bytes.len() - 8]) {
        return Err("checksum mismatch".into());
    }
    let word = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
    let num_clients = word(32);
    let params_len = word(40);
    let rounds = word(48);
    let base_len = word(56);
    // Exact-size check before slicing (overflow-safe: the file already
    // fit in memory, so u64 math on its declared sizes cannot wrap
    // meaningfully past a checked_mul).
    let round_words = 2u64
        .checked_add(
            params_len
                .checked_mul(1 + num_clients)
                .ok_or("size overflow")?,
        )
        .ok_or("size overflow")?;
    let payload_words = rounds
        .checked_mul(round_words)
        .and_then(|w| w.checked_add(params_len))
        .and_then(|w| w.checked_add(base_len))
        .ok_or("size overflow")?;
    let expect =
        (HEADER + COUNTS) as u64 + payload_words.checked_mul(8).ok_or("size overflow")? + 8;
    if bytes.len() as u64 != expect {
        return Err(format!("length {} != declared {expect}", bytes.len()));
    }
    let mut at = HEADER + COUNTS;
    let next_f64 = |at: &mut usize| {
        let v = f64::from_bits(word(*at));
        *at += 8;
        v
    };
    let mut rounds_out = Vec::with_capacity(rounds as usize);
    for _ in 0..rounds {
        let eta = next_f64(&mut at);
        let selected = word(at);
        at += 8;
        let mut global = Vec::with_capacity(params_len as usize);
        for _ in 0..params_len {
            global.push(next_f64(&mut at));
        }
        let mut locals = Vec::with_capacity(num_clients as usize);
        for _ in 0..num_clients {
            let mut local = Vec::with_capacity(params_len as usize);
            for _ in 0..params_len {
                local.push(next_f64(&mut at));
            }
            locals.push(local);
        }
        rounds_out.push(TraceRound {
            global,
            locals,
            selected,
            eta,
        });
    }
    let mut final_params = Vec::with_capacity(params_len as usize);
    for _ in 0..params_len {
        final_params.push(next_f64(&mut at));
    }
    let mut base_losses = Vec::with_capacity(base_len as usize);
    for _ in 0..base_len {
        base_losses.push(next_f64(&mut at));
    }
    Ok(TraceRecord {
        num_clients,
        rounds: rounds_out,
        final_params,
        base_losses,
    })
}

fn log_event(msg: &str) {
    eprintln!("fedval_cache: {msg} (degrading to retrain)");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fedval-trace-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn world() -> Fingerprint {
        Fingerprint::from_bits(0x1122_3344_5566_7788_99aa_bbcc_ddee_ff00)
    }

    fn sample() -> TraceRecord {
        TraceRecord {
            num_clients: 2,
            rounds: vec![
                TraceRound {
                    global: vec![0.5, -1.25, 3.0],
                    locals: vec![vec![1.0, 2.0, 3.0], vec![-1.0, -2.0, -3.0]],
                    selected: 0b11,
                    eta: 0.2,
                },
                TraceRound {
                    global: vec![0.25, 0.0, -0.0],
                    locals: vec![vec![1e-9, 2e-9, 3e-9], vec![f64::MIN_POSITIVE, 0.0, 9.0]],
                    selected: 0b10,
                    eta: 0.1,
                },
            ],
            final_params: vec![7.0, 8.0, 9.0],
            base_losses: vec![0.9, 0.8],
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let dir = tmpdir("roundtrip");
        store_trace(&dir, world(), &sample()).unwrap();
        match load_trace(&dir, world()) {
            TraceLoad::Ready(record) => assert_eq!(record, sample()),
            _ => panic!("expected a verified record"),
        }
        // A different world key finds nothing.
        assert!(matches!(
            load_trace(&dir, Fingerprint::from_bits(5)),
            TraceLoad::Absent
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn any_flipped_byte_rejects_the_whole_file() {
        let dir = tmpdir("flip");
        let path = store_trace(&dir, world(), &sample()).unwrap();
        let clean = fs::read(&path).unwrap();
        // Probe a byte in every region: header, counts, rounds, tail.
        for &off in &[3usize, 9, 20, 35, 80, clean.len() - 12, clean.len() - 3] {
            let mut bytes = clean.clone();
            bytes[off] ^= 0x10;
            fs::write(&path, &bytes).unwrap();
            assert!(
                matches!(load_trace(&dir, world()), TraceLoad::Corrupt),
                "flip at {off} must reject"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_rejects_the_whole_file() {
        let dir = tmpdir("trunc");
        let path = store_trace(&dir, world(), &sample()).unwrap();
        let bytes = fs::read(&path).unwrap();
        for keep in [0usize, 7, 31, 63, bytes.len() - 1] {
            fs::write(&path, &bytes[..keep]).unwrap();
            assert!(
                matches!(load_trace(&dir, world()), TraceLoad::Corrupt),
                "truncation to {keep} must reject"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn renamed_trace_cannot_serve_another_world() {
        let dir = tmpdir("rename");
        let path = store_trace(&dir, world(), &sample()).unwrap();
        let other = Fingerprint::from_bits(42);
        fs::rename(&path, dir.join(trace_file_name(other))).unwrap();
        assert!(matches!(load_trace(&dir, other), TraceLoad::Corrupt));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_trace_round_trips() {
        let dir = tmpdir("empty");
        let record = TraceRecord {
            num_clients: 0,
            rounds: Vec::new(),
            final_params: Vec::new(),
            base_losses: Vec::new(),
        };
        store_trace(&dir, world(), &record).unwrap();
        match load_trace(&dir, world()) {
            TraceLoad::Ready(loaded) => assert_eq!(loaded, record),
            _ => panic!("expected a verified record"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
