//! The in-process shared cell store: a bounded map from [`CellKey`] to
//! write-once value slots, with second-chance (clock-LRU) eviction.
//!
//! # Correctness model
//!
//! Utility cells are *pure*: `U_t(S)` is fully determined by the trace
//! fingerprint, determinism tier, round, and subset. That makes
//! recompute-on-miss free-correct — eviction can cost time, never
//! accuracy — and it is what licenses the store's one relaxation of the
//! oracle's historical "exactly-once" guarantee: if a cell is evicted
//! while an evaluator still intends to use its key (but no longer holds
//! its slot), a later lookup reserves a *fresh* slot and recomputes the
//! same bits.
//!
//! The slot type is the oracle's own `Arc<RwLock<Option<f64>>>`: the
//! first evaluator to take the write lock computes, everyone else reads
//! — the compute-once discipline is unchanged, the store only decides
//! *which* slot a key currently maps to.
//!
//! # Eviction
//!
//! Entries are swept with a second-chance queue: each lookup sets a
//! `referenced` bit; the sweep clears it and re-queues, evicting an
//! entry only when it comes around unreferenced. Two kinds of entries
//! are never evicted:
//!
//! * **pinned** entries — someone outside the store holds the slot
//!   `Arc` (an in-flight evaluator), detected by `Arc::strong_count`.
//!   This both protects in-progress computes and guarantees the sweep
//!   never blocks on a slot lock: with a strong count of 1 nobody can
//!   hold the `RwLock`.
//! * nothing else — *completed* and *abandoned* (reserved then dropped
//!   without completing, e.g. a cancelled job) entries are both fair
//!   game; abandoned ones are simply dropped since they hold no value.
//!
//! Because plan evaluation pins every slot it batches, a plan larger
//! than the budget transiently overshoots it; the store shrinks back as
//! the evaluator releases its pins. The budget therefore bounds
//! *resident completed* cells, not instantaneous reservations.

use crate::hash::Fingerprint;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A write-once utility-cell slot, shared with `fedval_fl`'s oracle:
/// `None` until the first evaluator computes under the write lock.
pub type CellSlot = Arc<RwLock<Option<f64>>>;

/// Identity of one utility cell across processes and sessions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CellKey {
    /// Fingerprint of the training trace + test set + model + base
    /// losses (see `fedval_fl`'s oracle fingerprinting).
    pub trace: Fingerprint,
    /// [`fedval_linalg::DeterminismTier::id`] — tiers never share cells.
    pub tier: u8,
    /// Training round `t` of `U_t(S)`.
    pub round: u32,
    /// Client-subset bitmask `S`.
    pub subset: u64,
}

/// Estimated resident bytes per cached cell, the unit of the store's
/// memory accounting: 32-byte key + second-chance queue entry, ~56
/// bytes of `Arc<RwLock<Option<f64>>>` allocation, entry flags, and
/// hash-map load-factor slack. Deliberately a small over-estimate — the
/// budget should err toward evicting early.
pub const CELL_COST_BYTES: usize = 176;

struct Entry {
    slot: CellSlot,
    /// Second-chance bit, set on every lookup.
    referenced: bool,
    /// Completed in this process and not yet persisted (spill / flush
    /// candidates). Disk-loaded cells are clean and drop silently.
    dirty: bool,
    /// Whether `mark_complete` ran for this entry (the slot holds a
    /// value that is safe to read without blocking once unpinned).
    complete: bool,
}

struct StoreInner {
    map: HashMap<CellKey, Entry>,
    /// Second-chance sweep order; stale keys (already evicted) are
    /// dropped lazily as the hand reaches them.
    queue: VecDeque<CellKey>,
    evictions: u64,
    abandoned: u64,
}

/// Bounded shared store of completed utility cells.
pub struct CellStore {
    inner: Mutex<StoreInner>,
    capacity_cells: usize,
}

/// What a [`CellStore::slot`] lookup found.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotState {
    /// Key already mapped to a completed cell.
    Complete,
    /// Key mapped to a slot still being (or waiting to be) computed.
    Pending,
    /// Key was absent; a fresh slot was reserved.
    Reserved,
}

impl CellStore {
    /// A store holding at most `capacity` cells (minimum 1).
    pub fn with_capacity_cells(capacity: usize) -> Self {
        CellStore {
            inner: Mutex::new(StoreInner {
                map: HashMap::new(),
                queue: VecDeque::new(),
                evictions: 0,
                abandoned: 0,
            }),
            capacity_cells: capacity.max(1),
        }
    }

    /// A store budgeted in bytes via [`CELL_COST_BYTES`] accounting.
    pub fn with_budget_bytes(bytes: usize) -> Self {
        Self::with_capacity_cells(bytes / CELL_COST_BYTES)
    }

    /// Cell capacity (the byte budget divided by [`CELL_COST_BYTES`]).
    pub fn capacity_cells(&self) -> usize {
        self.capacity_cells
    }

    /// The slot for `key`, reserving a fresh one if absent, plus what
    /// was found. Marks the entry referenced. May evict (returning
    /// spill candidates) if the reservation pushed the store over
    /// budget.
    pub fn slot(&self, key: CellKey) -> (CellSlot, SlotState, Vec<(CellKey, f64)>) {
        let mut inner = self.inner.lock();
        let (slot, state) = match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.referenced = true;
                let state = if entry.complete {
                    SlotState::Complete
                } else {
                    SlotState::Pending
                };
                (Arc::clone(&entry.slot), state)
            }
            None => {
                let slot: CellSlot = Arc::new(RwLock::new(None));
                inner.map.insert(
                    key,
                    Entry {
                        slot: Arc::clone(&slot),
                        referenced: true,
                        dirty: false,
                        complete: false,
                    },
                );
                inner.queue.push_back(key);
                (slot, SlotState::Reserved)
            }
        };
        let spill = self.enforce_budget(&mut inner);
        (slot, state, spill)
    }

    /// Records that `key`'s cell now holds `value`. If the entry was
    /// evicted between reservation and completion (possible only after
    /// the computing evaluator dropped its slot clone), the completed
    /// value is re-inserted so the work is not lost. Returns dirty
    /// cells evicted by the post-completion budget check.
    pub fn mark_complete(&self, key: CellKey, value: f64) -> Vec<(CellKey, f64)> {
        let mut inner = self.inner.lock();
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.complete = true;
                entry.dirty = true;
            }
            None => {
                inner.map.insert(
                    key,
                    Entry {
                        slot: Arc::new(RwLock::new(Some(value))),
                        referenced: true,
                        dirty: true,
                        complete: true,
                    },
                );
                inner.queue.push_back(key);
            }
        }
        self.enforce_budget(&mut inner)
    }

    /// Inserts a cell loaded from disk (clean: never re-spilled). An
    /// existing entry for the key is left untouched — a pending compute
    /// will arrive at the same bits. Returns spill candidates from the
    /// budget check.
    pub fn insert_clean(&self, key: CellKey, value: f64) -> Vec<(CellKey, f64)> {
        let mut inner = self.inner.lock();
        if let std::collections::hash_map::Entry::Vacant(e) = inner.map.entry(key) {
            e.insert(Entry {
                slot: Arc::new(RwLock::new(Some(value))),
                referenced: false,
                dirty: false,
                complete: true,
            });
            inner.queue.push_back(key);
        }
        self.enforce_budget(&mut inner)
    }

    /// Drains every dirty completed cell (marking it clean) for
    /// persistence. Cells whose slots are pinned by an evaluator are
    /// still drained — completed slots are only ever read-locked, and
    /// any write-lock holder is a raced evaluator about to observe
    /// `Some` and release, so the read below blocks at most briefly.
    pub fn drain_dirty(&self) -> Vec<(CellKey, f64)> {
        let mut inner = self.inner.lock();
        let mut out = Vec::new();
        let keys: Vec<CellKey> = inner
            .map
            .iter()
            .filter(|(_, e)| e.complete && e.dirty)
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            let entry = inner.map.get_mut(&key).expect("key collected above");
            if let Some(value) = *entry.slot.read() {
                entry.dirty = false;
                out.push((key, value));
            }
        }
        out
    }

    /// Number of resident entries (completed + in-flight reservations).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated resident bytes ([`CELL_COST_BYTES`] × entries).
    pub fn resident_bytes(&self) -> usize {
        self.len() * CELL_COST_BYTES
    }

    /// Completed cells evicted so far (abandoned reservations excluded).
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// Abandoned (never-completed, unpinned) reservations dropped.
    pub fn abandoned(&self) -> u64 {
        self.inner.lock().abandoned
    }

    /// Evicts second-chance victims until the store fits its budget or
    /// no victim is available (everything pinned/referenced), returning
    /// the dirty completed cells evicted so the caller can spill them.
    /// The sweep is bounded at two passes over the queue so a fully
    /// pinned store cannot loop forever — it simply stays over budget
    /// until pins are released.
    fn enforce_budget(&self, inner: &mut StoreInner) -> Vec<(CellKey, f64)> {
        let mut spill = Vec::new();
        if inner.map.len() <= self.capacity_cells {
            return spill;
        }
        let mut steps = inner.queue.len().saturating_mul(2);
        while inner.map.len() > self.capacity_cells && steps > 0 {
            steps -= 1;
            let Some(key) = inner.queue.pop_front() else {
                break;
            };
            let Some(entry) = inner.map.get_mut(&key) else {
                continue; // stale queue entry; already gone
            };
            // Pinned: an evaluator holds the slot. Skip without
            // clearing the referenced bit — pins are short-lived and
            // shouldn't also cost the entry its second chance.
            if Arc::strong_count(&entry.slot) > 1 {
                inner.queue.push_back(key);
                continue;
            }
            if entry.referenced {
                entry.referenced = false;
                inner.queue.push_back(key);
                continue;
            }
            // Unpinned and unreferenced: evict. strong_count == 1 means
            // nobody can hold the lock, so this read never blocks.
            let entry = inner.map.remove(&key).expect("entry checked above");
            let value = *entry.slot.read();
            match value {
                Some(value) => {
                    inner.evictions += 1;
                    if entry.dirty {
                        spill.push((key, value));
                    }
                }
                None => inner.abandoned += 1,
            }
        }
        spill
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(round: u32, subset: u64) -> CellKey {
        CellKey {
            trace: Fingerprint::from_bits(7),
            tier: 0,
            round,
            subset,
        }
    }

    fn complete(store: &CellStore, k: CellKey, v: f64) -> Vec<(CellKey, f64)> {
        let (slot, _, mut spill) = store.slot(k);
        *slot.write() = Some(v);
        drop(slot);
        spill.extend(store.mark_complete(k, v));
        spill
    }

    #[test]
    fn reserve_then_complete_round_trips() {
        let store = CellStore::with_capacity_cells(8);
        let (slot, state, _) = store.slot(key(0, 0b11));
        assert_eq!(state, SlotState::Reserved);
        assert!(slot.read().is_none());
        *slot.write() = Some(1.5);
        drop(slot);
        store.mark_complete(key(0, 0b11), 1.5);
        let (slot, state, _) = store.slot(key(0, 0b11));
        assert_eq!(state, SlotState::Complete);
        assert_eq!(*slot.read(), Some(1.5));
    }

    #[test]
    fn eviction_respects_budget_and_spills_dirty() {
        let store = CellStore::with_capacity_cells(2);
        let mut spilled = Vec::new();
        for i in 0..6 {
            spilled.extend(complete(&store, key(i, 1), i as f64));
        }
        assert!(store.len() <= 2, "len {} over budget", store.len());
        assert!(store.evictions() >= 4);
        // Everything evicted was dirty (computed here, never persisted).
        assert_eq!(spilled.len() as u64, store.evictions());
    }

    #[test]
    fn pinned_slots_are_never_evicted() {
        let store = CellStore::with_capacity_cells(1);
        let (pinned, _, _) = store.slot(key(0, 1));
        for i in 1..5 {
            complete(&store, key(i, 1), i as f64);
        }
        // The pinned reservation must survive the pressure.
        let (again, state, _) = store.slot(key(0, 1));
        assert_eq!(state, SlotState::Pending);
        assert!(Arc::ptr_eq(&pinned, &again));
    }

    #[test]
    fn clean_inserts_do_not_spill() {
        let store = CellStore::with_capacity_cells(2);
        let mut spilled = Vec::new();
        for i in 0..6 {
            spilled.extend(store.insert_clean(key(i, 1), i as f64));
        }
        assert!(spilled.is_empty());
        assert!(store.len() <= 2);
    }

    #[test]
    fn drain_dirty_marks_clean() {
        let store = CellStore::with_capacity_cells(8);
        complete(&store, key(0, 1), 0.25);
        complete(&store, key(1, 1), 0.5);
        let drained = store.drain_dirty();
        assert_eq!(drained.len(), 2);
        assert!(store.drain_dirty().is_empty(), "second drain must be empty");
    }

    #[test]
    fn abandoned_reservations_are_dropped_not_counted_as_evictions() {
        let store = CellStore::with_capacity_cells(1);
        for i in 0..4 {
            let (_slot, _, _) = store.slot(key(i, 1));
            // slot dropped immediately: abandoned
        }
        complete(&store, key(9, 1), 1.0);
        complete(&store, key(10, 1), 2.0);
        assert!(store.abandoned() >= 1);
    }

    #[test]
    fn late_completion_after_eviction_reinserts() {
        let store = CellStore::with_capacity_cells(1);
        let (slot, _, _) = store.slot(key(0, 1));
        *slot.write() = Some(3.0);
        drop(slot); // unpinned, not yet complete
        for i in 1..4 {
            complete(&store, key(i, 1), i as f64);
        }
        // key(0,1) may have been dropped as abandoned; completion must
        // still land the value.
        store.mark_complete(key(0, 1), 3.0);
        let (slot, state, _) = store.slot(key(0, 1));
        assert_eq!(state, SlotState::Complete);
        assert_eq!(*slot.read(), Some(3.0));
    }
}
