//! `fedval_cache` — the system's shared utility-cell cache tier.
//!
//! ComFedSV's round-utility cells `U_t(S)` are pure functions of
//! `(training trace, determinism tier, round, subset)`. This crate
//! turns that purity into a cache hierarchy the rest of the workspace
//! shares:
//!
//! * [`CellStore`] — an in-process bounded store of completed cells
//!   with second-chance (clock-LRU) eviction and per-cell memory
//!   accounting ([`CELL_COST_BYTES`]);
//! * [`DiskCache`] — checksummed, versioned on-disk segments under a
//!   configurable directory, so repeat valuations of the same trace
//!   hit warm cells across processes; corrupt or stale files degrade
//!   to recompute, never to wrong values;
//! * [`CellCache`] — the façade gluing the two together: dirty cells
//!   evicted under memory pressure spill to disk, [`CellCache::flush`]
//!   persists whatever remains, and [`CellCache::attach`] pre-loads a
//!   trace's persisted cells once per process.
//!
//! The oracle in `fedval_fl` keys into this cache with a
//! [`Fingerprint`] that covers everything a cell's value depends on
//! (trace parameters, test set, model, base losses), so a shared cache
//! can serve many tenants' oracles concurrently while staying
//! bit-identical to solo recomputation.
//!
//! # Crash safety and multi-process sharing
//!
//! Several processes may point at one cache directory concurrently:
//!
//! * segment and trace writes are temp + rename under unique names, so
//!   readers never observe a partial file and a `SIGKILL` mid-write
//!   leaves only a `*.tmp` orphan (swept by the maintenance janitor);
//! * the mutating maintenance operations (manifest rewrite, segment
//!   compaction, orphan GC) run under a single-writer advisory file
//!   lock ([`DirLock`] on `writer.lock`) that the kernel releases on
//!   process death — no stale-lock limbo, ever;
//! * trained traces persist as `trace-<world>.trace`
//!   ([`CellCache::store_trace`]) so a restarted process skips FedAvg
//!   training, and [`CellCache::try_train_lock`] elects one trainer per
//!   world across processes;
//! * an unusable or failing directory *degrades* the cache to
//!   memory-only ([`CacheStats::disk_degraded`]) instead of failing
//!   jobs or buffering dirty cells without bound.
//!
//! # Configuration
//!
//! [`CacheConfig::from_env`] reads:
//!
//! * `FEDVAL_CACHE_DIR` — cache directory; unset disables disk spill
//!   and persistence (in-memory sharing still applies);
//! * `FEDVAL_CACHE_MEM_MB` — in-process budget in MiB (default 64;
//!   minimum one cell). An unparseable value logs one warning and
//!   falls back to the default.

mod coord;
mod disk;
mod hash;
mod store;
mod trace;

pub use coord::DirLock;
pub use disk::{
    DiskCache, DiskCell, LoadOutcome, MaintainOutcome, COMPACT_MIN_SEGMENTS, FORMAT_VERSION, MAGIC,
    WRITER_LOCK_FILE,
};
pub use hash::{Fingerprint, FingerprintHasher};
pub use store::{CellKey, CellSlot, CellStore, SlotState, CELL_COST_BYTES};
pub use trace::{
    trace_file_name, TraceLoad, TraceRecord, TraceRound, TRACE_FORMAT_VERSION, TRACE_MAGIC,
};

use parking_lot::Mutex;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default in-process budget when `FEDVAL_CACHE_MEM_MB` is unset.
pub const DEFAULT_MEM_BUDGET_BYTES: usize = 64 * 1024 * 1024;

/// How a [`CellCache`] is provisioned.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// In-process budget in bytes (see [`CELL_COST_BYTES`] accounting).
    pub memory_budget_bytes: usize,
    /// Segment directory; `None` disables spill/persistence.
    pub disk_dir: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            memory_budget_bytes: DEFAULT_MEM_BUDGET_BYTES,
            disk_dir: None,
        }
    }
}

impl CacheConfig {
    /// Reads `FEDVAL_CACHE_DIR` / `FEDVAL_CACHE_MEM_MB` (an unparseable
    /// budget value logs one warning and falls back to the default — a
    /// bad env var must never take the service down).
    pub fn from_env() -> Self {
        let memory_budget_bytes = match std::env::var("FEDVAL_CACHE_MEM_MB") {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(mb) => mb.saturating_mul(1024 * 1024),
                Err(_) => {
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    WARNED.call_once(|| {
                        eprintln!(
                            "fedval_cache: FEDVAL_CACHE_MEM_MB={raw:?} is not a MiB count; \
                             using default {} MiB",
                            DEFAULT_MEM_BUDGET_BYTES / (1024 * 1024)
                        );
                    });
                    DEFAULT_MEM_BUDGET_BYTES
                }
            },
            Err(_) => DEFAULT_MEM_BUDGET_BYTES,
        };
        let disk_dir = std::env::var("FEDVAL_CACHE_DIR")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map(PathBuf::from);
        CacheConfig {
            memory_budget_bytes,
            disk_dir,
        }
    }
}

/// Point-in-time counters for observability and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Resident entries (completed cells + in-flight reservations).
    pub resident_cells: usize,
    /// [`CELL_COST_BYTES`] × resident entries.
    pub resident_bytes: usize,
    /// Configured budget in bytes.
    pub capacity_bytes: usize,
    /// Completed cells evicted under memory pressure.
    pub evictions: u64,
    /// Dirty cells written to disk (spill + flush).
    pub spilled_cells: u64,
    /// Cells loaded from disk segments over this cache's lifetime.
    pub disk_cells_loaded: u64,
    /// Disk anomalies absorbed (each logged, each degraded to
    /// recompute).
    pub corrupt_events: u64,
    /// Failed segment/trace writes (each logged; cells stayed buffered
    /// until the degradation threshold).
    pub write_errors: u64,
    /// Whether a configured disk directory has been abandoned — it was
    /// unusable at startup or accumulated too many write failures — and
    /// the cache is serving memory-only.
    pub disk_degraded: bool,
}

/// The shared cache tier: bounded in-process store + optional disk
/// spill. Cheap to share via `Arc`; all methods take `&self`.
pub struct CellCache {
    store: CellStore,
    disk: Option<DiskCache>,
    /// `(trace, tier)` pairs already loaded from disk — attach is
    /// once-per-process per trace.
    attached: Mutex<HashSet<(Fingerprint, u8)>>,
    /// Dirty cells evicted from memory, awaiting a segment write.
    spill_buf: Mutex<Vec<(CellKey, f64)>>,
    spilled_cells: AtomicU64,
    disk_cells_loaded: AtomicU64,
    corrupt_events: AtomicU64,
    write_errors: AtomicU64,
    /// Set when the disk directory is unusable (at startup or after
    /// [`WRITE_ERROR_LIMIT`] failed writes): the cache stops touching
    /// it and serves memory-only.
    degraded: AtomicBool,
}

/// Spill-buffer high-water mark: exceeding it writes a segment eagerly
/// so unbounded eviction pressure cannot re-grow memory in the buffer.
const SPILL_FLUSH_CELLS: usize = 8192;

/// Segment-write failures tolerated before the disk tier is declared
/// degraded. Cells re-buffer (and retry on the next flush) until then;
/// at the limit the buffer is dropped — recompute covers dropped cells,
/// whereas an unwritable directory retained forever is a memory leak.
const WRITE_ERROR_LIMIT: u64 = 3;

impl CellCache {
    /// Builds a cache from `config`. An unusable disk directory is a
    /// logged degradation (cache runs memory-only), not an error. A
    /// usable one gets a startup maintenance turn (orphan sweep,
    /// compaction) — skipped without fuss if another process holds the
    /// writer lock.
    pub fn new(config: CacheConfig) -> Arc<Self> {
        let mut degraded = false;
        let disk = config.disk_dir.and_then(|dir| match DiskCache::open(&dir) {
            Ok(disk) => Some(disk),
            Err(e) => {
                eprintln!(
                    "fedval_cache: cache dir {} unusable: {e} (running memory-only)",
                    dir.display()
                );
                degraded = true;
                None
            }
        });
        let cache = Arc::new(CellCache {
            store: CellStore::with_budget_bytes(config.memory_budget_bytes),
            disk,
            attached: Mutex::new(HashSet::new()),
            spill_buf: Mutex::new(Vec::new()),
            spilled_cells: AtomicU64::new(0),
            disk_cells_loaded: AtomicU64::new(0),
            corrupt_events: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            degraded: AtomicBool::new(degraded),
        });
        if let Some(disk) = cache.disk_ok() {
            let outcome = disk.maintain();
            cache
                .corrupt_events
                .fetch_add(outcome.corrupt_events, Ordering::Relaxed);
        }
        cache
    }

    /// Environment-configured cache ([`CacheConfig::from_env`]).
    pub fn from_env() -> Arc<Self> {
        Self::new(CacheConfig::from_env())
    }

    /// Memory-only cache with an explicit byte budget (tests, benches).
    pub fn in_memory(budget_bytes: usize) -> Arc<Self> {
        Self::new(CacheConfig {
            memory_budget_bytes: budget_bytes,
            disk_dir: None,
        })
    }

    /// Disk-backed cache with an explicit budget and directory.
    pub fn with_dir(budget_bytes: usize, dir: impl Into<PathBuf>) -> Arc<Self> {
        Self::new(CacheConfig {
            memory_budget_bytes: budget_bytes,
            disk_dir: Some(dir.into()),
        })
    }

    /// Whether a disk directory is configured and still usable (a
    /// degraded directory reports `false`).
    pub fn has_disk(&self) -> bool {
        self.disk_ok().is_some()
    }

    /// Whether a configured disk directory has been abandoned.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The disk tier, unless absent or degraded.
    fn disk_ok(&self) -> Option<&DiskCache> {
        match &self.disk {
            Some(disk) if !self.degraded.load(Ordering::Relaxed) => Some(disk),
            _ => None,
        }
    }

    /// Records one failed disk write; at [`WRITE_ERROR_LIMIT`] the disk
    /// tier is abandoned and the spill buffer dropped (recompute covers
    /// the dropped cells). Returns whether the cache just degraded.
    fn note_write_error(&self, what: &str, e: &std::io::Error) -> bool {
        let errors = self.write_errors.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!("fedval_cache: {what} write failed: {e} ({errors}/{WRITE_ERROR_LIMIT})");
        if errors >= WRITE_ERROR_LIMIT && !self.degraded.swap(true, Ordering::Relaxed) {
            let dropped = std::mem::take(&mut *self.spill_buf.lock()).len();
            eprintln!(
                "fedval_cache: disk tier degraded after {errors} write failures; \
                 serving memory-only ({dropped} buffered cells dropped — recompute covers them)"
            );
            return true;
        }
        false
    }

    /// Loads `(trace, tier)`'s persisted cells into the store, once per
    /// process; later calls (and disk-less caches) return 0. The count
    /// is the number of verified cells loaded *now* — an oracle seeing
    /// a positive count knows its trace is disk-warm.
    pub fn attach(&self, trace: Fingerprint, tier: u8) -> u64 {
        let Some(disk) = self.disk_ok() else { return 0 };
        {
            let mut attached = self.attached.lock();
            if !attached.insert((trace, tier)) {
                return 0;
            }
        }
        let outcome = disk.load(trace, tier);
        self.corrupt_events
            .fetch_add(outcome.corrupt_events, Ordering::Relaxed);
        let mut loaded = 0u64;
        for (round, subset, value) in outcome.cells {
            let key = CellKey {
                trace,
                tier,
                round,
                subset,
            };
            let spill = self.store.insert_clean(key, value);
            self.queue_spill(spill);
            loaded += 1;
        }
        self.disk_cells_loaded.fetch_add(loaded, Ordering::Relaxed);
        loaded
    }

    /// The slot for `key` plus what the lookup found (used by the
    /// oracle to distinguish hits from fresh reservations).
    pub fn slot(&self, key: CellKey) -> (CellSlot, SlotState) {
        let (slot, state, spill) = self.store.slot(key);
        self.queue_spill(spill);
        (slot, state)
    }

    /// Records a freshly computed cell value (making it a dirty,
    /// evictable resident).
    pub fn complete(&self, key: CellKey, value: f64) {
        let spill = self.store.mark_complete(key, value);
        self.queue_spill(spill);
    }

    /// Persists all dirty cells (evicted spill buffer + still-resident),
    /// refreshes the manifest, and runs one maintenance turn (orphan
    /// sweep + compaction, skipped if another process is the writer).
    /// Returns cells written. No-op without a usable disk directory.
    /// I/O errors are logged degradations — dirty cells stay buffered
    /// for the next flush attempt until the write-error limit trips
    /// degraded mode.
    pub fn flush(&self) -> u64 {
        if self.disk_ok().is_none() {
            return 0;
        }
        let mut pending = std::mem::take(&mut *self.spill_buf.lock());
        pending.extend(self.store.drain_dirty());
        let written = self.write_segments(pending);
        if let Some(disk) = self.disk_ok() {
            let outcome = disk.maintain();
            self.corrupt_events
                .fetch_add(outcome.corrupt_events, Ordering::Relaxed);
        }
        written
    }

    /// Buffers evicted dirty cells for persistence (dropping them when
    /// no usable disk is configured — recompute covers them) and writes
    /// a segment eagerly past the high-water mark.
    fn queue_spill(&self, spill: Vec<(CellKey, f64)>) {
        if spill.is_empty() || self.disk_ok().is_none() {
            return;
        }
        let flush_now = {
            let mut buf = self.spill_buf.lock();
            buf.extend(spill);
            buf.len() >= SPILL_FLUSH_CELLS
        };
        if flush_now {
            let pending = std::mem::take(&mut *self.spill_buf.lock());
            self.write_segments(pending);
        }
    }

    /// Groups `cells` by `(trace, tier)` and writes one segment per
    /// group; returns cells durably written. Failed groups re-buffer
    /// for retry — unless the failure pushed the cache over
    /// [`WRITE_ERROR_LIMIT`], which degrades to memory-only.
    fn write_segments(&self, cells: Vec<(CellKey, f64)>) -> u64 {
        let Some(disk) = self.disk_ok() else { return 0 };
        if cells.is_empty() {
            return 0;
        }
        let mut groups: Vec<((Fingerprint, u8), Vec<DiskCell>)> = Vec::new();
        for (key, value) in cells {
            let group = (key.trace, key.tier);
            match groups.iter_mut().find(|(g, _)| *g == group) {
                Some((_, rows)) => rows.push((key.round, key.subset, value)),
                None => groups.push((group, vec![(key.round, key.subset, value)])),
            }
        }
        let mut written = 0u64;
        for ((trace, tier), rows) in groups {
            match disk.append(trace, tier, &rows) {
                Ok(_) => written += rows.len() as u64,
                Err(e) => {
                    if self.note_write_error("segment", &e) {
                        break;
                    }
                    let mut buf = self.spill_buf.lock();
                    buf.extend(rows.iter().map(|&(round, subset, v)| {
                        (
                            CellKey {
                                trace,
                                tier,
                                round,
                                subset,
                            },
                            v,
                        )
                    }));
                }
            }
        }
        if written > 0 {
            self.spilled_cells.fetch_add(written, Ordering::Relaxed);
            if let Err(e) = disk.write_manifest() {
                eprintln!("fedval_cache: manifest write failed: {e}");
            }
        }
        written
    }

    /// Loads the persisted trained trace for `world`, if any. A corrupt
    /// file counts one corrupt event and reads as [`TraceLoad::Absent`]
    /// would — the caller retrains. Always `Absent` without a usable
    /// disk directory.
    pub fn load_trace(&self, world: Fingerprint) -> TraceLoad {
        let Some(disk) = self.disk_ok() else {
            return TraceLoad::Absent;
        };
        let loaded = trace::load_trace(disk.dir(), world);
        if matches!(loaded, TraceLoad::Corrupt) {
            self.corrupt_events.fetch_add(1, Ordering::Relaxed);
        }
        loaded
    }

    /// Persists a trained trace for `world` so later (or concurrent)
    /// processes skip training. Returns whether the file was durably
    /// written; failures count as write errors and degrade like
    /// segment-write failures.
    pub fn store_trace(&self, world: Fingerprint, record: &TraceRecord) -> bool {
        let Some(disk) = self.disk_ok() else {
            return false;
        };
        match trace::store_trace(disk.dir(), world, record) {
            Ok(_) => true,
            Err(e) => {
                self.note_write_error("trace", &e);
                false
            }
        }
    }

    /// Elects this process as `world`'s trainer. `None` means another
    /// live process holds the election lock (poll [`Self::load_trace`]
    /// for its result); `Some` grants training. Memory-only and
    /// degraded caches always win a no-op grant — there is nobody to
    /// coordinate with. If the lock file itself is unusable, training
    /// proceeds uncoordinated: duplicated work is safe (cells and
    /// traces are pure), a stalled job is not.
    pub fn try_train_lock(&self, world: Fingerprint) -> Option<TrainLock> {
        let Some(disk) = self.disk_ok() else {
            return Some(TrainLock { _lock: None });
        };
        let path = disk.dir().join(format!("train-{}.lock", world.to_hex()));
        match DirLock::try_acquire(path, "training election") {
            Ok(Some(lock)) => Some(TrainLock { _lock: Some(lock) }),
            Ok(None) => None,
            Err(e) => {
                eprintln!("fedval_cache: train lock unavailable: {e} (training uncoordinated)");
                Some(TrainLock { _lock: None })
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            resident_cells: self.store.len(),
            resident_bytes: self.store.resident_bytes(),
            capacity_bytes: self.store.capacity_cells() * CELL_COST_BYTES,
            evictions: self.store.evictions(),
            spilled_cells: self.spilled_cells.load(Ordering::Relaxed),
            disk_cells_loaded: self.disk_cells_loaded.load(Ordering::Relaxed),
            corrupt_events: self.corrupt_events.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            disk_degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

/// Proof that this process won (or runs without) a world's training
/// election. Dropping it releases the election lock; a process killed
/// while holding one releases it via the kernel.
#[derive(Debug)]
pub struct TrainLock {
    _lock: Option<DirLock>,
}

impl Drop for CellCache {
    /// Best-effort persistence of whatever is still dirty when the last
    /// owner lets go (jobs also flush explicitly at their boundaries).
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fedval-cellcache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(round: u32, subset: u64) -> CellKey {
        CellKey {
            trace: Fingerprint::from_bits(99),
            tier: 0,
            round,
            subset,
        }
    }

    #[test]
    fn memory_only_cache_shares_and_evicts() {
        let cache = CellCache::in_memory(2 * CELL_COST_BYTES);
        for i in 0..5 {
            let (slot, state) = cache.slot(key(i, 1));
            assert_eq!(state, SlotState::Reserved);
            *slot.write() = Some(i as f64);
            drop(slot);
            cache.complete(key(i, 1), i as f64);
        }
        let stats = cache.stats();
        assert!(stats.resident_cells <= 2);
        assert!(stats.evictions >= 3);
        assert_eq!(stats.spilled_cells, 0, "no disk, nothing spilled");
    }

    #[test]
    fn flush_then_attach_round_trips_across_cache_instances() {
        let dir = tmpdir("roundtrip");
        let values = [(0u32, 0b1u64, 0.125), (1, 0b11, -7.5)];
        {
            let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
            for &(round, subset, v) in &values {
                let k = CellKey {
                    round,
                    subset,
                    ..key(0, 0)
                };
                let (slot, _) = cache.slot(k);
                *slot.write() = Some(v);
                drop(slot);
                cache.complete(k, v);
            }
            assert_eq!(cache.flush(), 2);
        }
        // Fresh cache instance = simulated process restart.
        let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
        let loaded = cache.attach(Fingerprint::from_bits(99), 0);
        assert_eq!(loaded, 2);
        for &(round, subset, v) in &values {
            let k = CellKey {
                round,
                subset,
                ..key(0, 0)
            };
            let (slot, state) = cache.slot(k);
            assert_eq!(state, SlotState::Complete);
            assert_eq!(*slot.read(), Some(v));
        }
        // Second attach is a no-op.
        assert_eq!(cache.attach(Fingerprint::from_bits(99), 0), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_pressure_spills_dirty_cells_to_disk() {
        let dir = tmpdir("spill");
        {
            let cache = CellCache::with_dir(CELL_COST_BYTES, &dir);
            for i in 0..10 {
                let k = key(i, 1);
                let (slot, _) = cache.slot(k);
                *slot.write() = Some(i as f64);
                drop(slot);
                cache.complete(k, i as f64);
            }
            cache.flush();
            assert!(cache.stats().spilled_cells == 10, "all 10 must persist");
        }
        let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
        assert_eq!(cache.attach(Fingerprint::from_bits(99), 0), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_flushes_dirty_cells() {
        let dir = tmpdir("dropflush");
        {
            let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
            let (slot, _) = cache.slot(key(0, 1));
            *slot.write() = Some(2.5);
            drop(slot);
            cache.complete(key(0, 1), 2.5);
            // No explicit flush: Drop must persist.
        }
        let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
        assert_eq!(cache.attach(Fingerprint::from_bits(99), 0), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_from_env_defaults() {
        let config = CacheConfig::default();
        assert_eq!(config.memory_budget_bytes, DEFAULT_MEM_BUDGET_BYTES);
        assert!(config.disk_dir.is_none());
    }

    #[test]
    fn unusable_dir_degrades_to_memory_only() {
        // The "directory" path runs through a regular file, so
        // create_dir_all must fail — even as root (chmod tricks don't
        // bind root).
        let blocker = tmpdir("blocker");
        fs::create_dir_all(&blocker).unwrap();
        let file = blocker.join("not-a-dir");
        fs::write(&file, b"x").unwrap();
        let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, file.join("cache"));
        assert!(!cache.has_disk());
        assert!(cache.is_degraded());
        assert!(cache.stats().disk_degraded);
        // Jobs still work from memory.
        let k = key(0, 1);
        let (slot, state) = cache.slot(k);
        assert_eq!(state, SlotState::Reserved);
        *slot.write() = Some(1.5);
        drop(slot);
        cache.complete(k, 1.5);
        assert_eq!(*cache.slot(k).0.read(), Some(1.5));
        assert_eq!(cache.flush(), 0);
        assert_eq!(cache.attach(Fingerprint::from_bits(99), 0), 0);
        assert!(matches!(
            cache.load_trace(Fingerprint::from_bits(1)),
            TraceLoad::Absent
        ));
        assert!(
            cache.try_train_lock(Fingerprint::from_bits(1)).is_some(),
            "degraded cache self-elects (nobody to coordinate with)"
        );
        fs::remove_dir_all(&blocker).unwrap();
    }

    #[test]
    fn repeated_write_failures_degrade_instead_of_buffering_forever() {
        let dir = tmpdir("writefail");
        let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
        assert!(cache.has_disk());
        // Yank the directory out from under the cache: every segment
        // write now fails.
        fs::remove_dir_all(&dir).unwrap();
        for i in 0..(WRITE_ERROR_LIMIT + 2) {
            let k = key(i as u32, 1);
            let (slot, _) = cache.slot(k);
            *slot.write() = Some(i as f64);
            drop(slot);
            cache.complete(k, i as f64);
            cache.flush();
        }
        let stats = cache.stats();
        assert!(stats.disk_degraded, "must give up, not retry forever");
        assert!(stats.write_errors >= WRITE_ERROR_LIMIT);
        assert_eq!(stats.spilled_cells, 0);
        assert!(!cache.has_disk());
        // Values remain served from memory, bit-exact.
        assert_eq!(*cache.slot(key(0, 1)).0.read(), Some(0.0));
    }

    #[test]
    fn trace_round_trips_through_the_cache_facade() {
        let dir = tmpdir("facadetrace");
        let world = Fingerprint::from_bits(7777);
        let record = TraceRecord {
            num_clients: 1,
            rounds: vec![TraceRound {
                global: vec![0.5],
                locals: vec![vec![-0.5]],
                selected: 0b1,
                eta: 0.25,
            }],
            final_params: vec![0.125],
            base_losses: vec![0.75],
        };
        {
            let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
            assert!(matches!(cache.load_trace(world), TraceLoad::Absent));
            assert!(cache.store_trace(world, &record));
        }
        // Fresh instance = restarted process: the trace is there.
        let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
        match cache.load_trace(world) {
            TraceLoad::Ready(loaded) => assert_eq!(loaded, record),
            _ => panic!("restarted process must find the persisted trace"),
        }
        // Corruption is counted and degrades to retrain.
        let path = dir.join(trace_file_name(world));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(cache.load_trace(world), TraceLoad::Corrupt));
        assert_eq!(cache.stats().corrupt_events, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn train_lock_elects_a_single_trainer_per_world() {
        let dir = tmpdir("trainlock");
        let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
        let world = Fingerprint::from_bits(11);
        let other_world = Fingerprint::from_bits(22);
        let won = cache.try_train_lock(world).expect("uncontended election");
        assert!(
            cache.try_train_lock(world).is_none(),
            "second contender for the same world must lose"
        );
        assert!(
            cache.try_train_lock(other_world).is_some(),
            "elections are per-world"
        );
        drop(won);
        assert!(
            cache.try_train_lock(world).is_some(),
            "release re-opens the election"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_only_cache_always_wins_its_own_election() {
        let cache = CellCache::in_memory(DEFAULT_MEM_BUDGET_BYTES);
        assert!(cache.try_train_lock(Fingerprint::from_bits(1)).is_some());
        assert!(!cache.store_trace(
            Fingerprint::from_bits(1),
            &TraceRecord {
                num_clients: 0,
                rounds: Vec::new(),
                final_params: Vec::new(),
                base_losses: Vec::new(),
            }
        ));
    }
}
