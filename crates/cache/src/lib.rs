//! `fedval_cache` — the system's shared utility-cell cache tier.
//!
//! ComFedSV's round-utility cells `U_t(S)` are pure functions of
//! `(training trace, determinism tier, round, subset)`. This crate
//! turns that purity into a cache hierarchy the rest of the workspace
//! shares:
//!
//! * [`CellStore`] — an in-process bounded store of completed cells
//!   with second-chance (clock-LRU) eviction and per-cell memory
//!   accounting ([`CELL_COST_BYTES`]);
//! * [`DiskCache`] — checksummed, versioned on-disk segments under a
//!   configurable directory, so repeat valuations of the same trace
//!   hit warm cells across processes; corrupt or stale files degrade
//!   to recompute, never to wrong values;
//! * [`CellCache`] — the façade gluing the two together: dirty cells
//!   evicted under memory pressure spill to disk, [`CellCache::flush`]
//!   persists whatever remains, and [`CellCache::attach`] pre-loads a
//!   trace's persisted cells once per process.
//!
//! The oracle in `fedval_fl` keys into this cache with a
//! [`Fingerprint`] that covers everything a cell's value depends on
//! (trace parameters, test set, model, base losses), so a shared cache
//! can serve many tenants' oracles concurrently while staying
//! bit-identical to solo recomputation.
//!
//! # Configuration
//!
//! [`CacheConfig::from_env`] reads:
//!
//! * `FEDVAL_CACHE_DIR` — cache directory; unset disables disk spill
//!   and persistence (in-memory sharing still applies);
//! * `FEDVAL_CACHE_MEM_MB` — in-process budget in MiB (default 64;
//!   minimum one cell).

mod disk;
mod hash;
mod store;

pub use disk::{DiskCache, DiskCell, LoadOutcome, FORMAT_VERSION, MAGIC};
pub use hash::{Fingerprint, FingerprintHasher};
pub use store::{CellKey, CellSlot, CellStore, SlotState, CELL_COST_BYTES};

use parking_lot::Mutex;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default in-process budget when `FEDVAL_CACHE_MEM_MB` is unset.
pub const DEFAULT_MEM_BUDGET_BYTES: usize = 64 * 1024 * 1024;

/// How a [`CellCache`] is provisioned.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// In-process budget in bytes (see [`CELL_COST_BYTES`] accounting).
    pub memory_budget_bytes: usize,
    /// Segment directory; `None` disables spill/persistence.
    pub disk_dir: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            memory_budget_bytes: DEFAULT_MEM_BUDGET_BYTES,
            disk_dir: None,
        }
    }
}

impl CacheConfig {
    /// Reads `FEDVAL_CACHE_DIR` / `FEDVAL_CACHE_MEM_MB` (unparseable
    /// budget values fall back to the default — a bad env var should
    /// not take the service down).
    pub fn from_env() -> Self {
        let memory_budget_bytes = std::env::var("FEDVAL_CACHE_MEM_MB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|mb| mb.saturating_mul(1024 * 1024))
            .unwrap_or(DEFAULT_MEM_BUDGET_BYTES);
        let disk_dir = std::env::var("FEDVAL_CACHE_DIR")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map(PathBuf::from);
        CacheConfig {
            memory_budget_bytes,
            disk_dir,
        }
    }
}

/// Point-in-time counters for observability and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Resident entries (completed cells + in-flight reservations).
    pub resident_cells: usize,
    /// [`CELL_COST_BYTES`] × resident entries.
    pub resident_bytes: usize,
    /// Configured budget in bytes.
    pub capacity_bytes: usize,
    /// Completed cells evicted under memory pressure.
    pub evictions: u64,
    /// Dirty cells written to disk (spill + flush).
    pub spilled_cells: u64,
    /// Cells loaded from disk segments over this cache's lifetime.
    pub disk_cells_loaded: u64,
    /// Disk anomalies absorbed (each logged, each degraded to
    /// recompute).
    pub corrupt_events: u64,
}

/// The shared cache tier: bounded in-process store + optional disk
/// spill. Cheap to share via `Arc`; all methods take `&self`.
pub struct CellCache {
    store: CellStore,
    disk: Option<DiskCache>,
    /// `(trace, tier)` pairs already loaded from disk — attach is
    /// once-per-process per trace.
    attached: Mutex<HashSet<(Fingerprint, u8)>>,
    /// Dirty cells evicted from memory, awaiting a segment write.
    spill_buf: Mutex<Vec<(CellKey, f64)>>,
    spilled_cells: AtomicU64,
    disk_cells_loaded: AtomicU64,
    corrupt_events: AtomicU64,
}

/// Spill-buffer high-water mark: exceeding it writes a segment eagerly
/// so unbounded eviction pressure cannot re-grow memory in the buffer.
const SPILL_FLUSH_CELLS: usize = 8192;

impl CellCache {
    /// Builds a cache from `config`. An unusable disk directory is a
    /// logged degradation (cache runs memory-only), not an error.
    pub fn new(config: CacheConfig) -> Arc<Self> {
        let disk = config.disk_dir.and_then(|dir| match DiskCache::open(&dir) {
            Ok(disk) => Some(disk),
            Err(e) => {
                eprintln!(
                    "fedval_cache: cache dir {} unusable: {e} (running memory-only)",
                    dir.display()
                );
                None
            }
        });
        Arc::new(CellCache {
            store: CellStore::with_budget_bytes(config.memory_budget_bytes),
            disk,
            attached: Mutex::new(HashSet::new()),
            spill_buf: Mutex::new(Vec::new()),
            spilled_cells: AtomicU64::new(0),
            disk_cells_loaded: AtomicU64::new(0),
            corrupt_events: AtomicU64::new(0),
        })
    }

    /// Environment-configured cache ([`CacheConfig::from_env`]).
    pub fn from_env() -> Arc<Self> {
        Self::new(CacheConfig::from_env())
    }

    /// Memory-only cache with an explicit byte budget (tests, benches).
    pub fn in_memory(budget_bytes: usize) -> Arc<Self> {
        Self::new(CacheConfig {
            memory_budget_bytes: budget_bytes,
            disk_dir: None,
        })
    }

    /// Disk-backed cache with an explicit budget and directory.
    pub fn with_dir(budget_bytes: usize, dir: impl Into<PathBuf>) -> Arc<Self> {
        Self::new(CacheConfig {
            memory_budget_bytes: budget_bytes,
            disk_dir: Some(dir.into()),
        })
    }

    /// Whether a disk directory is configured and usable.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// Loads `(trace, tier)`'s persisted cells into the store, once per
    /// process; later calls (and disk-less caches) return 0. The count
    /// is the number of verified cells loaded *now* — an oracle seeing
    /// a positive count knows its trace is disk-warm.
    pub fn attach(&self, trace: Fingerprint, tier: u8) -> u64 {
        let Some(disk) = &self.disk else { return 0 };
        {
            let mut attached = self.attached.lock();
            if !attached.insert((trace, tier)) {
                return 0;
            }
        }
        let outcome = disk.load(trace, tier);
        self.corrupt_events
            .fetch_add(outcome.corrupt_events, Ordering::Relaxed);
        let mut loaded = 0u64;
        for (round, subset, value) in outcome.cells {
            let key = CellKey {
                trace,
                tier,
                round,
                subset,
            };
            let spill = self.store.insert_clean(key, value);
            self.queue_spill(spill);
            loaded += 1;
        }
        self.disk_cells_loaded.fetch_add(loaded, Ordering::Relaxed);
        loaded
    }

    /// The slot for `key` plus what the lookup found (used by the
    /// oracle to distinguish hits from fresh reservations).
    pub fn slot(&self, key: CellKey) -> (CellSlot, SlotState) {
        let (slot, state, spill) = self.store.slot(key);
        self.queue_spill(spill);
        (slot, state)
    }

    /// Records a freshly computed cell value (making it a dirty,
    /// evictable resident).
    pub fn complete(&self, key: CellKey, value: f64) {
        let spill = self.store.mark_complete(key, value);
        self.queue_spill(spill);
    }

    /// Persists all dirty cells (evicted spill buffer + still-resident)
    /// and refreshes the manifest. Returns cells written. No-op without
    /// a disk directory. I/O errors are logged degradations — dirty
    /// cells stay buffered for the next flush attempt.
    pub fn flush(&self) -> u64 {
        let Some(_) = &self.disk else { return 0 };
        let mut pending = std::mem::take(&mut *self.spill_buf.lock());
        pending.extend(self.store.drain_dirty());
        self.write_segments(pending)
    }

    /// Buffers evicted dirty cells for persistence (dropping them when
    /// no disk is configured — recompute covers them) and writes a
    /// segment eagerly past the high-water mark.
    fn queue_spill(&self, spill: Vec<(CellKey, f64)>) {
        if spill.is_empty() || self.disk.is_none() {
            return;
        }
        let flush_now = {
            let mut buf = self.spill_buf.lock();
            buf.extend(spill);
            buf.len() >= SPILL_FLUSH_CELLS
        };
        if flush_now {
            let pending = std::mem::take(&mut *self.spill_buf.lock());
            self.write_segments(pending);
        }
    }

    /// Groups `cells` by `(trace, tier)` and writes one segment per
    /// group; returns cells durably written.
    fn write_segments(&self, cells: Vec<(CellKey, f64)>) -> u64 {
        let Some(disk) = &self.disk else { return 0 };
        if cells.is_empty() {
            return 0;
        }
        let mut groups: Vec<((Fingerprint, u8), Vec<DiskCell>)> = Vec::new();
        for (key, value) in cells {
            let group = (key.trace, key.tier);
            match groups.iter_mut().find(|(g, _)| *g == group) {
                Some((_, rows)) => rows.push((key.round, key.subset, value)),
                None => groups.push((group, vec![(key.round, key.subset, value)])),
            }
        }
        let mut written = 0u64;
        for ((trace, tier), rows) in groups {
            match disk.append(trace, tier, &rows) {
                Ok(_) => written += rows.len() as u64,
                Err(e) => {
                    eprintln!("fedval_cache: segment write failed: {e} (cells stay dirty)");
                    let mut buf = self.spill_buf.lock();
                    buf.extend(rows.iter().map(|&(round, subset, v)| {
                        (
                            CellKey {
                                trace,
                                tier,
                                round,
                                subset,
                            },
                            v,
                        )
                    }));
                }
            }
        }
        if written > 0 {
            self.spilled_cells.fetch_add(written, Ordering::Relaxed);
            if let Err(e) = disk.write_manifest() {
                eprintln!("fedval_cache: manifest write failed: {e}");
            }
        }
        written
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            resident_cells: self.store.len(),
            resident_bytes: self.store.resident_bytes(),
            capacity_bytes: self.store.capacity_cells() * CELL_COST_BYTES,
            evictions: self.store.evictions(),
            spilled_cells: self.spilled_cells.load(Ordering::Relaxed),
            disk_cells_loaded: self.disk_cells_loaded.load(Ordering::Relaxed),
            corrupt_events: self.corrupt_events.load(Ordering::Relaxed),
        }
    }
}

impl Drop for CellCache {
    /// Best-effort persistence of whatever is still dirty when the last
    /// owner lets go (jobs also flush explicitly at their boundaries).
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fedval-cellcache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(round: u32, subset: u64) -> CellKey {
        CellKey {
            trace: Fingerprint::from_bits(99),
            tier: 0,
            round,
            subset,
        }
    }

    #[test]
    fn memory_only_cache_shares_and_evicts() {
        let cache = CellCache::in_memory(2 * CELL_COST_BYTES);
        for i in 0..5 {
            let (slot, state) = cache.slot(key(i, 1));
            assert_eq!(state, SlotState::Reserved);
            *slot.write() = Some(i as f64);
            drop(slot);
            cache.complete(key(i, 1), i as f64);
        }
        let stats = cache.stats();
        assert!(stats.resident_cells <= 2);
        assert!(stats.evictions >= 3);
        assert_eq!(stats.spilled_cells, 0, "no disk, nothing spilled");
    }

    #[test]
    fn flush_then_attach_round_trips_across_cache_instances() {
        let dir = tmpdir("roundtrip");
        let values = [(0u32, 0b1u64, 0.125), (1, 0b11, -7.5)];
        {
            let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
            for &(round, subset, v) in &values {
                let k = CellKey {
                    round,
                    subset,
                    ..key(0, 0)
                };
                let (slot, _) = cache.slot(k);
                *slot.write() = Some(v);
                drop(slot);
                cache.complete(k, v);
            }
            assert_eq!(cache.flush(), 2);
        }
        // Fresh cache instance = simulated process restart.
        let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
        let loaded = cache.attach(Fingerprint::from_bits(99), 0);
        assert_eq!(loaded, 2);
        for &(round, subset, v) in &values {
            let k = CellKey {
                round,
                subset,
                ..key(0, 0)
            };
            let (slot, state) = cache.slot(k);
            assert_eq!(state, SlotState::Complete);
            assert_eq!(*slot.read(), Some(v));
        }
        // Second attach is a no-op.
        assert_eq!(cache.attach(Fingerprint::from_bits(99), 0), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_pressure_spills_dirty_cells_to_disk() {
        let dir = tmpdir("spill");
        {
            let cache = CellCache::with_dir(CELL_COST_BYTES, &dir);
            for i in 0..10 {
                let k = key(i, 1);
                let (slot, _) = cache.slot(k);
                *slot.write() = Some(i as f64);
                drop(slot);
                cache.complete(k, i as f64);
            }
            cache.flush();
            assert!(cache.stats().spilled_cells == 10, "all 10 must persist");
        }
        let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
        assert_eq!(cache.attach(Fingerprint::from_bits(99), 0), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_flushes_dirty_cells() {
        let dir = tmpdir("dropflush");
        {
            let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
            let (slot, _) = cache.slot(key(0, 1));
            *slot.write() = Some(2.5);
            drop(slot);
            cache.complete(key(0, 1), 2.5);
            // No explicit flush: Drop must persist.
        }
        let cache = CellCache::with_dir(DEFAULT_MEM_BUDGET_BYTES, &dir);
        assert_eq!(cache.attach(Fingerprint::from_bits(99), 0), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_from_env_defaults() {
        let config = CacheConfig::default();
        assert_eq!(config.memory_budget_bytes, DEFAULT_MEM_BUDGET_BYTES);
        assert!(config.disk_dir.is_none());
    }
}
