//! Layout-controlled JSON writing without a JSON dependency.
//!
//! [`JsonWriter`] builds syntactically valid JSON while giving the
//! caller explicit control over layout, because the committed
//! `BENCH_*.json` baselines have a deliberate shape: pretty (one entry
//! per line, two-space indent) top-level containers so diffs review
//! well, with *compact* one-line objects as array rows so the smoke
//! modes can scan them back line-by-line with
//! [`scan`](crate::scan). The `fedval_service` wire format uses the
//! same compact objects as whole message bodies.
//!
//! Two invariants the writer enforces that the hand-rolled
//! `push_str(format!(…))` code it replaces did not:
//!
//! * string values are escaped ([`escape_into`]), so arbitrary text
//!   (panic messages, client-supplied names) cannot corrupt the output;
//! * non-finite floats become `null` instead of the invalid bare
//!   tokens `NaN` / `inf`.

/// Appends `s` to `out` with JSON string escaping (`"`, `\`, and
/// control characters; no quotes are added).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// The JSON-escaped form of `s` (no surrounding quotes).
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Whether a container lays its entries out one-per-line (pretty) or
/// inline (compact).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Layout {
    Pretty,
    Compact,
}

struct Frame {
    layout: Layout,
    /// Closing delimiter: `}` or `]`.
    close: char,
    entries: usize,
}

/// An append-only JSON builder with explicit layout control.
///
/// Containers are opened pretty ([`JsonWriter::begin_object`],
/// [`JsonWriter::begin_array`]) or compact
/// ([`JsonWriter::begin_object_compact`]); pretty containers put each
/// entry on its own line indented two spaces per depth, compact ones
/// separate entries with `", "` on one line. A compact container nested
/// in a pretty array renders as one row line — the committed-baseline
/// format. Keys are given via the `*_field` methods inside objects;
/// bare value methods append array elements.
///
/// ```
/// use fedval_jsonio::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.str_field("bench", "demo");
/// w.begin_array_field("rows");
/// for i in 0..2 {
///     w.begin_object_compact();
///     w.u64_field("row", i);
///     w.end_object();
/// }
/// w.end_array();
/// w.end_object();
/// assert_eq!(
///     w.finish(),
///     "{\n  \"bench\": \"demo\",\n  \"rows\": [\n    {\"row\": 0},\n    {\"row\": 1}\n  ]\n}\n"
/// );
/// ```
#[derive(Default)]
pub struct JsonWriter {
    buf: String,
    stack: Vec<Frame>,
}

impl JsonWriter {
    /// An empty writer; open a top-level container next.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Starts the next entry: separator from the previous sibling plus,
    /// in pretty containers, a fresh indented line.
    fn prepare_entry(&mut self) {
        let depth = self.stack.len();
        if let Some(frame) = self.stack.last_mut() {
            let first = frame.entries == 0;
            frame.entries += 1;
            match frame.layout {
                Layout::Compact => {
                    if !first {
                        self.buf.push_str(", ");
                    }
                }
                Layout::Pretty => {
                    if !first {
                        self.buf.push(',');
                    }
                    self.buf.push('\n');
                    for _ in 0..depth {
                        self.buf.push_str("  ");
                    }
                }
            }
        }
    }

    fn open(&mut self, open: char, close: char, layout: Layout) {
        self.prepare_entry();
        self.buf.push(open);
        self.stack.push(Frame {
            layout,
            close,
            entries: 0,
        });
    }

    fn close(&mut self, expect: char) {
        let frame = self.stack.pop().expect("close without matching open");
        assert_eq!(frame.close, expect, "mismatched container close");
        if frame.layout == Layout::Pretty && frame.entries > 0 {
            self.buf.push('\n');
            for _ in 0..self.stack.len() {
                self.buf.push_str("  ");
            }
        }
        self.buf.push(frame.close);
    }

    /// Writes `"key": ` as the start of a new entry; the caller appends
    /// the value directly (never via `prepare_entry`, which would
    /// separate key from value).
    fn key(&mut self, key: &str) {
        self.prepare_entry();
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\": ");
    }

    /// Appends pre-rendered JSON (already valid, already escaped) as
    /// the value following a key written by `key()`.
    fn push_raw(&mut self, raw: &str) {
        self.buf.push_str(raw);
    }

    // --- containers ---

    /// Opens a pretty `{` (top level or array element).
    pub fn begin_object(&mut self) {
        self.open('{', '}', Layout::Pretty);
    }

    /// Opens a compact one-line `{` (row / wire-body format).
    pub fn begin_object_compact(&mut self) {
        self.open('{', '}', Layout::Compact);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.close('}');
    }

    /// Opens a pretty `[` (top level or array element).
    pub fn begin_array(&mut self) {
        self.open('[', ']', Layout::Pretty);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.close(']');
    }

    /// Opens `"key": [` (pretty) inside an object.
    pub fn begin_array_field(&mut self, key: &str) {
        self.key(key);
        self.buf.push('[');
        self.stack.push(Frame {
            layout: Layout::Pretty,
            close: ']',
            entries: 0,
        });
    }

    /// Opens `"key": {` (pretty) inside an object.
    pub fn begin_object_field(&mut self, key: &str) {
        self.key(key);
        self.buf.push('{');
        self.stack.push(Frame {
            layout: Layout::Pretty,
            close: '}',
            entries: 0,
        });
    }

    /// Opens `"key": {` compact (inline map like `"speedup": {…}`)
    /// inside an object.
    pub fn begin_object_field_compact(&mut self, key: &str) {
        self.key(key);
        self.buf.push('{');
        self.stack.push(Frame {
            layout: Layout::Compact,
            close: '}',
            entries: 0,
        });
    }

    /// Opens `"key": [` compact (inline list like `"values": [1, 2]`)
    /// inside an object.
    pub fn begin_array_field_compact(&mut self, key: &str) {
        self.key(key);
        self.buf.push('[');
        self.stack.push(Frame {
            layout: Layout::Compact,
            close: ']',
            entries: 0,
        });
    }

    // --- object fields ---

    /// `"key": "value"` with escaping.
    pub fn str_field(&mut self, key: &str, value: &str) {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
    }

    /// `"key": 1.25` (shortest round-trip float; non-finite → `null`).
    pub fn num_field(&mut self, key: &str, value: f64) {
        self.key(key);
        let rendered = Self::render_num(value);
        self.push_raw(&rendered);
    }

    /// `"key": 42` (unsigned integer, exact).
    pub fn u64_field(&mut self, key: &str, value: u64) {
        self.key(key);
        let rendered = value.to_string();
        self.push_raw(&rendered);
    }

    /// `"key": value` or `"key": null`.
    pub fn opt_num_field(&mut self, key: &str, value: Option<f64>) {
        self.key(key);
        let rendered = match value {
            Some(v) => Self::render_num(v),
            None => "null".to_string(),
        };
        self.push_raw(&rendered);
    }

    /// `"key": true` / `"key": false`.
    pub fn bool_field(&mut self, key: &str, value: bool) {
        self.key(key);
        self.push_raw(if value { "true" } else { "false" });
    }

    /// `"key": null`.
    pub fn null_field(&mut self, key: &str) {
        self.key(key);
        self.push_raw("null");
    }

    // --- array elements ---

    /// A string element with escaping.
    pub fn str_elem(&mut self, value: &str) {
        self.prepare_entry();
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
    }

    /// A numeric element (non-finite → `null`).
    pub fn num_elem(&mut self, value: f64) {
        self.prepare_entry();
        let rendered = Self::render_num(value);
        self.buf.push_str(&rendered);
    }

    fn render_num(value: f64) -> String {
        if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        }
    }

    /// The finished document with a trailing newline. Panics if any
    /// container is still open.
    pub fn finish(mut self) -> String {
        assert!(
            self.stack.is_empty(),
            "finish() with {} unclosed container(s)",
            self.stack.len()
        );
        self.buf.push('\n');
        self.buf
    }

    /// The finished document without a trailing newline (wire bodies).
    pub fn finish_inline(self) -> String {
        assert!(
            self.stack.is_empty(),
            "finish_inline() with {} unclosed container(s)",
            self.stack.len()
        );
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan_num, scan_str};

    #[test]
    fn committed_baseline_shape_is_reproduced() {
        // The exact byte layout the bench binaries committed before the
        // writer existed: pretty top level, compact row lines, inline
        // compact maps.
        let mut w = JsonWriter::new();
        w.begin_object();
        w.str_field("bench", "cell_throughput");
        w.str_field("mode", "smoke");
        w.u64_field("pool_threads", 1);
        w.begin_array_field("cases");
        for (case, secs) in [("mlp", 0.5), ("cnn", 1.25)] {
            w.begin_object_compact();
            w.str_field("case", case);
            w.num_field("seconds", secs);
            w.end_object();
        }
        w.end_array();
        w.begin_object_field_compact("speedup");
        w.num_field("mlp", 2.0);
        w.num_field("cnn", 3.5);
        w.end_object();
        w.end_object();
        assert_eq!(
            w.finish(),
            "{\n  \"bench\": \"cell_throughput\",\n  \"mode\": \"smoke\",\n  \
             \"pool_threads\": 1,\n  \"cases\": [\n    \
             {\"case\": \"mlp\", \"seconds\": 0.5},\n    \
             {\"case\": \"cnn\", \"seconds\": 1.25}\n  ],\n  \
             \"speedup\": {\"mlp\": 2, \"cnn\": 3.5}\n}\n"
        );
    }

    #[test]
    fn output_scans_back() {
        let mut w = JsonWriter::new();
        w.begin_object_compact();
        w.str_field("method", "comfedsv");
        w.num_field("seed", 42.0);
        w.opt_num_field("auc", None);
        w.end_object();
        let body = w.finish_inline();
        assert_eq!(scan_str(&body, "method"), Some("comfedsv"));
        assert_eq!(scan_num(&body, "seed"), Some(42.0));
        assert_eq!(scan_num(&body, "auc"), None);
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.begin_object_compact();
        w.str_field("error", "bad \"quote\"\\path\nline2\u{1}");
        w.end_object();
        assert_eq!(
            w.finish_inline(),
            "{\"error\": \"bad \\\"quote\\\"\\\\path\\nline2\\u0001\"}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_object_compact();
        w.num_field("nan", f64::NAN);
        w.num_field("inf", f64::INFINITY);
        w.num_field("ok", 1.0);
        w.end_object();
        assert_eq!(
            w.finish_inline(),
            "{\"nan\": null, \"inf\": null, \"ok\": 1}"
        );
    }

    #[test]
    fn arrays_of_scalars() {
        let mut w = JsonWriter::new();
        w.begin_object_compact();
        w.begin_array_field("values");
        w.num_elem(1.5);
        w.num_elem(-2.0);
        w.end_array();
        w.end_object();
        // A pretty array nested in a compact object still lays its
        // elements out one per line — callers wanting fully inline
        // output keep scalars in compact objects instead.
        let out = w.finish_inline();
        assert!(out.starts_with("{\"values\": ["));
        assert!(out.contains("1.5"));
        assert!(out.contains("-2"));
    }

    #[test]
    fn compact_array_field_stays_inline() {
        let mut w = JsonWriter::new();
        w.begin_object_compact();
        w.begin_array_field_compact("values");
        w.num_elem(1.5);
        w.num_elem(-2.0);
        w.str_elem("x");
        w.end_array();
        w.end_object();
        assert_eq!(w.finish_inline(), "{\"values\": [1.5, -2, \"x\"]}");
    }

    #[test]
    fn pretty_empty_containers_close_inline() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.begin_array_field("rows");
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), "{\n  \"rows\": []\n}\n");
    }

    #[test]
    fn bool_and_null_fields() {
        let mut w = JsonWriter::new();
        w.begin_object_compact();
        w.bool_field("done", true);
        w.bool_field("cancelled", false);
        w.null_field("report");
        w.end_object();
        assert_eq!(
            w.finish_inline(),
            "{\"done\": true, \"cancelled\": false, \"report\": null}"
        );
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_rejects_unclosed_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        let _ = w.finish();
    }
}
