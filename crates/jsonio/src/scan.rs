//! Minimal flat-JSON field extraction without a JSON dependency.
//!
//! The benchmark binaries write their machine-readable output as one
//! JSON object per line in a `"rows"` / `"cases"` array; the smoke
//! modes read the committed copy back to compare against, and the
//! `fedval_service` HTTP layer pulls fields out of request bodies. The
//! scanners here extract `"key": value` pairs from such flat text. They
//! are deliberately not a JSON parser — they assume the object is flat
//! (no nested objects between the key and its value) and that string
//! values don't contain escaped quotes, which holds for everything this
//! workspace reads. Whitespace around the `:` separator is accepted, so
//! hand-written or foreign wire bodies scan the same as this
//! workspace's own output.

/// Byte index just past `"key"` + optional whitespace + `:` + optional
/// whitespace — i.e. the start of the value — or `None` when `text`
/// has no such key. Occurrences of the quoted key *not* followed by a
/// colon (e.g. as a string value) are skipped.
fn value_start(text: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\"");
    let mut from = 0;
    while let Some(hit) = text[from..].find(&pat) {
        let after_key = from + hit + pat.len();
        let rest = text[after_key..].trim_start();
        if let Some(rest) = rest.strip_prefix(':') {
            let value = rest.trim_start();
            return Some(text.len() - value.len());
        }
        from = after_key;
    }
    None
}

/// Extracts the raw string value of `"key": "…"` from flat JSON text.
///
/// The returned slice is the text between the quotes, unprocessed: a
/// value containing escape sequences is returned still-escaped (and a
/// value containing an escaped quote is truncated at it). Returns
/// `None` for missing keys and non-string values.
pub fn scan_str<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let start = value_start(text, key)?;
    let value = text[start..].strip_prefix('"')?;
    let end = value.find('"')?;
    Some(&value[..end])
}

/// Extracts the numeric value of `"key": 1.25` from flat JSON text.
/// Returns `None` for missing keys and non-numeric values (including
/// `null`).
pub fn scan_num(text: &str, key: &str) -> Option<f64> {
    let start = value_start(text, key)?;
    let value = &text[start..];
    let end = value
        .find([',', '}', ']', ' ', '\t', '\r', '\n'])
        .unwrap_or(value.len());
    value[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROW: &str =
        "    {\"case\": \"mlp\", \"tier\": \"fast\", \"seconds\": 0.5, \"auc\": null},";

    #[test]
    fn scans_strings_and_numbers() {
        assert_eq!(scan_str(ROW, "case"), Some("mlp"));
        assert_eq!(scan_str(ROW, "tier"), Some("fast"));
        assert_eq!(scan_num(ROW, "seconds"), Some(0.5));
    }

    #[test]
    fn missing_and_null_fields_are_none() {
        assert_eq!(scan_str(ROW, "absent"), None);
        assert_eq!(scan_num(ROW, "absent"), None);
        assert_eq!(scan_num(ROW, "auc"), None, "null is not a number");
    }

    #[test]
    fn last_field_terminated_by_brace() {
        assert_eq!(scan_num("{\"x\": 2}", "x"), Some(2.0));
    }

    #[test]
    fn whitespace_around_separator_is_tolerated() {
        let body = "{ \"method\" :\"comfedsv\" ,\n  \"seed\"\t: 42 ,\n  \"lr\":0.25 }";
        assert_eq!(scan_str(body, "method"), Some("comfedsv"));
        assert_eq!(scan_num(body, "seed"), Some(42.0));
        assert_eq!(scan_num(body, "lr"), Some(0.25));
    }

    #[test]
    fn key_as_a_string_value_is_not_matched() {
        // "tier" appears first as the *value* of "kind"; the scanner
        // must skip it and find the real key.
        let body = "{\"kind\": \"tier\", \"tier\": \"fast\"}";
        assert_eq!(scan_str(body, "tier"), Some("fast"));
    }

    #[test]
    fn numbers_terminated_by_whitespace_or_bracket() {
        assert_eq!(scan_num("{\"x\": 7 }", "x"), Some(7.0));
        assert_eq!(scan_num("[{\"x\": -1.5e3}]", "x"), Some(-1500.0));
        assert_eq!(scan_num("{\"x\": 3\n}", "x"), Some(3.0));
    }

    #[test]
    fn string_value_is_not_a_number() {
        assert_eq!(scan_num("{\"x\": \"12\"}", "x"), None);
        assert_eq!(scan_str("{\"x\": 12}", "x"), None);
    }
}
