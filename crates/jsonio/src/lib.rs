//! Dependency-free flat-JSON writing and field extraction.
//!
//! The workspace is fully offline (no serde), yet three places speak
//! JSON: the benchmark binaries write committed `BENCH_*.json` baseline
//! files and read them back in `--smoke` mode, and the `fedval_service`
//! HTTP API exchanges request/response/event bodies. This crate is the
//! shared, deliberately small machinery for both directions:
//!
//! * [`mod@write`] — a [`JsonWriter`] that builds syntactically valid JSON
//!   with explicit layout control (pretty containers for human-diffable
//!   committed files, compact one-line containers for the row/wire
//!   format) and proper string escaping.
//! * [`scan`] — field extractors ([`scan_str`], [`scan_num`]) that pull
//!   `"key": value` pairs back out of flat (non-nested-object) JSON
//!   text without a full parser. Tolerant of arbitrary whitespace
//!   around `:` so they accept wire bodies from other writers, not
//!   just this crate's own output.
//!
//! The scanners are *not* a JSON parser: they assume values of interest
//! live in a flat object (the one-object-per-line row format the
//! writers emit, or a small request body) and that string values of
//! interest don't contain escaped quotes. That contract is exactly what
//! the writers in this workspace produce; `fedval_bench` re-exports
//! both modules for the benchmark binaries.

pub mod scan;
pub mod write;

pub use scan::{scan_num, scan_str};
pub use write::{escape_into, escaped, JsonWriter};
