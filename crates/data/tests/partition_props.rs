//! Property-based tests for the partitioners, centered on the Dirichlet
//! label-skew construction the robustness scenario catalog depends on:
//! for arbitrary (clients, α, seed, size) it must stay deterministic,
//! cover every example exactly once, and never hand a client an empty
//! dataset when there are at least as many examples as clients.

use fedval_data::{partition_dirichlet, partition_iid, Dataset};
use fedval_linalg::Matrix;
use proptest::prelude::*;

/// A dataset whose feature column 0 stores the example's global index,
/// so partitions can be audited for exactly-once coverage.
fn indexed_dataset(n: usize, num_classes: usize) -> Dataset {
    let features = Matrix::from_fn(n, 2, |i, j| {
        if j == 0 {
            i as f64
        } else {
            (i * 31 % 17) as f64
        }
    });
    let labels: Vec<usize> = (0..n).map(|i| i % num_classes).collect();
    Dataset::new(features, labels, num_classes).unwrap()
}

/// Collects the global indices (feature column 0) of every example across
/// all partitions, sorted.
fn covered_indices(parts: &[Dataset]) -> Vec<usize> {
    let mut out: Vec<usize> = parts
        .iter()
        .flat_map(|p| (0..p.len()).map(|i| p.features().get(i, 0) as usize))
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dirichlet_covers_every_example_exactly_once(
        num_clients in 1usize..12,
        num_classes in 1usize..8,
        n in 1usize..200,
        alpha in 0.05f64..20.0,
        seed in 0u64..10_000,
    ) {
        let d = indexed_dataset(n, num_classes);
        let parts = partition_dirichlet(&d, num_clients, alpha, seed);
        prop_assert_eq!(parts.len(), num_clients);
        let covered = covered_indices(&parts);
        let expected: Vec<usize> = (0..n).collect();
        prop_assert_eq!(covered, expected);
        // Labels travel with their examples.
        for p in &parts {
            for i in 0..p.len() {
                let global = p.features().get(i, 0) as usize;
                prop_assert_eq!(p.labels()[i], global % num_classes);
            }
        }
    }

    #[test]
    fn dirichlet_is_deterministic_per_seed(
        num_clients in 1usize..10,
        alpha in 0.05f64..10.0,
        seed in 0u64..10_000,
    ) {
        let d = indexed_dataset(120, 6);
        let a = partition_dirichlet(&d, num_clients, alpha, seed);
        let b = partition_dirichlet(&d, num_clients, alpha, seed);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.labels(), y.labels());
            prop_assert_eq!(x.features().as_slice(), y.features().as_slice());
        }
    }

    #[test]
    fn dirichlet_never_yields_empty_clients_when_data_suffices(
        num_clients in 1usize..12,
        num_classes in 1usize..6,
        alpha in 0.05f64..2.0,
        seed in 0u64..10_000,
        spare in 0usize..100,
    ) {
        // n ≥ num_clients by construction; low α maximizes starvation risk.
        let n = num_clients + spare;
        let d = indexed_dataset(n, num_classes);
        let parts = partition_dirichlet(&d, num_clients, alpha, seed);
        for (i, p) in parts.iter().enumerate() {
            prop_assert!(!p.is_empty(), "client {} received no data", i);
        }
    }

    #[test]
    fn iid_partition_covers_every_example_exactly_once(
        num_clients in 1usize..12,
        n in 1usize..200,
        seed in 0u64..10_000,
    ) {
        let d = indexed_dataset(n, 4);
        let parts = partition_iid(&d, num_clients, seed);
        let covered = covered_indices(&parts);
        let expected: Vec<usize> = (0..n).collect();
        prop_assert_eq!(covered, expected);
    }
}
