//! Partitioning a dataset across federated clients.
//!
//! The paper uses two layouts for the real (here: simulated) datasets:
//! random IID distribution, and the FedAvg-style non-IID sharding in which
//! every client receives samples of only two classes. It also constructs
//! the fairness experiment by giving client 9 an exact copy of client 0's
//! data ([`duplicate_client`]).

use crate::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits `data` into `num_clients` IID shards of (near-)equal size.
///
/// Examples are shuffled with the seeded RNG and distributed round-robin,
/// so client sizes differ by at most one.
pub fn partition_iid(data: &Dataset, num_clients: usize, seed: u64) -> Vec<Dataset> {
    assert!(num_clients > 0, "need at least one client");
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); num_clients];
    for (i, idx) in order.into_iter().enumerate() {
        buckets[i % num_clients].push(idx);
    }
    buckets.into_iter().map(|b| data.subset(&b)).collect()
}

/// FedAvg-paper non-IID sharding: sorts examples by label, cuts them into
/// `2 * num_clients` shards, and deals each client two shards, so that most
/// clients see only (about) two classes.
pub fn partition_shards(data: &Dataset, num_clients: usize, seed: u64) -> Vec<Dataset> {
    assert!(num_clients > 0, "need at least one client");
    let mut order: Vec<usize> = (0..data.len()).collect();
    // Stable sort by label keeps determinism independent of the RNG.
    order.sort_by_key(|&i| data.labels()[i]);

    let num_shards = 2 * num_clients;
    let shard_size = data.len() / num_shards;
    let mut shards: Vec<Vec<usize>> = Vec::with_capacity(num_shards);
    for s in 0..num_shards {
        let start = s * shard_size;
        let end = if s + 1 == num_shards {
            data.len()
        } else {
            (s + 1) * shard_size
        };
        shards.push(order[start..end].to_vec());
    }

    let mut shard_ids: Vec<usize> = (0..num_shards).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    shard_ids.shuffle(&mut rng);

    (0..num_clients)
        .map(|k| {
            let mut idx = shards[shard_ids[2 * k]].clone();
            idx.extend_from_slice(&shards[shard_ids[2 * k + 1]]);
            data.subset(&idx)
        })
        .collect()
}

/// Replaces client `dst`'s dataset with an exact copy of client `src`'s —
/// the construction behind the paper's Example 1 / Fig. 5 fairness study
/// (clients 0 and 9 share identical local data).
pub fn duplicate_client(clients: &mut [Dataset], src: usize, dst: usize) {
    assert!(src < clients.len() && dst < clients.len(), "index in range");
    if src != dst {
        clients[dst] = clients[src].clone();
    }
}

/// Standard Dirichlet label-skew presets for the scenario catalog, so
/// harnesses and docs agree on what "mild" vs. "severe" heterogeneity
/// means. Pass [`alpha`](DirichletSkew::alpha) to
/// [`partition_dirichlet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirichletSkew {
    /// `α = 10`: near-IID, client class mixes close to the global mix.
    Mild,
    /// `α = 0.5`: the FL literature's usual "non-IID" operating point.
    Moderate,
    /// `α = 0.1`: most clients dominated by one or two classes.
    Severe,
}

impl DirichletSkew {
    /// The concentration parameter this preset names.
    pub fn alpha(self) -> f64 {
        match self {
            DirichletSkew::Mild => 10.0,
            DirichletSkew::Moderate => 0.5,
            DirichletSkew::Severe => 0.1,
        }
    }

    /// Short name used in harness output.
    pub fn name(self) -> &'static str {
        match self {
            DirichletSkew::Mild => "mild",
            DirichletSkew::Moderate => "moderate",
            DirichletSkew::Severe => "severe",
        }
    }

    /// All presets, mildest first.
    pub fn all() -> [DirichletSkew; 3] {
        [
            DirichletSkew::Mild,
            DirichletSkew::Moderate,
            DirichletSkew::Severe,
        ]
    }
}

/// Dirichlet label-skew partitioner (Hsu et al.): for each class, the
/// per-client allocation proportions are drawn from `Dirichlet(α, …, α)`.
///
/// `alpha → ∞` approaches IID; `alpha → 0` approaches one-class-per-client.
/// This is the other standard non-IID construction in the FL literature
/// and backs the heterogeneity ablation (`ablation_heterogeneity`) and
/// the robustness scenario catalog (see [`DirichletSkew`] for named
/// presets).
///
/// Every example is assigned to exactly one client, and — whenever
/// `data.len() ≥ num_clients` — no client comes back empty: skewed draws
/// that would starve a client are rebalanced deterministically (examples
/// move from the currently largest client), so downstream training
/// never panics on an empty dataset.
pub fn partition_dirichlet(
    data: &Dataset,
    num_clients: usize,
    alpha: f64,
    seed: u64,
) -> Vec<Dataset> {
    assert!(num_clients > 0, "need at least one client");
    assert!(alpha > 0.0, "Dirichlet concentration must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = crate::NormalSampler::new();

    // Per-class example pools, shuffled.
    let mut pools: Vec<Vec<usize>> = vec![Vec::new(); data.num_classes()];
    for (i, &label) in data.labels().iter().enumerate() {
        pools[label].push(i);
    }
    for pool in &mut pools {
        pool.shuffle(&mut rng);
    }

    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); num_clients];
    for pool in &pools {
        if pool.is_empty() {
            continue;
        }
        let props = dirichlet_sample(&mut rng, &mut normal, alpha, num_clients);
        // Convert proportions to cumulative cut points over the pool.
        let mut start = 0usize;
        let mut acc = 0.0;
        for (k, &p) in props.iter().enumerate() {
            acc += p;
            let end = if k + 1 == num_clients {
                pool.len()
            } else {
                ((pool.len() as f64) * acc).round() as usize
            }
            .clamp(start, pool.len());
            buckets[k].extend_from_slice(&pool[start..end]);
            start = end;
        }
    }

    // Rebalance so no client ends up empty (a severe-α draw can starve
    // one): repeatedly move the last example of the currently largest
    // bucket into an empty one. Deterministic — ties break toward the
    // lowest donor index, and the moved example is the donor's most
    // recently assigned — and a pure function of the seeded draw above.
    while let Some(empty) = buckets.iter().position(|b| b.is_empty()) {
        let (donor, donor_len) = buckets
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.len()))
            .max_by_key(|&(i, len)| (len, std::cmp::Reverse(i)))
            .expect("num_clients > 0");
        if donor_len <= 1 {
            // Fewer examples than clients: emptiness is unavoidable.
            break;
        }
        let moved = buckets[donor].pop().expect("donor non-empty");
        buckets[empty].push(moved);
    }

    buckets.into_iter().map(|b| data.subset(&b)).collect()
}

/// Draws one `Dirichlet(α, …, α)` sample via normalized Gamma variates
/// (Marsaglia–Tsang for `α ≥ 1`, boosted for `α < 1`).
fn dirichlet_sample(
    rng: &mut StdRng,
    normal: &mut crate::NormalSampler,
    alpha: f64,
    k: usize,
) -> Vec<f64> {
    use rand::Rng;
    let mut out: Vec<f64> = (0..k).map(|_| gamma_sample(rng, normal, alpha)).collect();
    let total: f64 = out.iter().sum();
    if total <= 0.0 {
        // Degenerate draw (all underflowed): fall back to uniform.
        return vec![1.0 / k as f64; k];
    }
    for v in &mut out {
        *v /= total;
    }
    let _ = rng.random::<u8>(); // keep the stream moving between classes
    out
}

fn gamma_sample(rng: &mut StdRng, normal: &mut crate::NormalSampler, alpha: f64) -> f64 {
    use rand::Rng;
    if alpha < 1.0 {
        // Boost: Gamma(α) = Gamma(α+1) · U^{1/α}.
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return gamma_sample(rng, normal, alpha + 1.0) * u.powf(1.0 / alpha);
    }
    // Marsaglia–Tsang squeeze.
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal.sample(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_linalg::Matrix;

    fn labelled_dataset(n: usize, num_classes: usize) -> Dataset {
        let feat = Matrix::from_fn(n, 3, |i, j| (i * 3 + j) as f64);
        let labels: Vec<usize> = (0..n).map(|i| i % num_classes).collect();
        Dataset::new(feat, labels, num_classes).unwrap()
    }

    #[test]
    fn iid_partition_preserves_all_examples() {
        let d = labelled_dataset(103, 5);
        let parts = partition_iid(&d, 10, 1);
        assert_eq!(parts.len(), 10);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 103);
        // Sizes within one of each other.
        let min = parts.iter().map(|p| p.len()).min().unwrap();
        let max = parts.iter().map(|p| p.len()).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn iid_partition_is_deterministic() {
        let d = labelled_dataset(50, 5);
        let a = partition_iid(&d, 5, 7);
        let b = partition_iid(&d, 5, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.features().as_slice(), y.features().as_slice());
        }
    }

    #[test]
    fn iid_partition_mixes_classes() {
        let d = labelled_dataset(200, 10);
        let parts = partition_iid(&d, 4, 3);
        for p in &parts {
            let distinct = p
                .labels()
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len();
            assert!(distinct >= 5, "IID shard should see many classes");
        }
    }

    #[test]
    fn shard_partition_limits_classes_per_client() {
        let d = labelled_dataset(400, 10);
        let parts = partition_shards(&d, 10, 1);
        assert_eq!(parts.len(), 10);
        for p in &parts {
            let distinct = p
                .labels()
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len();
            // Two shards, each mostly one class; boundary shards may touch
            // a third class.
            assert!(distinct <= 3, "client saw {distinct} classes");
        }
    }

    #[test]
    fn shard_partition_preserves_all_examples() {
        let d = labelled_dataset(400, 10);
        let parts = partition_shards(&d, 8, 2);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn duplicate_client_makes_exact_copy() {
        let d = labelled_dataset(100, 10);
        let mut parts = partition_shards(&d, 10, 4);
        assert_ne!(
            parts[0].features().as_slice(),
            parts[9].features().as_slice()
        );
        duplicate_client(&mut parts, 0, 9);
        assert_eq!(
            parts[0].features().as_slice(),
            parts[9].features().as_slice()
        );
        assert_eq!(parts[0].labels(), parts[9].labels());
    }

    #[test]
    fn dirichlet_partition_preserves_all_examples() {
        let d = labelled_dataset(300, 10);
        let parts = partition_dirichlet(&d, 6, 0.5, 1);
        assert_eq!(parts.len(), 6);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn dirichlet_small_alpha_concentrates_classes() {
        let d = labelled_dataset(600, 10);
        let max_class_frac = |parts: &[Dataset]| {
            parts
                .iter()
                .filter(|p| !p.is_empty())
                .map(|p| {
                    let counts = p.class_counts();
                    *counts.iter().max().unwrap() as f64 / p.len() as f64
                })
                .fold(0.0_f64, f64::max)
        };
        let skewed = partition_dirichlet(&d, 6, 0.05, 3);
        let uniform = partition_dirichlet(&d, 6, 100.0, 3);
        assert!(
            max_class_frac(&skewed) > max_class_frac(&uniform),
            "alpha=0.05 should concentrate labels more than alpha=100"
        );
    }

    #[test]
    fn dirichlet_large_alpha_is_near_uniform_sizes() {
        let d = labelled_dataset(1000, 10);
        let parts = partition_dirichlet(&d, 5, 1000.0, 7);
        for p in &parts {
            let frac = p.len() as f64 / 1000.0;
            assert!((frac - 0.2).abs() < 0.08, "client fraction {frac}");
        }
    }

    #[test]
    fn dirichlet_is_deterministic() {
        let d = labelled_dataset(200, 5);
        let a = partition_dirichlet(&d, 4, 0.3, 9);
        let b = partition_dirichlet(&d, 4, 0.3, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.labels(), y.labels());
        }
    }

    #[test]
    #[should_panic(expected = "concentration must be positive")]
    fn dirichlet_rejects_bad_alpha() {
        let d = labelled_dataset(10, 2);
        let _ = partition_dirichlet(&d, 2, 0.0, 1);
    }

    #[test]
    fn dirichlet_never_yields_empty_clients_under_severe_skew() {
        // Severe skew over few examples used to starve clients; the
        // deterministic rebalance guarantees everyone keeps ≥ 1 example
        // whenever there are at least as many examples as clients.
        for seed in 0..20 {
            let d = labelled_dataset(40, 4);
            let parts = partition_dirichlet(&d, 8, 0.05, seed);
            let total: usize = parts.iter().map(|p| p.len()).sum();
            assert_eq!(total, 40);
            for (i, p) in parts.iter().enumerate() {
                assert!(!p.is_empty(), "client {i} empty at seed {seed}");
            }
        }
    }

    #[test]
    fn dirichlet_with_fewer_examples_than_clients_does_not_hang() {
        let d = labelled_dataset(3, 2);
        let parts = partition_dirichlet(&d, 5, 0.1, 2);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 3);
        // Emptiness is unavoidable here, but nothing is lost or duplicated.
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 3);
    }

    #[test]
    fn skew_presets_order_mildest_first() {
        let all = DirichletSkew::all();
        assert!(all[0].alpha() > all[1].alpha());
        assert!(all[1].alpha() > all[2].alpha());
        assert_eq!(DirichletSkew::Moderate.name(), "moderate");
        assert_eq!(DirichletSkew::Severe.alpha(), 0.1);
    }

    #[test]
    fn duplicate_client_same_index_is_noop() {
        let d = labelled_dataset(20, 2);
        let mut parts = partition_iid(&d, 2, 1);
        let before = parts[1].features().as_slice().to_vec();
        duplicate_client(&mut parts, 1, 1);
        assert_eq!(parts[1].features().as_slice(), &before[..]);
    }
}
