//! In-memory dataset container.

use fedval_linalg::Matrix;

/// A supervised classification dataset: an `n × d` feature matrix plus
/// integer labels in `0..num_classes`.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Builds a dataset, validating that shapes agree and every label is in
    /// range.
    pub fn new(features: Matrix, labels: Vec<usize>, num_classes: usize) -> Result<Self, String> {
        if features.rows() != labels.len() {
            return Err(format!(
                "feature rows ({}) != label count ({})",
                features.rows(),
                labels.len()
            ));
        }
        if num_classes == 0 {
            return Err("num_classes must be positive".to_string());
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(format!("label {bad} out of range 0..{num_classes}"));
        }
        Ok(Dataset {
            features,
            labels,
            num_classes,
        })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Mutable feature matrix (used by the noise injectors).
    pub fn features_mut(&mut self) -> &mut Matrix {
        &mut self.features
    }

    /// Labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Mutable labels (used by the label-flip injector).
    pub fn labels_mut(&mut self) -> &mut [usize] {
        &mut self.labels
    }

    /// Feature row of example `i`.
    pub fn example(&self, i: usize) -> (&[f64], usize) {
        (self.features.row(i), self.labels[i])
    }

    /// Builds a new dataset from a subset of example indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let d = self.dim();
        let mut feat = Matrix::zeros(indices.len(), d);
        let mut labels = Vec::with_capacity(indices.len());
        for (row, &idx) in indices.iter().enumerate() {
            feat.row_mut(row).copy_from_slice(self.features.row(idx));
            labels.push(self.labels[idx]);
        }
        Dataset {
            features: feat,
            labels,
            num_classes: self.num_classes,
        }
    }

    /// [`subset`](Dataset::subset) into a caller-provided dataset,
    /// reusing its buffers — the allocation-free form the minibatch SGD
    /// loop calls once per step. `out`'s previous shape is irrelevant;
    /// it is resized to `indices.len() × self.dim()`.
    pub fn subset_into(&self, indices: &[usize], out: &mut Dataset) {
        let d = self.dim();
        out.num_classes = self.num_classes;
        // Every row is copied below; skip the zero-fill pass.
        out.features.resize_for_overwrite(indices.len(), d);
        out.labels.clear();
        for (row, &idx) in indices.iter().enumerate() {
            out.features
                .row_mut(row)
                .copy_from_slice(self.features.row(idx));
            out.labels.push(self.labels[idx]);
        }
    }

    /// Splits into `(first, second)` where `first` holds `n_first` examples.
    pub fn split_at(&self, n_first: usize) -> (Dataset, Dataset) {
        let n = self.len().min(n_first);
        let first: Vec<usize> = (0..n).collect();
        let second: Vec<usize> = (n..self.len()).collect();
        (self.subset(&first), self.subset(&second))
    }

    /// Per-class example counts (useful for partition diagnostics).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Concatenates several datasets that share schema.
    pub fn concat(parts: &[&Dataset]) -> Result<Dataset, String> {
        let first = parts.first().ok_or("concat of zero datasets")?;
        let d = first.dim();
        let c = first.num_classes;
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut feat = Matrix::zeros(total, d);
        let mut labels = Vec::with_capacity(total);
        let mut row = 0;
        for p in parts {
            if p.dim() != d || p.num_classes != c {
                return Err("concat schema mismatch".to_string());
            }
            for i in 0..p.len() {
                feat.row_mut(row).copy_from_slice(p.features.row(i));
                labels.push(p.labels[i]);
                row += 1;
            }
        }
        Ok(Dataset {
            features: feat,
            labels,
            num_classes: c,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let f = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 3.0], &[4.0, 5.0]]).unwrap();
        Dataset::new(f, vec![0, 1, 0], 2).unwrap()
    }

    #[test]
    fn new_validates_shapes() {
        let f = Matrix::zeros(2, 3);
        assert!(Dataset::new(f.clone(), vec![0], 2).is_err());
        assert!(Dataset::new(f.clone(), vec![0, 5], 2).is_err());
        assert!(Dataset::new(f, vec![0, 1], 0).is_err());
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_classes(), 2);
        let (x, y) = d.example(1);
        assert_eq!(x, &[2.0, 3.0]);
        assert_eq!(y, 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn subset_picks_rows_in_order() {
        let d = tiny();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.example(0).0, &[4.0, 5.0]);
        assert_eq!(s.example(1).0, &[0.0, 1.0]);
        assert_eq!(s.labels(), &[0, 0]);
    }

    #[test]
    fn subset_into_matches_subset_and_reuses_buffers() {
        let d = tiny();
        let mut out = d.subset(&[]);
        d.subset_into(&[2, 0], &mut out);
        let expect = d.subset(&[2, 0]);
        assert_eq!(out.features().as_slice(), expect.features().as_slice());
        assert_eq!(out.labels(), expect.labels());
        assert_eq!(out.num_classes(), expect.num_classes());
        // Refill with a different selection: buffers are recycled.
        d.subset_into(&[1], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.example(0).0, &[2.0, 3.0]);
    }

    #[test]
    fn split_at_partitions() {
        let d = tiny();
        let (a, b) = d.split_at(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.example(0).0, &[4.0, 5.0]);
    }

    #[test]
    fn split_at_clamps() {
        let d = tiny();
        let (a, b) = d.split_at(10);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
    }

    #[test]
    fn class_counts_counts() {
        assert_eq!(tiny().class_counts(), vec![2, 1]);
    }

    #[test]
    fn concat_appends() {
        let d = tiny();
        let c = Dataset::concat(&[&d, &d]).unwrap();
        assert_eq!(c.len(), 6);
        assert_eq!(c.example(3).0, &[0.0, 1.0]);
    }

    #[test]
    fn concat_rejects_schema_mismatch() {
        let d = tiny();
        let other = Dataset::new(Matrix::zeros(1, 3), vec![0], 2).unwrap();
        assert!(Dataset::concat(&[&d, &other]).is_err());
        assert!(Dataset::concat(&[]).is_err());
    }
}
