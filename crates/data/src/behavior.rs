//! Data-level client-quality interventions for the scenario worlds.
//!
//! Protocol-level behaviors (free riding, straggling, churn) live in
//! `fedval_fl::behavior` and are applied inside the trainer; *data*-level
//! degradation — corrupted labels — has to happen here, when the world
//! is materialized, so that every downstream consumer (training, utility
//! evaluation, ground-truth valuation) sees the same corrupted datasets.
//!
//! [`apply_label_corruption`] is the one entry point: it drives
//! [`flip_labels`] per listed client with the
//! same per-client seed derivation the experiment builder has always
//! used, so pre-existing worlds reproduce bit-for-bit through it.

use crate::noise::flip_labels;
use crate::Dataset;

/// One client's label corruption: flip `fraction` of its labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelCorruption {
    /// Index of the client to corrupt.
    pub client: usize,
    /// Fraction of the client's examples whose labels are flipped.
    pub fraction: f64,
}

/// Flips labels for every listed client, seeded per client as
/// `seed ^ (0x5A5A + client)` — the experiment builder's historical
/// scheme, kept so legacy `label_noise` worlds are bit-identical when
/// routed through here. Out-of-range clients and non-positive fractions
/// are skipped.
pub fn apply_label_corruption(clients: &mut [Dataset], specs: &[LabelCorruption], seed: u64) {
    for spec in specs {
        if spec.client < clients.len() && spec.fraction > 0.0 {
            flip_labels(
                &mut clients[spec.client],
                spec.fraction,
                seed ^ (0x5A5A + spec.client as u64),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedval_linalg::Matrix;

    fn clients(n: usize) -> Vec<Dataset> {
        (0..n)
            .map(|i| {
                let f = Matrix::from_fn(20, 2, |r, c| (r * 2 + c + i) as f64);
                let labels: Vec<usize> = (0..20).map(|r| (r + i) % 4).collect();
                Dataset::new(f, labels, 4).unwrap()
            })
            .collect()
    }

    #[test]
    fn corruption_touches_only_listed_clients() {
        let clean = clients(3);
        let mut noisy = clients(3);
        apply_label_corruption(
            &mut noisy,
            &[LabelCorruption {
                client: 1,
                fraction: 0.5,
            }],
            9,
        );
        assert_eq!(clean[0].labels(), noisy[0].labels());
        assert_ne!(clean[1].labels(), noisy[1].labels());
        assert_eq!(clean[2].labels(), noisy[2].labels());
        // Features are never touched.
        assert_eq!(
            clean[1].features().as_slice(),
            noisy[1].features().as_slice()
        );
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let spec = [LabelCorruption {
            client: 0,
            fraction: 0.4,
        }];
        let mut a = clients(2);
        let mut b = clients(2);
        apply_label_corruption(&mut a, &spec, 7);
        apply_label_corruption(&mut b, &spec, 7);
        assert_eq!(a[0].labels(), b[0].labels());
        let mut c = clients(2);
        apply_label_corruption(&mut c, &spec, 8);
        assert_ne!(a[0].labels(), c[0].labels());
    }

    #[test]
    fn out_of_range_and_zero_fraction_are_skipped() {
        let clean = clients(2);
        let mut noisy = clients(2);
        apply_label_corruption(
            &mut noisy,
            &[
                LabelCorruption {
                    client: 5,
                    fraction: 0.5,
                },
                LabelCorruption {
                    client: 0,
                    fraction: 0.0,
                },
            ],
            1,
        );
        for (a, b) in clean.iter().zip(&noisy) {
            assert_eq!(a.labels(), b.labels());
        }
    }

    #[test]
    fn matches_the_builders_historical_per_client_seeding() {
        // The contract that keeps legacy worlds bit-identical: routing
        // through apply_label_corruption equals calling flip_labels with
        // seed ^ (0x5A5A + i) directly.
        let mut via_helper = clients(2);
        apply_label_corruption(
            &mut via_helper,
            &[LabelCorruption {
                client: 1,
                fraction: 0.3,
            }],
            42,
        );
        let mut direct = clients(2);
        flip_labels(&mut direct[1], 0.3, 42 ^ (0x5A5A + 1));
        assert_eq!(via_helper[1].labels(), direct[1].labels());
    }
}
